"""Slow-path benchmark: the batched upcall engine vs the scalar path.

The workload is the upcall-dominated regime of the paper's attack: a
*cold* megaflow cache replaying the co-located SipSpDp detonation trace
(§5), so every packet misses, takes the slow path, and installs one of
the staircase's 8,000+ megaflows.  This is the regime where the switch
actually dies in Figs. 8–9 — the scalar slow path handles one upcall at
a time while the cache it must re-scan keeps exploding.

Two guards, persisted to ``results/BENCH_upcall.json``:

* **Equivalence** — on the cold-cache detonation replay the batched
  upcall engine is verdict-for-verdict identical to the scalar per-packet
  path: same actions, paths, ``masks_inspected``, ``rules_examined``,
  upcall/install statistics, and the same final entry set.  The batched
  engine only coalesces *generation* (one vectorised decision-procedure
  pass per burst, decision paths memoised in the chunk trie) and defers
  pure index appends; settlement stays per-packet, so this must hold
  exactly.  The pass doubles as warm-up: timing below measures a cold
  cache under a warm (steady-state) decision trie.
* **Upcall speedup** — the batched engine (``batch_upcalls`` on,
  batch-chunked replay) sustains >= 3x the scalar reference's
  packets/sec, where the scalar reference processes the same trace
  packet by packet through the scalar slow path.  The engine-internal
  win (``batch_upcalls`` on vs off inside ``process_batch``) is also
  published, unfloored, to keep the coalescing contribution visible.

Each timing round flushes the megaflow cache and the lookup memo —
upcalls, not replay memoisation, are under test.  Workload builders live
in :mod:`benchmarks.common`.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_upcall.py -q -s
"""

from __future__ import annotations

import time

from common import BATCH_SIZE, ROUNDS, SMOKE, publish
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPSPDP
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig

SPEEDUP_FLOOR = 3.0

#: Smoke runs replay a detonation prefix: both sides walk the same keys,
#: so the speedup guard stays honest, just on a shallower staircase.
REPLAY_BUDGET = 2000 if SMOKE else None


def detonation_keys():
    trace = ColocatedTraceGenerator(
        SIPSPDP.build_table(), base={"ip_proto": PROTO_TCP}
    ).generate()
    keys = list(trace.keys)
    return keys[:REPLAY_BUDGET] if REPLAY_BUDGET else keys


def upcall_datapath(batched: bool) -> Datapath:
    return Datapath(
        SIPSPDP.build_table(),
        DatapathConfig(microflow_capacity=0, batch_upcalls=batched),
    )


def go_cold(datapath: Datapath) -> None:
    """Back to the all-upcalls regime: no megaflows, no memoised lookups."""
    datapath.megaflows.flush()
    datapath.megaflows.clear_memo()


def cold_sequential_pps(datapath: Datapath, keys, rounds: int = ROUNDS) -> float:
    """Best-of-``rounds`` pps, per-packet replay from a cold cache."""
    best = float("inf")
    for _ in range(rounds):
        go_cold(datapath)
        start = time.perf_counter()
        for key in keys:
            datapath.process(key)
        best = min(best, time.perf_counter() - start)
    return len(keys) / best


def cold_batch_pps(datapath: Datapath, keys, rounds: int = ROUNDS) -> float:
    """Best-of-``rounds`` pps, batch-chunked replay from a cold cache."""
    best = float("inf")
    for _ in range(rounds):
        go_cold(datapath)
        start = time.perf_counter()
        for offset in range(0, len(keys), BATCH_SIZE):
            datapath.process_batch(keys[offset : offset + BATCH_SIZE])
        best = min(best, time.perf_counter() - start)
    return len(keys) / best


def test_upcall_replay_speedup():
    """Batched upcall engine >= 3x the scalar path, verdict-identical."""
    keys = detonation_keys()
    scalar_dp = upcall_datapath(batched=False)
    batched_dp = upcall_datapath(batched=True)

    # Equivalence before timing anything: the full cold-cache transcript
    # (this is also the warm-up — the decision trie is steady afterwards).
    expected = [scalar_dp.process(key) for key in keys]
    got = []
    upcalls = 0
    for offset in range(0, len(keys), BATCH_SIZE):
        batch = batched_dp.process_batch(keys[offset : offset + BATCH_SIZE])
        got.extend(batch.verdicts)
        upcalls += batch.upcalls
    for i, (a, b) in enumerate(zip(expected, got)):
        assert a.action == b.action, i
        assert a.path == b.path, i
        assert a.masks_inspected == b.masks_inspected, i
        assert a.rules_examined == b.rules_examined, i
    assert upcalls == scalar_dp.stats.upcalls == batched_dp.stats.upcalls
    assert batched_dp.stats.installs == scalar_dp.stats.installs
    assert {(e.mask.values, e.key) for e in batched_dp.megaflows.entries()} == {
        (e.mask.values, e.key) for e in scalar_dp.megaflows.entries()
    }
    n_masks = batched_dp.n_masks
    assert n_masks >= (1500 if SMOKE else 8000), f"workload too small: {n_masks} masks"

    scalar_pps = cold_sequential_pps(scalar_dp, keys)
    batch_scalar_pps = cold_batch_pps(scalar_dp, keys)
    batched_pps = cold_batch_pps(batched_dp, keys)
    speedup = batched_pps / scalar_pps

    publish(
        "upcall",
        {
            "workload": "cold-cache-sipspdp-detonation-replay",
            "use_case": SIPSPDP.name,
            "replay_packets": len(keys),
            "batch_size": BATCH_SIZE,
            "masks": n_masks,
            "megaflow_entries": batched_dp.n_megaflows,
            "upcalls_per_round": upcalls,
            "scalar_pps": round(scalar_pps, 1),
            "batch_scalar_upcall_pps": round(batch_scalar_pps, 1),
            "batched_pps": round(batched_pps, 1),
            "upcall_speedup": round(speedup, 2),
            "engine_speedup_vs_batch_scalar": round(batched_pps / batch_scalar_pps, 2),
        },
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"batched upcall engine only {speedup:.2f}x the scalar path "
        f"({batched_pps:.0f} vs {scalar_pps:.0f} pps at {n_masks} masks)"
    )


def test_upcall_benchmark(benchmark):
    """pytest-benchmark hook for the upcall replay (trajectory tracking)."""
    keys = detonation_keys()
    datapath = upcall_datapath(batched=True)
    datapath.process_batch(keys)  # steady-state decision trie

    def replay():
        go_cold(datapath)
        total = 0
        for offset in range(0, len(keys), BATCH_SIZE):
            total += len(datapath.process_batch(keys[offset : offset + BATCH_SIZE]))
        return total

    assert benchmark(replay) == len(keys)
