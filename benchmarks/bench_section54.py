"""Benchmark: the §5.4 use-case table (mask ceilings + retention)."""

from repro.experiments import section54


def test_section54_use_case_table(benchmark, publish):
    result = benchmark.pedantic(section54.run, rounds=1, iterations=1)
    publish(result)
    by_case = {row[0]: row for row in result.rows}
    masks = result.columns.index("mfc_masks")
    assert by_case["Dp"][masks] == 16
    assert by_case["SpDp"][masks] == 257
    assert by_case["SipDp"][masks] == 513
    assert by_case["SipSpDp"][masks] == 8209
    gro_off = result.columns.index("gro_off_pct")
    assert by_case["SipSpDp"][gro_off] < 0.5  # the paper's 0.2%
