"""Benchmark: Theorem 4.2 multi-field trade-offs (Fig. 6 widths)."""

from repro.experiments import theorem42


def test_theorem42_tradeoff(benchmark, publish):
    result = benchmark.pedantic(theorem42.run, rounds=1, iterations=1)
    publish(result)
    wildcarding = result.rows[-1]
    assert wildcarding[3] == 16 * 32 * 16 + 1 + 16  # the SipSpDp product
