"""Live backend migration benchmarks: swap identity + online recovery.

Two guards, persisted to ``results/BENCH_migration.json``:

* **Swap verdict identity** — a detonated TSS datapath is rebuilt as
  ``tuplechain`` in bounded slices (with fresh flows installed mid-rebuild
  to exercise the delta journal) and atomically swapped.  The post-swap
  replay must agree action-for-action with a never-migrated tuplechain
  datapath fed the identical history, and the swap must preserve the exact
  entry and mask counts.  Verdicts are the only cross-backend comparable
  quantity — scan/probe counters are backend-native units.
* **Online victim-floor recovery** — the ``migrationsweep`` hybrid policy
  (MFCGuard holds the line while the cost-plane-driven rebuild races, then
  stands down) must claw the victim's floor back to at least
  ``RECOVERED_FLOOR_RATIO`` times the undefended TSS floor *while the
  attack is still running*, and the recovery must land within seconds of
  the collapse.

``REPRO_BENCH_SMOKE=1`` shortens the simulated window and relaxes the
ratio (the detonation still explodes fully; the floors just settle over
fewer ticks) and publishes to ``BENCH_migration.smoke.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_migration.py -q -s
"""

from __future__ import annotations

from common import SMOKE, publish, section62_trace, warmed
from repro.classifier.backend import backend_name_of
from repro.experiments.migrationsweep import run_policy_cell

# The hybrid policy's recovered victim floor vs the undefended TSS floor.
RECOVERED_FLOOR_RATIO = 25.0 if SMOKE else 100.0

# The recovery must land this many seconds after the collapse, at most —
# the rebuild is bounded-slice work over ~1.4k entries, not a restart.
MAX_TIME_TO_RECOVER_S = 5.0

SWEEP = dict(
    use_case_name="SipSpDp",
    duration=25.0 if SMOKE else 40.0,
    attack_start=3.0 if SMOKE else 5.0,
    attack_stop=20.0 if SMOKE else 35.0,
    attack_pps=1200.0,
)


def _replay_actions(datapath, keys):
    """The verdict list for a memo-less replay (actions only: the one
    quantity that must be identical across backends)."""
    datapath.megaflows.clear_memo()
    return [verdict.action for verdict in datapath.process_batch(keys)]


def test_swap_verdict_identity():
    """Post-swap replay agrees with a never-migrated tuplechain datapath."""
    keys = section62_trace()
    migrating = warmed(keys, backend="tss")
    reference = warmed(keys, backend="tuplechain")

    expected = _replay_actions(reference, keys)
    assert _replay_actions(migrating, keys) == expected  # pre-swap agreement

    pre_entries = migrating.megaflows.n_entries
    pre_masks = migrating.n_masks
    pre_cost = migrating.scan_cost

    status = migrating.migrate_backend_start("tuplechain", slice_size=256)
    assert status["status"] == "rebuilding"
    migrating.migrate_backend_step(512)  # partial rebuild, source still live

    # Fresh flows while the rebuild is in flight: the delta journal must
    # carry them into the target (the reference sees the same history).
    extra = section62_trace(seed=7, budget=32)
    migrating.process_batch(extra)
    reference.process_batch(extra)
    delta_entries = migrating.megaflows.n_entries - pre_entries

    while True:
        status = migrating.migrate_backend_step(512)
        if status["rebuild_done"]:
            break
    assert status["journal_replayed"] >= delta_entries

    status = migrating.migrate_backend_swap()
    assert status["status"] == "swapped"
    assert status["swaps"] == 1
    assert backend_name_of(migrating.megaflows) == "tuplechain"

    # The swap preserves the cache exactly: same entries, same masks, and
    # the replay is verdict-for-verdict the never-migrated tuplechain's.
    assert migrating.megaflows.n_entries == pre_entries + delta_entries
    assert migrating.n_masks == pre_masks
    assert _replay_actions(migrating, keys) == expected
    assert _replay_actions(migrating, extra) == _replay_actions(reference, extra)
    # ... and the point of migrating: the scan is no longer mask-priced.
    assert migrating.scan_cost < pre_cost / 10


def test_migration_recovers_victim_floor():
    """Hybrid recovery lifts the in-attack floor >= the guarded ratio."""
    cells = {
        policy: run_policy_cell(policy, **SWEEP) for policy in ("none", "hybrid")
    }
    none, hybrid = cells["none"], cells["hybrid"]

    # The detonation really happened: the undefended victim collapsed.
    assert none["peak_masks"] >= (1000 if SMOKE else 8000), none["peak_masks"]
    assert none["floor_gbps"] < 0.1 * none["baseline_gbps"]
    # The controller fired and the swap landed while the attack ran.
    assert hybrid["swaps"] >= 1
    assert hybrid["final_backend"] == "tuplechain"

    ratio = hybrid["recovered_floor_gbps"] / max(none["floor_gbps"], 1e-9)
    time_to_recover = hybrid["time_to_recover_s"]

    publish(
        "migration",
        {
            "workload": "migrationsweep-netsim-sipspdp",
            "attack_pps": SWEEP["attack_pps"],
            "attack_window_s": SWEEP["attack_stop"] - SWEEP["attack_start"],
            "masks": none["peak_masks"],
            "victim_baseline_gbps": round(none["baseline_gbps"], 3),
            "none_floor_gbps": round(none["floor_gbps"], 4),
            "hybrid_recovered_floor_gbps": round(
                hybrid["recovered_floor_gbps"], 4
            ),
            "recovered_floor_ratio": round(ratio, 1),
            "time_to_recover_s": (
                round(time_to_recover, 2) if time_to_recover is not None else None
            ),
            "swaps": hybrid["swaps"],
            "entries_deleted": hybrid["entries_deleted"],
            "peak_rebuild_mb": round(
                hybrid["peak_rebuild_memory_bytes"] / 1e6, 2
            ),
            "final_scan_cost_units": round(hybrid["final_scan_cost"], 1),
        },
    )

    # The acceptance ratio — and the recovery happened *during* the attack.
    assert ratio >= RECOVERED_FLOOR_RATIO, (ratio, RECOVERED_FLOOR_RATIO)
    assert time_to_recover is not None
    assert time_to_recover <= MAX_TIME_TO_RECOVER_S, time_to_recover
