"""Scan-kernel benchmarks: the compiled cffi kernel vs the numpy kernel.

Two guards, persisted to ``results/BENCH_kernel.json``:

* **Equivalence** — on the detonated (8k+ mask) SipSpDp replay the cffi
  and numpy kernels are verdict-for-verdict identical: same actions,
  paths, ``masks_inspected``, ``mask_counts`` and ``probe_costs``.  The
  kernels only propose filter-hit candidates — every candidate is
  confirmed against the per-mask dicts — so this must hold exactly.
  Always runs (against numpy alone when no compiler is available).
* **Kernel speedup** — the cffi kernel replays the §6.2 attack keys
  against the exploded cache at >= 2x the numpy kernel's packets/sec on
  a single shard.  The win is algorithmic, not parallel: the C scan
  early-exits each key at its first filter hit and strip-pipelines the
  filter probes, where the numpy plan computes the dense
  (keys x 8k masks) candidate matrix every batch.  Skipped (with the
  measurement still published) only when the cffi kernel cannot build.

Workload builders and replay timers live in :mod:`benchmarks.common`.
Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel.py -q -s
"""

from __future__ import annotations

import pytest

from common import (
    ATTACK_BUDGET,
    BATCH_SIZE,
    publish,
    replay_batch_pps,
    section62_trace,
    warmed,
)
from repro.classifier.kernel import cffi_kernel_available
from repro.core.usecases import SIPSPDP

SPEEDUP_FLOOR = 2.0
CFFI_AVAILABLE = cffi_kernel_available()


def test_kernel_replay_speedup():
    """cffi replay >= 2x numpy on the 8k-mask detonation, verdict-identical."""
    keys = section62_trace()
    numpy_dp = warmed(keys, scan_kernel="numpy")
    n_masks = numpy_dp.n_masks
    assert n_masks >= 1000, f"workload too small: {n_masks} masks"

    numpy_dp.megaflows.clear_memo()
    expected = numpy_dp.process_batch(keys)

    payload = {
        "workload": "section62-random-replay",
        "use_case": SIPSPDP.name,
        "attack_budget_packets": ATTACK_BUDGET,
        "batch_size": BATCH_SIZE,
        "masks": n_masks,
        "megaflow_entries": numpy_dp.n_megaflows,
        "cffi_available": CFFI_AVAILABLE,
    }

    if not CFFI_AVAILABLE:
        payload["numpy_pps"] = round(replay_batch_pps(numpy_dp, keys), 1)
        publish("kernel", payload)
        pytest.skip("cffi scan kernel unavailable (no compiler?); numpy published")

    cffi_dp = warmed(keys, scan_kernel="cffi")
    assert cffi_dp.n_masks == n_masks
    assert cffi_dp.megaflows.scan_kernel_name == "cffi"

    # Equivalence before timing anything: the full batch transcript.
    cffi_dp.megaflows.clear_memo()
    got = cffi_dp.process_batch(keys)
    assert got.mask_counts == expected.mask_counts
    assert got.probe_costs == expected.probe_costs
    for i, (a, b) in enumerate(zip(expected.verdicts, got.verdicts)):
        assert a.action == b.action, i
        assert a.path == b.path, i
        assert a.masks_inspected == b.masks_inspected, i
        assert a.rules_examined == b.rules_examined, i
    assert set(numpy_dp.megaflows.masks()) == set(cffi_dp.megaflows.masks())
    assert {(e.mask.values, e.key) for e in numpy_dp.megaflows.entries()} == {
        (e.mask.values, e.key) for e in cffi_dp.megaflows.entries()
    }

    numpy_pps = replay_batch_pps(numpy_dp, keys)
    cffi_pps = replay_batch_pps(cffi_dp, keys)
    speedup = cffi_pps / numpy_pps

    payload.update(
        {
            "numpy_pps": round(numpy_pps, 1),
            "cffi_pps": round(cffi_pps, 1),
            "speedup_cffi_vs_numpy": round(speedup, 2),
        }
    )
    publish("kernel", payload)

    assert speedup >= SPEEDUP_FLOOR, (
        f"cffi kernel replay only {speedup:.2f}x numpy "
        f"({cffi_pps:.0f} vs {numpy_pps:.0f} pps at {n_masks} masks)"
    )


def test_kernel_benchmark(benchmark):
    """pytest-benchmark hook for the kernel replay (trajectory tracking)."""
    keys = section62_trace()
    datapath = warmed(keys)  # auto: cffi when available

    def replay():
        datapath.megaflows.clear_memo()
        total = 0
        for offset in range(0, len(keys), BATCH_SIZE):
            total += len(datapath.process_batch(keys[offset : offset + BATCH_SIZE]))
        return total

    assert benchmark(replay) == len(keys)
