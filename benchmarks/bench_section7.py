"""Benchmark: the §7 CMS-expressiveness ceilings."""

from repro.experiments import section7


def test_section7_expressiveness(benchmark, publish):
    result = benchmark.pedantic(section7.run, rounds=1, iterations=1)
    publish(result)
    ceilings = result.column("max_masks")
    # Paper: 512, 8192 ("full-blown DoS"), ~200 thousand.
    assert ceilings[0] == 512 + 1
    assert ceilings[1] == 8192 + 17
    assert 200_000 < ceilings[2] < 300_000
