"""Rebalancing benchmark: live RSS re-maps under the detonated cache.

Two guards, persisted to ``results/BENCH_rebalance.json``:

* **Zero-drop re-map invariant** — on a 4-shard datapath carrying the
  full SipSpDp detonation, a re-key re-map migrates every cached megaflow
  to its new home shard: the aggregate ``(mask, masked key)`` union and
  the distinct-mask union are identical before and after, re-mapping to
  the same dispatcher again moves nothing (placement is a pure function
  of masked key and dispatcher), and a salt round-trip back to 0
  preserves the union.  Entries re-home by their *masked* key while
  packets dispatch by their full 5-tuple, so a wildcard-heavy entry's
  matching packets can land on a different queue than the migrated copy
  under the new salt — those packets upcall once and warm a local copy
  (the same per-queue duplication the sharded cache always does).  That
  transient is published as ``post_remap_rewarm_upcalls``; the guard is
  that a *second* replay takes zero upcalls — the misses are placement
  transients, never losses.  Checked under the serial, thread and
  process executors — under the process executor the moved-entry delta
  is what crosses the worker pipes, so this also guards the executor
  protocol.
* **Floor recovery** — the ``rsssweep`` adversarial game (RSS-aware
  attacker re-grinding its trace every round vs. the skew-triggered
  re-keying defender): the defended victim's round-tail floor must be
  >= 10x the static-RSS floor, the experiment's acceptance bar.  The
  game is fully simulated (no wall-clock in the scored path), so the
  ratio is deterministic.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_rebalance.py -q -s
"""

from __future__ import annotations

import time

from common import SMOKE, publish, section62_trace, warmed_sharded
from repro.experiments.rsssweep import run_policy_cell
from repro.switch.rss import RetaDispatcher, five_tuple_hash

FLOOR_RATIO = 10.0
REKEY_SALT = 0x9E3779B9

EXECUTORS = ("serial", "thread", "process")

#: Filled by the invariant test, folded into the published payload by the
#: floor-recovery test (pytest runs this file's tests in order).
INVARIANT_METRICS: dict = {}


def entry_union(datapath) -> set:
    """The aggregate ``(mask, masked key)`` population across all shards."""
    return {
        (entry.mask.values, entry.key)
        for shard in datapath.shards
        for entry in shard.megaflows.entries()
    }


def test_remap_zero_drop_invariant():
    """Re-maps move every entry and drop none, under every executor."""
    keys = section62_trace()
    moved_by_executor = {}
    for executor in EXECUTORS:
        datapath = warmed_sharded(4, keys, executor=executor)
        try:
            before_union = entry_union(datapath)
            before_masks = datapath.n_masks
            upcalls_before = datapath.stats.upcalls

            rekeyed = RetaDispatcher(4, five_tuple_hash, salt=REKEY_SALT)
            status = datapath.rebalance(rekeyed)
            assert status["remaps"] == 1
            assert status["entries_moved"] > 0, "re-key moved nothing"
            moved_by_executor[executor] = status["entries_moved"]

            # Nothing dropped, nothing duplicated, masks intact.
            assert entry_union(datapath) == before_union
            assert datapath.n_masks == before_masks

            # Placement is a pure function of (masked key, dispatcher):
            # re-mapping to the same dispatcher moves nothing (the status
            # counter is cumulative, so the delta must be zero).
            again = datapath.rebalance(rekeyed.with_salt(REKEY_SALT))
            assert again["entries_moved"] == status["entries_moved"]

            # First replay re-warms entries whose matching packets now
            # dispatch to a different queue than the migrated copy; the
            # second replay must take zero upcalls — transients, not drops.
            datapath.process_batch(keys)
            rewarm = datapath.stats.upcalls - upcalls_before
            INVARIANT_METRICS[f"post_remap_rewarm_upcalls_{executor}"] = rewarm
            warmed_upcalls = datapath.stats.upcalls
            datapath.process_batch(keys)
            assert datapath.stats.upcalls == warmed_upcalls, (
                f"{executor}: cache never converged after the re-map "
                f"({datapath.stats.upcalls - warmed_upcalls} upcalls "
                f"on an already-replayed trace)"
            )

            # Salt round-trip: the union survives the way back too (the
            # replay's re-warmed duplicates share (mask, masked key) with
            # the originals, so they converge onto one home and dedupe).
            datapath.rebalance(rekeyed.with_salt(0))
            assert entry_union(datapath) == before_union
        finally:
            datapath.close()

    # One shard means one home: a re-map has nothing to move.
    single = warmed_sharded(1, keys)
    try:
        before = entry_union(single)
        status = single.rebalance(RetaDispatcher(1, five_tuple_hash, salt=REKEY_SALT))
        assert status["entries_moved"] == 0
        assert entry_union(single) == before
    finally:
        single.close()

    assert len(set(moved_by_executor.values())) == 1, (
        f"executors disagree on the moved-entry delta: {moved_by_executor}"
    )


def test_rebalance_floor_recovery():
    """The re-keying defender recovers the victim's floor >= 10x static."""
    start = time.perf_counter()
    static = run_policy_cell("static")
    defended = run_policy_cell("rebalance")
    wall = time.perf_counter() - start

    static_floor = static["tail_floor_gbps"]
    defended_floor = defended["tail_floor_gbps"]
    ratio = defended_floor / static_floor if static_floor else float("inf")

    publish(
        "rebalance",
        {
            **INVARIANT_METRICS,
            "workload": "rsssweep-sipspdp-retargeting-game",
            "smoke": SMOKE,
            "game_wall_seconds": round(wall, 1),
            "rounds": defended["rounds"],
            "remaps": defended["remaps"],
            "entries_moved": defended["entries_moved"],
            "trace_packets": defended["trace_packets"],
            "static_tail_floor_gbps": round(static_floor, 4),
            "defended_tail_floor_gbps": round(defended_floor, 4),
            "static_attack_floor_gbps": round(static["attack_floor_gbps"], 4),
            "defended_attack_floor_gbps": round(defended["attack_floor_gbps"], 4),
            "rebalance_floor_ratio": round(ratio, 1),
        },
    )

    assert static["remaps"] == 0, "static cell must never re-map"
    assert defended["remaps"] >= defended["rounds"] - 1, (
        f"defender only re-mapped {defended['remaps']}x "
        f"across {defended['rounds']} attacker rounds"
    )
    assert defended["entries_moved"] > 0
    assert ratio >= FLOOR_RATIO, (
        f"rebalancing defender only recovered {ratio:.1f}x the static floor "
        f"({defended_floor:.4f} vs {static_floor:.4f} Gbps)"
    )
