"""Benchmark: Fig. 8b — OpenStack SipDp with the established-flow quirk."""

from repro.experiments import fig8b


def test_fig8b_time_series(benchmark, publish):
    result = benchmark.pedantic(
        lambda: fig8b.run(duration=120.0), rounds=1, iterations=1
    )
    publish(result)
    times = result.column("t_s")
    rates = result.column("victim_gbps")
    first_attack = min(v for t, v in zip(times, rates) if 33 <= t < 60)
    calm = max(v for t, v in zip(times, rates) if 75 <= t < 90)
    re_attack = min(v for t, v in zip(times, rates) if 95 <= t < 120)
    assert first_attack < 0.1 * calm      # paper: >90% reduction
    assert re_attack > 0.75 * calm        # paper: only ~10% dip on re-attack
