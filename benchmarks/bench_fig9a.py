"""Benchmark: Fig. 9a — throughput vs mask count per NIC profile."""

from repro.experiments import fig9a


def test_fig9a_curves(benchmark, publish):
    result = benchmark(fig9a.run)
    publish(result)
    gro_off = result.column("gro_off_gbps")
    assert gro_off[0] > 9.0
    assert gro_off[-1] < 0.05


def test_fig9a_fct_series(benchmark):
    """The secondary axis: 1 GB flow completion time."""
    from repro.switch.costmodel import CostModel

    model = CostModel()

    def fct_sweep():
        return [model.flow_completion_seconds(1.0, masks)
                for masks in (1, 17, 260, 516, 8200)]

    series = benchmark(fct_sweep)
    assert series == sorted(series)
    assert series[-1] > 300  # minutes once the tuple space explodes
