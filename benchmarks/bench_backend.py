"""Megaflow-backend benchmarks: the grouped backend defuses the detonation.

Two guards, persisted to ``results/BENCH_backend.json``:

* **Equivalence** — on the detonated (8k+ mask) SipSpDp replay the
  TupleChain-style grouped backend is verdict-for-verdict and
  path-for-path identical to TSS, with the same installed entry/mask
  sets.  (``masks_inspected`` intentionally differs: it is reported in
  backend-native probe units — chain probes vs mask tables scanned.)
* **Defense speedup** — replaying the §6.2 attack keys against the
  exploded cache must run >= 3x the packets/sec of the TSS batch
  pipeline: the whole point of grouping is that per-lookup probes grow
  with the group/chain structure (3 groups, ~60 probes) instead of the
  8,209-mask scan the attack built.

Workload builders and replay timers live in :mod:`benchmarks.common`.
Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_backend.py -q -s
"""

from __future__ import annotations

from common import (
    ATTACK_BUDGET,
    BATCH_SIZE,
    publish,
    replay_batch_pps,
    section62_trace,
    warmed,
)
from repro.core.usecases import SIPSPDP

SPEEDUP_FLOOR = 3.0


def test_grouped_backend_replay_speedup():
    """Grouped replay >= 3x TSS on the 8k-mask detonation, verdict-identical."""
    keys = section62_trace()
    # Pin the numpy kernel: this bench guards the *structural* win of
    # grouping over the linear mask scan, and its committed trajectory
    # ratio predates the compiled cffi scan kernel.  Letting "auto" pick
    # cffi would shrink the TSS denominator and make the ratio measure
    # the kernel, not the backend (bench_kernel guards the kernel).
    tss_dp = warmed(keys, backend="tss", scan_kernel="numpy")
    chain_dp = warmed(keys, backend="tuplechain")

    n_masks = tss_dp.n_masks
    assert n_masks >= 1000, f"workload too small: {n_masks} masks"
    assert chain_dp.n_masks == n_masks

    # Equivalence before timing anything: same verdicts, same paths, same
    # installed cache contents.  Probe units are backend-native, so
    # masks_inspected is *not* compared across backends.
    tss_dp.megaflows.clear_memo()
    chain_dp.megaflows.clear_memo()
    expected = list(tss_dp.process_batch(keys).verdicts)
    got = list(chain_dp.process_batch(keys).verdicts)
    assert [v.action for v in expected] == [v.action for v in got]
    assert [v.path for v in expected] == [v.path for v in got]
    assert set(tss_dp.megaflows.masks()) == set(chain_dp.megaflows.masks())
    assert {(e.mask.values, e.key) for e in tss_dp.megaflows.entries()} == {
        (e.mask.values, e.key) for e in chain_dp.megaflows.entries()
    }

    # The grouped structure really is sublinear: probes per lookup stay
    # orders of magnitude below the mask count the attack installed.
    chain_dp.megaflows.clear_memo()
    probes = [v.masks_inspected for v in chain_dp.process_batch(keys).verdicts]
    mean_probes = sum(probes) / len(probes)
    assert max(probes) < n_masks / 10, (max(probes), n_masks)

    tss_pps = replay_batch_pps(tss_dp, keys)
    chain_pps = replay_batch_pps(chain_dp, keys)
    speedup = chain_pps / tss_pps

    publish(
        "backend",
        {
            "workload": "section62-random-replay",
            "use_case": SIPSPDP.name,
            "attack_budget_packets": ATTACK_BUDGET,
            "batch_size": BATCH_SIZE,
            "masks": n_masks,
            "megaflow_entries": tss_dp.n_megaflows,
            "tuplechain_groups": chain_dp.megaflows.n_groups,
            "tuplechain_mean_probe_units": round(mean_probes, 1),
            "tuplechain_max_probe_units": max(probes),
            "tss_pps": round(tss_pps, 1),
            "tuplechain_pps": round(chain_pps, 1),
            "speedup_tuplechain_vs_tss": round(speedup, 2),
        },
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"grouped replay only {speedup:.2f}x TSS "
        f"({chain_pps:.0f} vs {tss_pps:.0f} pps at {n_masks} masks)"
    )


def test_backend_benchmark(benchmark):
    """pytest-benchmark hook for the grouped replay (trajectory tracking)."""
    keys = section62_trace()
    datapath = warmed(keys, backend="tuplechain")

    def replay():
        datapath.megaflows.clear_memo()
        total = 0
        for offset in range(0, len(keys), BATCH_SIZE):
            total += len(datapath.process_batch(keys[offset : offset + BATCH_SIZE]))
        return total

    assert benchmark(replay) == len(keys)
