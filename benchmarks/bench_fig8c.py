"""Benchmark: Fig. 8c — Kubernetes SipSpDp with mid-run ACL injection."""

from repro.experiments import fig8c


def test_fig8c_time_series(benchmark, publish):
    result = benchmark.pedantic(
        lambda: fig8c.run(duration=150.0), rounds=1, iterations=1
    )
    publish(result)
    times = result.column("t_s")
    rates = result.column("victim_gbps")
    pre_acl = min(v for t, v in zip(times, rates) if 35 <= t < 60)
    post_acl = [v for t, v in zip(times, rates) if 80 <= t < 110]
    final = [v for t, v in zip(times, rates) if 125 <= t < 150]
    assert pre_acl > 0.7                          # minor glitch only
    assert 0.05 < min(post_acl) < max(post_acl) < 0.35  # ~80% drop
    assert max(final) < 0.05                      # full DoS at 2 kpps
    assert max(result.column("megaflows")) > 8000  # the secondary axis
