"""Shared harness for the perf-guard benchmarks (batch / shard / backend).

The three datapath benchmarks replay the same workload — the §6.2 random
attack trace against a SipSpDp cache the co-located §5 trace has already
detonated past 8,000 masks — and guard different effects (batching
speedup, shard dilution, backend probe-boundedness).  This module holds
the one copy of the workload builders, the replay timers, and the
``results/BENCH_*.json`` publisher they share.

``REPRO_BENCH_SMOKE=1`` (CI) shrinks the replay and timing rounds — the
guards still bite (the SipSpDp detonation dominates the mask count), they
just stop dominating CI wall-clock — and redirects :func:`publish` to
``results/BENCH_<name>.smoke.json`` so reduced-budget numbers never
overwrite the committed full-size ``results/BENCH_*.json`` trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.core.general import GeneralTraceGenerator
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPSPDP
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig
from repro.switch.rss import five_tuple_hash
from repro.switch.sharded import AnyDatapath, ShardedDatapath

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

# §6.2's small budget; explodes SipSpDp past 1k masks even in smoke runs.
ATTACK_BUDGET = 400 if SMOKE else 1000
BATCH_SIZE = 256
ROUNDS = 1 if SMOKE else 3


def section62_trace(seed: int = 0, budget: int | None = None) -> list[FlowKey]:
    """The §6.2 random attack trace: uniform keys over the attacked fields."""
    source = GeneralTraceGenerator(
        fields=SIPSPDP.allow_fields, base={"ip_proto": PROTO_TCP}, seed=seed
    )
    return list(source.keys(ATTACK_BUDGET if budget is None else budget))


def attack_datapath(backend: str = "tss", scan_kernel: str = "auto") -> Datapath:
    """A fresh SipSpDp datapath (microflows off: the scan is under test)."""
    return Datapath(
        SIPSPDP.build_table(),
        DatapathConfig(
            microflow_capacity=0,
            megaflow_backend=backend,
            scan_kernel=scan_kernel,
        ),
    )


def detonate(datapath: AnyDatapath, keys: Sequence[FlowKey]) -> None:
    """Blow the tuple space past 8,000 masks and install ``keys``' megaflows.

    The co-located trace carves the full SipSpDp staircase (§5); the
    replay keys then install their own megaflows on top, so replaying
    them afterwards exercises pure fast-path scans over an exploded mask
    list.  Mask order is shuffled into the steady state the paper's cost
    model assumes.
    """
    trace = ColocatedTraceGenerator(
        datapath.flow_table, base={"ip_proto": PROTO_TCP}
    ).generate()
    datapath.process_batch(list(trace.keys))
    for shard in datapath.shards:
        shard.megaflows.shuffle_masks(seed=1)
    datapath.process_batch(list(keys))


def warmed(
    keys: Sequence[FlowKey], backend: str = "tss", scan_kernel: str = "auto"
) -> Datapath:
    """A single datapath with the attack detonated and ``keys`` installed."""
    datapath = attack_datapath(backend, scan_kernel=scan_kernel)
    detonate(datapath, keys)
    return datapath


def warmed_sharded(
    n_shards: int,
    keys: Sequence[FlowKey],
    backend: str = "tss",
    executor: str = "serial",
    executor_workers: int = 0,
    executor_transport: str = "shm",
    scan_kernel: str = "auto",
    hash_fn: Callable[[FlowKey], int] = five_tuple_hash,
) -> ShardedDatapath:
    """A sharded datapath with the detonation spread by the chosen RSS.

    ``executor`` picks the shard-execution strategy (pooled executors keep
    worker threads/processes alive until ``datapath.close()``) and
    ``executor_transport`` its data plane (``shm`` rings vs the pickled
    ``pipe``); ``scan_kernel`` picks the batch-scan implementation;
    ``hash_fn`` picks the dispatch hash — the natural ``five_tuple_hash``
    placement of the SipSpDp staircase is lopsided, so scaling benches
    pass :func:`repro.switch.rss.uniform_key_hash` for the even-spread
    regime.
    """
    datapath = ShardedDatapath(
        SIPSPDP.build_table(),
        DatapathConfig(
            microflow_capacity=0,
            megaflow_backend=backend,
            executor=executor,
            executor_workers=executor_workers,
            executor_transport=executor_transport,
            scan_kernel=scan_kernel,
        ),
        n_shards=n_shards,
        hash_fn=hash_fn,
    )
    detonate(datapath, keys)
    return datapath


def clear_memos(datapath: AnyDatapath) -> None:
    """Drop every shard's lookup memo (measure scans, not the replay memo)."""
    for shard in datapath.shards:
        shard.megaflows.clear_memo()


def replay_batch_pps(
    datapath: AnyDatapath,
    keys: Sequence[FlowKey],
    batch_size: int = BATCH_SIZE,
    rounds: int = ROUNDS,
) -> float:
    """Best-of-``rounds`` packets/sec for a batched replay of ``keys``."""
    keys = list(keys)
    best = float("inf")
    for _ in range(rounds):
        clear_memos(datapath)
        start = time.perf_counter()
        for offset in range(0, len(keys), batch_size):
            datapath.process_batch(keys[offset : offset + batch_size])
        best = min(best, time.perf_counter() - start)
    return len(keys) / best


def replay_sequential_pps(
    datapath: AnyDatapath, keys: Sequence[FlowKey], rounds: int = ROUNDS
) -> float:
    """Best-of-``rounds`` packets/sec for a per-packet replay of ``keys``."""
    keys = list(keys)
    best = float("inf")
    for _ in range(rounds):
        clear_memos(datapath)
        start = time.perf_counter()
        for key in keys:
            datapath.process(key)
        best = min(best, time.perf_counter() - start)
    return len(keys) / best


def publish(name: str, payload: dict) -> Path:
    """Write ``results/BENCH_<name>.json`` and print the payload.

    Smoke runs (``REPRO_BENCH_SMOKE=1``) publish to
    ``BENCH_<name>.smoke.json`` instead: their reduced budgets would
    otherwise silently overwrite the committed full-size perf trajectory
    every time CI runs.  The ``.smoke.json`` files are gitignored — CI
    artifacts only.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    suffix = ".smoke.json" if SMOKE else ".json"
    path = RESULTS_DIR / f"BENCH_{name}{suffix}"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nBENCH_{name} -> {path}")
    for key, value in sorted(payload.items()):
        print(f"  {key}: {value}")
    return path
