"""Sharded-datapath benchmarks: multi-PMD speedup and per-core isolation.

Two guards, persisted to ``results/BENCH_shard.json``:

* **Speedup** — the §6.2 random replay against a detonated SipSpDp cache
  runs through a 4-shard :class:`ShardedDatapath` at >= 2x the aggregate
  packets/sec of the single-shard case.  RSS spreads the staircase across
  shards, so each PMD scans ~1/4 of the masks — per-core mask dilution is
  where the multi-queue win comes from, and it is exactly what a
  queue-*concentrated* attacker claws back.
* **Isolation** — the ``pmdsweep`` scenario (the experiments-CLI entry
  point) shows (a) a spread attack's aggregate victim floor rising with
  PMD count and (b) a queue-concentrated trace collapsing only the victim
  RSS co-scheduled with it, the other cores' victims holding ~baseline.

Workload builders and replay timers live in :mod:`benchmarks.common`.
Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard.py -q -s
"""

from __future__ import annotations

from common import (
    BATCH_SIZE,
    clear_memos,
    publish,
    replay_batch_pps,
    section62_trace,
    warmed_sharded,
)
from repro.core.usecases import SIPSPDP
from repro.experiments import pmdsweep

SPEEDUP_FLOOR = 2.0
N_SHARDS = 4

_PAYLOAD: dict = {}


def test_spread_replay_speedup():
    """4-shard spread replay >= 2x single-shard aggregate packets/sec."""
    keys = section62_trace()
    # Pin the numpy kernel: this bench guards the *structural* win of
    # per-core mask dilution, and its committed trajectory ratio predates
    # the compiled cffi scan kernel.  Letting "auto" pick cffi would shrink
    # the fixed scan cost both sides share and make the ratio measure the
    # kernel, not the sharding (bench_kernel guards the kernel).
    single = warmed_sharded(1, keys, scan_kernel="numpy")
    sharded = warmed_sharded(N_SHARDS, keys, scan_kernel="numpy")

    masks_total = single.n_masks
    per_shard = [shard.n_masks for shard in sharded.shards]
    assert masks_total >= 1000, f"workload too small: {masks_total} masks"
    # The detonation really is spread: the natural RSS placement of the
    # staircase is uneven (crafted keys cluster in hash space), but every
    # shard must scan well under the full mask list for dilution to pay.
    assert max(per_shard) <= 0.75 * masks_total, per_shard

    # Same verdicts either way before timing anything (aggregate view).
    for datapath in (single, sharded):
        clear_memos(datapath)
    expected = [v.action for v in single.process_batch(keys).verdicts]
    got = [v.action for v in sharded.process_batch(keys).verdicts]
    assert expected == got

    single_pps = replay_batch_pps(single, keys)
    sharded_pps = replay_batch_pps(sharded, keys)
    speedup = sharded_pps / single_pps

    _PAYLOAD.update(
        {
            "workload": "section62-random-replay",
            "use_case": SIPSPDP.name,
            "n_shards": N_SHARDS,
            "batch_size": BATCH_SIZE,
            "masks_total_1_shard": masks_total,
            "masks_per_shard_4_shards": per_shard,
            "single_shard_pps": round(single_pps, 1),
            "sharded_pps": round(sharded_pps, 1),
            "speedup_4_vs_1": round(speedup, 2),
        }
    )
    publish("shard", _PAYLOAD)
    assert speedup >= SPEEDUP_FLOOR, (
        f"4-shard replay only {speedup:.2f}x single shard "
        f"({sharded_pps:.0f} vs {single_pps:.0f} pps)"
    )


def test_queue_isolation_scenario():
    """pmdsweep: spread dilution plus queue-concentrated blast-radius."""
    spread_1 = pmdsweep.run_config(
        1, "spread", duration=24.0, attack_start=6.0, attack_stop=18.0
    )
    spread_4 = pmdsweep.run_config(
        4, "spread", duration=24.0, attack_start=6.0, attack_stop=18.0
    )
    concentrated = pmdsweep.run_config(
        4, 0, duration=24.0, attack_start=6.0, attack_stop=18.0
    )

    # (a) Spread dilution: more PMDs, higher aggregate floor.
    assert sum(spread_4["floors"]) > 2.0 * sum(spread_1["floors"])

    # (b) Concentration: the victim sharing queue 0 with the attack
    # collapses; every other core's victims hold ~baseline.
    queues = concentrated["victim_queues"]
    floors = concentrated["floors"]
    baselines = concentrated["baselines"]
    targeted = [i for i, queue in enumerate(queues) if queue == 0]
    spared = [i for i, queue in enumerate(queues) if queue != 0]
    assert targeted and spared
    for i in targeted:
        assert floors[i] < 0.5 * baselines[i], (i, floors[i], baselines[i])
    for i in spared:
        assert floors[i] >= 0.9 * baselines[i], (i, floors[i], baselines[i])
    # The explosion itself is confined to the targeted shard.
    assert concentrated["masks_per_shard"][0] > 100
    assert all(m <= 5 for m in concentrated["masks_per_shard"][1:])

    _PAYLOAD.update(
        {
            "isolation_victim_queues": queues,
            "isolation_baselines_gbps": [round(b, 3) for b in baselines],
            "isolation_floors_gbps": [round(f, 3) for f in floors],
            "isolation_masks_per_shard": concentrated["masks_per_shard"],
            "spread_floor_gbps_1pmd": round(sum(spread_1["floors"]), 3),
            "spread_floor_gbps_4pmd": round(sum(spread_4["floors"]), 3),
            "spread_masks_per_shard_4pmd": spread_4["masks_per_shard"],
        }
    )
    publish("shard", _PAYLOAD)
