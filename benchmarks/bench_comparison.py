"""Benchmark: §7 classifier robustness under TSE traffic."""

from repro.experiments import comparison


def test_classifier_robustness(benchmark, publish):
    result = benchmark.pedantic(comparison.run, rounds=1, iterations=1)
    publish(result)
    by_name = {row[0]: row for row in result.rows}
    degradation = result.columns.index("degradation_x")
    assert by_name["tss-cache"][degradation] > 100
    for name in ("hierarchical-tries", "hypercuts", "harp"):
        assert by_name[name][degradation] < 1.2
