"""Benchmark: Table 1 — environment profiles and their attack ceilings."""

from repro.experiments import table1


def test_table1_environments(benchmark, publish):
    result = benchmark(table1.run)
    publish(result)
    by_env = {row[0]: row for row in result.rows}
    ceiling = result.columns.index("max_masks")
    assert by_env["OpenStack"][ceiling] == 512     # SipDp only
    assert by_env["Kubernetes"][ceiling] == 8192   # SipSpDp via Calico
