"""Batch-pipeline benchmarks: throughput and insert-cost regression guards.

Replays the §6.2 General-TSE random attack trace against a detonated
SipSpDp cache (the co-located §5 trace has already exploded it past
8,000 masks — the random trace alone saturates at a few hundred masks
under the default strategy, far below the >=1k-mask regime under test)
through the datapath twice: once per packet via :meth:`Datapath.process`,
once in rx-burst batches via :meth:`Datapath.process_batch`.  The batch
pipeline must be verdict-identical and at least 5x faster in packets per
second.  A second guard times megaflow inserts at two scales to prove the
accelerator's amortised append-buffer keeps insert cost linear (the old
per-insert ``np.insert`` made a detonating attack quadratic).

Results are printed and persisted to ``results/BENCH_batch.json`` so the
performance trajectory is tracked from this PR onward::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.classifier.actions import ALLOW
from repro.classifier.flowtable import FlowTable
from repro.classifier.tss import MegaflowEntry, TupleSpaceSearch
from repro.core.general import GeneralTraceGenerator
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPSPDP
from repro.packet.fields import FlowKey, FlowMask
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

# REPRO_BENCH_SMOKE=1 (CI) shrinks the replay and timing rounds — the
# guards still bite (the SipSpDp detonation dominates the mask count),
# they just stop dominating CI wall-clock.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

ATTACK_BUDGET = 400 if SMOKE else 1000  # §6.2's small budget; explodes SipSpDp past 1k masks
BATCH_SIZE = 256
SPEEDUP_FLOOR = 5.0
ROUNDS = 1 if SMOKE else 3


def section62_trace(seed: int = 0) -> list[FlowKey]:
    """The §6.2 random attack trace: uniform keys over the attacked fields."""
    source = GeneralTraceGenerator(
        fields=SIPSPDP.allow_fields, base={"ip_proto": PROTO_TCP}, seed=seed
    )
    return list(source.keys(ATTACK_BUDGET))


def attack_datapath() -> Datapath:
    # Microflows off: attack traffic thrashes the tiny exact-match cache
    # anyway, and the contest under measure is the tuple-space scan.
    return Datapath(SIPSPDP.build_table(), DatapathConfig(microflow_capacity=0))


def warmed(keys: list[FlowKey]) -> Datapath:
    """A datapath with the attack detonated and ``keys`` installed.

    The co-located trace blows the tuple space past 8,000 masks (§5);
    the replay keys then install their own megaflows on top, so replaying
    them exercises pure fast-path scans over an exploded mask list.
    """
    datapath = attack_datapath()
    trace = ColocatedTraceGenerator(
        datapath.flow_table, base={"ip_proto": PROTO_TCP}
    ).generate()
    datapath.process_batch(list(trace.keys))
    datapath.megaflows.shuffle_masks(seed=1)  # steady-state scan order
    datapath.process_batch(keys)
    return datapath


def _replay_sequential(datapath: Datapath, keys: list[FlowKey]) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        datapath.megaflows._memo.clear()  # measure scans, not the replay memo
        start = time.perf_counter()
        for key in keys:
            datapath.process(key)
        best = min(best, time.perf_counter() - start)
    return len(keys) / best


def _replay_batch(datapath: Datapath, keys: list[FlowKey]) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        datapath.megaflows._memo.clear()
        start = time.perf_counter()
        for offset in range(0, len(keys), BATCH_SIZE):
            datapath.process_batch(keys[offset : offset + BATCH_SIZE])
        best = min(best, time.perf_counter() - start)
    return len(keys) / best


def _time_single_mask_inserts(count: int) -> float:
    """Seconds to install ``count`` entries under one (exact-match) mask."""
    cache = TupleSpaceSearch()
    mask = FlowMask(ip_src=0xFFFFFFFF)
    cache.insert(MegaflowEntry(mask=mask, key=FlowKey(ip_src=0).masked(mask), action=ALLOW))
    cache.lookup(FlowKey(ip_src=0))  # warm accelerator: inserts take the incremental path
    start = time.perf_counter()
    for i in range(1, count):
        key = FlowKey(ip_src=i)
        cache.insert(MegaflowEntry(mask=mask, key=key.masked(mask), action=ALLOW))
    elapsed = time.perf_counter() - start
    assert cache.lookup(FlowKey(ip_src=count - 1)).hit
    return elapsed


def _publish(payload: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_batch.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nBENCH_batch -> {path}")
    for key, value in sorted(payload.items()):
        print(f"  {key}: {value}")


def test_batch_replay_speedup():
    """§6.2 attack replay: process_batch >= 5x process, verdict-identical."""
    keys = section62_trace()

    sequential_dp = warmed(keys)
    batch_dp = warmed(keys)
    n_masks = sequential_dp.n_masks
    assert n_masks >= 1000, f"workload too small: {n_masks} masks"

    # Verdict equivalence on the replay pass before timing anything.
    sequential_dp.megaflows._memo.clear()
    batch_dp.megaflows._memo.clear()
    expected = [sequential_dp.process(k) for k in keys]
    got = list(batch_dp.process_batch(keys).verdicts)
    assert [v.action for v in expected] == [v.action for v in got]
    assert [v.masks_inspected for v in expected] == [v.masks_inspected for v in got]
    assert [v.path for v in expected] == [v.path for v in got]

    sequential_pps = _replay_sequential(sequential_dp, keys)
    batch_pps = _replay_batch(batch_dp, keys)
    speedup = batch_pps / sequential_pps

    insert_2500 = _time_single_mask_inserts(2_500)
    insert_10k = _time_single_mask_inserts(10_000)
    insert_ratio = insert_10k / insert_2500

    _publish(
        {
            "workload": "section62-random-replay",
            "use_case": SIPSPDP.name,
            "attack_budget_packets": ATTACK_BUDGET,
            "masks": n_masks,
            "megaflow_entries": sequential_dp.n_megaflows,
            "batch_size": BATCH_SIZE,
            "sequential_pps": round(sequential_pps, 1),
            "batch_pps": round(batch_pps, 1),
            "speedup": round(speedup, 2),
            "insert_2500_seconds": round(insert_2500, 4),
            "insert_10k_seconds": round(insert_10k, 4),
            "insert_ratio_10k_vs_2500": round(insert_ratio, 2),
        }
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"batch replay only {speedup:.1f}x sequential "
        f"({batch_pps:.0f} vs {sequential_pps:.0f} pps at {n_masks} masks)"
    )
    # 4x the entries should cost ~4x the time; quadratic behaviour would be
    # ~16x.  8x leaves headroom for noisy CI boxes while still failing any
    # O(n) work-per-insert regression resoundingly.
    assert insert_ratio < 8.0, (
        f"10k/2.5k single-mask insert time ratio {insert_ratio:.1f} "
        "suggests super-linear accelerator insert cost"
    )


def test_batch_replay_benchmark(benchmark):
    """pytest-benchmark hook for the batch replay (trajectory tracking)."""
    keys = section62_trace()
    datapath = warmed(keys)

    def replay():
        datapath.megaflows._memo.clear()
        total = 0
        for offset in range(0, len(keys), BATCH_SIZE):
            total += len(datapath.process_batch(keys[offset : offset + BATCH_SIZE]))
        return total

    assert benchmark(replay) == len(keys)


def test_upcall_storm_batch_matches_flowtable():
    """Cold-cache batch replay (every packet upcalls) stays transparent."""
    keys = section62_trace(seed=7)[:200]
    datapath = attack_datapath()
    table = FlowTable(rules=list(datapath.flow_table))
    verdicts = datapath.process_batch(keys)
    for key, verdict in zip(keys, verdicts):
        assert verdict.action == table.classify(key)
