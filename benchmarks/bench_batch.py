"""Batch-pipeline benchmarks: throughput and insert-cost regression guards.

Replays the §6.2 General-TSE random attack trace against a detonated
SipSpDp cache (the co-located §5 trace has already exploded it past
8,000 masks — the random trace alone saturates at a few hundred masks
under the default strategy, far below the >=1k-mask regime under test)
through the datapath twice: once per packet via :meth:`Datapath.process`,
once in rx-burst batches via :meth:`Datapath.process_batch`.  The batch
pipeline must be verdict-identical and at least 5x faster in packets per
second.  A second guard times megaflow inserts at two scales to prove the
accelerator's amortised append-buffer keeps insert cost linear (the old
per-insert ``np.insert`` made a detonating attack quadratic).

Workload builders and replay timers live in :mod:`benchmarks.common`
(shared with ``bench_shard`` and ``bench_backend``).  Results are printed
and persisted to ``results/BENCH_batch.json`` so the performance
trajectory is tracked from this PR onward::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch.py -q -s
"""

from __future__ import annotations

import time

from common import (
    ATTACK_BUDGET,
    BATCH_SIZE,
    attack_datapath,
    publish,
    replay_batch_pps,
    replay_sequential_pps,
    section62_trace,
    warmed,
)
from repro.classifier.actions import ALLOW
from repro.classifier.flowtable import FlowTable
from repro.classifier.tss import MegaflowEntry, TupleSpaceSearch
from repro.core.usecases import SIPSPDP
from repro.packet.fields import FlowKey, FlowMask

SPEEDUP_FLOOR = 5.0


def _time_single_mask_inserts(count: int) -> float:
    """Seconds to install ``count`` entries under one (exact-match) mask."""
    cache = TupleSpaceSearch()
    mask = FlowMask(ip_src=0xFFFFFFFF)
    cache.insert(MegaflowEntry(mask=mask, key=FlowKey(ip_src=0).masked(mask), action=ALLOW))
    cache.lookup(FlowKey(ip_src=0))  # warm accelerator: inserts take the incremental path
    start = time.perf_counter()
    for i in range(1, count):
        key = FlowKey(ip_src=i)
        cache.insert(MegaflowEntry(mask=mask, key=key.masked(mask), action=ALLOW))
    elapsed = time.perf_counter() - start
    assert cache.lookup(FlowKey(ip_src=count - 1)).hit
    return elapsed


def test_batch_replay_speedup():
    """§6.2 attack replay: process_batch >= 5x process, verdict-identical."""
    keys = section62_trace()

    sequential_dp = warmed(keys)
    batch_dp = warmed(keys)
    n_masks = sequential_dp.n_masks
    assert n_masks >= 1000, f"workload too small: {n_masks} masks"

    # Verdict equivalence on the replay pass before timing anything.
    sequential_dp.megaflows.clear_memo()
    batch_dp.megaflows.clear_memo()
    expected = [sequential_dp.process(k) for k in keys]
    got = list(batch_dp.process_batch(keys).verdicts)
    assert [v.action for v in expected] == [v.action for v in got]
    assert [v.masks_inspected for v in expected] == [v.masks_inspected for v in got]
    assert [v.path for v in expected] == [v.path for v in got]

    sequential_pps = replay_sequential_pps(sequential_dp, keys)
    batch_pps = replay_batch_pps(batch_dp, keys)
    speedup = batch_pps / sequential_pps

    insert_2500 = _time_single_mask_inserts(2_500)
    insert_10k = _time_single_mask_inserts(10_000)
    insert_ratio = insert_10k / insert_2500

    publish(
        "batch",
        {
            "workload": "section62-random-replay",
            "use_case": SIPSPDP.name,
            "attack_budget_packets": ATTACK_BUDGET,
            "masks": n_masks,
            "megaflow_entries": sequential_dp.n_megaflows,
            "batch_size": BATCH_SIZE,
            "sequential_pps": round(sequential_pps, 1),
            "batch_pps": round(batch_pps, 1),
            "speedup": round(speedup, 2),
            "insert_2500_seconds": round(insert_2500, 4),
            "insert_10k_seconds": round(insert_10k, 4),
            "insert_ratio_10k_vs_2500": round(insert_ratio, 2),
        },
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"batch replay only {speedup:.1f}x sequential "
        f"({batch_pps:.0f} vs {sequential_pps:.0f} pps at {n_masks} masks)"
    )
    # 4x the entries should cost ~4x the time; quadratic behaviour would be
    # ~16x.  8x leaves headroom for noisy CI boxes while still failing any
    # O(n) work-per-insert regression resoundingly.
    assert insert_ratio < 8.0, (
        f"10k/2.5k single-mask insert time ratio {insert_ratio:.1f} "
        "suggests super-linear accelerator insert cost"
    )


def test_batch_replay_benchmark(benchmark):
    """pytest-benchmark hook for the batch replay (trajectory tracking)."""
    keys = section62_trace()
    datapath = warmed(keys)

    def replay():
        datapath.megaflows.clear_memo()
        total = 0
        for offset in range(0, len(keys), BATCH_SIZE):
            total += len(datapath.process_batch(keys[offset : offset + BATCH_SIZE]))
        return total

    assert benchmark(replay) == len(keys)


def test_upcall_storm_batch_matches_flowtable():
    """Cold-cache batch replay (every packet upcalls) stays transparent."""
    keys = section62_trace(seed=7)[:200]
    datapath = attack_datapath()
    table = FlowTable(rules=list(datapath.flow_table))
    verdicts = datapath.process_batch(keys)
    for key, verdict in zip(keys, verdicts):
        assert verdict.action == table.classify(key)
