"""Probe-native cost plane benchmarks: TSS identity + netsim defense guard.

Two guards, persisted to ``results/BENCH_probe.json``:

* **TSS probe-plane identity** — on a live SipSpDp detonation the probe
  currency must collapse to the historical mask accounting for TSS:
  per-packet ``probe_costs`` equal ``max(mask_counts, 1)``,
  ``expected_scan_cost() == max(n_masks, 1)``, and the cost model's
  probe-unit entry points price identically to the mask-count formulas.
  This is the invariant that keeps every Table 1 / Fig 8-9 preset
  byte-identical to the pre-probe-plane model.
* **Netsim defense visibility** — the full hypervisor time series of the
  ``backendsweep`` experiment, one run per backend, under the 8k-mask
  SipSpDp detonation: the grouped (tuplechain) backend's victim floor
  must sit strictly — and substantially — above TSS's, because victim
  budgets are now divided by each backend's *expected scan cost* instead
  of the shared exploded mask count.

``REPRO_BENCH_SMOKE=1`` shortens the simulated window and attack rate
(the staircase still detonates fully; the floors just settle over fewer
ticks) and publishes to ``BENCH_probe.smoke.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_probe.py -q -s
"""

from __future__ import annotations

import pytest

from common import SMOKE, publish, section62_trace, warmed
from repro.experiments.backendsweep import run_netsim_cell
from repro.netsim.cloud import SYNTHETIC_ENV

# The grouped backend's victim must keep at least this much more of its
# throughput than the TSS victim under the identical detonation.
DEFENSE_FLOOR_RATIO = 10.0

NETSIM = dict(
    use_case_name="SipSpDp",
    duration=20.0 if SMOKE else 35.0,
    attack_start=3.0 if SMOKE else 5.0,
    attack_stop=13.0 if SMOKE else 25.0,
    attack_pps=1200.0,
)


def test_tss_probe_plane_is_the_mask_plane():
    """For TSS the probe currency must reproduce mask accounting exactly."""
    keys = section62_trace()
    datapath = warmed(keys, backend="tss")
    cache = datapath.megaflows
    assert cache.probe_unit_cost() == 1.0
    assert cache.expected_scan_cost() == float(max(datapath.n_masks, 1))

    # A live replay (no installs: established flows) and a fresh detonation
    # (installs mid-batch) both report probe costs == max(mask count, 1).
    cache.clear_memo()
    batch = datapath.process_batch(keys)
    assert list(batch.probe_costs) == [float(max(m, 1)) for m in batch.mask_counts]

    fresh = warmed([], backend="tss")
    fresh.megaflows.clear_memo()
    growing = fresh.process_batch(keys)
    assert list(growing.probe_costs) == [float(max(m, 1)) for m in growing.mask_counts]

    # The cost model's probe entry points collapse to the mask formulas.
    model = SYNTHETIC_ENV.cost_model
    for masks in (1, 17, 513, datapath.n_masks):
        assert model.victim_cost_units_probes(float(masks)) == model.victim_cost_units(masks)
        for upcall in (False, True):
            assert model.attack_cost_units_probes(float(masks), upcall) == model.attack_cost_units(
                masks, upcall
            )
    charged = model.attack_units_batch(batch.probe_costs, upcall_count=3)
    legacy = model.attack_units_batch([max(m, 1) for m in batch.mask_counts], upcall_count=3)
    assert charged == pytest.approx(legacy, rel=0, abs=0)


def test_netsim_probe_aware_defense():
    """Grouped victim throughput stays up where the TSS victim starves."""
    cells = {
        name: run_netsim_cell(name, **NETSIM) for name in ("tss", "tuplechain")
    }
    tss, chain = cells["tss"], cells["tuplechain"]

    assert tss["peak_masks"] >= (1000 if SMOKE else 8000), tss["peak_masks"]
    assert chain["peak_masks"] == tss["peak_masks"]  # same detonation installed
    # TSS prices the scan at the mask count; the grouped walk stays bounded.
    assert tss["peak_scan_cost"] == float(tss["peak_masks"])
    assert chain["peak_scan_cost"] < tss["peak_scan_cost"] / 10

    publish(
        "probe",
        {
            "workload": "backendsweep-netsim-sipspdp",
            "attack_pps": NETSIM["attack_pps"],
            "attack_window_s": NETSIM["attack_stop"] - NETSIM["attack_start"],
            "detonation_trace_packets": tss["trace_packets"],
            "masks": tss["peak_masks"],
            "tss_scan_cost_units": tss["peak_scan_cost"],
            "tuplechain_scan_cost_units": round(chain["peak_scan_cost"], 1),
            "victim_baseline_gbps": round(tss["baseline_gbps"], 3),
            "tss_victim_floor_gbps": round(tss["floor_gbps"], 4),
            "tuplechain_victim_floor_gbps": round(chain["floor_gbps"], 4),
            "floor_ratio_tuplechain_vs_tss": round(
                chain["floor_gbps"] / max(tss["floor_gbps"], 1e-9), 1
            ),
        },
    )

    # Strictly above — and by a defense-sized margin, not noise.
    assert chain["floor_gbps"] > tss["floor_gbps"]
    assert chain["floor_gbps"] > DEFENSE_FLOOR_RATIO * tss["floor_gbps"], (
        chain["floor_gbps"],
        tss["floor_gbps"],
    )
    assert chain["floor_gbps"] > 0.2 * chain["baseline_gbps"]
