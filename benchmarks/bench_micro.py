"""Micro-benchmarks: the primitive operations the attack stresses.

These quantify Observation 1 directly on our implementation: TSS lookup
cost versus the number of masks, slow-path megaflow generation, and
adversarial trace crafting.
"""

import pytest

from repro.classifier.slowpath import MegaflowGenerator
from repro.classifier.tss import TupleSpaceSearch
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import DP, SIPDP, SIPSPDP
from repro.packet.builder import PacketBuilder
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP


def populated_cache(use_case) -> tuple[TupleSpaceSearch, list[FlowKey]]:
    table = use_case.build_table()
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    generator = MegaflowGenerator(table)
    cache = TupleSpaceSearch()
    for key in trace.keys:
        cache.insert(generator.generate(key).entry)
    return cache, list(trace.keys)


@pytest.mark.parametrize("use_case", [DP, SIPDP, SIPSPDP], ids=lambda u: u.name)
def test_tss_lookup_scaling(benchmark, use_case):
    """Observation 1: lookup cost grows with the mask count."""
    cache, keys = populated_cache(use_case)
    misses = [FlowKey(ip_proto=PROTO_TCP, ip_src=0x55AA55AA, tp_src=2, tp_dst=2)]
    cache.shuffle_masks(seed=1)

    def fresh_scan():
        # Bypass the memo: a distinct key every call via TTL jitter field.
        cache.clear_memo()
        return cache.lookup(misses[0])

    result = benchmark(fresh_scan)
    assert result.masks_inspected == cache.n_masks or result.hit


def test_slowpath_generation(benchmark):
    table = SIPSPDP.build_table()
    generator = MegaflowGenerator(table)
    key = FlowKey(ip_proto=PROTO_TCP, ip_src=0x01020304, tp_src=7, tp_dst=9)
    result = benchmark(generator.generate, key)
    assert result.entry.covers(key)


def test_trace_generation(benchmark):
    table = SIPSPDP.build_table()

    def craft():
        return ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()

    trace = benchmark.pedantic(craft, rounds=2, iterations=1)
    assert trace.expected_masks == 8209


def test_packet_serialization(benchmark):
    builder = PacketBuilder()
    packet = builder.tcp(ip_src=1, ip_dst=2, tp_src=3, tp_dst=4, payload=b"x" * 64)
    wire = benchmark(packet.to_bytes)
    assert len(wire) == packet.wire_length()


def test_memoised_replay(benchmark):
    """Replayed attack traffic resolves in O(1) between mutations."""
    cache, keys = populated_cache(SIPDP)
    for key in keys:
        cache.lookup(key)  # warm the memo

    def replay():
        total = 0
        for key in keys[:100]:
            total += cache.lookup(key).masks_inspected
        return total

    total = benchmark(replay)
    assert total > 0
