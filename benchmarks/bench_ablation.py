"""Ablation benchmarks for the design choices DESIGN.md calls out.

* chunked-strategy sweep (time/space trade-off realised in a live cache);
* mask scan-order policy (insertion vs hit-sorted);
* microflow cache size under noisy attack traffic;
* the mask-memo quirk (OpenStack) on vs off.
"""

import pytest

from repro.classifier.slowpath import MegaflowGenerator, StrategyConfig
from repro.classifier.tss import TupleSpaceSearch
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import DP, SIPDP
from repro.packet.builder import NoiseConfig, PacketBuilder
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig


@pytest.mark.parametrize("k", [1, 2, 4, 8, 16], ids=lambda k: f"k={k}")
def test_strategy_tradeoff_ablation(benchmark, k):
    """Theorem 4.1 live: lookup work vs entry count as k varies."""
    table = DP.build_table()
    strategy = StrategyConfig(field_chunks={"tp_dst": k})
    generator = MegaflowGenerator(table, strategy)
    cache = TupleSpaceSearch()
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    for key in trace.keys:
        cache.insert(generator.generate(key).entry)
    assert cache.n_masks <= k + 1
    miss = FlowKey(ip_proto=PROTO_TCP, ip_src=0xDEAD, tp_src=1, tp_dst=60000)

    def scan():
        cache.clear_memo()
        return cache.lookup(miss)

    benchmark(scan)


@pytest.mark.parametrize("policy", ["insertion", "hit_sorted"])
def test_scan_order_ablation(benchmark, policy):
    """hit_sorted promotes the victim's hot mask toward the scan front."""
    table = SIPDP.build_table()
    generator = MegaflowGenerator(table)
    cache = TupleSpaceSearch(scan_policy=policy)
    cache.RESORT_INTERVAL = 64
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    for key in trace.keys:
        cache.insert(generator.generate(key).entry)
    victim = FlowKey(ip_proto=PROTO_TCP, ip_src=0x0A000001, tp_src=52000, tp_dst=443)
    cache.insert(generator.generate(victim).entry)
    cache.shuffle_masks(seed=2)

    def victim_lookup():
        cache.clear_memo()
        return cache.lookup(victim)

    result = benchmark(victim_lookup)
    assert result.hit
    if policy == "hit_sorted":
        # After thousands of timed lookups the hot mask has been promoted.
        assert cache.lookup(victim).masks_inspected < 50


@pytest.mark.parametrize("capacity", [16, 256, 4096], ids=lambda c: f"emc={c}")
def test_microflow_size_ablation(benchmark, capacity):
    """Noise traffic thrashes small microflow caches (the §5.2 trick)."""
    table = DP.build_table()
    datapath = Datapath(table, DatapathConfig(microflow_capacity=capacity))
    builder = PacketBuilder(seed=1)
    victim_key = FlowKey(ip_proto=PROTO_TCP, ip_src=3, tp_src=52000, tp_dst=80)
    noise_keys = [
        builder.from_flow_key(
            FlowKey(ip_proto=PROTO_TCP, ip_src=i, tp_src=i, tp_dst=80),
            noise=NoiseConfig(),
        ).flow_key()
        for i in range(512)
    ]
    state = {"i": 0}

    def interleaved():
        datapath.process(noise_keys[state["i"] % len(noise_keys)])
        state["i"] += 1
        return datapath.process(victim_key)

    benchmark(interleaved)
    hit_rate = datapath.microflows.hit_rate
    if capacity >= 4096:
        assert hit_rate > 0.4
    if capacity <= 16:
        assert hit_rate < 0.6


@pytest.mark.parametrize("mask_cache", [False, True], ids=["memo-off", "memo-on"])
def test_mask_memo_ablation(benchmark, mask_cache):
    """The kernel mask memo shields established flows (Fig. 8b model)."""
    table = SIPDP.build_table()
    datapath = Datapath(
        table,
        DatapathConfig(microflow_capacity=0, enable_mask_cache=mask_cache),
    )
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    for key in trace.keys:
        datapath.process(key)
    victim = FlowKey(ip_proto=PROTO_TCP, ip_src=0x0A000001, tp_src=52000, tp_dst=443)
    datapath.process(victim)

    def established_lookup():
        datapath.megaflows.clear_memo()
        return datapath.process(victim)

    verdict = benchmark(established_lookup)
    if mask_cache:
        assert verdict.masks_inspected <= 1
    else:
        assert verdict.masks_inspected >= 1
