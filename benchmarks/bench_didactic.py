"""Benchmark: the Figs. 1-5 worked examples (cache construction)."""

from repro.experiments import didactic


def test_didactic_examples(benchmark, publish):
    result = benchmark(didactic.run)
    publish(result)
    rows = {row[0]: row for row in result.rows}
    assert rows["Fig. 3 (wildcarding)"][2:4] == (3, 4)
    assert rows["Fig. 5 (two fields)"][2:4] == (13, 16)
