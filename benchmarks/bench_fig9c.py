"""Benchmark: Fig. 9c — MFCGuard slow-path CPU vs attack rate."""

from repro.experiments import fig9c


def test_fig9c_cpu_curve(benchmark, publish):
    result = benchmark.pedantic(
        lambda: fig9c.run(simulate_up_to=1000), rounds=1, iterations=1
    )
    publish(result)
    by_rate = {row[0]: row[1] for row in result.rows}
    assert abs(by_rate[1000] - 15.0) < 2.0   # paper: ~15% below 1 kpps
    assert abs(by_rate[10000] - 80.0) < 5.0  # paper: ~80% at 10 kpps
    assert by_rate[50000] <= 250.0           # saturation
