"""Benchmark: Fig. 9b — expected vs measured masks under General TSE."""

from repro.experiments import fig9b


def test_fig9b_expected_vs_measured(benchmark, publish):
    result = benchmark.pedantic(
        lambda: fig9b.run(runs=3, seed=0), rounds=1, iterations=1
    )
    publish(result)
    # Paper's saturation values at 50k packets.
    final = {name: result.column(name)[-1] for name in
             ("Dp_E", "Dp_M", "SipDp_E", "SipDp_M", "SipSpDp_E", "SipSpDp_M")}
    assert abs(final["Dp_E"] - 15.5) < 1.5
    assert abs(final["SipDp_E"] - 121) < 5
    assert abs(final["SipSpDp_E"] - 581) < 10
    for case in ("Dp", "SipDp", "SipSpDp"):
        assert abs(final[f"{case}_M"] - final[f"{case}_E"]) / final[f"{case}_E"] < 0.15
