"""Benchmark: Fig. 8a — three TCP victims under the co-located SipDp attack."""

from repro.experiments import fig8a


def test_fig8a_time_series(benchmark, publish):
    result = benchmark.pedantic(
        lambda: fig8a.run(duration=90.0), rounds=1, iterations=1
    )
    publish(result)
    times = result.column("t_s")
    sums = result.column("victim_sum_gbps")
    baseline = max(v for t, v in zip(times, sums) if t < 30)
    floor = min(v for t, v in zip(times, sums) if 35 <= t < 60)
    assert baseline > 9.0          # paper: ~9.7 Gbps aggregate
    assert floor < 0.55            # paper: below 0.5 Gbps
    # Idle-timeout recovery: still degraded 5 s after the attack stops.
    at_65 = next(v for t, v in zip(times, sums) if 64 <= t < 66)
    assert at_65 < 0.3 * baseline
