"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper: the benchmarked
callable produces the ExperimentResult, and the rows the paper reports are
printed and saved under ``results/`` so ``pytest benchmarks/
--benchmark-only`` leaves the full reproduction on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def publish():
    """Print an ExperimentResult and persist it under results/."""

    def _publish(result):
        text = result.format_table()
        print()
        print(text)
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        result.save(RESULTS_DIR)
        return result

    return _publish
