"""Fleet-settlement benchmarks: vectorised pricing speedup + fleet identity.

Three guards, persisted to ``results/BENCH_cloud.json``:

* **Vectorised settlement speedup** — pricing all 10,000 tenants of one
  detonated host through :func:`repro.netsim.settlement.settle_rates`
  must be at least :data:`SPEEDUP_FLOOR` times faster than the retained
  scalar reference loop (which evaluates the calibrated cost curve per
  victim-core pair, exactly as ``HypervisorHost.tick`` historically did)
  — and produce the float-identical assigned rates.  The tenant count
  stays at 10k even in smoke runs: the guard is the whole point of the
  bench, and one settlement pass is milliseconds either way.
* **Fleet floor identity** — a multi-rack fleet cell (event-driven
  scheduler, rack-wide concatenated settlement) run under
  ``settlement_mode="vector"`` and ``"scalar"`` must record *identical*
  per-tenant rate and floor arrays, and the floor quantiles land in the
  trajectory as deterministic simulation output.
* **Streaming tenant generation** — :class:`repro.netsim.fleet.
  TenantStream` must mint tenant columns fast enough that fleet
  construction never dominates (guarded in tenants/second), holding at
  most one host's block resident — the O(hosts) memory contract of
  million-tenant runs.

``REPRO_BENCH_SMOKE=1`` shrinks the fleet cell and the streamed host
count (never the 10k settlement population) and publishes to the
gitignored ``BENCH_cloud.smoke.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_cloud.py -q -s
"""

from __future__ import annotations

import time

import numpy as np

from common import SMOKE, publish
from repro.experiments.backendsweep import attacker_rules
from repro.experiments.cloudsweep import run_plan
from repro.netsim.cloud import SYNTHETIC_ENV
from repro.netsim.fleet import Fleet, FleetHost, TenantStream

SPEEDUP_FLOOR = 10.0
N_TENANTS = 10_000  # never smoke-shrunk: the >=10x guard is the bench
TIMING_ROUNDS = 3 if SMOKE else 5

FLEET_CELL = dict(
    n_racks=2,
    hosts_per_rack=4 if SMOKE else 10,
    tenants_per_host=200 if SMOKE else 500,
    duration=12.0 if SMOKE else 20.0,
    attack_start=3.0,
    attack_stop=10.0 if SMOKE else 18.0,
    attack_pps=1000.0,
    seed=11,
)

STREAM_HOSTS = 100 if SMOKE else 1000
STREAM_TENANTS_PER_HOST = 1000  # full size: one million tenants streamed

_metrics: dict[str, object] = {}


def _detonated_host(settlement_mode: str = "vector") -> FleetHost:
    """One host with 10k tenants and a live SipDp detonation in its cache."""
    block = TenantStream(0, 0, 0, N_TENANTS).build()
    host = FleetHost(
        "bench",
        SYNTHETIC_ENV,
        block,
        attacker_ip=0x0A3F0001,
        settlement_mode=settlement_mode,
    )
    trace = host.detonation_trace(attacker_rules("SipDp"), label="SipDp")
    host.inject_attack_batch(list(trace.keys), now=0.0)
    return host


def _best_settle_seconds(host: FleetHost, reports, available) -> float:
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        host.settle_tenants(1.0, reports, available)
        best = min(best, time.perf_counter() - start)
    return best


def test_settlement_vector_speedup_and_identity():
    """One array pass over 10k tenants: >=10x the scalar loop, same floats."""
    host = _detonated_host()
    reports, available = host._pre_settle(0.1, 0.1)
    assert host.datapath.n_masks > 100  # the detonation is live

    host.settlement_mode = "vector"
    vector_seconds = _best_settle_seconds(host, reports, available)
    vector_assigned = host.tenants.assigned_gbps.copy()

    host.settlement_mode = "scalar"
    scalar_seconds = _best_settle_seconds(host, reports, available)
    scalar_assigned = host.tenants.assigned_gbps.copy()
    host.close()

    # Float-identical, not approximately equal: the kernel is the same
    # arithmetic in the same order, so the arrays must match bit for bit.
    assert np.array_equal(vector_assigned, scalar_assigned)

    speedup = scalar_seconds / vector_seconds
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorised settlement only {speedup:.1f}x the scalar loop "
        f"({vector_seconds * 1e3:.2f} ms vs {scalar_seconds * 1e3:.2f} ms)"
    )

    _metrics.update(
        {
            "settle_n_tenants": N_TENANTS,
            "settle_vector_seconds": round(vector_seconds, 6),
            "settle_scalar_seconds": round(scalar_seconds, 6),
            "settlement_speedup": round(speedup, 1),
            "settle_tenants_per_sec": round(N_TENANTS / vector_seconds),
        }
    )


def test_fleet_floor_identity():
    """Vector and scalar fleets record identical per-tenant floors."""
    cells = {}
    raw = {}
    for mode in ("vector", "scalar"):
        cells[mode] = run_plan(
            "concentrated", settlement_mode=mode, **FLEET_CELL
        )
        fleet = Fleet(
            SYNTHETIC_ENV,
            n_racks=FLEET_CELL["n_racks"],
            hosts_per_rack=FLEET_CELL["hosts_per_rack"],
            tenants_per_host=FLEET_CELL["tenants_per_host"],
            seed=FLEET_CELL["seed"],
            settlement_mode=mode,
        )
        raw[mode] = fleet.rates()  # construction determinism spot check
        fleet.close()
    assert cells["vector"] == cells["scalar"]
    assert np.array_equal(raw["vector"], raw["scalar"])

    cell = cells["vector"]
    _metrics.update(
        {
            "fleet_hosts": cell["n_hosts"],
            "fleet_tenants": cell["n_tenants"],
            "fleet_baseline_p50_gbps": round(cell["baseline_p50"], 5),
            "fleet_floor_p50_gbps": round(cell["floor_p50"], 5),
            "fleet_floor_p01_gbps": round(cell["floor_p01"], 5),
            "fleet_attacked_floor_p50_gbps": round(cell["attacked_floor_p50"], 5),
        }
    )
    # The detonation must actually bite the attacked host's tenants.
    assert cell["attacked_floor_p50"] < 0.5 * cell["baseline_p50"]


def test_streaming_generation_rate():
    """Seeded tenant streams mint columns at fleet-construction rates."""
    start = time.perf_counter()
    total = 0
    checksum = 0
    for host_index in range(STREAM_HOSTS):
        block = TenantStream(42, 0, host_index, STREAM_TENANTS_PER_HOST).build()
        total += len(block)
        checksum ^= int(block.tp_src[-1])  # touch the columns; keep none
    elapsed = time.perf_counter() - start
    rate = total / elapsed
    assert total == STREAM_HOSTS * STREAM_TENANTS_PER_HOST
    assert rate > 50_000, f"streamed only {rate:.0f} tenants/sec"

    _metrics["stream_hosts"] = STREAM_HOSTS
    _metrics["stream_total_tenants"] = total
    _metrics["stream_tenants_per_sec"] = round(rate)
    _metrics["stream_checksum"] = checksum

    # Last test in the module: publish everything the guards collected.
    # (Running a subset publishes a partial payload, which the trajectory
    # gate rejects as missing metrics — full-file runs only.)
    publish("cloud", dict(_metrics, workload="fleet-settlement-sipdp"))
