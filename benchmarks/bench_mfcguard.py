"""Benchmark: §8 MFCGuard on/off victim recovery."""

from repro.experiments import mfcguard


def test_mfcguard_recovery(benchmark, publish):
    result = benchmark.pedantic(
        lambda: mfcguard.run(duration=60.0), rounds=1, iterations=1
    )
    publish(result)
    times = result.column("t_s")
    late = [row for row, t in zip(result.rows, times) if t > 45]
    guard_rate = max(row[3] for row in late)
    noguard_rate = max(row[1] for row in late)
    assert guard_rate > 5 * noguard_rate  # service restored under the guard
    assert min(row[4] for row in late) < 150  # masks clipped back
