"""Benchmark: Theorem 4.1 trade-off sweep (ablation over k)."""

from repro.experiments import theorem41


def test_theorem41_tradeoff(benchmark, publish):
    result = benchmark.pedantic(
        lambda: theorem41.run(width=16, constructive_width=8), rounds=1, iterations=1
    )
    publish(result)
    for row in result.rows:
        _k, bound, construct, _bm, _be = row
        assert construct >= bound
