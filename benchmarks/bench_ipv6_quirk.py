"""Benchmark: the §5.4 IPv6 exact-match memory blow-up."""

from repro.experiments import ipv6_quirk


def test_ipv6_memory_blowup(benchmark, publish):
    result = benchmark.pedantic(
        lambda: ipv6_quirk.run(n_packets=20000), rounds=1, iterations=1
    )
    publish(result)
    rows = {row[0]: row for row in result.rows}
    exact = rows["ovs-default (v6 exact)"]
    wild = rows["bit-wildcarding"]
    assert exact[1] < 40            # masks stay tiny...
    assert exact[2] > 15000         # ...entries explode
    assert exact[3] > 5 * wild[3]   # memory blow-up vs wildcarding
