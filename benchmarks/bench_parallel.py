"""Parallel-executor benchmarks: verdict equivalence and wall-clock scaling.

Two guards, persisted to ``results/BENCH_parallel.json``:

* **Equivalence** — on the detonated spread replay (the §6.2 random trace
  against a SipSpDp cache exploded past 8,000 masks, dispatched with the
  even-spread :func:`~repro.switch.rss.uniform_key_hash`), the ``thread``
  and ``process`` executors are verdict-for-verdict identical to
  ``serial``: same actions/paths/probe units per packet, same
  ``mask_counts``/``probe_costs``/``shard_ids``, same installed
  entry/mask unions, same per-shard statistics and probe accounting.
  This always runs — it is the parallel ≡ serial invariant.
* **Speedup** — the ``process`` executor with 4 workers replays the trace
  at >= 2x the serial executor's wall-clock packets/sec.  Four worker
  processes each scan ~1/4 of the staircase concurrently; serial scans
  the same shards back to back.  The guard needs one real core per
  worker: with fewer visible CPUs than workers the 2x floor measures the
  host, not the executor (2 cores cap the ceiling at 2x minus IPC; 1
  core puts it below 1x), so the measurement still runs and is
  published — with the host's CPU count — but the assertion is skipped.
* **Transport** — the ``shm`` shared-memory data plane must not lose to
  the pickled ``pipe`` transport (``shm_over_pipe >= 1``).  This guard is
  host-independent — both variants pay the same scan work on however many
  cores exist, and shm exists precisely to shed the pickle/IPC tax — so
  it asserts even on 1 CPU.

The ``thread`` executor is measured and published but not floor-guarded:
only the numpy scan kernels release the GIL, so its win is workload- and
interpreter-dependent.

Workload builders and replay timers live in :mod:`benchmarks.common`.
Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -q -s
"""

from __future__ import annotations

import os

import pytest

from common import (
    BATCH_SIZE,
    clear_memos,
    publish,
    replay_batch_pps,
    section62_trace,
    warmed_sharded,
)
from repro.core.usecases import SIPSPDP
from repro.switch.rss import uniform_key_hash

N_SHARDS = 4
N_WORKERS = 4
SPEEDUP_FLOOR = 2.0

try:
    EFFECTIVE_CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    EFFECTIVE_CPUS = os.cpu_count() or 1

_PAYLOAD: dict = {}
_CACHE: dict = {}


# Variant name -> (executor strategy, process transport).
VARIANTS = {
    "serial": ("serial", "shm"),
    "thread": ("thread", "shm"),
    "process": ("process", "shm"),
    "process-pipe": ("process", "pipe"),
}


def _warmed(variant: str):
    """One detonated 4-shard datapath per variant, shared by the tests."""
    if variant not in _CACHE:
        executor, transport = VARIANTS[variant]
        _CACHE[variant] = warmed_sharded(
            N_SHARDS,
            _keys(),
            executor=executor,
            executor_workers=N_WORKERS,
            executor_transport=transport,
            hash_fn=uniform_key_hash,
        )
    return _CACHE[variant]


def _keys():
    if "keys" not in _CACHE:
        _CACHE["keys"] = section62_trace()
    return _CACHE["keys"]


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    for value in _CACHE.values():
        close = getattr(value, "close", None)
        if close is not None:
            close()


def test_parallel_verdict_equivalence():
    """thread/process replay the detonated spread trace verdict-identically."""
    keys = _keys()
    serial = _warmed("serial")
    assert serial.n_masks >= 1000, f"workload too small: {serial.n_masks} masks"
    # The uniform dispatch really spreads the staircase: no shard may hold
    # more than ~1.5x its fair share, or the scaling measurement below is
    # bottlenecked by one worker instead of the executor.
    fair = serial.n_mask_tables / N_SHARDS
    per_shard = [shard.n_masks for shard in serial.shards]
    assert max(per_shard) <= 1.5 * fair, per_shard

    clear_memos(serial)
    expected = serial.process_batch(keys)
    reference_entries = {(e.mask.values, e.key) for e in serial.entries()}

    for executor in ("thread", "process", "process-pipe"):
        datapath = _warmed(executor)
        # Identical detonation state first (installed unions, per shard).
        assert [s.n_masks for s in datapath.shards] == per_shard, executor
        assert {(e.mask.values, e.key) for e in datapath.entries()} == reference_entries
        clear_memos(datapath)
        got = datapath.process_batch(keys)
        assert got.shard_ids == expected.shard_ids, executor
        assert got.mask_counts == expected.mask_counts, executor
        assert got.probe_costs == expected.probe_costs, executor
        for i, (a, b) in enumerate(zip(expected.verdicts, got.verdicts)):
            assert a.action == b.action, (executor, i)
            assert a.path == b.path, (executor, i)
            assert a.masks_inspected == b.masks_inspected, (executor, i)
            assert a.rules_examined == b.rules_examined, (executor, i)
        # Statistics and probe accounting agree shard by shard.
        for shard_id, (ref_shard, got_shard) in enumerate(
            zip(serial.shards, datapath.shards)
        ):
            assert got_shard.stats == ref_shard.stats, (executor, shard_id)
            assert got_shard.megaflows.stats_scans == ref_shard.megaflows.stats_scans
            assert (
                got_shard.megaflows.stats_scan_probes
                == ref_shard.megaflows.stats_scan_probes
            )

    _PAYLOAD.update(
        {
            "workload": "section62-random-replay",
            "use_case": SIPSPDP.name,
            "dispatch": "uniform_key_hash",
            "n_shards": N_SHARDS,
            "n_workers": N_WORKERS,
            "batch_size": BATCH_SIZE,
            "cpus": EFFECTIVE_CPUS,
            "masks_per_shard": per_shard,
            "equivalent_executors": ["serial", "thread", "process", "process-pipe"],
        }
    )
    publish("parallel", _PAYLOAD)


def test_process_executor_speedup():
    """4 process workers replay the spread detonation >= 2x serial wall-clock."""
    keys = _keys()
    serial_pps = replay_batch_pps(_warmed("serial"), keys)
    thread_pps = replay_batch_pps(_warmed("thread"), keys)
    process_pps = replay_batch_pps(_warmed("process"), keys)
    pipe_pps = replay_batch_pps(_warmed("process-pipe"), keys)

    _PAYLOAD.update(
        {
            "serial_pps": round(serial_pps, 1),
            "thread_pps": round(thread_pps, 1),
            "process_pps": round(process_pps, 1),
            "process_pipe_pps": round(pipe_pps, 1),
            "speedup_thread_vs_serial": round(thread_pps / serial_pps, 2),
            "speedup_process_vs_serial": round(process_pps / serial_pps, 2),
            "shm_over_pipe": round(process_pps / pipe_pps, 2),
        }
    )
    publish("parallel", _PAYLOAD)

    # Transport guard: shedding the pickle tax must never cost throughput.
    # Host-independent (both variants do the same scan work), so no skip.
    assert process_pps >= pipe_pps, (
        f"shm transport slower than pipe: {process_pps:.0f} vs {pipe_pps:.0f} pps "
        f"({process_pps / pipe_pps:.2f}x)"
    )

    if EFFECTIVE_CPUS < N_WORKERS:
        # A 4-worker 2x win needs 4 real cores: on 2 cores the theoretical
        # ceiling is 2x minus IPC overhead, and on 1 it is below 1x — the
        # measurement is still published (with the cpu count) but the
        # floor would only measure the host, not the executor.
        pytest.skip(
            f"only {EFFECTIVE_CPUS} CPU(s) visible, guard needs {N_WORKERS} "
            "for the 2x floor; equivalence was still verified and the "
            "measurement published"
        )
    assert process_pps >= SPEEDUP_FLOOR * serial_pps, (
        f"4-worker process replay only {process_pps / serial_pps:.2f}x serial "
        f"({process_pps:.0f} vs {serial_pps:.0f} pps)"
    )
