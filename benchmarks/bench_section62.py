"""Benchmark: the §6.2 General-TSE budget table."""

from repro.experiments import section62


def test_section62_budgets(benchmark, publish):
    result = benchmark.pedantic(
        lambda: section62.run(runs=3, seed=0), rounds=1, iterations=1
    )
    publish(result)
    # At 50k packets, SipDp reaches ~121 masks -> paper quotes 12% GRO OFF.
    # Note the paper's own §6.2 (12% at ~122 masks) and §5.4 (10% at 260)
    # disagree with any smooth monotone curve; our fit interpolates between
    # the §5.4 anchors, so the shape claim is "well below Dp's ~52%, above
    # SipSpDp's ~1%".
    for row in result.rows:
        if row[0] == 50000 and row[1] == "SipDp":
            assert abs(row[2] - 121) / 121 < 0.15
            gro_off = row[result.columns.index("gro_off_pct")]
            assert 6.0 < gro_off < 26.0
