"""Setup shim: enables legacy editable installs on offline hosts without the
``wheel`` package (the PEP 660 path needs bdist_wheel)."""
from setuptools import setup

setup()
