"""HyperCuts: a multi-dimensional decision-tree classifier (§7, [10]).

Each internal node cuts the search space along one or two dimensions into
equal-width intervals; rules are replicated into every child cell they
intersect; leaves hold small rule buckets scanned linearly.  Lookup walks
from the root computing the child cell from the packet's field values —
``O(depth + binth)`` work, independent of prior traffic, which is why the
paper lists HyperCuts among the classifiers "not vulnerable to the TSE
attack".

Rules must be prefix-compatible (each constrained field an MSB prefix), so
they map to axis-aligned ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classifier.actions import DENY
from repro.classifier.base import ClassifierResult, PacketClassifier
from repro.classifier.rule import FlowRule
from repro.classifier.trie import prefix_length
from repro.exceptions import ClassifierError
from repro.packet.fields import FIELD_ORDER, FIELDS, FlowKey

__all__ = ["HyperCutsClassifier"]


@dataclass(frozen=True)
class _RuleBox:
    """A rule as an axis-aligned box: per-dimension [lo, hi] ranges."""

    ranges: tuple[tuple[int, int], ...]
    order: tuple[int, int]  # (-priority, sequence)
    rule: FlowRule

    def intersects(self, region: tuple[tuple[int, int], ...]) -> bool:
        return all(lo <= rhi and hi >= rlo for (lo, hi), (rlo, rhi) in zip(self.ranges, region))

    def contains_point(self, point: tuple[int, ...]) -> bool:
        return all(lo <= v <= hi for (lo, hi), v in zip(self.ranges, point))


class _Node:
    __slots__ = ("dim", "n_cuts", "lo", "width_per_cut", "children", "bucket")

    def __init__(self) -> None:
        self.dim: int | None = None
        self.n_cuts = 0
        self.lo = 0
        self.width_per_cut = 0
        self.children: list["_Node | None"] = []
        self.bucket: list[_RuleBox] | None = None


class HyperCutsClassifier(PacketClassifier):
    """The HyperCuts decision tree.

    Args:
        rules: rule list (priority + insertion order honoured).
        binth: maximum bucket size before a node is cut further.
        max_cuts: maximum children per node.
        fields: dimension order (defaults to fields used by the rules).
    """

    name = "hypercuts"

    def __init__(
        self,
        rules: list[FlowRule],
        binth: int = 8,
        max_cuts: int = 16,
        fields: tuple[str, ...] | None = None,
    ):
        if binth < 1:
            raise ClassifierError(f"binth must be >= 1, got {binth}")
        if max_cuts < 2:
            raise ClassifierError(f"max_cuts must be >= 2, got {max_cuts}")
        if fields is None:
            used = {f for rule in rules for f in rule.match.fields}
            fields = tuple(name for name in FIELD_ORDER if name in used)
        self.fields = fields
        self.binth = binth
        self.max_cuts = max_cuts
        self._widths = [FIELDS[name].width for name in fields]
        boxes = [self._box(rule, seq) for seq, rule in enumerate(rules)]
        region = tuple((0, (1 << w) - 1) for w in self._widths)
        self._node_count = 0
        self._root = self._build(boxes, region, depth=0)

    def _box(self, rule: FlowRule, sequence: int) -> _RuleBox:
        ranges = []
        for name, width in zip(self.fields, self._widths):
            constraint = rule.match.constraint(name)
            if constraint is None:
                ranges.append((0, (1 << width) - 1))
            else:
                value, mask = constraint
                plen = prefix_length(mask, width)
                span = 1 << (width - plen)
                ranges.append((value, value + span - 1))
        return _RuleBox(ranges=tuple(ranges), order=(-rule.priority, sequence), rule=rule)

    # -- construction -----------------------------------------------------------
    def _build(
        self, boxes: list[_RuleBox], region: tuple[tuple[int, int], ...], depth: int
    ) -> _Node:
        node = _Node()
        self._node_count += 1
        if len(boxes) <= self.binth or depth >= 24 or not self.fields:
            node.bucket = sorted(boxes, key=lambda b: b.order)
            return node

        dim = self._pick_dimension(boxes, region)
        if dim is None:
            node.bucket = sorted(boxes, key=lambda b: b.order)
            return node

        lo, hi = region[dim]
        span = hi - lo + 1
        n_cuts = min(self.max_cuts, span)
        # Round down to a power of two so child indexing is a shift.
        n_cuts = 1 << (n_cuts.bit_length() - 1)
        width_per_cut = span // n_cuts

        node.dim = dim
        node.n_cuts = n_cuts
        node.lo = lo
        node.width_per_cut = width_per_cut
        node.children = []
        progress = False
        for index in range(n_cuts):
            child_lo = lo + index * width_per_cut
            child_hi = child_lo + width_per_cut - 1
            child_region = tuple(
                (child_lo, child_hi) if d == dim else r for d, r in enumerate(region)
            )
            child_boxes = [box for box in boxes if box.intersects(child_region)]
            if len(child_boxes) < len(boxes):
                progress = True
            node.children.append((child_boxes, child_region))  # type: ignore[arg-type]
        if not progress:
            node.dim = None
            node.children = []
            node.bucket = sorted(boxes, key=lambda b: b.order)
            return node
        node.children = [
            self._build(child_boxes, child_region, depth + 1)
            for child_boxes, child_region in node.children  # type: ignore[misc]
        ]
        return node

    def _pick_dimension(
        self, boxes: list[_RuleBox], region: tuple[tuple[int, int], ...]
    ) -> int | None:
        """The dimension with the most distinct range projections."""
        best_dim: int | None = None
        best_distinct = 1
        for dim, (lo, hi) in enumerate(region):
            if hi == lo:
                continue
            distinct = len({box.ranges[dim] for box in boxes})
            if distinct > best_distinct:
                best_distinct = distinct
                best_dim = dim
        return best_dim

    # -- lookup ------------------------------------------------------------------
    def classify(self, key: FlowKey) -> ClassifierResult:
        point = tuple(key[name] for name in self.fields)
        node = self._root
        cost = 0
        while node.bucket is None:
            cost += 1
            index = (point[node.dim] - node.lo) // node.width_per_cut  # type: ignore[index]
            index = min(index, node.n_cuts - 1)
            node = node.children[index]  # type: ignore[assignment]
        best: _RuleBox | None = None
        for box in node.bucket:
            cost += 1
            if box.contains_point(point):
                best = box
                break  # bucket is priority-sorted
        if best is None:
            return ClassifierResult(action=DENY, cost=cost)
        return ClassifierResult(action=best.rule.action, cost=cost, rule_name=best.rule.name)

    def memory_units(self) -> int:
        """Tree nodes built (replication included via bucket sizes)."""
        return self._node_count
