"""Common interface for the packet classifiers compared in §7.

Every classifier in this library — the TSS-cached datapath and the
"long-term mitigation" alternatives (hierarchical tries, HyperCuts, HaRP,
linear search) — implements :class:`PacketClassifier`: classify a flow key
and report how much work the lookup did, in classifier-specific *cost
units* (mask tables probed, trie nodes visited, tree depth plus bucket
scans, hash probes).  The robustness comparison benchmarks plot those costs
under TSE attack traffic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.classifier.actions import Action
from repro.packet.fields import FlowKey

__all__ = ["ClassifierResult", "PacketClassifier"]


@dataclass(frozen=True)
class ClassifierResult:
    """Outcome of one classification.

    Attributes:
        action: the decision (DENY when nothing matched).
        cost: lookup work in the classifier's own units; comparable across
            packets for one classifier, not across classifiers.
        rule_name: name of the matched rule ("" on miss).
    """

    action: Action
    cost: int
    rule_name: str = ""


class PacketClassifier(abc.ABC):
    """Abstract classifier over an ordered rule list."""

    name: str = "classifier"

    @abc.abstractmethod
    def classify(self, key: FlowKey) -> ClassifierResult:
        """Classify ``key``, reporting the decision and the lookup cost."""

    def action_for(self, key: FlowKey) -> Action:
        """Convenience: just the action."""
        return self.classify(key).action

    @abc.abstractmethod
    def memory_units(self) -> int:
        """Rough structure size (nodes/entries) for space comparisons."""
