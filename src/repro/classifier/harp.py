"""HaRP: hashing round-down prefixes (§7, [58]) — simplified two-stage form.

HaRP hashes rule prefixes after rounding them *down* to a small set of
"tread" lengths, so a lookup probes one hash bucket per tread instead of
walking a trie.  We implement the single-field LPM stage over a designated
primary field (treads every ``stride`` bits); each bucket holds the rules
whose rounded prefix lands there, and rules that do not constrain the
primary field live in an always-scanned residual list.

Lookup cost = number of treads probed + rules checked in the hit buckets +
the residual list — all functions of the *rule set*, not of past traffic,
which is what makes the scheme TSE-resistant and worth comparing in §7.
"""

from __future__ import annotations

from collections import defaultdict

from repro.classifier.actions import DENY
from repro.classifier.base import ClassifierResult, PacketClassifier
from repro.classifier.rule import FlowRule
from repro.classifier.trie import prefix_length
from repro.exceptions import ClassifierError
from repro.packet.fields import FIELD_ORDER, FIELDS, FlowKey

__all__ = ["HarpClassifier"]


class HarpClassifier(PacketClassifier):
    """Hash round-down prefixes over a primary field.

    Args:
        rules: rule list (priorities honoured).
        primary_field: the field whose prefixes are hashed; defaults to the
            most-constrained field across the rule set.
        stride: tread spacing in bits (treads at 0, stride, 2·stride, …).
    """

    name = "harp"

    def __init__(
        self,
        rules: list[FlowRule],
        primary_field: str | None = None,
        stride: int = 8,
    ):
        if stride < 1:
            raise ClassifierError(f"stride must be >= 1, got {stride}")
        if primary_field is None:
            counts: dict[str, int] = defaultdict(int)
            for rule in rules:
                for name in rule.match.fields:
                    counts[name] += 1
            primary_field = max(
                (name for name in FIELD_ORDER if name in counts),
                key=lambda name: counts[name],
                default="",
            )
        if primary_field and primary_field not in FIELDS:
            raise ClassifierError(f"unknown primary field {primary_field!r}")
        self.primary_field = primary_field
        self.stride = stride
        self._width = FIELDS[primary_field].width if primary_field else 0
        self.treads = (
            sorted({min(t, self._width) for t in range(0, self._width + stride, stride)})
            if primary_field
            else [0]
        )
        # tread length -> rounded prefix value -> sorted rule entries
        self._buckets: dict[int, dict[int, list[tuple[int, int, FlowRule]]]] = {
            tread: {} for tread in self.treads
        }
        self._residual: list[tuple[int, int, FlowRule]] = []
        for sequence, rule in enumerate(rules):
            self._insert(rule, sequence)

    def _insert(self, rule: FlowRule, sequence: int) -> None:
        entry = (-rule.priority, sequence, rule)
        constraint = rule.match.constraint(self.primary_field) if self.primary_field else None
        if constraint is None:
            self._residual.append(entry)
            self._residual.sort()
            return
        value, mask = constraint
        plen = prefix_length(mask, self._width)
        # Round down to the nearest tread <= plen.
        tread = max(t for t in self.treads if t <= plen)
        rounded = value & (((1 << tread) - 1) << (self._width - tread) if tread else 0)
        bucket = self._buckets[tread].setdefault(rounded, [])
        bucket.append(entry)
        bucket.sort()

    def classify(self, key: FlowKey) -> ClassifierResult:
        cost = 0
        best: tuple[int, int, FlowRule] | None = None
        if self.primary_field:
            value = key[self.primary_field]
            for tread in self.treads:
                cost += 1  # one hash probe per tread
                rounded = value & (((1 << tread) - 1) << (self._width - tread) if tread else 0)
                for entry in self._buckets[tread].get(rounded, ()):
                    cost += 1
                    if entry[2].matches(key):
                        if best is None or entry < best:
                            best = entry
                        break  # bucket is priority-sorted
        for entry in self._residual:
            cost += 1
            if entry[2].matches(key):
                if best is None or entry < best:
                    best = entry
                break
        if best is None:
            return ClassifierResult(action=DENY, cost=cost)
        _nprio, _seq, rule = best
        return ClassifierResult(action=rule.action, cost=cost, rule_name=rule.name)

    def memory_units(self) -> int:
        """Stored rule references across buckets plus the residual list."""
        stored = sum(
            len(bucket) for table in self._buckets.values() for bucket in table.values()
        )
        return stored + len(self._residual)
