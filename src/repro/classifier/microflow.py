"""The exact-match microflow cache (§2.2).

A per-transport-connection LRU store where lookup happens over *all* header
fields.  It is deliberately small ("a couple of hundred entries") and serves
as short-term memory in front of the megaflow cache; the paper's attack
traces add noise to unimportant header fields precisely to thrash it, so the
victim's packets fall through to the (exploded) megaflow path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.classifier.tss import MegaflowEntry
from repro.exceptions import ClassifierError
from repro.packet.fields import FlowKey

__all__ = ["MicroflowCache"]


class MicroflowCache:
    """Exact-match LRU cache mapping full flow keys to megaflow entries.

    Args:
        capacity: maximum number of microflows (OVS defaults to a few
            hundred; 256 here).
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ClassifierError(f"microflow capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[FlowKey, MegaflowEntry] = OrderedDict()
        self.stats_hits = 0
        self.stats_misses = 0
        self.stats_evictions = 0

    def lookup(self, key: FlowKey) -> MegaflowEntry | None:
        """Exact-match probe; refreshes LRU position on hit.

        A hit whose underlying megaflow was removed (e.g. by MFCGuard or the
        revalidator) is treated as a miss and dropped, mirroring how OVS
        invalidates microflows pointing at dead megaflows.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats_misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats_hits += 1
        return entry

    def insert(self, key: FlowKey, entry: MegaflowEntry) -> None:
        """Install a microflow, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats_evictions += 1

    def invalidate(self, entry: MegaflowEntry) -> int:
        """Drop every microflow pointing at ``entry``; return the count."""
        stale = [key for key, cached in self._entries.items() if cached is entry]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def invalidate_many(self, entries: Iterable[MegaflowEntry]) -> int:
        """Drop microflows pointing at any of ``entries`` in one pass.

        A revalidator sweep can evict hundreds of megaflows at once;
        calling :meth:`invalidate` per victim rescans this cache per
        victim, while one identity-set sweep is linear in the cache size.
        """
        victims = {id(entry) for entry in entries}
        if not victims:
            return 0
        stale = [key for key, cached in self._entries.items() if id(cached) in victims]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def flush(self) -> None:
        """Drop everything."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from this cache (0 when unused)."""
        total = self.stats_hits + self.stats_misses
        return self.stats_hits / total if total else 0.0

    def __repr__(self) -> str:
        return f"MicroflowCache({len(self._entries)}/{self.capacity} entries)"
