"""Packet classification substrates: flow tables, TSS cache, alternatives."""

from repro.classifier.actions import ALLOW, DENY, Action, ActionKind
from repro.classifier.base import ClassifierResult, PacketClassifier
from repro.classifier.flowtable import FlowTable
from repro.classifier.harp import HarpClassifier
from repro.classifier.hypercuts import HyperCutsClassifier
from repro.classifier.linear import LinearSearchClassifier
from repro.classifier.trie import HierarchicalTrieClassifier, prefix_length
from repro.classifier.microflow import MicroflowCache
from repro.classifier.rule import FlowRule, Match
from repro.classifier.slowpath import (
    EXACT_MATCH,
    OVS_DEFAULT,
    WILDCARDING,
    MegaflowGenerator,
    SlowPathResult,
    StrategyConfig,
)
from repro.classifier.tss import (
    ENTRY_BYTES,
    MASK_BYTES,
    BatchLookupResult,
    MegaflowEntry,
    TssLookupResult,
    TupleSpaceSearch,
)

__all__ = [
    "Action",
    "ActionKind",
    "ALLOW",
    "DENY",
    "Match",
    "FlowRule",
    "FlowTable",
    "TupleSpaceSearch",
    "MegaflowEntry",
    "TssLookupResult",
    "BatchLookupResult",
    "ENTRY_BYTES",
    "MASK_BYTES",
    "MicroflowCache",
    "MegaflowGenerator",
    "SlowPathResult",
    "StrategyConfig",
    "WILDCARDING",
    "EXACT_MATCH",
    "OVS_DEFAULT",
    "PacketClassifier",
    "ClassifierResult",
    "LinearSearchClassifier",
    "HierarchicalTrieClassifier",
    "HyperCutsClassifier",
    "HarpClassifier",
    "prefix_length",
]
