"""Packet classification substrates: flow tables, megaflow backends, alternatives.

Two registries live here:

* **Megaflow backends** — implementations of the
  :class:`~repro.classifier.backend.MegaflowBackend` protocol that can
  serve as a datapath's level-3 cache
  (``DatapathConfig(megaflow_backend=...)``): ``"tss"`` (the paper's Tuple
  Space Search) and ``"tuplechain"`` (grouped/chained lookup à la
  TupleChain, arXiv:2408.04390).  Extend with
  :func:`register_megaflow_backend`.
* **§7 comparison classifiers** — :func:`section7_registry` maps the
  comparison lineup's names to factories over a rule list: one cached
  datapath per *currently registered* megaflow backend, plus the
  traffic-independent alternatives (linear search, hierarchical tries,
  HyperCuts, HaRP).  :func:`section7_classifiers` builds the full
  lineup; the ``comparison`` experiment and
  ``examples/classifier_comparison.py`` consume it.
"""

from typing import Callable, Sequence

from repro.classifier.actions import ALLOW, DENY, Action, ActionKind
from repro.classifier.backend import (
    ENTRY_BYTES,
    MASK_BYTES,
    BatchLookupResult,
    LookupResult,
    MegaflowBackend,
    MegaflowEntry,
    MegaflowStore,
    TssLookupResult,
    make_megaflow_backend,
    megaflow_backend_names,
    register_megaflow_backend,
)
from repro.classifier.base import ClassifierResult, PacketClassifier
from repro.classifier.flowtable import FlowTable
from repro.classifier.harp import HarpClassifier
from repro.classifier.hypercuts import HyperCutsClassifier
from repro.classifier.linear import LinearSearchClassifier
from repro.classifier.trie import HierarchicalTrieClassifier, prefix_length
from repro.classifier.microflow import MicroflowCache
from repro.classifier.rule import FlowRule, Match
from repro.classifier.slowpath import (
    EXACT_MATCH,
    OVS_DEFAULT,
    WILDCARDING,
    MegaflowGenerator,
    SlowPathResult,
    StrategyConfig,
)
from repro.classifier.tss import TupleSpaceSearch
from repro.classifier.tuplechain import TupleChainSearch

__all__ = [
    "Action",
    "ActionKind",
    "ALLOW",
    "DENY",
    "Match",
    "FlowRule",
    "FlowTable",
    "MegaflowBackend",
    "MegaflowStore",
    "TupleSpaceSearch",
    "TupleChainSearch",
    "MegaflowEntry",
    "TssLookupResult",
    "LookupResult",
    "BatchLookupResult",
    "ENTRY_BYTES",
    "MASK_BYTES",
    "make_megaflow_backend",
    "megaflow_backend_names",
    "register_megaflow_backend",
    "MicroflowCache",
    "MegaflowGenerator",
    "SlowPathResult",
    "StrategyConfig",
    "WILDCARDING",
    "EXACT_MATCH",
    "OVS_DEFAULT",
    "PacketClassifier",
    "ClassifierResult",
    "LinearSearchClassifier",
    "HierarchicalTrieClassifier",
    "HyperCutsClassifier",
    "HarpClassifier",
    "prefix_length",
    "section7_registry",
    "section7_classifiers",
]


def _cached(backend: str) -> Callable[[list], PacketClassifier]:
    def build(rules: list) -> PacketClassifier:
        # Imported lazily: the adapter pulls in the switch layer, which
        # imports back into this package at module-import time.
        from repro.classifier.adapter import TssCachedClassifier

        return TssCachedClassifier(rules, backend=backend)

    return build


def section7_registry() -> dict[str, Callable[[list], PacketClassifier]]:
    """The §7 comparison lineup: classifier name -> factory over a rule list.

    Built fresh on every call so a megaflow backend registered *after*
    import (the documented extension point) still joins the lineup: one
    ``"<backend>-cache"`` datapath per registered backend, then the
    traffic-independent long-term-mitigation alternatives.
    """
    lineup: dict[str, Callable[[list], PacketClassifier]] = {
        f"{name}-cache": _cached(name) for name in megaflow_backend_names()
    }
    lineup.update(
        {
            "linear": LinearSearchClassifier,
            "hierarchical-tries": HierarchicalTrieClassifier,
            "hypercuts": HyperCutsClassifier,
            "harp": HarpClassifier,
        }
    )
    return lineup


def section7_classifiers(rules: list, names: Sequence[str] | None = None) -> tuple[PacketClassifier, ...]:
    """Build the §7 comparison lineup over ``rules`` (all names by default)."""
    registry = section7_registry()
    selected = names if names is not None else tuple(registry)
    return tuple(registry[name](list(rules)) for name in selected)
