"""TupleChain-style grouped megaflow backend: chained lookup over mask groups.

The TSE attack is an attack on one algorithm: the O(|masks|) sequential
scan of Tuple Space Search.  TupleChain (arXiv:2408.04390) observes that
the masks a real tuple space accumulates are far from arbitrary — they
cluster into *groups* of compatible masks (same constrained fields,
different prefix depths), and within a group lookups can be *chained*:
instead of probing every mask's hash table, walk a shared structure in
which each step hashes the packet under one more refinement of the group's
mask shape.  Scan cost then grows with the number of groups and the depth
of their chains, not with the raw mask count — exactly the property that
defuses a detonation that multiplies masks inside one group.

:class:`TupleChainSearch` realises that idea over the shared
:class:`~repro.classifier.backend.MegaflowStore` truth store.  The index is
a **group trie** over the canonical field order: level *d* of the trie
refines field *d*.  A node holds one hash table per *sub-mask variant* —
the distinct per-field masks the installed tuples use at that level — and
each table maps the packet's masked field value to the child node (or, at
the last level, to the megaflow entry).  Masks sharing a (sub-mask, value)
path share chain steps, so the 8,192-mask SipSpDp staircase collapses into
one group whose chains are probed ~a few dozen times per lookup: one probe
per sub-mask variant per visited node (e.g. the ≤33 ip_src prefix depths),
instead of one probe per mask.

``masks_inspected`` is therefore reported in **chain-probe units** — the
number of per-variant hash probes the walk performed — the backend-native
analogue of TSS's mask-tables-scanned.  Verdicts, installed entries and
statistics are identical to TSS (differential-tested in
``tests/test_backend.py``); only the cost figure is measured in the
backend's own currency.  The probe-cost surface normalises that currency
for the rest of the stack: one chain probe is one hash-table probe
(``probe_unit_cost() == 1.0``) and :meth:`TupleChainSearch.expected_scan_cost`
reports the expected walk cost — an EMA of observed scans, structurally
estimated before any traffic — which is what makes the grouped defense
visible to the hypervisor's throughput time series instead of being
priced at the (exploded) mask count.

Invariants:

* **Dicts are the source of truth.**  The trie is a pure index: every hit
  it proposes is confirmed against the per-mask dicts before it becomes a
  verdict, and the trie is rebuilt from the dicts after any removal or
  flush (inserts update it incrementally — the hot path while an attack
  detonates).
* **Batch ≡ sequential** holds trivially: the batch path performs live
  per-key lookups against the same dicts (no precomputed plan to go
  stale).
* **Inv(2) (disjointness) makes the walk order-independent.**  At most one
  installed entry covers any key, so the first confirmed chain hit is
  *the* hit regardless of traversal order — the same property the TSS
  batch scanner already relies on.  If overlapping entries are force-fed
  past invariant checking, the walk still returns a deterministic
  (insertion-ordered) match.
"""

from __future__ import annotations

from typing import Iterator

from repro.classifier.backend import (
    MegaflowEntry,
    MegaflowStore,
    TssLookupResult,
    register_megaflow_backend,
)
from repro.exceptions import CacheInvariantError
from repro.packet.fields import FIELD_ORDER, FlowKey, FlowMask

__all__ = ["TupleChainSearch"]

_NFIELDS = len(FIELD_ORDER)
_LAST = _NFIELDS - 1

# A trie node is a plain dict: {field_submask: {masked_value: child}}.
# Children are nodes for levels 0.._NFIELDS-2 and MegaflowEntry objects at
# the last level.  Plain dicts keep the per-probe cost at two dict hops,
# which is the whole point of chaining.
_Node = dict


class TupleChainSearch(MegaflowStore):
    """Grouped-TSS megaflow backend with chained (trie) lookup.

    Args:
        check_invariants: verify Inv(2) on every insert (tests).
        scan_policy: only ``"insertion"`` — the chain walk has no scan
            order to re-sort, so ``hit_sorted`` is meaningless here.
    """

    def __init__(self, check_invariants: bool = False, scan_policy: str = "insertion"):
        if scan_policy != "insertion":
            raise CacheInvariantError(
                f"TupleChainSearch has no scan order; unsupported scan policy {scan_policy!r}"
            )
        super().__init__(check_invariants=check_invariants)
        self._root: _Node = {}
        self._trie_dirty = False
        # Probe-cost estimators: an exponential moving average of observed
        # full (miss) chain walks (reset when the structure shrinks or is
        # rebuilt) and a cached structural walk cost (recomputed lazily).
        self._ema_probes: float | None = None
        self._structural_cost: float | None = None

    #: EMA weight: each new scan moves the estimate 1/8 of the way — smooth
    #: enough to ignore one shallow walk, fast enough to track a detonation.
    EMA_WEIGHT = 8.0

    @property
    def stats_chain_probes(self) -> int:
        """Total chain probes across all scans (alias of the shared funnel)."""
        return self.stats_scan_probes

    # -- group introspection -------------------------------------------------
    @property
    def n_groups(self) -> int:
        """Distinct mask groups (masks sharing a constrained-field set).

        The figure the grouped design bounds: chain probes per lookup grow
        with the group count and chain depth, not with :attr:`n_masks`.
        """
        return len({tuple(bool(m) for m in mask.values) for mask in self._mask_order})

    def group_sizes(self) -> dict[tuple[int, ...], int]:
        """Mask count per group signature (constrained-field index tuple)."""
        sizes: dict[tuple[int, ...], int] = {}
        for mask in self._mask_order:
            signature = tuple(i for i, m in enumerate(mask.values) if m)
            sizes[signature] = sizes.get(signature, 0) + 1
        return sizes

    # -- probe-cost surface ----------------------------------------------------
    def probe_unit_cost(self) -> float:
        """One chain probe is one hash-table probe: same currency as TSS.

        A chain step masks a single field and probes one sub-mask
        variant's table — the same work a TSS mask probe does for one
        (all-field) mask, so the calibrated single-table-probe unit maps
        1:1.  Declared explicitly so backends with heavier probe steps
        know where to plug a different constant.
        """
        return 1.0

    def _account_scan(self, result: TssLookupResult) -> None:
        super()._account_scan(result)
        # Only *misses* feed the estimator: a miss traverses every matching
        # branch, so its probe count is the full-scan cost the calibrated
        # curves take.  Hit walks terminate early (their position discount
        # is already embedded in the curve fit — counting them here would
        # discount twice and deflate the estimate below what a fresh flow
        # actually pays).
        if result.entry is None:
            probes = float(result.masks_inspected)
            if self._ema_probes is None:
                self._ema_probes = probes
            else:
                self._ema_probes += (probes - self._ema_probes) / self.EMA_WEIGHT

    def structural_scan_cost(self) -> float:
        """Mean per-entry chain-walk cost implied by the trie structure.

        For each installed entry, sum the sub-mask variant probes the walk
        performs at every node along the entry's own path; average over
        entries.  Traffic-independent (usable on scratch caches that have
        never served a lookup), O(entries x fields) and cached until the
        next mutation.  A lower-bound estimate: the DFS may also descend
        side branches that match the packet, but for the staircase shapes
        a TSE carves the hit path dominates.
        """
        if self._structural_cost is None:
            if self._trie_dirty:
                self._rebuild_trie()
            total = 0
            count = 0
            for table in self._tables.values():
                for entry in table.values():
                    node = self._root
                    for index in range(_LAST):
                        total += len(node)
                        node = node[entry.mask.values[index]][entry.key[index]]
                    total += len(node)
                    count += 1
            self._structural_cost = total / count if count else 1.0
        return self._structural_cost

    def expected_scan_cost(self) -> float:
        """Expected *full* chain-walk cost now, in normalised probe units.

        Prefers the observed EMA of actual miss scans — full traversals,
        "priced from the actual verdicts" — and falls back to the
        structural walk estimate on a cache whose structure has not been
        miss-scanned since it last changed.  Clamped to >= 1: even an
        empty cache costs one probe to dismiss, matching the TSS
        convention ``max(n_masks, 1)``.
        """
        estimate = self._ema_probes
        if estimate is None:
            estimate = self.structural_scan_cost()
        return max(1.0, self.probe_unit_cost() * estimate)

    # -- store hooks -----------------------------------------------------------
    def _index_invalidate(self) -> None:
        self._trie_dirty = True
        # The structure changed shape (removal / flush / reorder): observed
        # means no longer describe it, and the cached walk cost is stale.
        self._ema_probes = None
        self._structural_cost = None

    def _index_insert(self, entry: MegaflowEntry, new_mask: bool) -> None:
        if not self._trie_dirty:
            self._trie_add(entry)
        # Inserts deepen chains without invalidating observed scans: keep
        # the EMA (it adapts), drop only the cached structural walk.
        self._structural_cost = None

    def _trie_add(self, entry: MegaflowEntry) -> None:
        node = self._root
        mask_values = entry.mask.values
        key_values = entry.key  # already masked: key[i] & mask[i] == key[i]
        for index in range(_LAST):
            table = node.get(mask_values[index])
            if table is None:
                table = {}
                node[mask_values[index]] = table
            child = table.get(key_values[index])
            if child is None:
                child = {}
                table[key_values[index]] = child
            node = child
        table = node.get(mask_values[_LAST])
        if table is None:
            table = {}
            node[mask_values[_LAST]] = table
        table[key_values[_LAST]] = entry

    def _rebuild_trie(self) -> None:
        self._root = {}
        for table in self._tables.values():
            for entry in table.values():
                self._trie_add(entry)
        self._trie_dirty = False

    # -- the chained scan -------------------------------------------------------
    def _scan(self, key: FlowKey, key_values: tuple[int, ...], now: float) -> TssLookupResult:
        """Walk the group trie: one hash probe per sub-mask variant per node.

        Depth-first over the (at most one per chain step) children whose
        masked value matches the packet; a terminal match is confirmed
        against the authoritative dicts before it becomes the verdict.
        """
        if self._trie_dirty:
            self._rebuild_trie()
        if not self._mask_order:
            self.stats_misses += 1
            return TssLookupResult(entry=None, masks_inspected=0)
        probes = 0
        stack: list[tuple[int, _Node]] = [(0, self._root)]
        while stack:
            depth, node = stack.pop()
            value = key_values[depth]
            if depth == _LAST:
                for submask, table in node.items():
                    probes += 1
                    entry = table.get(value & submask)
                    if entry is not None and self.find_entry(entry):
                        self._register_hit(entry, now)
                        return TssLookupResult(entry=entry, masks_inspected=probes)
                continue
            for submask, table in node.items():
                probes += 1
                child = table.get(value & submask)
                if child is not None:
                    stack.append((depth + 1, child))
        self._register_miss()
        return TssLookupResult(entry=None, masks_inspected=probes)

    # -- diagnostics -------------------------------------------------------------
    def chains(self) -> Iterator[tuple[FlowMask, int]]:
        """(mask, entry count) per installed tuple, group-major order."""
        for signature in sorted(self.group_sizes()):
            for mask in self._mask_order:
                if tuple(i for i, m in enumerate(mask.values) if m) == signature:
                    yield mask, len(self._tables[mask])

    def __repr__(self) -> str:
        return (
            f"TupleChainSearch({self.n_masks} masks in {self.n_groups} groups, "
            f"{self.n_entries} entries)"
        )


register_megaflow_backend("tuplechain", TupleChainSearch)
