"""The ordered flow table: the slow-path classifier of §2.1.

An ordered set of :class:`~repro.classifier.rule.FlowRule` with priorities.
Lookup returns the highest-priority matching rule (insertion order breaks
ties), exactly the order-dependent semantics the paper describes.  The table
also exposes the structural queries used by the analysis and attack-trace
modules (overlap detection, order-independence checks).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.classifier.actions import DENY, Action
from repro.classifier.rule import FlowRule, Match
from repro.exceptions import RuleError
from repro.packet.fields import FlowKey

__all__ = ["FlowTable"]


class FlowTable:
    """An ordered, priority-aware flow table.

    The table keeps rules sorted by (priority descending, insertion order
    ascending); :meth:`lookup` scans that order and returns the first match,
    which is the reference semantics every cached classifier in this library
    must agree with.

    Change notifications: components holding derived state (megaflow caches,
    compiled classifiers) can subscribe with :meth:`subscribe` and rebuild
    when rules change — this is how the simulated switch revalidates its
    caches when a tenant injects a new ACL mid-experiment (Fig. 8c).
    """

    def __init__(self, rules: list[FlowRule] | None = None, name: str = "flowtable"):
        self.name = name
        self._rules: list[FlowRule] = []
        self._sequence = 0
        self._ordered: list[tuple[int, int, FlowRule]] = []  # (-prio, seq, rule)
        self._subscribers: list[Callable[[], None]] = []
        self.version = 0
        for rule in rules or []:
            self.add(rule)

    # -- mutation ----------------------------------------------------------------
    def add(self, rule: FlowRule) -> None:
        """Insert a rule, keeping priority order."""
        if not isinstance(rule, FlowRule):
            raise RuleError(f"expected FlowRule, got {type(rule).__name__}")
        self._rules.append(rule)
        self._ordered.append((-rule.priority, self._sequence, rule))
        self._sequence += 1
        self._ordered.sort(key=lambda item: (item[0], item[1]))
        self._notify()

    def add_rule(
        self,
        match: Match,
        action: Action,
        priority: int = 0,
        name: str = "",
    ) -> FlowRule:
        """Convenience: build and insert a rule, returning it."""
        rule = FlowRule(match=match, action=action, priority=priority, name=name)
        self.add(rule)
        return rule

    def add_default_deny(self, name: str = "default-deny") -> FlowRule:
        """Append the lowest-priority match-all deny rule of the paper's ACLs."""
        return self.add_rule(Match.any(), DENY, priority=0, name=name)

    def remove(self, rule: FlowRule) -> None:
        """Remove a previously added rule."""
        try:
            self._rules.remove(rule)
        except ValueError:
            raise RuleError(f"rule not in table: {rule!r}") from None
        self._ordered = [item for item in self._ordered if item[2] is not rule]
        self._notify()

    def clear(self) -> None:
        """Remove every rule."""
        self._rules.clear()
        self._ordered.clear()
        self._notify()

    def extend(self, rules: list[FlowRule]) -> None:
        """Insert several rules (single change notification)."""
        for rule in rules:
            if not isinstance(rule, FlowRule):
                raise RuleError(f"expected FlowRule, got {type(rule).__name__}")
            self._rules.append(rule)
            self._ordered.append((-rule.priority, self._sequence, rule))
            self._sequence += 1
        self._ordered.sort(key=lambda item: (item[0], item[1]))
        self._notify()

    def apply_delta(
        self, add: list[FlowRule] | tuple[FlowRule, ...] = (), remove: list[FlowRule] | tuple[FlowRule, ...] = ()
    ) -> None:
        """Apply a batch of removals and insertions as **one** change.

        This is the replica-synchronisation primitive of the parallel
        execution engine: a worker process holding a flow-table replica
        applies each delta message from the control plane with a single
        change notification, so its shards revalidate (flush) exactly once
        per original table change — the same cadence a serial shard sees.

        ``remove`` is matched by object identity (callers pass the table's
        own rule objects — the worker resolves delta rule-ids to its local
        objects first), so value-equal duplicate rules (e.g. two identical
        default-deny entries) can never desynchronise ``_rules`` from the
        lookup order.
        """
        for rule in remove:
            for index, existing in enumerate(self._rules):
                if existing is rule:
                    del self._rules[index]
                    break
            else:
                raise RuleError(f"rule not in table: {rule!r}")
            self._ordered = [item for item in self._ordered if item[2] is not rule]
        for rule in add:
            if not isinstance(rule, FlowRule):
                raise RuleError(f"expected FlowRule, got {type(rule).__name__}")
            self._rules.append(rule)
            self._ordered.append((-rule.priority, self._sequence, rule))
            self._sequence += 1
        if add:
            self._ordered.sort(key=lambda item: (item[0], item[1]))
        self._notify()

    def _notify(self) -> None:
        self.version += 1
        for callback in self._subscribers:
            callback()

    def subscribe(self, callback: Callable[[], None]) -> None:
        """Register a callback fired after every rule change."""
        self._subscribers.append(callback)

    # -- queries -----------------------------------------------------------------
    def lookup(self, key: FlowKey) -> FlowRule | None:
        """The highest-priority rule matching ``key`` (reference semantics)."""
        for _nprio, _seq, rule in self._ordered:
            if rule.matches(key):
                return rule
        return None

    def classify(self, key: FlowKey) -> Action:
        """Like :meth:`lookup` but defaulting to DENY when nothing matches."""
        rule = self.lookup(key)
        return rule.action if rule is not None else DENY

    def rules_by_priority(self) -> list[FlowRule]:
        """Rules in lookup order (priority desc, insertion asc)."""
        return [rule for _nprio, _seq, rule in self._ordered]

    def __iter__(self) -> Iterator[FlowRule]:
        return iter(self.rules_by_priority())

    def __len__(self) -> int:
        return len(self._rules)

    def is_order_independent(self) -> bool:
        """True when all rules are pairwise disjoint (§2.1).

        Order-independent tables have a unique matching rule per packet, the
        property the megaflow cache must establish via Inv(2).
        """
        ordered = self.rules_by_priority()
        for i, first in enumerate(ordered):
            for second in ordered[i + 1 :]:
                if first.match.overlaps(second.match):
                    return False
        return True

    def overlapping_pairs(self) -> list[tuple[FlowRule, FlowRule]]:
        """All rule pairs a single packet could match (diagnostics)."""
        ordered = self.rules_by_priority()
        pairs = []
        for i, first in enumerate(ordered):
            for second in ordered[i + 1 :]:
                if first.match.overlaps(second.match):
                    pairs.append((first, second))
        return pairs

    def __repr__(self) -> str:
        return f"FlowTable({self.name!r}, {len(self._rules)} rules)"

    def format_table(self) -> str:
        """Human-readable rendering in the style of the paper's Fig. 6."""
        lines = [f"FlowTable {self.name!r}:"]
        for rule in self.rules_by_priority():
            label = rule.name or "-"
            lines.append(f"  [prio={rule.priority:>4}] {label:<20} {rule.match!r} -> {rule.action}")
        return "\n".join(lines)
