"""Linear-search classifier: the reference semantics.

Scans rules in priority order and returns the first match — exactly the
:class:`~repro.classifier.flowtable.FlowTable` lookup, wrapped in the
comparison interface.  Every other classifier must agree with this one
(property-tested on random rule sets), and its cost (rules examined) is the
baseline in the §7 comparison.
"""

from __future__ import annotations

from repro.classifier.actions import DENY
from repro.classifier.base import ClassifierResult, PacketClassifier
from repro.classifier.rule import FlowRule
from repro.packet.fields import FlowKey

__all__ = ["LinearSearchClassifier"]


class LinearSearchClassifier(PacketClassifier):
    """Priority-ordered linear scan over a rule list."""

    name = "linear"

    def __init__(self, rules: list[FlowRule]):
        # Sort once: priority descending, stable for insertion order.
        self._rules = sorted(
            enumerate(rules), key=lambda pair: (-pair[1].priority, pair[0])
        )

    def classify(self, key: FlowKey) -> ClassifierResult:
        cost = 0
        for _idx, rule in self._rules:
            cost += 1
            if rule.matches(key):
                return ClassifierResult(action=rule.action, cost=cost, rule_name=rule.name)
        return ClassifierResult(action=DENY, cost=cost)

    def memory_units(self) -> int:
        return len(self._rules)

    def __len__(self) -> int:
        return len(self._rules)
