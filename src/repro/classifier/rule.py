"""Wildcard match expressions and flow rules.

A :class:`Match` constrains a subset of header fields, each with a
``(value, mask)`` pair — exact matches use the full field mask, prefixes use
MSB-anchored masks, and unmentioned fields are wildcarded.  A
:class:`FlowRule` pairs a match with a priority and an action; ordered sets
of rules form the flow table of §2.1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.classifier.actions import Action
from repro.exceptions import RuleError
from repro.packet.fields import FIELDS, FlowKey, FlowMask, field

__all__ = ["Match", "FlowRule"]


class Match:
    """An immutable wildcard match over registry fields.

    Field constraints are given as keyword arguments; each constraint is
    either an exact value (``tp_dst=80``), a ``(value, mask)`` tuple, or a
    CIDR-style ``(value, prefix_len)`` via :meth:`with_prefix`.

    Example::

        Match(tp_dst=80)                       # exact on one field
        Match(ip_src=(0x0a000000, 0xffffff00)) # 10.0.0.0/24
    """

    __slots__ = ("_constraints", "_hash")

    def __init__(self, **kwargs: int | tuple[int, int]):
        constraints: dict[str, tuple[int, int]] = {}
        for name, spec in kwargs.items():
            fdef = field(name)
            if isinstance(spec, tuple):
                value, mask = spec
            else:
                value, mask = spec, fdef.full_mask
            fdef.check_value(value)
            fdef.check_mask(mask)
            if value & ~mask:
                raise RuleError(
                    f"{name}: value {value:#x} has bits outside mask {mask:#x}"
                )
            if mask == 0:
                continue  # fully wildcarded constraint is no constraint
            constraints[name] = (value, mask)
        # Keep canonical field order for deterministic iteration.
        self._constraints: tuple[tuple[str, int, int], ...] = tuple(
            (name, *constraints[name]) for name in FIELDS if name in constraints
        )
        self._hash = hash(self._constraints)

    @classmethod
    def from_constraints(cls, constraints: Mapping[str, tuple[int, int]]) -> "Match":
        """Build from a mapping of field name to (value, mask)."""
        return cls(**{name: vm for name, vm in constraints.items()})

    @classmethod
    def any(cls) -> "Match":
        """The match-all wildcard (used for DefaultDeny rules)."""
        return cls()

    # -- queries ---------------------------------------------------------------
    def constraints(self) -> Iterator[tuple[str, int, int]]:
        """Iterate ``(field, value, mask)`` in canonical field order."""
        return iter(self._constraints)

    @property
    def fields(self) -> tuple[str, ...]:
        """Names of constrained fields, in canonical order."""
        return tuple(name for name, _v, _m in self._constraints)

    def constraint(self, name: str) -> tuple[int, int] | None:
        """The (value, mask) constraint on ``name``, or None."""
        for fname, value, mask in self._constraints:
            if fname == name:
                return value, mask
        return None

    @property
    def is_catchall(self) -> bool:
        """True when no field is constrained."""
        return not self._constraints

    def matches(self, key: FlowKey) -> bool:
        """True when ``key`` satisfies every constraint."""
        for name, value, mask in self._constraints:
            if (key[name] & mask) != value:
                return False
        return True

    def mask(self) -> FlowMask:
        """The aggregate FlowMask of all constrained bits."""
        return FlowMask(**{name: mask for name, _v, mask in self._constraints})

    def n_constrained_bits(self) -> int:
        """Total constrained bits across fields."""
        return sum(mask.bit_count() for _n, _v, mask in self._constraints)

    def overlaps(self, other: "Match") -> bool:
        """True when some packet could satisfy both matches."""
        mine = {name: (v, m) for name, v, m in self._constraints}
        for name, value, mask in other._constraints:
            if name in mine:
                my_value, my_mask = mine[name]
                common = my_mask & mask
                if (my_value & common) != (value & common):
                    return False
        return True

    def example_key(self) -> FlowKey:
        """A concrete key satisfying this match (wildcarded bits zero)."""
        return FlowKey(**{name: value for name, value, _m in self._constraints})

    def enumerate_keys(self, limit: int = 1 << 20) -> Iterator[FlowKey]:
        """Enumerate every concrete key satisfying this match.

        Only sensible for narrow matches (tests and didactic examples); the
        generator raises :class:`RuleError` when more than ``limit`` keys
        would be produced.
        """
        total = 1
        free_bits: list[tuple[str, int]] = []  # (field, bit mask) per free bit
        for name, _value, mask in self._constraints:
            width = FIELDS[name].width
            for pos in range(width):
                bit = 1 << (width - 1 - pos)
                if not mask & bit:
                    free_bits.append((name, bit))
                    total *= 2
                    if total > limit:
                        raise RuleError(f"match enumerates more than {limit} keys")
        base = {name: value for name, value, _m in self._constraints}
        for combo in itertools.product((0, 1), repeat=len(free_bits)):
            key = dict(base)
            for (name, bit), on in zip(free_bits, combo):
                if on:
                    key[name] = key.get(name, 0) | bit
            yield FlowKey(**key)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Match):
            return self._constraints == other._constraints
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._constraints:
            return "Match(*)"
        parts = ", ".join(
            f"{name}={value:#x}/{mask:#x}" for name, value, mask in self._constraints
        )
        return f"Match({parts})"


@dataclass(frozen=True)
class FlowRule:
    """One flow-table entry: match + priority + action.

    Higher ``priority`` wins; among equal priorities the rule added first
    wins (stable order, matching the paper's "first flow overrides").
    """

    match: Match
    action: Action
    priority: int = 0
    name: str = ""

    def matches(self, key: FlowKey) -> bool:
        """True when ``key`` satisfies this rule's match."""
        return self.match.matches(key)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"FlowRule(prio={self.priority},{label} {self.match!r} -> {self.action})"
