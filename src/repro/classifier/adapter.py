"""Adapter exposing the TSS-cached datapath through the classifier interface.

Used by the §7 comparison: the other classifiers are traffic-independent,
while this one's per-lookup cost (mask tables probed, plus the slow-path
rule scan on misses) grows as attack traffic explodes the tuple space —
the comparison benchmark plots exactly that contrast.
"""

from __future__ import annotations

from repro.classifier.base import ClassifierResult, PacketClassifier
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import FlowRule
from repro.packet.fields import FlowKey
from repro.switch.datapath import Datapath, DatapathConfig, PathTaken

__all__ = ["TssCachedClassifier"]


class TssCachedClassifier(PacketClassifier):
    """A datapath-backed classifier (microflow + TSS megaflow + slow path).

    Args:
        rules: the rule list (loaded into a private flow table).
        config: datapath knobs; the default disables the microflow cache so
            the comparison measures the TSS scan itself.
    """

    name = "tss-cache"

    def __init__(self, rules: list[FlowRule], config: DatapathConfig | None = None):
        table = FlowTable(rules=list(rules), name="tss-adapter")
        self.datapath = Datapath(
            table, config or DatapathConfig(microflow_capacity=0)
        )
        self._clock = 0.0

    def classify(self, key: FlowKey) -> ClassifierResult:
        self._clock += 1e-6  # keep entry timestamps monotonic
        verdict = self.datapath.process(key, now=self._clock)
        cost = max(verdict.masks_inspected, 1)
        if verdict.path is PathTaken.SLOW_PATH:
            cost += verdict.rules_examined
        name = verdict.installed.source_rule if verdict.installed is not None else ""
        return ClassifierResult(action=verdict.action, cost=cost, rule_name=name)

    def memory_units(self) -> int:
        """Megaflow entries cached plus the backing rule list."""
        return self.datapath.n_megaflows + len(self.datapath.flow_table)

    def churn(self, seed: int = 0) -> None:
        """Randomise the mask scan order (steady-state model, see TSS)."""
        self.datapath.megaflows.shuffle_masks(seed)

    @property
    def n_masks(self) -> int:
        return self.datapath.n_masks
