"""Adapter exposing a megaflow-cached datapath through the classifier interface.

Used by the §7 comparison: the other classifiers are traffic-independent,
while a cached datapath's per-lookup cost (megaflow probe units, plus the
slow-path rule scan on misses) depends on what the traffic history did to
its cache.  For the TSS backend that cost explodes as attack traffic
detonates the tuple space; for the TupleChain-style grouped backend it
stays bounded — the comparison benchmark plots exactly that contrast, by
running one adapter instance per registered megaflow backend.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.classifier.backend import MegaflowBackend, backend_name_of
from repro.classifier.base import ClassifierResult, PacketClassifier
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import FlowRule
from repro.packet.fields import FlowKey
from repro.switch.datapath import Datapath, DatapathConfig, PathTaken

__all__ = ["TssCachedClassifier"]


class TssCachedClassifier(PacketClassifier):
    """A datapath-backed classifier (microflow + megaflow cache + slow path).

    Args:
        rules: the rule list (loaded into a private flow table).
        config: datapath knobs; the default disables the microflow cache so
            the comparison measures the megaflow lookup itself.
        backend: which megaflow cache backs the datapath — a registry name
            (``"tss"``, ``"tuplechain"``) or an injected pre-built
            :class:`~repro.classifier.backend.MegaflowBackend` instance.
            The classifier's reported name becomes ``"<backend>-cache"``.
    """

    name = "tss-cache"

    def __init__(
        self,
        rules: list[FlowRule],
        config: DatapathConfig | None = None,
        backend: str | MegaflowBackend = "tss",
    ):
        table = FlowTable(rules=list(rules), name="cache-adapter")
        config = config or DatapathConfig(microflow_capacity=0)
        if isinstance(backend, str):
            config = dc_replace(config, megaflow_backend=backend)
            self.name = f"{backend}-cache"
            self.datapath = Datapath(table, config)
        else:
            registered = backend_name_of(backend)
            self.name = f"{registered or type(backend).__name__.lower()}-cache"
            self.datapath = Datapath(table, config, megaflows=backend)
        self._clock = 0.0

    def classify(self, key: FlowKey) -> ClassifierResult:
        self._clock += 1e-6  # keep entry timestamps monotonic
        verdict = self.datapath.process(key, now=self._clock)
        cost = max(verdict.masks_inspected, 1)
        if verdict.path is PathTaken.SLOW_PATH:
            cost += verdict.rules_examined
        name = verdict.installed.source_rule if verdict.installed is not None else ""
        return ClassifierResult(action=verdict.action, cost=cost, rule_name=name)

    def memory_units(self) -> int:
        """Megaflow entries cached plus the backing rule list."""
        return self.datapath.n_megaflows + len(self.datapath.flow_table)

    def churn(self, seed: int = 0) -> None:
        """Randomise the mask scan order (steady-state model, see TSS)."""
        self.datapath.megaflows.shuffle_masks(seed)

    @property
    def n_masks(self) -> int:
        return self.datapath.n_masks
