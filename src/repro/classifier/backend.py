"""The pluggable megaflow-backend layer: protocol, shared store, registry.

The datapath's level-3 cache — the structure the TSE attack detonates — is
not inherently Tuple Space Search.  §7 of the paper argues the attack is
*algorithmic*: it targets the O(|masks|) scan of TSS specifically, and
classifiers whose lookup cost does not grow with the installed mask count
resist it (TupleChain, arXiv:2408.04390, keeps scan cost sublinear in the
mask count by chaining compatible masks into groups).  This module is the
seam that makes the megaflow cache swappable:

* :class:`MegaflowBackend` — the protocol every backend implements.  It is
  exactly the surface the switch layers pull out of the cache today:
  ``lookup`` / ``lookup_batch`` / ``batch_scanner`` (the datapath),
  ``insert`` / ``remove`` / ``evict_idle`` / ``remove_where`` (the slow
  path and the revalidator), ``entries()`` / ``masks()`` / ``find_entry``
  / ``probe_mask`` / ``memory_bytes()`` / hit statistics (dpctl, MFCGuard,
  the kernel mask cache, the benchmarks).
* :class:`MegaflowStore` — the shared truth-store machinery: per-mask hash
  dicts, the mask list, the lookup memo, and the hit/miss statistics
  funnel.  Concrete backends subclass it and supply ``_scan`` (how a key
  is matched) plus index hooks (how their accelerating structure tracks
  inserts and removals).  The dicts-as-truth invariant lives here: the
  per-mask dicts decide every verdict and any backend index must be
  rebuildable from them without observable change.
* the backend registry — ``make_megaflow_backend("tss")`` and friends, the
  single place new backends (grouped lookup, HyperCuts-megaflow, offload
  hybrids) plug into :class:`~repro.switch.datapath.DatapathConfig`.

``masks_inspected`` is reported in **backend-native probe units**: mask
tables scanned for TSS, chain/group hash probes for the grouped backend.
Within one backend the batch path must report the same units as the
sequential path (batch ≡ sequential); across backends only verdicts and
installed entries are comparable, which is what the differential tests
compare.

The **probe-cost surface** makes those native units priceable across the
whole stack: every backend declares :meth:`MegaflowBackend.probe_unit_cost`
(how many *calibrated single-table probes* one native probe unit costs —
the normalisation constant of the cost plane) and
:meth:`MegaflowBackend.expected_scan_cost` (the expected cost of one full
scan of the current cache, in normalised probe units — the quantity the
calibrated cost curves take as their argument).  For TSS probes ≡ masks
and the unit cost is 1.0, so the normalised scan cost *is* the mask count
and every mask-count-anchored consumer (the Table 1 / Fig 8-9 presets)
reproduces byte-identically; for the grouped backend the scan cost tracks
the observed chain walks, which is what lets the hypervisor's time series
finally see the defense.  :meth:`MegaflowBackend.probe_cost_snapshot`
bundles the currency into one introspection record for dpctl, MFCGuard
and the dilution detector.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Protocol, runtime_checkable

from repro.classifier.actions import Action
from repro.exceptions import CacheInvariantError, ClassifierError
from repro.packet.fields import FlowKey, FlowMask

__all__ = [
    "ENTRY_BYTES",
    "MASK_BYTES",
    "MegaflowEntry",
    "TssLookupResult",
    "LookupResult",
    "BatchLookupResult",
    "ProbeCostSnapshot",
    "MegaflowBackend",
    "MegaflowStore",
    "LiveBatchScanner",
    "BackendRebuild",
    "register_megaflow_backend",
    "megaflow_backend_names",
    "make_megaflow_backend",
    "backend_name_of",
]

# Memory-footprint estimates per cache object, sized after the OVS kernel
# datapath structures (struct sw_flow ≈ key + mask ref + stats ≈ 600+ bytes,
# struct sw_flow_mask ≈ 100+ bytes).  Used for the §5.4 IPv6 memory blow-up
# experiment; only relative magnitudes matter.
ENTRY_BYTES = 640
MASK_BYTES = 128


@dataclass
class MegaflowEntry:
    """One megaflow: a masked key plus its action.

    Attributes:
        mask: the entry's FlowMask (its tuple in the tuple space).
        key: the masked key — canonical value tuple under ``mask``.
        action: what to do with matching packets.
        source_rule: name of the flow-table rule whose lookup spawned the
            entry (provenance used by MFCGuard's pattern matcher).
        created_at / last_used: simulation timestamps (seconds).
        hits: number of fast-path hits served.
    """

    mask: FlowMask
    key: tuple[int, ...]
    action: Action
    source_rule: str = ""
    created_at: float = 0.0
    last_used: float = 0.0
    hits: int = 0

    def covers(self, key: FlowKey) -> bool:
        """True when ``key`` matches this entry (agrees on all masked bits)."""
        return key.masked(self.mask) == self.key

    def overlaps(self, other: "MegaflowEntry") -> bool:
        """True when some packet could match both entries."""
        return self.mask.overlaps_key(self.key, other.mask, other.key)

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={value:#x}/{mask:#x}"
            for (name, mask), value in zip(self.mask.items(), self.key)
            if mask
        )
        return f"MegaflowEntry({fields or '*'} -> {self.action})"


@dataclass(frozen=True)
class TssLookupResult:
    """Outcome of one megaflow lookup.

    Attributes:
        entry: the hit entry, or ``None`` on a cache miss.
        masks_inspected: lookup work in the backend's native probe units —
            mask tables scanned for TSS, chain hash probes for grouped
            backends — which the cost model turns into CPU cycles.
    """

    entry: MegaflowEntry | None
    masks_inspected: int

    @property
    def hit(self) -> bool:
        return self.entry is not None


#: Backend-neutral alias — new code should say ``LookupResult``; the
#: ``TssLookupResult`` name is kept for the existing import surface.
LookupResult = TssLookupResult


@dataclass(frozen=True)
class BatchLookupResult:
    """Outcome of one batched megaflow lookup, one result per input key.

    Semantically a transcript of running the backend's ``lookup`` over the
    keys in order — same entries, same ``masks_inspected``, same statistics
    side effects — however the backend vectorises it.
    """

    results: tuple[TssLookupResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> TssLookupResult:
        return self.results[index]

    @property
    def hits(self) -> int:
        """Number of keys served from the cache."""
        return sum(1 for r in self.results if r.hit)

    @property
    def masks_inspected_total(self) -> int:
        """Total scan work across the batch (cost-model input)."""
        return sum(r.masks_inspected for r in self.results)


@dataclass(frozen=True)
class ProbeCostSnapshot:
    """One backend's lookup-cost currency, in one introspection record.

    Attributes:
        backend: implementing class name (diagnostic label).
        n_masks: installed distinct masks — still the attack's *detection*
            figure of merit, even where it no longer implies scan cost.
        unit_cost: calibrated single-table-probe units per backend-native
            probe unit (1.0 for TSS: a native probe *is* a table probe).
        scan_cost: expected cost of one full scan of the current cache, in
            normalised probe units (``n_masks`` for TSS).  This is the
            argument the calibrated cost curves take.
        scans: lookups that ran the backend's scan (memo hits excluded).
        probes_total: native probe units spent across all scans.
    """

    backend: str
    n_masks: int
    unit_cost: float
    scan_cost: float
    scans: int
    probes_total: int

    @property
    def probes_per_scan(self) -> float:
        """Observed mean native probes per scan (0.0 before any scan)."""
        return self.probes_total / self.scans if self.scans else 0.0


@runtime_checkable
class MegaflowBackend(Protocol):
    """What the switch layers require of a megaflow cache.

    This is the exact surface ``datapath.py``, ``sharded.py``,
    ``revalidator.py``, ``dpctl.py`` and MFCGuard drive; anything
    implementing it can be selected via
    ``DatapathConfig(megaflow_backend=...)``.  Implementations must keep
    the per-mask dicts authoritative (dicts-as-truth) and their batch path
    verdict-identical to their sequential path (batch ≡ sequential).
    """

    check_invariants: bool
    stats_hits: int
    stats_misses: int
    stats_scans: int
    stats_scan_probes: int

    # -- size ----------------------------------------------------------------
    @property
    def n_masks(self) -> int: ...

    @property
    def n_entries(self) -> int: ...

    def memory_bytes(self) -> int: ...

    def __len__(self) -> int: ...

    # -- lookup ---------------------------------------------------------------
    def lookup(self, key: FlowKey, now: float = 0.0) -> TssLookupResult: ...

    def lookup_batch(self, keys, now: float = 0.0) -> BatchLookupResult: ...

    def batch_scanner(self, keys: list[FlowKey], now: float = 0.0): ...

    def probe_mask(
        self, mask: FlowMask, key: FlowKey, now: float = 0.0
    ) -> MegaflowEntry | None: ...

    def find(self, key: FlowKey) -> MegaflowEntry | None: ...

    # -- probe-cost surface ----------------------------------------------------
    def probe_unit_cost(self) -> float: ...

    def expected_scan_cost(self) -> float: ...

    def structural_scan_cost(self) -> float: ...

    def probe_cost_snapshot(self) -> ProbeCostSnapshot: ...

    # -- mutation -------------------------------------------------------------
    def insert(self, entry: MegaflowEntry, now: float = 0.0) -> MegaflowEntry: ...

    def insert_batch(
        self, entries: Iterable[MegaflowEntry], now: float = 0.0
    ) -> list[MegaflowEntry]: ...

    def index_burst(self): ...

    def remove(self, entry: MegaflowEntry) -> bool: ...

    def remove_where(
        self, predicate: Callable[[MegaflowEntry], bool]
    ) -> list[MegaflowEntry]: ...

    def evict_idle(self, now: float, idle_timeout: float) -> list[MegaflowEntry]: ...

    def flush(self) -> None: ...

    def shuffle_masks(self, seed: int = 0) -> None: ...

    def clear_memo(self) -> None: ...

    # -- iteration / introspection --------------------------------------------
    def entries(self) -> Iterator[MegaflowEntry]: ...

    def masks(self) -> list[FlowMask]: ...

    def entries_for_mask(self, mask: FlowMask) -> list[MegaflowEntry]: ...

    def find_entry(self, entry: MegaflowEntry) -> bool: ...

    def get_entry(
        self, mask: FlowMask, key: tuple[int, ...]
    ) -> MegaflowEntry | None: ...

    def verify_disjoint(self) -> None: ...


class MegaflowStore:
    """Shared truth-store machinery for megaflow backends.

    Owns everything that is *semantics*: the per-mask hash dicts (the
    single source of truth for every verdict), the mask list, the lookup
    memo, timestamps/hit counters, and the statistics funnel.  Subclasses
    supply the *index* — whatever accelerating structure they scan — via
    four hooks:

    * :meth:`_scan` — resolve one key against the store (the lookup
      algorithm; must route hits through :meth:`_register_hit` and misses
      through :meth:`_register_miss`);
    * :meth:`_index_insert` — fold one freshly installed entry into the
      index incrementally (the hot path while an attack detonates);
    * :meth:`_index_invalidate` — mark the index stale after a removal,
      reorder, or flush (lazily rebuilt by the subclass);
    * :meth:`_note_hit` / :meth:`_note_miss` — optional scan-order
      accounting (TSS ``hit_sorted`` resorts).

    The default ``lookup_batch`` / ``batch_scanner`` run the sequential
    path key by key — trivially batch ≡ sequential, because every lookup
    reads the live dicts; backends with a vectorised plan (TSS) override
    them.
    """

    MEMO_LIMIT = 65536  # distinct keys memoised between cache mutations

    #: Which :mod:`repro.classifier.kernel` implementation computes this
    #: backend's batch scan plan — ``"none"`` for backends without one
    #: (the sequential default path); TSS overrides per instance.
    scan_kernel_name = "none"

    def __init__(self, check_invariants: bool = False):
        self.check_invariants = check_invariants
        self.scan_policy = "insertion"
        # Source of truth: per-mask dicts keyed by *reduced* masked keys
        # (only the fields the mask constrains), plus the scan-ordered mask
        # list of Algorithm 1.
        self._tables: dict[FlowMask, dict[tuple[int, ...], MegaflowEntry]] = {}
        self._mask_fields: dict[FlowMask, tuple[tuple[int, int], ...]] = {}
        self._mask_order: list[FlowMask] = []
        # Entry count, maintained by insert/remove/flush: the flow-limit
        # check runs once per upcall, so |C| must not be O(|C|) to read.
        self._n_entries = 0
        # Lookup memo: replayed traffic (the common case during an attack)
        # re-resolves in O(1) between cache mutations.
        self._memo: dict[tuple[int, ...], TssLookupResult] = {}
        # Bumped whenever scan order or the entry set shrinks/reorders;
        # batch scanners use it to notice their plan went stale.
        self._order_seq = 0
        self.stats_hits = 0
        self.stats_misses = 0
        # Probe accounting: every scan (memo hits excluded) funnels its
        # backend-native ``masks_inspected`` through :meth:`_account_scan`,
        # so the probe currency is observable per backend (dpctl, the cost
        # plane's snapshots) and batch ≡ sequential extends to probe stats.
        self.stats_scans = 0
        self.stats_scan_probes = 0
        # Live rebuilds observing this store (see :class:`BackendRebuild`):
        # every install/remove/flush that lands while a rebuild is in flight
        # is journalled so the target backend can replay it.
        self._rebuild_journals: list["BackendRebuild"] = []

    # -- size ----------------------------------------------------------------
    @property
    def n_masks(self) -> int:
        """Number of distinct masks (the |M| of Observation 1)."""
        return len(self._mask_order)

    @property
    def n_entries(self) -> int:
        """Number of megaflow entries (the |C| of Observation 1)."""
        return self._n_entries

    def memory_bytes(self) -> int:
        """Estimated memory footprint (entries + mask structures)."""
        return self.n_entries * ENTRY_BYTES + self.n_masks * MASK_BYTES

    def __len__(self) -> int:
        return self.n_entries

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _fields_of(mask: FlowMask) -> tuple[tuple[int, int], ...]:
        return tuple((i, m) for i, m in enumerate(mask.values) if m)

    def _reduce(self, mask: FlowMask, full_values: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(full_values[i] & m for i, m in self._mask_fields[mask])

    def _invalidate(self) -> None:
        self._memo.clear()
        self._order_seq += 1
        self._index_invalidate()

    # -- index hooks (subclass responsibility) -----------------------------------
    def _scan(
        self, key: FlowKey, key_values: tuple[int, ...], now: float
    ) -> TssLookupResult:
        """Resolve one key against the store (backend algorithm)."""
        raise NotImplementedError

    def _index_insert(self, entry: MegaflowEntry, new_mask: bool) -> None:
        """Fold a freshly installed entry into the backend index."""

    def _index_invalidate(self) -> None:
        """Mark the backend index stale (rebuild lazily on next scan)."""

    def _note_hit(self, mask: FlowMask) -> None:
        """Scan-order accounting hook (TSS ``hit_sorted``)."""

    def _note_miss(self) -> None:
        """Scan-order accounting hook (TSS ``hit_sorted``)."""

    # -- memo ----------------------------------------------------------------------
    def _memo_consult(
        self, key_values: tuple[int, ...], now: float
    ) -> TssLookupResult | None:
        """Serve a memoised result (with full hit/miss accounting), or None.

        The single memo protocol shared by :meth:`lookup` and any batch
        scanner — the batch ≡ sequential invariant requires both paths to
        consult and account identically.
        """
        memoised = self._memo.get(key_values)
        if memoised is not None:
            entry = memoised.entry
            if entry is not None:
                self._register_hit(entry, now)
            else:
                self.stats_misses += 1
        return memoised

    def _memo_store(self, key_values: tuple[int, ...], result: TssLookupResult) -> None:
        if len(self._memo) < self.MEMO_LIMIT and self.scan_policy == "insertion":
            self._memo[key_values] = result

    def clear_memo(self) -> None:
        """Drop memoised lookups (benchmarks: measure scans, not the memo)."""
        self._memo.clear()

    # -- lookup ---------------------------------------------------------------------
    def lookup(self, key: FlowKey, now: float = 0.0) -> TssLookupResult:
        """Resolve one key: memo, then the backend's scan."""
        key_values = key.values
        memoised = self._memo_consult(key_values, now)
        if memoised is not None:
            return memoised
        result = self._scan(key, key_values, now)
        self._account_scan(result)
        self._memo_store(key_values, result)
        return result

    def lookup_batch(self, keys, now: float = 0.0) -> BatchLookupResult:
        """Classify ``keys`` in order; equivalent to per-key :meth:`lookup`.

        Backends with a vectorised plan override this; the default runs the
        sequential path, which is batch ≡ sequential by construction.
        """
        return BatchLookupResult(results=tuple(self.lookup(k, now) for k in keys))

    def batch_scanner(self, keys: list[FlowKey], now: float = 0.0, rows=None):
        """A consume-in-order batch scanner (the datapath's level-3 engine).

        The caller drives it one key at a time and may mutate the cache
        between keys (slow-path installs).  The default scanner performs a
        live lookup per key, so mid-batch mutations are always visible and
        no coherence protocol is needed.  ``rows`` optionally carries the
        batch's precomputed uint64 column matrix; kernel-accelerated
        backends use it to skip re-deriving the layout, everyone else
        ignores it.
        """
        return LiveBatchScanner(self, list(keys), now)

    # -- probe-cost surface -------------------------------------------------------
    def _account_scan(self, result: TssLookupResult) -> None:
        """Record one performed scan's probe spend (the single funnel).

        Both the sequential :meth:`lookup` and any batch scanner must route
        every *scan* (not memo hits — those probe nothing) through here, so
        the probe currency stays batch ≡ sequential.  Subclasses may extend
        it to feed backend-specific cost estimators.
        """
        self.stats_scans += 1
        self.stats_scan_probes += result.masks_inspected

    def probe_unit_cost(self) -> float:
        """Calibrated single-table-probe units per native probe unit.

        The normalisation constant of the probe-native cost plane: a
        backend whose probes are plain hash-table probes declares 1.0; a
        backend whose probe step does more (or less) work than one table
        probe declares the ratio, and every consumer (cost model,
        hypervisor, MFCGuard) prices its ``masks_inspected`` through it.
        """
        return 1.0

    def structural_scan_cost(self) -> float:
        """Full-scan cost implied by the cache *structure alone* (native units).

        Traffic-independent: what one worst-case (miss) scan costs given
        the installed masks, with no observed-workload input.  The generic
        store scans every mask table, so this is ``max(n_masks, 1)`` —
        which makes probes ≡ masks the default and TSS the identity case.
        Backends whose cost is structural-but-sublinear (the group trie)
        override it; the dilution detector compares these across
        hypothetical cache contents.
        """
        return float(max(self.n_masks, 1))

    def expected_scan_cost(self) -> float:
        """Expected cost of one full scan now, in *normalised* probe units.

        This is the probe-native generalisation of "the mask count": the
        argument the calibrated cost curves take.  The default (and TSS)
        answer is the structural cost times the unit cost — for TSS
        exactly ``max(n_masks, 1)``, keeping every mask-count-anchored
        preset byte-identical.  Backends with observed-cost estimators
        (the grouped backend's chain walks) override it.
        """
        return self.probe_unit_cost() * self.structural_scan_cost()

    def probe_cost_snapshot(self) -> ProbeCostSnapshot:
        """The cache's probe currency as one introspection record."""
        return ProbeCostSnapshot(
            backend=type(self).__name__,
            n_masks=self.n_masks,
            unit_cost=self.probe_unit_cost(),
            scan_cost=self.expected_scan_cost(),
            scans=self.stats_scans,
            probes_total=self.stats_scan_probes,
        )

    # -- accounting ------------------------------------------------------------
    def _register_hit(self, entry: MegaflowEntry, now: float) -> None:
        """Single funnel for every served hit — scan, memo, batch, and
        single-mask probes all feed the same statistics and any scan-order
        accounting."""
        entry.hits += 1
        entry.last_used = now
        self.stats_hits += 1
        self._note_hit(entry.mask)

    def _register_miss(self) -> None:
        self.stats_misses += 1
        self._note_miss()

    # -- mutation ---------------------------------------------------------------
    def insert(self, entry: MegaflowEntry, now: float = 0.0) -> MegaflowEntry:
        """Install ``entry``; refresh timestamps if an identical entry exists.

        Returns the entry actually stored (the existing one on refresh).
        Raises :class:`CacheInvariantError` when invariant checking is on and
        the entry overlaps a different existing entry.
        """
        table = self._tables.get(entry.mask)
        new_mask = table is None
        fields = self._fields_of(entry.mask) if new_mask else self._mask_fields[entry.mask]
        reduced = tuple(entry.key[i] & m for i, m in fields)
        if not new_mask:
            existing = table.get(reduced)
            if existing is not None:
                existing.last_used = now
                return existing
        # Invariant checking must precede any mutation: raising after the
        # mask is registered would leave a ghost (empty, unindexed) mask
        # that inflates n_masks and derails later incremental inserts.
        if self.check_invariants:
            self._assert_disjoint(entry)
        if new_mask:
            table = {}
            self._tables[entry.mask] = table
            self._mask_fields[entry.mask] = fields
            self._mask_order.append(entry.mask)
            self._mask_added(entry.mask)
        entry.created_at = now
        entry.last_used = now
        table[reduced] = entry
        self._n_entries += 1
        # Keep the backend index in sync incrementally (the hot path while
        # an attack detonates); memoised results must still be dropped
        # because previous misses may now hit.
        self._index_insert(entry, new_mask)
        self._memo.clear()
        for rebuild in self._rebuild_journals:
            rebuild.note_insert(entry)
        return entry

    def insert_batch(
        self, entries: Iterable[MegaflowEntry], now: float = 0.0
    ) -> list[MegaflowEntry]:
        """Install ``entries`` in order under one :meth:`index_burst`.

        Semantically ``[self.insert(e, now) for e in entries]`` — every
        entry mutates the authoritative dicts, is invariant-checked and
        journalled individually, in order — but backends with an
        incremental index (TSS) amortise their index appends to one
        vectorised pass per call instead of one per entry.
        """
        with self.index_burst():
            return [self.insert(entry, now) for entry in entries]

    def index_burst(self):
        """Context manager batching index appends (no-op by default).

        The datapath opens one burst per ``process_batch``; backends whose
        per-insert index work is worth amortising (TSS) override this to
        defer appends until the next index read or burst exit.  Truth-side
        mutations are never deferred — only the pure accelerating index —
        so behaviour inside the burst is observably unchanged.
        """
        return nullcontext()

    def _mask_added(self, mask: FlowMask) -> None:
        """Bookkeeping hook: a new mask entered the mask list."""

    def _mask_removed(self, mask: FlowMask) -> None:
        """Bookkeeping hook: a mask's last entry was removed."""

    def _assert_disjoint(self, entry: MegaflowEntry) -> None:
        for other in self.entries():
            if entry.overlaps(other):
                raise CacheInvariantError(
                    f"Inv(2) violation: {entry!r} overlaps existing {other!r}"
                )

    def remove(self, entry: MegaflowEntry) -> bool:
        """Remove ``entry``; True when it was present."""
        table = self._tables.get(entry.mask)
        if table is None:
            return False
        reduced = self._reduce(entry.mask, entry.key)
        if table.get(reduced) is not entry:
            return False
        del table[reduced]
        self._n_entries -= 1
        if not table:
            del self._tables[entry.mask]
            del self._mask_fields[entry.mask]
            self._mask_order.remove(entry.mask)
            self._mask_removed(entry.mask)
        self._invalidate()
        for rebuild in self._rebuild_journals:
            rebuild.note_remove(entry)
        return True

    def remove_where(self, predicate: Callable[[MegaflowEntry], bool]) -> list[MegaflowEntry]:
        """Remove and return every entry satisfying ``predicate``."""
        victims = [entry for entry in self.entries() if predicate(entry)]
        for entry in victims:
            self.remove(entry)
        return victims

    def evict_idle(self, now: float, idle_timeout: float) -> list[MegaflowEntry]:
        """Remove entries unused for at least ``idle_timeout`` seconds.

        This is the 10-second megaflow idle eviction responsible for the
        delayed victim recovery in Fig. 8a/8b.
        """
        return self.remove_where(lambda e: now - e.last_used >= idle_timeout)

    def shuffle_masks(self, seed: int = 0) -> None:
        """Randomise the mask scan order (steady-state churn model).

        In a long-running switch the mask list's order decorrelates from
        insertion order: entries idle out and re-spark, revalidation
        rewrites the tables, flows come and go.  The paper's cost model
        assumes exactly this — a victim's mask sits mid-scan on average
        (hence flow completion time growing "half as high" as the mask
        count).  Experiments call this between phases to put the cache in
        that steady state; semantics are unaffected (every backend finds
        the same unique match wherever its mask sits; backends without a
        scan order are untouched beyond iteration order).
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        order = list(self._mask_order)
        rng.shuffle(order)
        self._mask_order = order
        self._invalidate()

    def flush(self) -> None:
        """Drop every entry and mask (slow-path revalidation flush)."""
        self._tables.clear()
        self._mask_fields.clear()
        self._mask_order.clear()
        self._n_entries = 0
        self._flushed()
        self._invalidate()
        for rebuild in self._rebuild_journals:
            rebuild.note_flush()

    def _flushed(self) -> None:
        """Bookkeeping hook: the whole store was flushed."""

    # -- iteration / introspection ----------------------------------------------
    def entries(self) -> Iterator[MegaflowEntry]:
        """Iterate all entries (mask scan order, then key-insertion order)."""
        for mask in list(self._mask_order):
            yield from list(self._tables.get(mask, {}).values())

    def masks(self) -> list[FlowMask]:
        """The mask list in current scan order."""
        return list(self._mask_order)

    def entries_for_mask(self, mask: FlowMask) -> list[MegaflowEntry]:
        """All entries stored under ``mask``."""
        return list(self._tables.get(mask, {}).values())

    def find_entry(self, entry: MegaflowEntry) -> bool:
        """True when exactly this entry object is still installed (O(1))."""
        table = self._tables.get(entry.mask)
        if table is None:
            return False
        return table.get(self._reduce(entry.mask, entry.key)) is entry

    def get_entry(self, mask: FlowMask, key: tuple[int, ...]) -> MegaflowEntry | None:
        """The installed entry under ``(mask, masked key)``, or None (O(1)).

        Value-addressed and statistics-free: the resolver the parallel
        execution engine uses to map an entry *copy* that crossed a process
        boundary back onto this store's own object before management
        operations (kill, reinject, remove) run on it.
        """
        table = self._tables.get(mask)
        if table is None:
            return None
        return table.get(self._reduce(mask, key))

    def probe_mask(self, mask: FlowMask, key: FlowKey, now: float = 0.0) -> MegaflowEntry | None:
        """Probe a single mask's hash table (kernel mask-cache fast path).

        Routed through the shared hit accounting, so backends with hit-
        driven scan orders keep seeing the hottest flows even when the
        kernel mask memo short-circuits their scans.
        """
        table = self._tables.get(mask)
        if table is None:
            return None
        entry = table.get(self._reduce(mask, key.values))
        if entry is not None:
            self._register_hit(entry, now)
        return entry

    def find(self, key: FlowKey) -> MegaflowEntry | None:
        """Like lookup but without touching statistics (diagnostics)."""
        key_values = key.values
        for mask in self._mask_order:
            masked = tuple(key_values[i] & m for i, m in self._mask_fields[mask])
            entry = self._tables[mask].get(masked)
            if entry is not None:
                return entry
        return None

    def verify_disjoint(self) -> None:
        """Assert Inv(2) over the whole cache (test helper, O(|C|^2))."""
        all_entries = list(self.entries())
        for i, first in enumerate(all_entries):
            for second in all_entries[i + 1 :]:
                if first.overlaps(second):
                    raise CacheInvariantError(
                        f"Inv(2) violation between {first!r} and {second!r}"
                    )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.n_masks} masks, {self.n_entries} entries)"


class LiveBatchScanner:
    """The default consume-in-order batch scanner: one live lookup per key.

    Because every :meth:`result` call reads the live dicts, mid-batch
    inserts are immediately visible and :meth:`note_inserted` needs no
    bookkeeping — coherence is free where there is no precomputed plan.
    Backends that *do* plan ahead (TSS) ship their own scanner.
    """

    def __init__(self, backend: MegaflowStore, keys: list[FlowKey], now: float):
        self.backend = backend
        self.keys = keys
        self.now = now

    def note_inserted(self, entry: MegaflowEntry) -> None:
        """Mid-batch install notification (no-op: lookups are live)."""

    def result(self, i: int, now: float | None = None) -> TssLookupResult:
        """The lookup result for key ``i``."""
        if now is not None:
            self.now = now
        return self.backend.lookup(self.keys[i], now=self.now)

    def plan_misses(self, start: int) -> list[int]:
        """Keys known to miss from position ``start`` on: just ``start``.

        Without a precomputed plan nothing is known about later keys, so
        the upcall coalescer gets the (correct, unamortised) singleton —
        the caller only invokes this after ``result(start)`` missed.
        """
        return [start]


# -- backend registry ------------------------------------------------------------

#: name -> factory; factories accept ``check_invariants`` (and any
#: backend-specific keyword arguments).
_MEGAFLOW_BACKENDS: dict[str, Callable[..., "MegaflowBackend"]] = {}


def register_megaflow_backend(name: str, factory: Callable[..., "MegaflowBackend"]) -> None:
    """Register a backend factory under ``name`` (last registration wins)."""
    _MEGAFLOW_BACKENDS[name] = factory


def _ensure_builtin_backends() -> None:
    # Imported lazily: the builtin backends import this module for the base
    # class, so registering them here at import time would be circular.
    import repro.classifier.tss  # noqa: F401  (registers "tss")
    import repro.classifier.tuplechain  # noqa: F401  (registers "tuplechain")


def megaflow_backend_names() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    _ensure_builtin_backends()
    return tuple(sorted(_MEGAFLOW_BACKENDS))


def make_megaflow_backend(name: str, **kwargs) -> "MegaflowBackend":
    """Build a megaflow backend by registry name.

    Args:
        name: registered backend name (``"tss"``, ``"tuplechain"``, …).
        **kwargs: passed to the factory (``check_invariants`` etc.).
            Keyword arguments the factory does not accept — e.g.
            ``scan_kernel`` for backends without a batch scan kernel —
            are dropped, so config-level knobs stay backend-agnostic.
    """
    _ensure_builtin_backends()
    factory = _MEGAFLOW_BACKENDS.get(name)
    if factory is None:
        known = ", ".join(sorted(_MEGAFLOW_BACKENDS))
        raise ClassifierError(f"unknown megaflow backend {name!r}; known: {known}")
    if kwargs:
        import inspect

        try:
            parameters = inspect.signature(factory).parameters
        except (TypeError, ValueError):  # builtins/odd callables: pass all
            parameters = None
        if parameters is not None and not any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        ):
            kwargs = {k: v for k, v in kwargs.items() if k in parameters}
    return factory(**kwargs)


def backend_name_of(backend: "MegaflowBackend") -> str | None:
    """The registry name whose factory built ``backend``, or None.

    Only class factories can be matched; backends from closure factories
    (or never registered) return None.
    """
    _ensure_builtin_backends()
    for name, factory in _MEGAFLOW_BACKENDS.items():
        if isinstance(factory, type) and type(backend) is factory:
            return name
    return None


# -- live backend-to-backend rebuild ----------------------------------------------


class BackendRebuild:
    """Incrementally rebuild a store's contents into a fresh backend.

    The dicts-as-truth invariant *is* the rebuild contract: the source's
    per-mask dicts hold every installed entry, so a fresh backend of any
    registered kind can be reconstructed from them without consulting the
    old backend's index.  The rebuild is incremental — :meth:`step` copies a
    bounded slice per call, so the hot path keeps serving lookups from the
    old backend between slices — and journalled: the source notifies every
    in-flight rebuild of inserts, removals and flushes that land mid-build,
    and the journal is replayed in arrival order after each slice.

    The target adopts the source's *entry objects*, not copies.  That keeps
    every identity-based consumer valid across the swap: the datapath's
    microflow cache validates via ``find_entry`` (object identity), the
    kernel mask cache holds entry references, and per-entry statistics
    (hits, last_used) keep accumulating on the one live object.  The only
    field :meth:`MegaflowStore.insert` would clobber — ``created_at`` — is
    saved and restored around the adoption.

    Lifecycle::

        rebuild = BackendRebuild(store, "tuplechain")
        while not rebuild.done:
            rebuild.step(max_entries=512)   # bounded work per call
        target = rebuild.finish()           # verify + detach + stats carry

    :meth:`finish` verifies entry and mask counts match the source (the
    structural entries-dropped-equals-zero guarantee) and carries the
    hit/miss counters over so operator-visible statistics survive.  Scan
    and probe counters are *not* carried: they are denominated in
    backend-native probe units, which are not comparable across kinds.
    """

    def __init__(
        self,
        source: MegaflowStore,
        target_kind: str,
        slice_size: int = 512,
        **target_kwargs,
    ):
        if not isinstance(source, MegaflowStore):
            raise ClassifierError(
                f"rebuild source must be a MegaflowStore, got {type(source).__name__}"
            )
        if slice_size <= 0:
            raise ClassifierError(f"slice_size must be positive, got {slice_size}")
        self.source = source
        self.target_kind = target_kind
        self.slice_size = slice_size
        self.target = make_megaflow_backend(
            target_kind, check_invariants=source.check_invariants, **target_kwargs
        )
        # Snapshot of the entry *objects* at rebuild start.  Entries removed
        # after the snapshot are skipped at copy time (``find_entry`` says
        # they left the truth store) and the journal covers everything else.
        self._snapshot: list[MegaflowEntry] = list(source.entries())
        self._cursor = 0
        self._journal: list[tuple[str, MegaflowEntry | None]] = []
        self.entries_copied = 0
        self.journal_replayed = 0
        self._detached = False
        source._rebuild_journals.append(self)

    # -- journal feed (called by the source store) ---------------------------
    def note_insert(self, entry: MegaflowEntry) -> None:
        self._journal.append(("insert", entry))

    def note_remove(self, entry: MegaflowEntry) -> None:
        self._journal.append(("remove", entry))

    def note_flush(self) -> None:
        self._journal.append(("flush", None))

    # -- progress ------------------------------------------------------------
    @property
    def total(self) -> int:
        """Entries in the start-of-rebuild snapshot."""
        return len(self._snapshot)

    @property
    def progress(self) -> float:
        """Fraction of the snapshot copied (1.0 for an empty snapshot)."""
        if not self._snapshot:
            return 1.0
        return self._cursor / len(self._snapshot)

    @property
    def done(self) -> bool:
        """True when the snapshot is exhausted and the journal is drained."""
        return self._cursor >= len(self._snapshot) and not self._journal

    # -- the build -----------------------------------------------------------
    def _adopt(self, entry: MegaflowEntry) -> None:
        """Install the source's entry *object* into the target.

        ``insert`` stamps ``created_at = now``; passing ``now=last_used``
        keeps ``last_used`` exact and the saved ``created_at`` is restored
        after.  If the target already holds the object (journal replay after
        the snapshot copy reached it), insert's refresh path returns the
        existing object with ``last_used`` untouched — a harmless no-op.
        """
        created = entry.created_at
        stored = self.target.insert(entry, now=entry.last_used)
        if stored is entry:
            entry.created_at = created

    def _drain_journal(self) -> None:
        # Replaying an insert can itself be observed by *other* rebuilds,
        # never by this one (notifications come from the source store only).
        while self._journal:
            ops, self._journal = self._journal, []
            for op, entry in ops:
                self.journal_replayed += 1
                if op == "insert":
                    self._adopt(entry)
                elif op == "remove":
                    self.target.remove(entry)
                else:  # flush
                    self.target.flush()

    def step(self, max_entries: int | None = None) -> int:
        """Copy up to ``max_entries`` snapshot entries, then drain the journal.

        Returns the number of snapshot entries *visited* (copied or
        skipped), 0 once the snapshot is exhausted.  Bounded work per call
        is the point: the caller interleaves steps with live traffic.
        """
        budget = self.slice_size if max_entries is None else max_entries
        visited = 0
        # One index burst per slice: the target's accelerator appends
        # amortise across the copied entries (insert_batch's discipline).
        with self.target.index_burst():
            while visited < budget and self._cursor < len(self._snapshot):
                entry = self._snapshot[self._cursor]
                self._cursor += 1
                visited += 1
                # Entries that left the truth store since the snapshot
                # (removed, evicted, flushed) are skipped; the journal
                # already reflects whatever replaced them.
                if self.source.find_entry(entry):
                    self._adopt(entry)
                    self.entries_copied += 1
            self._drain_journal()
        return visited

    def run_to_completion(self) -> None:
        while not self.done:
            self.step()

    def detach(self) -> None:
        """Stop observing the source (idempotent)."""
        if not self._detached:
            self._detached = True
            try:
                self.source._rebuild_journals.remove(self)
            except ValueError:
                pass

    def finish(self) -> "MegaflowBackend":
        """Complete the rebuild, verify it, and return the target backend.

        Verifies entry and mask counts against the source — the rebuild is
        structurally lossless (entries dropped ≡ 0) or it refuses to hand
        the target over.  Carries ``stats_hits`` / ``stats_misses`` so the
        operator-visible hit statistics survive the swap; scan/probe
        counters stay at zero because their units are backend-native.
        """
        self.run_to_completion()
        self.detach()
        if (
            self.target.n_entries != self.source.n_entries
            or self.target.n_masks != self.source.n_masks
        ):
            raise ClassifierError(
                f"rebuild to {self.target_kind!r} diverged from the truth store: "
                f"target {self.target.n_entries} entries/{self.target.n_masks} masks, "
                f"source {self.source.n_entries} entries/{self.source.n_masks} masks"
            )
        self.target.stats_hits = self.source.stats_hits
        self.target.stats_misses = self.source.stats_misses
        return self.target

    def __repr__(self) -> str:
        state = "done" if self.done else f"{self.progress:.0%}"
        return (
            f"BackendRebuild({type(self.source).__name__} -> "
            f"{self.target_kind}, {state})"
        )
