"""Hierarchical tries: the classic trie-of-tries classifier (§7, [31]).

One binary trie per dimension: the first-dimension trie is walked along the
packet's bits; every visited node that terminates some rule's prefix hangs
a next-dimension trie, which is searched recursively (backtracking).  The
deepest/highest-priority match wins.

Why it resists TSE: the structure depends only on the *rule set* — lookup
cost is bounded by ``O(w^d)`` trie nodes regardless of what traffic arrived
before, so adversarial packets cannot inflate later lookups.  The §7
comparison benchmarks show exactly that: flat cost under attack while the
TSS cache's scan length explodes.

Rules must constrain fields with MSB-anchored prefix masks (exact matches
are full-length prefixes); arbitrary masks are rejected at build time.
"""

from __future__ import annotations

from repro.classifier.actions import DENY
from repro.classifier.base import ClassifierResult, PacketClassifier
from repro.classifier.rule import FlowRule
from repro.exceptions import ClassifierError
from repro.packet.fields import FIELD_ORDER, FIELDS, FlowKey

__all__ = ["HierarchicalTrieClassifier", "prefix_length"]


def prefix_length(mask: int, width: int) -> int:
    """Length of an MSB-anchored prefix mask; raises on non-prefix masks."""
    if mask == 0:
        return 0
    plen = mask.bit_count()
    if mask != (((1 << plen) - 1) << (width - plen)):
        raise ClassifierError(f"mask {mask:#x} is not an MSB prefix on {width} bits")
    return plen


class _TrieNode:
    """One binary trie node."""

    __slots__ = ("children", "next_dim", "rules")

    def __init__(self) -> None:
        self.children: list[_TrieNode | None] = [None, None]
        self.next_dim: _Trie | None = None
        self.rules: list[tuple[int, int, FlowRule]] | None = None  # last dim only


class _Trie:
    """A binary trie over one field's prefixes."""

    __slots__ = ("root", "width")

    def __init__(self, width: int):
        self.root = _TrieNode()
        self.width = width

    def insert(self, value: int, plen: int) -> _TrieNode:
        node = self.root
        for position in range(plen):
            bit = (value >> (self.width - 1 - position)) & 1
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        return node

    def node_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(child for child in node.children if child is not None)
        return count


class HierarchicalTrieClassifier(PacketClassifier):
    """Trie-of-tries over the fields the rule set constrains.

    Args:
        rules: the rule list (priorities honoured; insertion order breaks
            ties, matching the flow-table semantics).
        fields: dimension order; defaults to the canonical order of the
            fields any rule constrains.
    """

    name = "hierarchical-tries"

    def __init__(self, rules: list[FlowRule], fields: tuple[str, ...] | None = None):
        if fields is None:
            used = {f for rule in rules for f in rule.match.fields}
            fields = tuple(name for name in FIELD_ORDER if name in used)
        if not fields and any(not r.match.is_catchall for r in rules):
            raise ClassifierError("no dimensions derivable from the rule set")
        self.fields = fields
        self._widths = [FIELDS[name].width for name in fields]
        self._root = _Trie(self._widths[0]) if fields else None
        self._catchalls: list[tuple[int, int, FlowRule]] = []
        for sequence, rule in enumerate(rules):
            self._insert(rule, sequence)

    # -- construction -----------------------------------------------------------
    def _insert(self, rule: FlowRule, sequence: int) -> None:
        entry = (-rule.priority, sequence, rule)
        if self._root is None or rule.match.is_catchall:
            self._catchalls.append(entry)
            self._catchalls.sort()
            return
        trie = self._root
        node: _TrieNode | None = None
        for dim, name in enumerate(self.fields):
            constraint = rule.match.constraint(name)
            if constraint is None:
                value, plen = 0, 0
            else:
                value, mask = constraint
                plen = prefix_length(mask, self._widths[dim])
            node = trie.insert(value, plen)
            if dim == len(self.fields) - 1:
                if node.rules is None:
                    node.rules = []
                node.rules.append(entry)
                node.rules.sort()
            else:
                if node.next_dim is None:
                    node.next_dim = _Trie(self._widths[dim + 1])
                trie = node.next_dim

    # -- lookup ------------------------------------------------------------------
    def classify(self, key: FlowKey) -> ClassifierResult:
        best: tuple[int, int, FlowRule] | None = None
        cost = 0

        def search(trie: _Trie, dim: int) -> None:
            nonlocal best, cost
            value = key[self.fields[dim]]
            width = self._widths[dim]
            node: _TrieNode | None = trie.root
            position = 0
            while node is not None:
                cost += 1
                if dim == len(self.fields) - 1:
                    if node.rules:
                        cost += 1  # bucket peek
                        candidate = node.rules[0]
                        if best is None or candidate < best:
                            best = candidate
                elif node.next_dim is not None:
                    search(node.next_dim, dim + 1)
                if position >= width:
                    break
                bit = (value >> (width - 1 - position)) & 1
                node = node.children[bit]
                position += 1

        if self._root is not None:
            search(self._root, 0)
        for candidate in self._catchalls:
            cost += 1
            if best is None or candidate < best:
                best = candidate
            break  # catchalls are sorted; the first is the best

        if best is None:
            return ClassifierResult(action=DENY, cost=cost)
        _nprio, _seq, rule = best
        return ClassifierResult(action=rule.action, cost=cost, rule_name=rule.name)

    def memory_units(self) -> int:
        """Total trie nodes (all dimensions)."""
        if self._root is None:
            return len(self._catchalls)

        def count(trie: _Trie) -> int:
            total = 0
            stack = [trie.root]
            while stack:
                node = stack.pop()
                total += 1
                stack.extend(child for child in node.children if child is not None)
                if node.next_dim is not None:
                    total += count(node.next_dim)
            return total

        return count(self._root) + len(self._catchalls)
