"""Slow-path megaflow generation: how flow-table lookups spawn MFC entries.

This module implements the construction at the centre of the paper (§3.2,
§4): given a packet that missed the megaflow cache, consult the ordered flow
table and emit a megaflow entry that

* **covers** the packet (Inv(1)), and
* is **disjoint** from every entry any other packet can spawn (Inv(2)),

while un-wildcarding as few bits as possible.  All the strategies the paper
discusses are instances of one *chunked decision procedure*:

Walk rules in priority order.  For each rule, examine its constrained
fields in canonical field order; each field's constrained bits are split
MSB-first into ``k`` chunks.  Un-wildcard chunks one at a time: if the
packet agrees with the rule on the chunk, continue; at the first
disagreeing chunk stop — the mismatch is proven and the remaining bits stay
wildcarded.  If every constrained bit agrees the rule matches: emit
``(packet & mask, mask, rule.action)``.

* ``k = width`` (one-bit chunks) is the paper's **wildcarding strategy**:
  for a single exact-match allow rule it yields the prefix-shaped cache of
  Fig. 3 (w masks, w+1 entries), and for multi-field ACLs the
  multiplicative mask explosion of Fig. 5 / Theorem 4.2.
* ``k = 1`` (one chunk of all bits) is the **exact-match strategy** of
  Fig. 2: a single mask, exponentially many keys.
* intermediate ``k`` realises the O(k) time / O(k·2^(w/k)) space trade-off
  of Theorem 4.1, which the ablation benchmarks sweep.

Correctness argument (tested property, not just prose): the bits a packet
un-wildcards pin down its entire decision path — agreeing chunks are pinned
to the rule's values and the first disagreeing chunk is pinned to the
packet's value, which disagrees with the rule for *every* packet matching
the emitted entry.  Hence any packet matching an entry reproduces the exact
path that created it, so overlapping entries are identical, which is
Inv(2).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Mapping

from repro.classifier.actions import DENY, Action
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import FlowRule
from repro.classifier.tss import MegaflowEntry
from repro.exceptions import StrategyError
from repro.packet.fields import FIELD_ORDER, FIELDS, FlowKey, FlowMask

__all__ = [
    "StrategyConfig",
    "WILDCARDING",
    "EXACT_MATCH",
    "OVS_DEFAULT",
    "MegaflowGenerator",
    "SlowPathResult",
]

_INDEX = {name: i for i, name in enumerate(FIELD_ORDER)}


@dataclass(frozen=True)
class StrategyConfig:
    """Tuple-space construction strategy (the ``k`` of Theorems 4.1/4.2).

    Attributes:
        default_chunks: number of chunks each constrained field is split
            into.  ``None`` means one chunk **per bit** (``k = w``), the
            paper's wildcarding strategy; ``1`` collapses the whole field
            into a single chunk, the exact-match strategy.
        field_chunks: per-field overrides, e.g. ``{"ipv6_src": 1}``.
        wide_field_threshold: when set, any constrained field wider than
            this many bits is forced to one chunk.  This models the OVS
            behaviour of §5.4 where IPv6 addresses are exact-matched (few
            masks, entry explosion) while ports are still bit-wildcarded.
    """

    default_chunks: int | None = None
    field_chunks: Mapping[str, int] = dc_field(default_factory=dict)
    wide_field_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.default_chunks is not None and self.default_chunks < 1:
            raise StrategyError(f"default_chunks must be >= 1, got {self.default_chunks}")
        for name, k in self.field_chunks.items():
            if name not in FIELDS:
                raise StrategyError(f"unknown field {name!r} in field_chunks")
            if k < 1:
                raise StrategyError(f"{name}: chunk count must be >= 1, got {k}")
        if self.wide_field_threshold is not None and self.wide_field_threshold < 1:
            raise StrategyError("wide_field_threshold must be >= 1")

    def chunks_for(self, field_name: str) -> int | None:
        """Chunk count for ``field_name`` (None = per-bit)."""
        if field_name in self.field_chunks:
            return self.field_chunks[field_name]
        width = FIELDS[field_name].width
        if self.wide_field_threshold is not None and width > self.wide_field_threshold:
            return 1
        return self.default_chunks


#: The paper's "wildcarding" strategy — what OVS usually does (§4.1).
WILDCARDING = StrategyConfig(default_chunks=None)

#: The paper's "exact-match" strategy — one mask, exponential keys (Fig. 2).
EXACT_MATCH = StrategyConfig(default_chunks=1)

#: OVS-as-observed: bit-level wildcarding, except IPv6 addresses are
#: exact-matched (the §5.4 memory blow-up quirk).
OVS_DEFAULT = StrategyConfig(default_chunks=None, wide_field_threshold=64)


@dataclass(frozen=True)
class SlowPathResult:
    """Outcome of one slow-path invocation.

    Attributes:
        entry: the generated megaflow (always covers the packet).
        rule: the flow-table rule that matched (None on table miss).
        rules_examined: how many rules the linear scan visited.
    """

    entry: MegaflowEntry
    rule: FlowRule | None
    rules_examined: int


class MegaflowGenerator:
    """Generates megaflow entries from flow-table lookups.

    Args:
        table: the ordered flow table (slow-path classifier).
        strategy: tuple-space construction strategy.
    """

    def __init__(self, table: FlowTable, strategy: StrategyConfig = WILDCARDING):
        self.table = table
        self.strategy = strategy
        # (field, rule mask) -> chunk masks, precomputed per rule constraint.
        self._chunk_cache: dict[tuple[str, int], tuple[int, ...]] = {}

    # -- chunk computation ------------------------------------------------------
    def _chunks(self, field_name: str, rule_mask: int) -> tuple[int, ...]:
        """Split a rule's constrained bits into the strategy's chunk masks."""
        cached = self._chunk_cache.get((field_name, rule_mask))
        if cached is not None:
            return cached
        width = FIELDS[field_name].width
        # Constrained bit positions, MSB first.
        positions = [p for p in range(width) if rule_mask & (1 << (width - 1 - p))]
        k = self.strategy.chunks_for(field_name)
        if k is None or k >= len(positions):
            groups = [[p] for p in positions]
        else:
            # Split into k nearly-equal contiguous groups (first groups get
            # the remainder), mirroring numpy.array_split semantics.
            n = len(positions)
            base, extra = divmod(n, k)
            groups = []
            start = 0
            for i in range(k):
                size = base + (1 if i < extra else 0)
                groups.append(positions[start : start + size])
                start += size
        chunk_masks = tuple(
            sum(1 << (width - 1 - p) for p in group) for group in groups if group
        )
        self._chunk_cache[(field_name, rule_mask)] = chunk_masks
        return chunk_masks

    # -- the decision procedure ---------------------------------------------------
    def generate(self, key: FlowKey) -> SlowPathResult:
        """Run the chunked decision procedure for ``key`` (see module doc)."""
        mask_values = [0] * len(FIELD_ORDER)
        key_values = key.values
        rules_examined = 0
        for rule in self.table.rules_by_priority():
            rules_examined += 1
            matched = True
            for field_name, rule_value, rule_mask in rule.match.constraints():
                idx = _INDEX[field_name]
                key_value = key_values[idx]
                for chunk in self._chunks(field_name, rule_mask):
                    mask_values[idx] |= chunk
                    if (key_value ^ rule_value) & chunk:
                        matched = False
                        break
                if not matched:
                    break
            if matched:
                return self._emit(key, mask_values, rule.action, rule, rules_examined)
        # Table miss: OpenFlow table-miss defaults to drop.  Every examined
        # bit stays in the mask so the miss entry remains disjoint from the
        # rule-matching entries.
        return self._emit(key, mask_values, DENY, None, rules_examined)

    def _emit(
        self,
        key: FlowKey,
        mask_values: list[int],
        action: Action,
        rule: FlowRule | None,
        rules_examined: int,
    ) -> SlowPathResult:
        mask = FlowMask.from_values(tuple(mask_values))
        entry = MegaflowEntry(
            mask=mask,
            key=key.masked(mask),
            action=action,
            source_rule=rule.name if rule is not None else "<table-miss>",
        )
        return SlowPathResult(entry=entry, rule=rule, rules_examined=rules_examined)

    def classify(self, key: FlowKey) -> Action:
        """Reference classification (ignores caches): flow-table semantics."""
        rule = self.table.lookup(key)
        return rule.action if rule is not None else DENY
