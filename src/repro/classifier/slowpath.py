"""Slow-path megaflow generation: how flow-table lookups spawn MFC entries.

This module implements the construction at the centre of the paper (§3.2,
§4): given a packet that missed the megaflow cache, consult the ordered flow
table and emit a megaflow entry that

* **covers** the packet (Inv(1)), and
* is **disjoint** from every entry any other packet can spawn (Inv(2)),

while un-wildcarding as few bits as possible.  All the strategies the paper
discusses are instances of one *chunked decision procedure*:

Walk rules in priority order.  For each rule, examine its constrained
fields in canonical field order; each field's constrained bits are split
MSB-first into ``k`` chunks.  Un-wildcard chunks one at a time: if the
packet agrees with the rule on the chunk, continue; at the first
disagreeing chunk stop — the mismatch is proven and the remaining bits stay
wildcarded.  If every constrained bit agrees the rule matches: emit
``(packet & mask, mask, rule.action)``.

* ``k = width`` (one-bit chunks) is the paper's **wildcarding strategy**:
  for a single exact-match allow rule it yields the prefix-shaped cache of
  Fig. 3 (w masks, w+1 entries), and for multi-field ACLs the
  multiplicative mask explosion of Fig. 5 / Theorem 4.2.
* ``k = 1`` (one chunk of all bits) is the **exact-match strategy** of
  Fig. 2: a single mask, exponentially many keys.
* intermediate ``k`` realises the O(k) time / O(k·2^(w/k)) space trade-off
  of Theorem 4.1, which the ablation benchmarks sweep.

Correctness argument (tested property, not just prose): the bits a packet
un-wildcards pin down its entire decision path — agreeing chunks are pinned
to the rule's values and the first disagreeing chunk is pinned to the
packet's value, which disagrees with the rule for *every* packet matching
the emitted entry.  Hence any packet matching an entry reproduces the exact
path that created it, so overlapping entries are identical, which is
Inv(2).

Batched generation.  :meth:`MegaflowGenerator.generate_batch` produces the
same results as per-key :meth:`MegaflowGenerator.generate` — same masks,
actions, ``rules_examined`` — but amortises the rule walk across a burst of
missed keys:

* the decision procedure is compiled once per flow-table version into a
  flat *program* (one test per chunk, in rule/field/chunk order) whose
  chunk comparisons are precomputed as uint64 column parts, so a burst of
  unproven keys walks the whole table in a handful of numpy passes over
  their column matrix;
* proven decision paths are memoised in a **chunk-decision trie**: each
  node re-runs one chunk test, each edge is an agree/disagree outcome, and
  each leaf carries the path-determined mask/action/``rules_examined``.
  The correctness argument above is exactly what makes this sound — the
  branch taken at every node depends only on the chunk agreement bits, so
  any key reaching a proven leaf reproduces the scalar walk bit for bit,
  and only the emitted masked key differs per packet;
* the trie (plus an exact-key memo in front of it) is a pure accelerator:
  it is rebuilt from the flow table and discarded whenever the table's
  version changes (any rule insert/remove/flush), honouring the
  dicts-as-truth invariant — the ordered flow table remains the single
  source of truth for classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Mapping, Sequence

import numpy as np

from repro.classifier.actions import DENY, Action
from repro.classifier.flowtable import FlowTable
from repro.classifier.kernel import COLUMN_SPLITS, U64, to_column_matrix
from repro.classifier.rule import FlowRule
from repro.classifier.tss import MegaflowEntry
from repro.exceptions import StrategyError
from repro.packet.fields import FIELD_ORDER, FIELDS, FlowKey, FlowMask

__all__ = [
    "StrategyConfig",
    "WILDCARDING",
    "EXACT_MATCH",
    "OVS_DEFAULT",
    "MegaflowGenerator",
    "SlowPathResult",
]

_INDEX = {name: i for i, name in enumerate(FIELD_ORDER)}

# Field index -> [(column, shift)] in the shared uint64 column layout (two
# columns for >64-bit fields), for compiling chunk tests to column parts.
_FIELD_COLUMNS: dict[int, list[tuple[int, int]]] = {}
for _column, (_findex, _shift) in enumerate(COLUMN_SPLITS):
    _FIELD_COLUMNS.setdefault(_findex, []).append((_column, _shift))


class _TrieNode:
    """One chunk test of the decision procedure; edges are its outcomes.

    ``agree``/``disagree`` are ``None`` (path not yet proven), another
    node, or a :class:`_TrieLeaf`.
    """

    __slots__ = ("field", "value", "chunk", "agree", "disagree")

    def __init__(self, field: int, value: int, chunk: int):
        self.field = field
        self.value = value
        self.chunk = chunk
        self.agree = None
        self.disagree = None


class _TrieLeaf:
    """A proven decision path: everything but the emitted key is pinned."""

    __slots__ = ("mask", "action", "rule", "rules_examined", "source_rule")

    def __init__(
        self,
        mask: FlowMask,
        action: Action,
        rule: FlowRule | None,
        rules_examined: int,
        source_rule: str,
    ):
        self.mask = mask
        self.action = action
        self.rule = rule
        self.rules_examined = rules_examined
        self.source_rule = source_rule


@dataclass(frozen=True)
class StrategyConfig:
    """Tuple-space construction strategy (the ``k`` of Theorems 4.1/4.2).

    Attributes:
        default_chunks: number of chunks each constrained field is split
            into.  ``None`` means one chunk **per bit** (``k = w``), the
            paper's wildcarding strategy; ``1`` collapses the whole field
            into a single chunk, the exact-match strategy.
        field_chunks: per-field overrides, e.g. ``{"ipv6_src": 1}``.
        wide_field_threshold: when set, any constrained field wider than
            this many bits is forced to one chunk.  This models the OVS
            behaviour of §5.4 where IPv6 addresses are exact-matched (few
            masks, entry explosion) while ports are still bit-wildcarded.
    """

    default_chunks: int | None = None
    field_chunks: Mapping[str, int] = dc_field(default_factory=dict)
    wide_field_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.default_chunks is not None and self.default_chunks < 1:
            raise StrategyError(f"default_chunks must be >= 1, got {self.default_chunks}")
        for name, k in self.field_chunks.items():
            if name not in FIELDS:
                raise StrategyError(f"unknown field {name!r} in field_chunks")
            if k < 1:
                raise StrategyError(f"{name}: chunk count must be >= 1, got {k}")
        if self.wide_field_threshold is not None and self.wide_field_threshold < 1:
            raise StrategyError("wide_field_threshold must be >= 1")

    def chunks_for(self, field_name: str) -> int | None:
        """Chunk count for ``field_name`` (None = per-bit)."""
        if field_name in self.field_chunks:
            return self.field_chunks[field_name]
        width = FIELDS[field_name].width
        if self.wide_field_threshold is not None and width > self.wide_field_threshold:
            return 1
        return self.default_chunks


#: The paper's "wildcarding" strategy — what OVS usually does (§4.1).
WILDCARDING = StrategyConfig(default_chunks=None)

#: The paper's "exact-match" strategy — one mask, exponential keys (Fig. 2).
EXACT_MATCH = StrategyConfig(default_chunks=1)

#: OVS-as-observed: bit-level wildcarding, except IPv6 addresses are
#: exact-matched (the §5.4 memory blow-up quirk).
OVS_DEFAULT = StrategyConfig(default_chunks=None, wide_field_threshold=64)


@dataclass(frozen=True)
class SlowPathResult:
    """Outcome of one slow-path invocation.

    Attributes:
        entry: the generated megaflow (always covers the packet).
        rule: the flow-table rule that matched (None on table miss).
        rules_examined: how many rules the linear scan visited.
    """

    entry: MegaflowEntry
    rule: FlowRule | None
    rules_examined: int


class MegaflowGenerator:
    """Generates megaflow entries from flow-table lookups.

    Args:
        table: the ordered flow table (slow-path classifier).
        strategy: tuple-space construction strategy.
    """

    def __init__(self, table: FlowTable, strategy: StrategyConfig = WILDCARDING):
        self.table = table
        self.strategy = strategy
        # (field, rule mask) -> chunk masks, precomputed per rule constraint.
        self._chunk_cache: dict[tuple[str, int], tuple[int, ...]] = {}
        # Batched-generation accelerator state (see module docstring): the
        # compiled test program, the chunk-decision trie and the exact-key
        # memo are all derived from the flow table at one version and
        # discarded wholesale when the table mutates.
        self._program: list[tuple[FlowRule, list[tuple[int, int, int, tuple]]]] | None = None
        self._trie_version: int = -1
        self._trie_root: _TrieNode | _TrieLeaf | None = None
        self._key_memo: dict[tuple[int, ...], _TrieLeaf] = {}

    # -- chunk computation ------------------------------------------------------
    def _chunks(self, field_name: str, rule_mask: int) -> tuple[int, ...]:
        """Split a rule's constrained bits into the strategy's chunk masks."""
        cached = self._chunk_cache.get((field_name, rule_mask))
        if cached is not None:
            return cached
        width = FIELDS[field_name].width
        # Constrained bit positions, MSB first.
        positions = [p for p in range(width) if rule_mask & (1 << (width - 1 - p))]
        k = self.strategy.chunks_for(field_name)
        if k is None or k >= len(positions):
            groups = [[p] for p in positions]
        else:
            # Split into k nearly-equal contiguous groups (first groups get
            # the remainder), mirroring numpy.array_split semantics.
            n = len(positions)
            base, extra = divmod(n, k)
            groups = []
            start = 0
            for i in range(k):
                size = base + (1 if i < extra else 0)
                groups.append(positions[start : start + size])
                start += size
        chunk_masks = tuple(
            sum(1 << (width - 1 - p) for p in group) for group in groups if group
        )
        self._chunk_cache[(field_name, rule_mask)] = chunk_masks
        return chunk_masks

    # -- the decision procedure ---------------------------------------------------
    def generate(self, key: FlowKey) -> SlowPathResult:
        """Run the chunked decision procedure for ``key`` (see module doc)."""
        mask_values = [0] * len(FIELD_ORDER)
        key_values = key.values
        rules_examined = 0
        for rule in self.table.rules_by_priority():
            rules_examined += 1
            matched = True
            for field_name, rule_value, rule_mask in rule.match.constraints():
                idx = _INDEX[field_name]
                key_value = key_values[idx]
                for chunk in self._chunks(field_name, rule_mask):
                    mask_values[idx] |= chunk
                    if (key_value ^ rule_value) & chunk:
                        matched = False
                        break
                if not matched:
                    break
            if matched:
                return self._emit(key, mask_values, rule.action, rule, rules_examined)
        # Table miss: OpenFlow table-miss defaults to drop.  Every examined
        # bit stays in the mask so the miss entry remains disjoint from the
        # rule-matching entries.
        return self._emit(key, mask_values, DENY, None, rules_examined)

    # -- batched generation -------------------------------------------------------
    def generate_batch(self, keys: Sequence[FlowKey]) -> list[SlowPathResult]:
        """Run the decision procedure for a burst of missed keys.

        Result-for-result identical to ``[self.generate(k) for k in keys]``
        — same masks, actions, matched rules and ``rules_examined`` — but
        amortised: keys whose decision path is already proven resolve
        through the exact-key memo or a trie walk, and the remaining
        (deduplicated) keys walk the compiled program together over their
        uint64 column matrix, one vectorised chunk test at a time.
        """
        keys = list(keys)
        self._sync_trie()
        memo = self._key_memo
        leaves: list[_TrieLeaf | None] = []
        pending_values: list[tuple[int, ...]] = []
        pending_seen: set[tuple[int, ...]] = set()
        for key in keys:
            values = key.values
            leaf = memo.get(values)
            if leaf is None:
                leaf = self._trie_lookup(values)
                if leaf is not None:
                    memo[values] = leaf
                elif values not in pending_seen:
                    pending_seen.add(values)
                    pending_values.append(values)
            leaves.append(leaf)
        if pending_values:
            agree = self._agree_matrix(pending_values)
            for j, values in enumerate(pending_values):
                memo[values] = self._trie_build(agree, j)
            for i, key in enumerate(keys):
                if leaves[i] is None:
                    leaves[i] = memo[key.values]
        return [self._emit_leaf(key, leaf) for key, leaf in zip(keys, leaves)]

    def _sync_trie(self) -> None:
        """(Re)compile the program and reset the trie on table mutation."""
        if self._program is not None and self._trie_version == self.table.version:
            return
        program = []
        for rule in self.table.rules_by_priority():
            tests: list[tuple[int, int, int, tuple]] = []
            for field_name, rule_value, rule_mask in rule.match.constraints():
                idx = _INDEX[field_name]
                for chunk in self._chunks(field_name, rule_mask):
                    parts = tuple(
                        (column, np.uint64((rule_value >> shift) & part), np.uint64(part))
                        for column, shift in _FIELD_COLUMNS[idx]
                        if (part := (chunk >> shift) & U64)
                    )
                    tests.append((idx, rule_value, chunk, parts))
            program.append((rule, tests))
        self._program = program
        self._trie_version = self.table.version
        self._key_memo = {}
        self._trie_root = self._trie_position(0, 0, [0] * len(FIELD_ORDER))

    def _trie_position(
        self, r: int, t: int, mask_values: list[int]
    ) -> _TrieNode | _TrieLeaf:
        """Node or leaf for program position (rule ``r``, test ``t``).

        ``mask_values`` is the chunk accumulation along the path reaching
        the position — a leaf freezes it (the mask is path-determined).
        """
        program = self._program
        if r == len(program):
            return _TrieLeaf(
                FlowMask.from_values(tuple(mask_values)), DENY, None, r, "<table-miss>"
            )
        rule, tests = program[r]
        if t < len(tests):
            field, value, chunk, _parts = tests[t]
            return _TrieNode(field, value, chunk)
        return _TrieLeaf(
            FlowMask.from_values(tuple(mask_values)), rule.action, rule, r + 1, rule.name
        )

    def _trie_lookup(self, key_values: tuple[int, ...]) -> _TrieLeaf | None:
        """Walk proven decision paths; ``None`` when the path is unproven."""
        node = self._trie_root
        while node is not None:
            if type(node) is _TrieLeaf:
                return node
            if (key_values[node.field] ^ node.value) & node.chunk:
                node = node.disagree
            else:
                node = node.agree
        return None

    def _agree_matrix(self, values_list: list[tuple[int, ...]]) -> list[list[np.ndarray]]:
        """Per-(rule, test) agreement vectors over the whole burst.

        One vectorised XOR/AND per chunk column part — the burst-wide
        counterpart of the scalar ``(key ^ value) & chunk`` test.
        """
        rows = to_column_matrix(values_list)
        matrix: list[list[np.ndarray]] = []
        for _rule, tests in self._program:
            per_rule = []
            for _field, _value, _chunk, parts in tests:
                agree: np.ndarray | None = None
                for column, value_part, mask_part in parts:
                    ok = ((rows[:, column] ^ value_part) & mask_part) == 0
                    agree = ok if agree is None else agree & ok
                per_rule.append(agree)
            matrix.append(per_rule)
        return matrix

    def _trie_build(self, agree: list[list[np.ndarray]], j: int) -> _TrieLeaf:
        """Thread key ``j``'s decision path into the trie and return its leaf.

        The path is read off the precomputed agreement matrix — no scalar
        chunk comparisons — creating only the nodes the trie lacks.
        """
        program = self._program
        mask_values = [0] * len(FIELD_ORDER)
        node = self._trie_root
        r = t = 0
        while type(node) is not _TrieLeaf:
            mask_values[node.field] |= node.chunk
            if agree[r][t][j]:
                t += 1
                nxt = node.agree
                if nxt is None:
                    nxt = self._trie_position(r, t, mask_values)
                    node.agree = nxt
            else:
                r += 1
                t = 0
                nxt = node.disagree
                if nxt is None:
                    nxt = self._trie_position(r, t, mask_values)
                    node.disagree = nxt
            node = nxt
        return node

    def _emit_leaf(self, key: FlowKey, leaf: _TrieLeaf) -> SlowPathResult:
        entry = MegaflowEntry(
            mask=leaf.mask,
            key=key.masked(leaf.mask),
            action=leaf.action,
            source_rule=leaf.source_rule,
        )
        return SlowPathResult(entry=entry, rule=leaf.rule, rules_examined=leaf.rules_examined)

    def _emit(
        self,
        key: FlowKey,
        mask_values: list[int],
        action: Action,
        rule: FlowRule | None,
        rules_examined: int,
    ) -> SlowPathResult:
        mask = FlowMask.from_values(tuple(mask_values))
        entry = MegaflowEntry(
            mask=mask,
            key=key.masked(mask),
            action=action,
            source_rule=rule.name if rule is not None else "<table-miss>",
        )
        return SlowPathResult(entry=entry, rule=rule, rules_examined=rules_examined)

    def classify(self, key: FlowKey) -> Action:
        """Reference classification (ignores caches): flow-table semantics."""
        rule = self.table.lookup(key)
        return rule.action if rule is not None else DENY
