"""Scan-kernel layer: the batch scanner's gather-filter-confirm inner loop.

The TSS accelerator reduces a batch lookup to one dense computation: for a
chunk of keys and the current mask list, compute the salted compound hash
``(sum_c (row_c & mask_c) * w_c) ^ salt`` for every (key, mask) pair, gather
each compound through the byte membership filter, and report per key whether
any mask produced a filter hit plus where the first hit sits.  Everything
semantic — dict confirmation, probe accounting, the fallback walks — stays in
``tss.py``; this module owns only that numeric plan, behind a small kernel
interface so the implementation is selectable like a backend:

* :class:`NumpyScanKernel` — the portable reference: the exact vectorised
  numpy pass PR 1 introduced (dense compound matrix + one filter gather).
* :class:`CffiScanKernel` — a compiled C inner loop (built on first use
  with cffi against the system toolchain, cached under ``_kernel_cache/``)
  that walks masks per key and **early-exits on the first filter hit**, so a
  warmed cache does O(first hit) work per key instead of O(masks).  The rare
  key whose first hit fails dict confirmation (filter false positive)
  resumes the C scan past the failed index via :meth:`ScanPlan.next_hit` —
  identical math, identical verdicts, never a dense matrix.

Selection: ``make_scan_kernel("auto")`` prefers the compiled kernel and
falls back to numpy when the toolchain/cffi is absent; setting
``REPRO_FORCE_NUMPY_KERNEL=1`` forces the numpy path (the no-compiler CI
leg).  Kernels are pure accelerators under the standing invariants: every
candidate they surface is confirmed against the per-mask dicts, so a kernel
can never change a verdict, only how fast the plan is computed.

Equivalence argument for the early-exit kernel (property-tested in
``tests/test_kernel.py``): both kernels evaluate the same compound hash
(addition is commutative mod 2**64, so column order does not matter) against
the same filter snapshot, hence they agree on the *first* filter hit per
key.  A confirmed first hit is the result for both.  On a failed confirm the
numpy path walks its dense candidate row; the cffi path recomputes that row
lazily.  The lazy row can only differ by filter bits set *after* the plan
was built (mid-batch installs, which the datapath announces via
``note_inserted``) — and under Inv(2) at most one installed entry covers any
key, so either walk confirms exactly that entry at exactly its mask index,
or neither confirms and the announced-insert loop returns the same entry at
the same index.  ``masks_inspected`` is index+1 either way.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
from pathlib import Path
from typing import Callable

import numpy as np

from repro.packet.fields import FIELD_ORDER, FIELDS

__all__ = [
    "COLUMN_SPLITS",
    "N_COLUMNS",
    "U64",
    "WEIGHTS",
    "to_columns",
    "to_column_matrix",
    "row_hash",
    "ScanPlan",
    "ScanKernel",
    "NumpyScanKernel",
    "CffiScanKernel",
    "register_scan_kernel",
    "scan_kernel_names",
    "resolve_scan_kernel_name",
    "make_scan_kernel",
    "cffi_kernel_available",
    "FORCE_NUMPY_ENV",
]

# -- column layout (the wire format shared by accelerator and shm transport) --
#
# One uint64 column per field, two for the 128-bit IPv6 addresses.  This
# layout is also the zero-copy wire format of the shared-memory transport:
# a batch of keys travels as its (N x N_COLUMNS) uint64 matrix.
COLUMN_SPLITS: list[tuple[int, int]] = []  # (field index, shift) per column
for _index, _name in enumerate(FIELD_ORDER):
    if FIELDS[_name].width > 64:
        COLUMN_SPLITS.append((_index, 64))
    COLUMN_SPLITS.append((_index, 0))
N_COLUMNS = len(COLUMN_SPLITS)
U64 = (1 << 64) - 1

_HASH_RNG = np.random.default_rng(0x7553_5345)  # deterministic accelerator weights
WEIGHTS = (
    _HASH_RNG.integers(1, 1 << 62, size=N_COLUMNS, dtype=np.uint64) * np.uint64(2)
    + np.uint64(1)
)

FORCE_NUMPY_ENV = "REPRO_FORCE_NUMPY_KERNEL"


def to_columns(values: tuple[int, ...]) -> np.ndarray:
    """Canonical value tuple -> uint64 column row."""
    row = np.empty(N_COLUMNS, dtype=np.uint64)
    for column, (index, shift) in enumerate(COLUMN_SPLITS):
        row[column] = (values[index] >> shift) & U64
    return row


def to_column_matrix(values_list: list[tuple[int, ...]]) -> np.ndarray:
    """Many canonical value tuples -> (N x columns) uint64 matrix."""
    rows = np.empty((len(values_list), N_COLUMNS), dtype=np.uint64)
    for column, (index, shift) in enumerate(COLUMN_SPLITS):
        if shift:
            rows[:, column] = [(v[index] >> shift) & U64 for v in values_list]
        else:
            rows[:, column] = [v[index] & U64 for v in values_list]
    return rows


def row_hash(row: np.ndarray) -> int:
    """Salted modular hash of one column row."""
    return int((row * WEIGHTS).sum(dtype=np.uint64))


# -- the plan a kernel produces ------------------------------------------------
class ScanPlan:
    """Per-chunk filter-candidate plan: first hit per key + a resume walk.

    ``has[j]``/``first[j]``/``first_compound[j]`` describe key ``j``'s first
    filter hit (the common case: one dict confirm and done).  When that
    confirm fails (filter false positive), :meth:`next_hit` resumes the scan
    for that one key past the failed index — from the dense candidate matrix
    (numpy kernel) or by re-entering the C scanner with a start offset (cffi
    kernel, which never materialised the dense matrices).
    """

    has: list[bool]
    first: list[int]
    first_compound: list[int]

    def next_hit(self, j: int, after: int) -> tuple[int, int] | None:
        """The next (mask index, compound) filter hit for key ``j`` past
        index ``after``, or ``None`` when no mask remains a candidate."""
        raise NotImplementedError


class DenseScanPlan(ScanPlan):
    """Numpy plan: the full (keys x masks) compound/candidate matrices."""

    __slots__ = ("has", "first", "first_compound", "_compounds", "_cand")

    def __init__(self, has, first, first_compound, compounds, cand):
        self.has = has
        self.first = first
        self.first_compound = first_compound
        self._compounds = compounds
        self._cand = cand

    def next_hit(self, j, after):
        tail = self._cand[j, after + 1:]
        if not tail.any():
            return None
        index = after + 1 + int(tail.argmax())
        return index, int(self._compounds[j, index])


class ScanKernel:
    """Interface every scan kernel implements (registered like a backend)."""

    name = "abstract"

    def build_plan(
        self,
        rows: np.ndarray,       # (n_keys x N_COLUMNS) uint64 key matrix
        masks: np.ndarray,      # (n_masks x N_COLUMNS) uint64 mask matrix
        salts: np.ndarray,      # (n_masks,) uint64 per-mask salts
        filter_bytes: np.ndarray,  # (2**log2,) uint8 membership filter
        filter_shift: int,      # 64 - log2
        compounds: np.ndarray,  # sorted uint64 entry-compound set (exact)
    ) -> ScanPlan:
        raise NotImplementedError


class NumpyScanKernel(ScanKernel):
    """The portable reference kernel: dense vectorised numpy pass."""

    name = "numpy"

    def build_plan(self, rows, masks, salts, filter_bytes, filter_shift, compounds):
        n_keys = len(rows)
        n = len(masks)
        # Most mask columns are fully wildcarded across the whole tuple
        # space; their AND/MUL terms are identically zero and are skipped.
        columns = np.flatnonzero(masks.any(axis=0)).tolist()
        shape = (n_keys, n)
        if not columns:
            acc = np.zeros(shape, dtype=np.uint64)
        else:
            first_col = columns[0]
            acc = np.bitwise_and(rows[:, first_col, None], masks[None, :, first_col])
            acc *= WEIGHTS[first_col]
            if len(columns) > 1:
                scratch = np.empty(shape, dtype=np.uint64)
                for column in columns[1:]:
                    np.bitwise_and(
                        rows[:, column, None],
                        masks[None, :, column],
                        out=scratch,
                    )
                    scratch *= WEIGHTS[column]
                    acc += scratch
        acc ^= salts[None, :]
        cand = filter_bytes[
            (acc >> np.uint64(filter_shift)).astype(np.intp)
        ].view(bool)
        # Refine the byte-filter candidates with exact membership in the
        # sorted entry-compound set — the filter's false positives are what
        # force fallback walks, and the sparse hit set makes the exact
        # check nearly free.  (64-bit compound collisions remain possible;
        # the caller's dict confirm stays authoritative.)
        hit_rows, hit_cols = np.nonzero(cand)
        if hit_rows.size:
            if len(compounds):
                values = acc[hit_rows, hit_cols]
                positions = np.searchsorted(compounds, values)
                in_bounds = positions < len(compounds)
                member = np.zeros(values.shape, dtype=bool)
                member[in_bounds] = compounds[positions[in_bounds]] == values[in_bounds]
                cand[hit_rows, hit_cols] = member
            else:
                cand[hit_rows, hit_cols] = False
        has = cand.any(axis=1)
        first = np.where(has, cand.argmax(axis=1), 0)
        first_compound = acc[np.arange(n_keys), first]
        return DenseScanPlan(
            has.tolist(), first.tolist(), first_compound.tolist(), acc, cand
        )


# -- compiled kernel -----------------------------------------------------------
_CDEF = """
void tss_scan_first(const uint64_t *rows, const uint64_t *masks,
                    const uint64_t *weights, const uint64_t *salts,
                    const uint8_t *filt, uint64_t shift,
                    const uint64_t *comps, int64_t n_comps,
                    int64_t n_keys, int64_t n_masks, int64_t n_cols,
                    int64_t *first, uint64_t *first_compound);
int64_t tss_scan_hits(const uint64_t *row, const uint64_t *masks,
                      const uint64_t *weights, const uint64_t *salts,
                      const uint8_t *filt, uint64_t shift,
                      const uint64_t *comps, int64_t n_comps,
                      int64_t n_masks, int64_t n_cols, int64_t max_hits,
                      int64_t *indices, uint64_t *compounds);
"""

_SOURCE = """
#include <stdint.h>

/* The scan is processed in strips of STRIP masks: the compound hashes of a
 * whole strip are computed first (sequential, ALU-bound, prefetch-friendly),
 * then the membership filter is probed for each — the probes are random
 * accesses into a filter that can span megabytes, and issuing them as
 * independent loads lets the out-of-order core overlap the cache misses
 * instead of paying one full latency per mask. */
#define STRIP 64

/* Exact membership of one compound in the sorted entry-compound set.  The
 * byte filter in front keeps this off the common (miss) path; the binary
 * search then rejects almost every filter false positive, so the python
 * caller's fallback walk (a full rescan) stays rare. */
static int tss_member(const uint64_t *comps, int64_t n, uint64_t value)
{
    int64_t lo = 0, hi = n;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (comps[mid] < value)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo < n && comps[lo] == value;
}

/* Per key: scan masks in order and early-exit on the first confirmed filter
 * hit.  The python caller confirms that hit against the authoritative
 * dicts; masks past the first hit are only needed on a (rare) failed
 * confirm, and are collected by tss_scan_hits on that path. */
void tss_scan_first(const uint64_t *rows, const uint64_t *masks,
                    const uint64_t *weights, const uint64_t *salts,
                    const uint8_t *filt, uint64_t shift,
                    const uint64_t *comps, int64_t n_comps,
                    int64_t n_keys, int64_t n_masks, int64_t n_cols,
                    int64_t *first, uint64_t *first_compound)
{
    for (int64_t k = 0; k < n_keys; k++) {
        const uint64_t *row = rows + k * n_cols;
        int64_t hit = -1;
        uint64_t hit_acc = 0;
        uint64_t accs[STRIP];
        for (int64_t base = 0; base < n_masks && hit < 0; base += STRIP) {
            int64_t lim = n_masks - base;
            if (lim > STRIP)
                lim = STRIP;
            const uint64_t *mask = masks + base * n_cols;
            for (int64_t i = 0; i < lim; i++, mask += n_cols) {
                uint64_t acc = 0;
                for (int64_t c = 0; c < n_cols; c++)
                    acc += (row[c] & mask[c]) * weights[c];
                accs[i] = acc ^ salts[base + i];
            }
            for (int64_t i = 0; i < lim; i++) {
                if (filt[accs[i] >> shift] &&
                    tss_member(comps, n_comps, accs[i])) {
                    hit = base + i;
                    hit_acc = accs[i];
                    break;
                }
            }
        }
        first[k] = hit;
        first_compound[k] = hit_acc;
    }
}

/* The fallback walk for ONE key: collect membership-confirmed filter hits
 * in mask order (up to max_hits), so a failed dict confirm costs one C
 * call, not one per remaining candidate.  Returns the hit count. */
int64_t tss_scan_hits(const uint64_t *row, const uint64_t *masks,
                      const uint64_t *weights, const uint64_t *salts,
                      const uint8_t *filt, uint64_t shift,
                      const uint64_t *comps, int64_t n_comps,
                      int64_t n_masks, int64_t n_cols, int64_t max_hits,
                      int64_t *indices, uint64_t *compounds)
{
    int64_t count = 0;
    uint64_t accs[STRIP];
    for (int64_t base = 0; base < n_masks && count < max_hits; base += STRIP) {
        int64_t lim = n_masks - base;
        if (lim > STRIP)
            lim = STRIP;
        const uint64_t *mask = masks + base * n_cols;
        for (int64_t i = 0; i < lim; i++, mask += n_cols) {
            uint64_t acc = 0;
            for (int64_t c = 0; c < n_cols; c++)
                acc += (row[c] & mask[c]) * weights[c];
            accs[i] = acc ^ salts[base + i];
        }
        for (int64_t i = 0; i < lim && count < max_hits; i++) {
            if (filt[accs[i] >> shift] &&
                tss_member(comps, n_comps, accs[i])) {
                indices[count] = base + i;
                compounds[count] = accs[i];
                count++;
            }
        }
    }
    return count;
}
"""

#: Compile outcome memo: None = not tried, ("ok", lib) | ("error", message).
_CFFI_STATE: tuple[str, object] | None = None


def _kernel_cache_dir() -> Path:
    return Path(__file__).resolve().parent / "_kernel_cache"


def _load_cffi_lib():
    """Compile (or reuse) the C kernel; returns the (ffi, lib) pair.

    The built extension is cached next to this module under
    ``_kernel_cache/`` keyed by a hash of the C source, so repeated runs —
    and forked worker processes — reuse one compile.  Concurrent compiles
    are race-safe: each builds in a private tmpdir and ``os.replace``s the
    artifact into place.
    """
    import cffi  # deferred: absence means fallback, not import failure

    digest = hashlib.sha256((_CDEF + _SOURCE).encode()).hexdigest()[:12]
    modname = f"_tss_scan_{digest}"
    cache = _kernel_cache_dir()

    ffi = cffi.FFI()
    ffi.cdef(_CDEF)

    from importlib.machinery import EXTENSION_SUFFIXES

    existing = None
    for suffix in EXTENSION_SUFFIXES:
        candidate = cache / f"{modname}{suffix}"
        if candidate.exists():
            existing = candidate
            break
    if existing is None:
        ffi.set_source(modname, _SOURCE, extra_compile_args=["-O3"])
        cache.mkdir(exist_ok=True)
        tmpdir = Path(
            tempfile.mkdtemp(prefix=f".build-{os.getpid()}-", dir=cache)
        )
        try:
            built = Path(ffi.compile(tmpdir=str(tmpdir)))
            existing = cache / built.name
            os.replace(built, existing)
        finally:
            shutil.rmtree(tmpdir, ignore_errors=True)

    import importlib.util

    spec = importlib.util.spec_from_file_location(modname, existing)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.ffi, module.lib


class CffiScanPlan(ScanPlan):
    """Compiled plan: first hits only; :meth:`next_hit` re-enters the C
    scanner once per falling-back key to collect the remaining candidates
    (no dense matrices ever built)."""

    MAX_HITS = 16  # per fetch; a truncated fetch resumes past its last hit

    __slots__ = (
        "has", "first", "first_compound",
        "_lib", "_n_masks", "_n_cols", "_n_comps", "_shift", "_fallback",
        "_arrays",
        "_p_rows", "_p_masks", "_p_weights", "_p_salts", "_p_filter",
        "_p_comps", "_idx_buf", "_comp_buf", "_p_idx", "_p_comp",
    )

    def __init__(self, has, first, first_compound, lib, ffi,
                 rows_c, masks_c, weights_c, salts_c, filt_c, comps_c, shift):
        self.has = has
        self.first = first
        self.first_compound = first_compound
        self._lib = lib
        self._n_masks = len(salts_c)
        self._n_cols = rows_c.shape[1]
        self._n_comps = len(comps_c)
        self._shift = shift
        self._fallback: dict[int, tuple[list[tuple[int, int]], bool]] = {}
        # Pointers are cast once; the numpy arrays are pinned on the plan so
        # the addresses stay alive as long as the plan does.
        self._arrays = (rows_c, masks_c, weights_c, salts_c, filt_c, comps_c)
        self._p_rows = ffi.cast("const uint64_t *", rows_c.ctypes.data)
        self._p_masks = ffi.cast("const uint64_t *", masks_c.ctypes.data)
        self._p_weights = ffi.cast("const uint64_t *", weights_c.ctypes.data)
        self._p_salts = ffi.cast("const uint64_t *", salts_c.ctypes.data)
        self._p_filter = ffi.cast("const uint8_t *", filt_c.ctypes.data)
        self._p_comps = ffi.cast("const uint64_t *", comps_c.ctypes.data)
        self._idx_buf = np.empty(self.MAX_HITS, dtype=np.int64)
        self._comp_buf = np.empty(self.MAX_HITS, dtype=np.uint64)
        self._p_idx = ffi.cast("int64_t *", self._idx_buf.ctypes.data)
        self._p_comp = ffi.cast("uint64_t *", self._comp_buf.ctypes.data)

    def _fetch(self, j: int, start: int) -> tuple[list[tuple[int, int]], bool]:
        """The (index, compound) filter hits for key ``j`` from mask
        ``start`` on (one C call), plus whether the fetch was truncated."""
        if start >= self._n_masks:
            return [], False
        count = self._lib.tss_scan_hits(
            self._p_rows + j * self._n_cols,
            self._p_masks + start * self._n_cols,
            self._p_weights,
            self._p_salts + start,
            self._p_filter,
            self._shift,
            self._p_comps,
            self._n_comps,
            self._n_masks - start,
            self._n_cols,
            self.MAX_HITS,
            self._p_idx,
            self._p_comp,
        )
        indices, compounds = self._idx_buf, self._comp_buf
        hits = [
            (start + int(indices[i]), int(compounds[i])) for i in range(count)
        ]
        return hits, count == self.MAX_HITS

    def next_hit(self, j, after):
        cached = self._fallback.get(j)
        if cached is None:
            cached = self._fetch(j, after + 1)
            self._fallback[j] = cached
        while True:
            hits, truncated = cached
            for index, compound in hits:
                if index > after:
                    return index, compound
            if not truncated:
                return None
            cached = self._fetch(j, hits[-1][0] + 1)
            self._fallback[j] = cached


class CffiScanKernel(ScanKernel):
    """Early-exit compiled C kernel (cffi API mode, GIL released in C)."""

    name = "cffi"

    def __init__(self):
        self._ffi, self._lib = _cffi_runtime()

    def build_plan(self, rows, masks, salts, filter_bytes, filter_shift, compounds):
        n_keys = len(rows)
        n = len(masks)
        # Compact away fully-wildcarded columns — the C loop then touches
        # only columns that contribute to the hash (same skip the numpy
        # kernel performs; addition over uint64 is commutative so the
        # compound is bit-identical).
        active = np.flatnonzero(masks.any(axis=0))
        rows_c = np.ascontiguousarray(rows[:, active])
        masks_c = np.ascontiguousarray(masks[:, active])
        weights_c = np.ascontiguousarray(WEIGHTS[active])
        salts_c = np.ascontiguousarray(salts)
        filt_c = np.ascontiguousarray(filter_bytes)
        comps_c = np.ascontiguousarray(compounds, dtype=np.uint64)
        first = np.empty(n_keys, dtype=np.int64)
        first_compound = np.zeros(n_keys, dtype=np.uint64)
        ffi = self._ffi
        self._lib.tss_scan_first(
            ffi.cast("const uint64_t *", rows_c.ctypes.data),
            ffi.cast("const uint64_t *", masks_c.ctypes.data),
            ffi.cast("const uint64_t *", weights_c.ctypes.data),
            ffi.cast("const uint64_t *", salts_c.ctypes.data),
            ffi.cast("const uint8_t *", filt_c.ctypes.data),
            filter_shift,
            ffi.cast("const uint64_t *", comps_c.ctypes.data),
            len(comps_c),
            n_keys,
            n,
            len(active),
            ffi.cast("int64_t *", first.ctypes.data),
            ffi.cast("uint64_t *", first_compound.ctypes.data),
        )
        has = first >= 0
        return CffiScanPlan(
            has.tolist(),
            np.where(has, first, 0).tolist(),
            first_compound.tolist(),
            self._lib, ffi,
            rows_c, masks_c, weights_c, salts_c, filt_c, comps_c, filter_shift,
        )


def _cffi_runtime():
    """The process-wide compiled kernel, or raise why it is unavailable."""
    global _CFFI_STATE
    if _CFFI_STATE is None:
        try:
            _CFFI_STATE = ("ok", _load_cffi_lib())
        except Exception as exc:  # toolchain/cffi absent: remember why
            _CFFI_STATE = ("error", f"{type(exc).__name__}: {exc}")
    kind, payload = _CFFI_STATE
    if kind != "ok":
        raise RuntimeError(f"cffi scan kernel unavailable ({payload})")
    return payload


def _numpy_forced() -> bool:
    return os.environ.get(FORCE_NUMPY_ENV, "") == "1"


def cffi_kernel_available() -> bool:
    """True when the compiled kernel can be built/loaded and is not forced off."""
    if _numpy_forced():
        return False
    try:
        _cffi_runtime()
    except RuntimeError:
        return False
    return True


# -- registry ------------------------------------------------------------------
_SCAN_KERNELS: dict[str, Callable[[], ScanKernel]] = {}
_NUMPY_SINGLETON = NumpyScanKernel()


def register_scan_kernel(name: str, factory: Callable[[], ScanKernel]) -> None:
    _SCAN_KERNELS[name] = factory


def scan_kernel_names() -> tuple[str, ...]:
    return ("auto", *sorted(_SCAN_KERNELS))


def resolve_scan_kernel_name(name: str = "auto") -> str:
    """What ``make_scan_kernel(name)`` would actually build right now."""
    if name == "auto":
        return "cffi" if cffi_kernel_available() else "numpy"
    if name not in _SCAN_KERNELS:
        raise KeyError(
            f"unknown scan kernel {name!r}; known: {', '.join(scan_kernel_names())}"
        )
    return name


def make_scan_kernel(name: str = "auto") -> ScanKernel:
    """Build a scan kernel; ``"auto"`` prefers compiled, falls back to numpy.

    ``REPRO_FORCE_NUMPY_KERNEL=1`` pins ``"auto"`` to numpy (and makes an
    explicit ``"cffi"`` request fail loudly rather than silently comply).
    """
    resolved = resolve_scan_kernel_name(name)
    if resolved == "cffi" and _numpy_forced():
        raise RuntimeError(
            f"scan kernel 'cffi' requested but {FORCE_NUMPY_ENV}=1 forces numpy"
        )
    return _SCAN_KERNELS[resolved]()


register_scan_kernel("numpy", lambda: _NUMPY_SINGLETON)
register_scan_kernel("cffi", CffiScanKernel)
