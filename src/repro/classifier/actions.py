"""Flow actions: what a classifier decides to do with a matched packet.

The paper's ACLs only need *allow* and *deny*; the switch simulator also
needs *forward to port*.  Actions are small frozen dataclasses so they can
live inside hashable megaflow entries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ActionKind", "Action", "ALLOW", "DENY"]


class ActionKind(enum.Enum):
    """The primitive action types of the simulated pipeline."""

    ALLOW = "allow"
    DENY = "deny"
    FORWARD = "forward"


@dataclass(frozen=True)
class Action:
    """A packet-processing action.

    Attributes:
        kind: the primitive (allow / deny / forward).
        out_port: output port for FORWARD actions; ``None`` otherwise.
    """

    kind: ActionKind
    out_port: int | None = None

    @property
    def is_drop(self) -> bool:
        """True for deny actions (the entries MFCGuard evicts)."""
        return self.kind is ActionKind.DENY

    @property
    def is_allow(self) -> bool:
        """True for allow/forward actions (traffic admitted by the ACL)."""
        return self.kind in (ActionKind.ALLOW, ActionKind.FORWARD)

    @classmethod
    def forward(cls, out_port: int) -> "Action":
        """A FORWARD action to ``out_port``."""
        return cls(ActionKind.FORWARD, out_port=out_port)

    def __str__(self) -> str:
        if self.kind is ActionKind.FORWARD:
            return f"forward:{self.out_port}"
        return self.kind.value


ALLOW = Action(ActionKind.ALLOW)
DENY = Action(ActionKind.DENY)
