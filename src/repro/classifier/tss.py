"""Tuple Space Search megaflow cache (the paper's Algorithm 1).

The cache is an unordered set of key/mask pairs ``C = {(K, M)}`` organised
as the TSS scheme of Srinivasan–Suri–Varghese: a list of distinct masks (the
"tuple space") plus one hash table per mask storing the keys under that
mask.  Lookup applies each mask to the packet header in turn and probes the
mask's hash; thanks to the Independence invariant (Inv(2), §3.2) it may
early-exit on the first hit.

The number of masks inspected by each lookup is reported back to the caller
— that figure *is* the attack surface: time complexity grows as O(|masks|)
(Observation 1), which the TSE attack drives into the thousands.

Implementation note: the semantic model is exactly the per-mask hash-table
scan above, and the per-mask dictionaries remain the source of truth.  On
top of them sits a vectorised accelerator (numpy): every entry is indexed
by a salted 64-bit hash of its masked key, so one lookup ANDs the key
against the whole mask matrix, hashes row-wise, and binary-searches the
sorted entry-hash array — turning the O(|M|) Python probe loop into a few
array operations while reporting the same ``masks_inspected`` the
sequential scan would (candidates are confirmed against the authoritative
dicts, so hash collisions cannot change semantics).  A small memo
additionally short-circuits repeated lookups of identical keys between
cache mutations, since attack traces are replayed in loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.classifier.actions import Action
from repro.exceptions import CacheInvariantError
from repro.packet.fields import FIELD_ORDER, FIELDS, FlowKey, FlowMask

__all__ = ["MegaflowEntry", "TssLookupResult", "TupleSpaceSearch", "ENTRY_BYTES", "MASK_BYTES"]

# Memory-footprint estimates per cache object, sized after the OVS kernel
# datapath structures (struct sw_flow ≈ key + mask ref + stats ≈ 600+ bytes,
# struct sw_flow_mask ≈ 100+ bytes).  Used for the §5.4 IPv6 memory blow-up
# experiment; only relative magnitudes matter.
ENTRY_BYTES = 640
MASK_BYTES = 128

# Column layout for the vectorised accelerator: one uint64 column per
# field, two for the 128-bit IPv6 addresses.
_COLUMN_SPLITS: list[tuple[int, int]] = []  # (field index, shift) per column
for _index, _name in enumerate(FIELD_ORDER):
    if FIELDS[_name].width > 64:
        _COLUMN_SPLITS.append((_index, 64))
    _COLUMN_SPLITS.append((_index, 0))
_N_COLUMNS = len(_COLUMN_SPLITS)
_U64 = (1 << 64) - 1

_HASH_RNG = np.random.default_rng(0x7553_5345)  # deterministic accelerator weights
_WEIGHTS = (
    _HASH_RNG.integers(1, 1 << 62, size=_N_COLUMNS, dtype=np.uint64) * np.uint64(2)
    + np.uint64(1)
)


def _to_columns(values: tuple[int, ...]) -> np.ndarray:
    """Canonical value tuple -> uint64 column row."""
    row = np.empty(_N_COLUMNS, dtype=np.uint64)
    for column, (index, shift) in enumerate(_COLUMN_SPLITS):
        row[column] = (values[index] >> shift) & _U64
    return row


def _row_hash(row: np.ndarray) -> int:
    """Salted modular hash of one column row."""
    return int((row * _WEIGHTS).sum(dtype=np.uint64))


@dataclass
class MegaflowEntry:
    """One megaflow: a masked key plus its action.

    Attributes:
        mask: the entry's FlowMask (its tuple in the tuple space).
        key: the masked key — canonical value tuple under ``mask``.
        action: what to do with matching packets.
        source_rule: name of the flow-table rule whose lookup spawned the
            entry (provenance used by MFCGuard's pattern matcher).
        created_at / last_used: simulation timestamps (seconds).
        hits: number of fast-path hits served.
    """

    mask: FlowMask
    key: tuple[int, ...]
    action: Action
    source_rule: str = ""
    created_at: float = 0.0
    last_used: float = 0.0
    hits: int = 0

    def covers(self, key: FlowKey) -> bool:
        """True when ``key`` matches this entry (agrees on all masked bits)."""
        return key.masked(self.mask) == self.key

    def overlaps(self, other: "MegaflowEntry") -> bool:
        """True when some packet could match both entries."""
        return self.mask.overlaps_key(self.key, other.mask, other.key)

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={value:#x}/{mask:#x}"
            for (name, mask), value in zip(self.mask.items(), self.key)
            if mask
        )
        return f"MegaflowEntry({fields or '*'} -> {self.action})"


@dataclass(frozen=True)
class TssLookupResult:
    """Outcome of one TSS lookup.

    Attributes:
        entry: the hit entry, or ``None`` on a cache miss.
        masks_inspected: number of mask tables probed — the linear-scan cost
            that the cost model turns into CPU cycles.
    """

    entry: MegaflowEntry | None
    masks_inspected: int

    @property
    def hit(self) -> bool:
        return self.entry is not None


class TupleSpaceSearch:
    """The megaflow cache: mask list + per-mask hash tables.

    Args:
        check_invariants: when True, every insert verifies Inv(2)
            (disjointness) against the whole cache — O(|C|) per insert, used
            by the test suite to prove the slow path correct.
        scan_policy: ``"insertion"`` scans masks in insertion order (the
            model of the paper's analysis); ``"hit_sorted"`` periodically
            re-sorts masks by hit count, an optional OVS-like optimisation
            exercised by the ablation benchmarks.
    """

    RESORT_INTERVAL = 1024  # lookups between re-sorts under "hit_sorted"
    MEMO_LIMIT = 65536  # distinct keys memoised between cache mutations

    def __init__(self, check_invariants: bool = False, scan_policy: str = "insertion"):
        if scan_policy not in ("insertion", "hit_sorted"):
            raise CacheInvariantError(f"unknown scan policy {scan_policy!r}")
        self.check_invariants = check_invariants
        self.scan_policy = scan_policy
        # Source of truth: per-mask dicts keyed by *reduced* masked keys
        # (only the fields the mask constrains), plus the scan-ordered mask
        # list of Algorithm 1.
        self._tables: dict[FlowMask, dict[tuple[int, ...], MegaflowEntry]] = {}
        self._mask_fields: dict[FlowMask, tuple[tuple[int, int], ...]] = {}
        self._mask_order: list[FlowMask] = []
        self._mask_hits: dict[FlowMask, int] = {}
        self._lookups_since_sort = 0
        # Lookup memo: replayed traffic (the common case during an attack)
        # re-resolves in O(1) between cache mutations.
        self._memo: dict[tuple[int, ...], TssLookupResult] = {}
        # Vectorised accelerator state.  Inserts update it incrementally
        # (the hot path while an attack detonates); removals and reorders
        # mark it dirty for a lazy rebuild.
        self._acc_dirty = True
        self._acc_capacity = 0
        self._acc_mask_buffer: np.ndarray = np.empty((0, _N_COLUMNS), dtype=np.uint64)
        self._acc_salt_buffer: np.ndarray = np.empty(0, dtype=np.uint64)
        self._acc_compounds: np.ndarray = np.empty(0, dtype=np.uint64)
        self._acc_entries: dict[int, list[tuple[int, MegaflowEntry]]] = {}
        self._mask_index: dict[FlowMask, int] = {}
        self.stats_hits = 0
        self.stats_misses = 0

    # -- size ----------------------------------------------------------------
    @property
    def n_masks(self) -> int:
        """Number of distinct masks (the |M| of Observation 1)."""
        return len(self._mask_order)

    @property
    def n_entries(self) -> int:
        """Number of megaflow entries (the |C| of Observation 1)."""
        return sum(len(table) for table in self._tables.values())

    def memory_bytes(self) -> int:
        """Estimated memory footprint (entries + mask structures)."""
        return self.n_entries * ENTRY_BYTES + self.n_masks * MASK_BYTES

    def __len__(self) -> int:
        return self.n_entries

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _fields_of(mask: FlowMask) -> tuple[tuple[int, int], ...]:
        return tuple((i, m) for i, m in enumerate(mask.values) if m)

    def _reduce(self, mask: FlowMask, full_values: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(full_values[i] & m for i, m in self._mask_fields[mask])

    def _invalidate(self) -> None:
        self._memo.clear()
        self._acc_dirty = True

    def _acc_grow(self, needed: int) -> None:
        if needed <= self._acc_capacity:
            return
        capacity = max(64, self._acc_capacity * 2, needed)
        masks = np.zeros((capacity, _N_COLUMNS), dtype=np.uint64)
        masks[: self._acc_capacity] = self._acc_mask_buffer[: self._acc_capacity]
        self._acc_mask_buffer = masks
        rng = np.random.default_rng(0xACCE1)
        self._acc_salt_buffer = rng.integers(0, 1 << 63, size=capacity, dtype=np.uint64)
        self._acc_capacity = capacity

    def _acc_append_mask(self, mask: FlowMask) -> None:
        index = len(self._mask_order) - 1  # mask already appended to order
        self._acc_grow(index + 1)
        self._acc_mask_buffer[index] = _to_columns(mask.values)
        self._mask_index[mask] = index

    def _acc_append_entry(self, mask: FlowMask, entry: MegaflowEntry) -> None:
        index = self._mask_index[mask]
        compound = (_row_hash(_to_columns(entry.key)) ^ int(self._acc_salt_buffer[index])) & _U64
        position = int(np.searchsorted(self._acc_compounds, np.uint64(compound)))
        self._acc_compounds = np.insert(self._acc_compounds, position, np.uint64(compound))
        self._acc_entries.setdefault(compound, []).append((index, entry))

    def _rebuild_accelerator(self) -> None:
        n = len(self._mask_order)
        self._acc_capacity = 0
        self._acc_mask_buffer = np.empty((0, _N_COLUMNS), dtype=np.uint64)
        self._acc_grow(max(n, 1))
        self._acc_entries = {}
        self._mask_index = {mask: i for i, mask in enumerate(self._mask_order)}
        compounds: list[int] = []
        for index, mask in enumerate(self._mask_order):
            self._acc_mask_buffer[index] = _to_columns(mask.values)
            salt = int(self._acc_salt_buffer[index])
            for entry in self._tables[mask].values():
                compound = (_row_hash(_to_columns(entry.key)) ^ salt) & _U64
                compounds.append(compound)
                self._acc_entries.setdefault(compound, []).append((index, entry))
        self._acc_compounds = np.sort(np.asarray(compounds, dtype=np.uint64))
        self._acc_dirty = False

    # -- core operations -------------------------------------------------------
    def lookup(self, key: FlowKey, now: float = 0.0) -> TssLookupResult:
        """Algorithm 1: scan masks, probe each hash, early-exit on hit."""
        key_values = key.values
        memoised = self._memo.get(key_values)
        if memoised is not None:
            entry = memoised.entry
            if entry is not None:
                entry.hits += 1
                entry.last_used = now
                self.stats_hits += 1
                self._note_hit(entry.mask)
            else:
                self.stats_misses += 1
            return memoised

        result = self._scan(key, key_values, now)
        if len(self._memo) < self.MEMO_LIMIT and self.scan_policy == "insertion":
            self._memo[key_values] = result
        return result

    def _scan(self, key: FlowKey, key_values: tuple[int, ...], now: float) -> TssLookupResult:
        n = len(self._mask_order)
        if n == 0:
            self.stats_misses += 1
            return TssLookupResult(entry=None, masks_inspected=0)
        if self._acc_dirty:
            self._rebuild_accelerator()
        if not len(self._acc_compounds):
            self.stats_misses += 1
            self._note_miss()
            return TssLookupResult(entry=None, masks_inspected=n)
        row = _to_columns(key_values)
        masked = self._acc_mask_buffer[:n] & row
        hashes = (masked * _WEIGHTS).sum(axis=1, dtype=np.uint64)
        compounds = hashes ^ self._acc_salt_buffer[:n]
        positions = np.searchsorted(self._acc_compounds, compounds)
        np.clip(positions, 0, len(self._acc_compounds) - 1, out=positions)
        candidates = self._acc_compounds[positions] == compounds
        for index in np.flatnonzero(candidates):
            # Confirm against the authoritative dicts: 64-bit collisions
            # are possible, just rare, and must not change semantics.
            for entry_index, entry in self._acc_entries.get(int(compounds[index]), ()):
                if entry_index == index and entry.covers(key):
                    entry.hits += 1
                    entry.last_used = now
                    self.stats_hits += 1
                    self._note_hit(entry.mask)
                    return TssLookupResult(entry=entry, masks_inspected=int(index) + 1)
        self.stats_misses += 1
        self._note_miss()
        return TssLookupResult(entry=None, masks_inspected=n)

    def _note_hit(self, mask: FlowMask) -> None:
        if self.scan_policy == "hit_sorted":
            self._mask_hits[mask] = self._mask_hits.get(mask, 0) + 1
            self._maybe_resort()

    def _note_miss(self) -> None:
        if self.scan_policy == "hit_sorted":
            self._maybe_resort()

    def _maybe_resort(self) -> None:
        self._lookups_since_sort += 1
        if self._lookups_since_sort >= self.RESORT_INTERVAL:
            self._lookups_since_sort = 0
            self._mask_order.sort(key=lambda m: -self._mask_hits.get(m, 0))
            self._invalidate()

    def insert(self, entry: MegaflowEntry, now: float = 0.0) -> MegaflowEntry:
        """Install ``entry``; refresh timestamps if an identical entry exists.

        Returns the entry actually stored (the existing one on refresh).
        Raises :class:`CacheInvariantError` when invariant checking is on and
        the entry overlaps a different existing entry.
        """
        new_mask = False
        table = self._tables.get(entry.mask)
        if table is None:
            table = {}
            self._tables[entry.mask] = table
            self._mask_fields[entry.mask] = self._fields_of(entry.mask)
            self._mask_order.append(entry.mask)
            self._mask_hits[entry.mask] = 0
            new_mask = True
        reduced = self._reduce(entry.mask, entry.key)
        existing = table.get(reduced)
        if existing is not None:
            existing.last_used = now
            return existing
        if self.check_invariants:
            self._assert_disjoint(entry)
        entry.created_at = now
        entry.last_used = now
        table[reduced] = entry
        # Keep the accelerator in sync incrementally (the hot path while an
        # attack detonates); memoised results must still be dropped because
        # previous misses may now hit.
        if not self._acc_dirty:
            if new_mask:
                self._acc_append_mask(entry.mask)
            self._acc_append_entry(entry.mask, entry)
        self._memo.clear()
        return entry

    def _assert_disjoint(self, entry: MegaflowEntry) -> None:
        for other in self.entries():
            if entry.overlaps(other):
                raise CacheInvariantError(
                    f"Inv(2) violation: {entry!r} overlaps existing {other!r}"
                )

    def remove(self, entry: MegaflowEntry) -> bool:
        """Remove ``entry``; True when it was present."""
        table = self._tables.get(entry.mask)
        if table is None:
            return False
        reduced = self._reduce(entry.mask, entry.key)
        if table.get(reduced) is not entry:
            return False
        del table[reduced]
        if not table:
            del self._tables[entry.mask]
            del self._mask_fields[entry.mask]
            self._mask_order.remove(entry.mask)
            self._mask_hits.pop(entry.mask, None)
        self._invalidate()
        return True

    def remove_where(self, predicate: Callable[[MegaflowEntry], bool]) -> list[MegaflowEntry]:
        """Remove and return every entry satisfying ``predicate``."""
        victims = [entry for entry in self.entries() if predicate(entry)]
        for entry in victims:
            self.remove(entry)
        return victims

    def evict_idle(self, now: float, idle_timeout: float) -> list[MegaflowEntry]:
        """Remove entries unused for at least ``idle_timeout`` seconds.

        This is the 10-second megaflow idle eviction responsible for the
        delayed victim recovery in Fig. 8a/8b.
        """
        return self.remove_where(lambda e: now - e.last_used >= idle_timeout)

    def shuffle_masks(self, seed: int = 0) -> None:
        """Randomise the mask scan order (steady-state churn model).

        In a long-running switch the mask list's order decorrelates from
        insertion order: entries idle out and re-spark, revalidation
        rewrites the tables, flows come and go.  The paper's cost model
        assumes exactly this — a victim's mask sits mid-scan on average
        (hence flow completion time growing "half as high" as the mask
        count).  Experiments call this between phases to put the cache in
        that steady state; semantics are unaffected (the scan finds the
        same unique match wherever its mask sits).
        """
        rng = np.random.default_rng(seed)
        order = list(self._mask_order)
        rng.shuffle(order)
        self._mask_order = order
        self._invalidate()

    def flush(self) -> None:
        """Drop every entry and mask (slow-path revalidation flush)."""
        self._tables.clear()
        self._mask_fields.clear()
        self._mask_order.clear()
        self._mask_hits.clear()
        self._invalidate()

    # -- iteration / introspection ----------------------------------------------
    def entries(self) -> Iterator[MegaflowEntry]:
        """Iterate all entries (mask scan order, then key-insertion order)."""
        for mask in list(self._mask_order):
            yield from list(self._tables.get(mask, {}).values())

    def masks(self) -> list[FlowMask]:
        """The mask list in current scan order."""
        return list(self._mask_order)

    def entries_for_mask(self, mask: FlowMask) -> list[MegaflowEntry]:
        """All entries stored under ``mask``."""
        return list(self._tables.get(mask, {}).values())

    def find_entry(self, entry: MegaflowEntry) -> bool:
        """True when exactly this entry object is still installed (O(1))."""
        table = self._tables.get(entry.mask)
        if table is None:
            return False
        return table.get(self._reduce(entry.mask, entry.key)) is entry

    def probe_mask(self, mask: FlowMask, key: FlowKey, now: float = 0.0) -> MegaflowEntry | None:
        """Probe a single mask's hash table (kernel mask-cache fast path)."""
        table = self._tables.get(mask)
        if table is None:
            return None
        entry = table.get(self._reduce(mask, key.values))
        if entry is not None:
            entry.hits += 1
            entry.last_used = now
            self.stats_hits += 1
        return entry

    def find(self, key: FlowKey) -> MegaflowEntry | None:
        """Like lookup but without touching statistics (diagnostics)."""
        key_values = key.values
        for mask in self._mask_order:
            masked = tuple(key_values[i] & m for i, m in self._mask_fields[mask])
            entry = self._tables[mask].get(masked)
            if entry is not None:
                return entry
        return None

    def verify_disjoint(self) -> None:
        """Assert Inv(2) over the whole cache (test helper, O(|C|^2))."""
        all_entries = list(self.entries())
        for i, first in enumerate(all_entries):
            for second in all_entries[i + 1 :]:
                if first.overlaps(second):
                    raise CacheInvariantError(
                        f"Inv(2) violation between {first!r} and {second!r}"
                    )

    def __repr__(self) -> str:
        return f"TupleSpaceSearch({self.n_masks} masks, {self.n_entries} entries)"
