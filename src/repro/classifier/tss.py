"""Tuple Space Search megaflow backend (the paper's Algorithm 1).

The cache is an unordered set of key/mask pairs ``C = {(K, M)}`` organised
as the TSS scheme of Srinivasan–Suri–Varghese: a list of distinct masks (the
"tuple space") plus one hash table per mask storing the keys under that
mask.  Lookup applies each mask to the packet header in turn and probes the
mask's hash; thanks to the Independence invariant (Inv(2), §3.2) it may
early-exit on the first hit.

The number of masks inspected by each lookup is reported back to the caller
— that figure *is* the attack surface: time complexity grows as O(|masks|)
(Observation 1), which the TSE attack drives into the thousands.

Implementation note: the semantic model is exactly the per-mask hash-table
scan above, and the per-mask dictionaries remain the source of truth (they
live in :class:`~repro.classifier.backend.MegaflowStore`, the shared base
every megaflow backend builds on).  On top of them sits a vectorised
accelerator (numpy): every entry is indexed by a salted 64-bit hash of its
masked key, so one lookup ANDs the key against the whole mask matrix,
hashes row-wise, and binary-searches the sorted entry-hash array — turning
the O(|M|) Python probe loop into a few array operations while reporting
the same ``masks_inspected`` the sequential scan would (candidates are
confirmed against the authoritative dicts, so hash collisions cannot change
semantics).  A small memo additionally short-circuits repeated lookups of
identical keys between cache mutations, since attack traces are replayed in
loops.

Batch pipeline.  :meth:`TupleSpaceSearch.lookup_batch` classifies N keys
per call the way real software switches do (OVS/DPDK process ~32-packet
batches): the (N keys x M masks) compound matrix is built in a handful of
numpy passes — one bitwise-AND + multiply-accumulate per *non-wildcarded
mask column* (most mask columns are all-zero, so most of the 15-column
hash collapses away) — and candidate (key, mask) pairs are detected with a
single gather through a byte-sized membership filter indexed by the *top*
bits of the compound (the top bits of a multiplicative hash mix every
input bit; the low bits do not, and IP-prefix attack traffic collides on
them systematically).  Filter hits are confirmed against the
authoritative dicts exactly like sequential candidates, so false
positives cost a dict probe, never a wrong verdict.  Batch results are
verdict-for-verdict identical to sequential ``lookup`` — same entries,
same ``masks_inspected``, same statistics and ``hit_sorted`` resort
cadence (property-tested in ``tests/test_batch.py``).

Accelerator invariants:

* the per-mask dicts are the single source of truth; the accelerator is a
  pure accelerator — rebuilding it from the dicts at any point must never
  change observable behaviour;
* inserts are O(1) amortised: new entry hashes go to an unsorted pending
  buffer (plus a filter bit) and are merged into the sorted compound
  array only when the pending buffer outgrows an eighth of it, replacing
  the old O(n)-copy-per-insert ``np.insert`` scheme that turned a
  detonating attack into quadratic work;
* per-mask hash salts are append-only: growth of the salt buffer
  explicitly preserves already-issued salts, because a salt change would
  orphan every compound computed under it (entries installed but
  unfindable by the accelerator);
* under :meth:`MegaflowStore.index_burst` (the datapath wraps every
  ``process_batch`` in one) accelerator appends are *deferred*: inserts
  mutate the authoritative dicts immediately but queue their accelerator
  work, which drains as one vectorised append (one column-matrix build,
  one hash pass, at most one pending merge) before the next accelerator
  read or at burst exit — one accelerator append/resort per burst instead
  of per upcall.  Deferral is invisible to lookups because every
  accelerator read path drains first and the batch scanner's
  announced-insert check covers not-yet-indexed entries.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.classifier.backend import (
    ENTRY_BYTES,
    MASK_BYTES,
    BatchLookupResult,
    MegaflowEntry,
    MegaflowStore,
    TssLookupResult,
    register_megaflow_backend,
)

# The column layout and hash weights live in ``classifier.kernel`` now (they
# double as the shared-memory transport's wire format); the underscore names
# are kept as aliases for existing call sites.
from repro.classifier.kernel import (
    COLUMN_SPLITS as _COLUMN_SPLITS,  # noqa: F401  (back-compat alias)
    N_COLUMNS as _N_COLUMNS,
    U64 as _U64,
    WEIGHTS as _WEIGHTS,
    make_scan_kernel,
    row_hash as _row_hash,
    to_column_matrix as _to_column_matrix,
    to_columns as _to_columns,
)
from repro.exceptions import CacheInvariantError
from repro.packet.fields import FlowKey, FlowMask

__all__ = [
    "MegaflowEntry",
    "TssLookupResult",
    "BatchLookupResult",
    "TupleSpaceSearch",
    "ENTRY_BYTES",
    "MASK_BYTES",
]

# Candidate filter sizing: one byte per slot, indexed by the top bits of a
# compound.  Grown whenever the entry count reaches 1/1024 of the slot
# count, so the expected false-candidate rate stays ~0.1% per (key, mask).
_FILTER_MIN_LOG2 = 16
_FILTER_MAX_LOG2 = 24
_FILTER_LOAD_LOG2 = 10


class TupleSpaceSearch(MegaflowStore):
    """The TSS megaflow backend: mask list + per-mask hash tables.

    Args:
        check_invariants: when True, every insert verifies Inv(2)
            (disjointness) against the whole cache — O(|C|) per insert, used
            by the test suite to prove the slow path correct.
        scan_policy: ``"insertion"`` scans masks in insertion order (the
            model of the paper's analysis); ``"hit_sorted"`` periodically
            re-sorts masks by hit count, an optional OVS-like optimisation
            exercised by the ablation benchmarks.
        scan_kernel: which :mod:`repro.classifier.kernel` implementation
            computes the batch scan plan — ``"auto"`` (compiled cffi kernel
            when the toolchain allows, numpy otherwise), ``"numpy"`` or
            ``"cffi"``.  Kernels are pure accelerators: every candidate is
            confirmed against the dicts, so the choice can never change a
            verdict (``tests/test_kernel.py``).
    """

    RESORT_INTERVAL = 1024  # lookups between re-sorts under "hit_sorted"

    # Probe-cost surface: TSS is the identity case of the probe-native
    # cost plane — one native probe unit is one mask-table probe
    # (``probe_unit_cost() == 1.0``) and a full scan probes every mask
    # (``expected_scan_cost() == max(n_masks, 1)``), both inherited from
    # :class:`MegaflowStore`.  Every mask-count-anchored consumer
    # therefore prices TSS exactly as before the probe refactor.

    def __init__(
        self,
        check_invariants: bool = False,
        scan_policy: str = "insertion",
        scan_kernel: str = "auto",
    ):
        if scan_policy not in ("insertion", "hit_sorted"):
            raise CacheInvariantError(f"unknown scan policy {scan_policy!r}")
        super().__init__(check_invariants=check_invariants)
        self.scan_policy = scan_policy
        self._scan_kernel = make_scan_kernel(scan_kernel)
        self.scan_kernel_name = self._scan_kernel.name
        self._mask_hits: dict[FlowMask, int] = {}
        self._lookups_since_sort = 0
        # Vectorised accelerator state.  Inserts update it incrementally
        # (the hot path while an attack detonates); removals and reorders
        # mark it dirty for a lazy rebuild.
        self._acc_dirty = True
        self._acc_capacity = 0
        self._acc_mask_buffer: np.ndarray = np.empty((0, _N_COLUMNS), dtype=np.uint64)
        self._acc_salt_buffer: np.ndarray = np.empty(0, dtype=np.uint64)
        self._acc_salt_rng = np.random.default_rng(0xACCE1)
        self._acc_compounds: np.ndarray = np.empty(0, dtype=np.uint64)
        # Amortised insert path: fresh compounds accumulate unsorted here
        # (plus a set for membership and a filter bit) and merge into the
        # sorted array periodically.
        self._acc_pending: list[int] = []
        self._acc_pending_set: set[int] = set()
        self._acc_filter: np.ndarray = np.zeros(1 << _FILTER_MIN_LOG2, dtype=np.uint8)
        self._acc_filter_shift = np.uint64(64 - _FILTER_MIN_LOG2)
        self._acc_entries: dict[int, list[tuple[int, MegaflowEntry]]] = {}
        self._mask_index: dict[FlowMask, int] = {}
        # Burst-deferred accelerator appends (see module docstring): while
        # a burst is open, (entry, new_mask) pairs queue here and drain
        # vectorised before the next accelerator read.
        self._burst_depth = 0
        self._burst_buf: list[tuple[MegaflowEntry, bool]] = []

    # -- store hooks -------------------------------------------------------------
    def _index_invalidate(self) -> None:
        self._acc_dirty = True
        # The lazy rebuild re-indexes everything from the dicts, deferred
        # appends included.
        self._burst_buf.clear()

    def _index_insert(self, entry: MegaflowEntry, new_mask: bool) -> None:
        if self._acc_dirty:
            return
        if self._burst_depth:
            self._burst_buf.append((entry, new_mask))
            return
        if new_mask:
            self._acc_append_mask(entry.mask)
        self._acc_append_entry(entry.mask, entry)

    @contextmanager
    def index_burst(self):
        """Defer accelerator appends for the duration of one batch."""
        self._burst_depth += 1
        try:
            yield self
        finally:
            self._burst_depth -= 1
            if self._burst_depth == 0:
                self._burst_drain()

    def _mask_added(self, mask: FlowMask) -> None:
        self._mask_hits[mask] = 0

    def _mask_removed(self, mask: FlowMask) -> None:
        self._mask_hits.pop(mask, None)

    def _flushed(self) -> None:
        self._mask_hits.clear()

    # -- accelerator maintenance ----------------------------------------------
    def _acc_grow(self, needed: int) -> None:
        if needed <= self._acc_capacity:
            return
        old = self._acc_capacity
        capacity = max(64, old * 2, needed)
        masks = np.zeros((capacity, _N_COLUMNS), dtype=np.uint64)
        masks[:old] = self._acc_mask_buffer[:old]
        self._acc_mask_buffer = masks
        # Salts are append-only: already-issued salts are copied over and
        # only the new tail is drawn, so compounds computed under earlier
        # salts stay valid.  (Regenerating the whole buffer — even from a
        # fixed seed — silently bets on numpy keeping prefix-stable
        # generation; a salt change strands every installed entry.)
        salts = np.empty(capacity, dtype=np.uint64)
        salts[:old] = self._acc_salt_buffer[:old]
        salts[old:] = self._acc_salt_rng.integers(
            0, 1 << 63, size=capacity - old, dtype=np.uint64
        )
        self._acc_salt_buffer = salts
        self._acc_capacity = capacity

    def _acc_append_mask(self, mask: FlowMask) -> None:
        index = len(self._mask_order) - 1  # mask already appended to order
        self._acc_grow(index + 1)
        self._acc_mask_buffer[index] = _to_columns(mask.values)
        self._mask_index[mask] = index

    def _burst_drain(self) -> None:
        """Fold deferred inserts into the accelerator in one pass.

        Equivalent to having run :meth:`_acc_append_mask` /
        :meth:`_acc_append_entry` per entry at insert time — same mask
        positions (truth-side ``_mask_order`` appends happened in the same
        order), same compounds — but the per-entry column derive and hash
        collapse into one matrix build, and the pending-merge threshold is
        checked once per burst.
        """
        buf = self._burst_buf
        if not buf:
            return
        self._burst_buf = []
        if self._acc_dirty:
            return  # the lazy rebuild covers these entries
        for entry, new_mask in buf:
            if new_mask:
                # The k-th unindexed mask sits at order position
                # len(_mask_index) + k: bursts defer every append, so
                # indexed masks are exactly the order prefix.
                index = len(self._mask_index)
                self._acc_grow(index + 1)
                self._acc_mask_buffer[index] = _to_columns(entry.mask.values)
                self._mask_index[entry.mask] = index
        rows = _to_column_matrix([entry.key for entry, _ in buf])
        indices = np.fromiter(
            (self._mask_index[entry.mask] for entry, _ in buf),
            dtype=np.intp,
            count=len(buf),
        )
        hashes = (rows * _WEIGHTS).sum(axis=1, dtype=np.uint64)
        compounds = (hashes ^ self._acc_salt_buffer[indices]).tolist()
        shift = int(self._acc_filter_shift)
        for (entry, _), index, compound in zip(buf, indices.tolist(), compounds):
            self._acc_pending.append(compound)
            self._acc_pending_set.add(compound)
            self._acc_filter[compound >> shift] = 1
            self._acc_entries.setdefault(compound, []).append((index, entry))
        if len(self._acc_pending) >= max(64, len(self._acc_compounds) >> 3):
            self._acc_merge_pending()

    def _acc_append_entry(self, mask: FlowMask, entry: MegaflowEntry) -> None:
        index = self._mask_index[mask]
        compound = (_row_hash(_to_columns(entry.key)) ^ int(self._acc_salt_buffer[index])) & _U64
        self._acc_pending.append(compound)
        self._acc_pending_set.add(compound)
        self._acc_filter[compound >> int(self._acc_filter_shift)] = 1
        self._acc_entries.setdefault(compound, []).append((index, entry))
        if len(self._acc_pending) >= max(64, len(self._acc_compounds) >> 3):
            self._acc_merge_pending()

    def _acc_merge_pending(self) -> None:
        """Fold the pending buffer into the sorted compound array.

        Runs every O(n/8) inserts, so each compound is touched O(log n)
        times over the cache's lifetime — amortised O(1)-ish per insert
        versus the O(n) copy a per-insert ``np.insert`` would pay.
        """
        if self._acc_pending:
            merged = np.concatenate(
                [self._acc_compounds, np.asarray(self._acc_pending, dtype=np.uint64)]
            )
            merged.sort()
            self._acc_compounds = merged
            self._acc_pending.clear()
            self._acc_pending_set.clear()
        self._acc_filter_maybe_grow()

    def _acc_filter_maybe_grow(self) -> None:
        total = len(self._acc_compounds) + len(self._acc_pending)
        log2 = 64 - int(self._acc_filter_shift)
        if total << _FILTER_LOAD_LOG2 >= (1 << log2) and log2 < _FILTER_MAX_LOG2:
            self._acc_filter_rebuild(min(_FILTER_MAX_LOG2, log2 + 2))

    def _acc_filter_rebuild(self, log2: int) -> None:
        self._acc_filter = np.zeros(1 << log2, dtype=np.uint8)
        self._acc_filter_shift = np.uint64(64 - log2)
        if len(self._acc_compounds):
            self._acc_filter[
                (self._acc_compounds >> self._acc_filter_shift).astype(np.intp)
            ] = 1
        for compound in self._acc_pending:
            self._acc_filter[compound >> int(self._acc_filter_shift)] = 1

    def _acc_candidates(self, compounds: np.ndarray) -> np.ndarray:
        """Exact membership of ``compounds`` in the entry-hash set.

        Binary search over the sorted main array; pending (unmerged)
        compounds are found by filter-gather prefilter plus a set probe
        per surviving position, so inserts never force a sort here.
        Used by the sequential scan, where the per-lookup vector is only
        |M| wide.
        """
        main = self._acc_compounds
        if len(main):
            positions = np.searchsorted(main, compounds)
            np.clip(positions, 0, len(main) - 1, out=positions)
            hits = main[positions] == compounds
        else:
            hits = np.zeros(compounds.shape, dtype=bool)
        if self._acc_pending:
            maybe = self._acc_filter[
                (compounds >> self._acc_filter_shift).astype(np.intp)
            ].view(bool)
            maybe &= ~hits
            if maybe.any():
                pending = self._acc_pending_set
                for index in np.flatnonzero(maybe).tolist():
                    if int(compounds[index]) in pending:
                        hits[index] = True
        return hits

    def _rebuild_accelerator(self) -> None:
        self._burst_buf.clear()  # superseded: everything re-indexed from truth
        n = len(self._mask_order)
        self._acc_grow(max(n, 1))
        self._acc_entries = {}
        self._mask_index = {mask: i for i, mask in enumerate(self._mask_order)}
        compounds: list[int] = []
        for index, mask in enumerate(self._mask_order):
            self._acc_mask_buffer[index] = _to_columns(mask.values)
            salt = int(self._acc_salt_buffer[index])
            for entry in self._tables[mask].values():
                compound = (_row_hash(_to_columns(entry.key)) ^ salt) & _U64
                compounds.append(compound)
                self._acc_entries.setdefault(compound, []).append((index, entry))
        self._acc_compounds = np.sort(np.asarray(compounds, dtype=np.uint64))
        self._acc_pending.clear()
        self._acc_pending_set.clear()
        log2 = 64 - int(self._acc_filter_shift)
        while len(compounds) << _FILTER_LOAD_LOG2 >= (1 << log2) and log2 < _FILTER_MAX_LOG2:
            log2 = min(_FILTER_MAX_LOG2, log2 + 2)
        self._acc_filter_rebuild(log2)
        self._acc_dirty = False

    # -- core scan -------------------------------------------------------------
    def _scan(self, key: FlowKey, key_values: tuple[int, ...], now: float) -> TssLookupResult:
        """Algorithm 1: scan masks, probe each hash, early-exit on hit."""
        n = len(self._mask_order)
        if n == 0:
            self.stats_misses += 1
            return TssLookupResult(entry=None, masks_inspected=0)
        if self._acc_dirty:
            self._rebuild_accelerator()
        elif self._burst_buf:
            self._burst_drain()
        if not len(self._acc_compounds) and not self._acc_pending:
            self._register_miss()
            return TssLookupResult(entry=None, masks_inspected=n)
        row = _to_columns(key_values)
        masked = self._acc_mask_buffer[:n] & row
        hashes = (masked * _WEIGHTS).sum(axis=1, dtype=np.uint64)
        compounds = hashes ^ self._acc_salt_buffer[:n]
        candidates = self._acc_candidates(compounds)
        for index in np.flatnonzero(candidates):
            # Confirm against the authoritative dicts: 64-bit collisions
            # are possible, just rare, and must not change semantics.
            for entry_index, entry in self._acc_entries.get(int(compounds[index]), ()):
                if entry_index == index and entry.covers(key):
                    self._register_hit(entry, now)
                    return TssLookupResult(entry=entry, masks_inspected=int(index) + 1)
        self._register_miss()
        return TssLookupResult(entry=None, masks_inspected=n)

    # -- batched lookup --------------------------------------------------------
    def lookup_batch(self, keys, now: float = 0.0) -> BatchLookupResult:
        """Classify ``keys`` in one vectorised pass (see module docstring).

        Equivalent to ``[self.lookup(k, now) for k in keys]`` — entry for
        entry, ``masks_inspected`` for ``masks_inspected``, including memo
        consultation and ``hit_sorted`` resort cadence — but the (N x M)
        mask/hash work runs as a handful of numpy operations.
        """
        keys = list(keys)
        scanner = _BatchScanner(self, keys, now)
        return BatchLookupResult(
            results=tuple(scanner.result(i) for i in range(len(keys)))
        )

    def batch_scanner(
        self, keys: list[FlowKey], now: float = 0.0, rows=None
    ) -> "_BatchScanner":
        """A consume-in-order batch scanner (the datapath's level-3 engine).

        Unlike :meth:`lookup_batch` the caller drives it one key at a time
        and may mutate the cache between keys (slow-path installs); the
        scanner keeps its vectorised plan coherent — replanning on
        reorders, checking caller-announced inserts on plan misses.
        ``rows`` optionally supplies ``keys``' precomputed column matrix
        (the shm transport's wire format) so planning skips the derive.
        """
        return _BatchScanner(self, keys, now, rows=rows)

    def _acc_confirm(
        self, compound: int, index: int, key_values: tuple[int, ...]
    ) -> MegaflowEntry | None:
        """Authoritative-dict confirmation of one (compound, mask) candidate."""
        for entry_index, entry in self._acc_entries.get(compound, ()):
            if entry_index == index:
                mask = entry.mask
                table = self._tables.get(mask)
                if table is None:
                    continue
                if table.get(self._reduce(mask, key_values)) is entry:
                    return entry
        return None

    # -- hit_sorted accounting ---------------------------------------------------
    def _note_hit(self, mask: FlowMask) -> None:
        if self.scan_policy == "hit_sorted":
            self._mask_hits[mask] = self._mask_hits.get(mask, 0) + 1
            self._maybe_resort()

    def _note_miss(self) -> None:
        if self.scan_policy == "hit_sorted":
            self._maybe_resort()

    def _maybe_resort(self) -> None:
        self._lookups_since_sort += 1
        if self._lookups_since_sort >= self.RESORT_INTERVAL:
            self._lookups_since_sort = 0
            self._mask_order.sort(key=lambda m: -self._mask_hits.get(m, 0))
            self._invalidate()

    def __repr__(self) -> str:
        return f"TupleSpaceSearch({self.n_masks} masks, {self.n_entries} entries)"


class _BatchScanner:
    """Vectorised scan plan over a key sequence, consumed in order.

    The scanner precomputes, for a contiguous chunk of keys, the full
    (keys x masks) compound matrix and its filter-candidate bitmap, then
    serves per-key results with sequential-identical bookkeeping.  Three
    coherence rules keep it honest while the caller mutates the cache
    between keys:

    * a scan-order change (resort, removal, shuffle, flush) bumps the
      cache's ``_order_seq``; the scanner replans from the current key;
    * inserts *announced* via :meth:`note_inserted` are checked on every
      plan miss — under Inv(2) a snapshot hit can never be preempted by a
      newer entry, so plan hits stay valid and only misses need the extra
      check (the datapath announces its slow-path installs);
    * filter candidates are confirmed against the authoritative dicts, so
      filter false positives degrade to a few dict probes.
    """

    # Compound-matrix budget per planning chunk (uint64 elements): caps the
    # plan at ~32 MB while letting an OVS-sized rx burst plan in one go
    # even against a fully detonated (8k+ mask) tuple space.
    CHUNK_ELEMS = 4_000_000

    def __init__(
        self,
        tss: TupleSpaceSearch,
        keys: list[FlowKey],
        now: float,
        rows=None,
    ):
        self.tss = tss
        self.keys = keys
        self.now = now
        self._rows = rows  # precomputed column matrix for ALL keys, or None
        self._start = 0
        self._end = 0
        self._order_seq = -1
        self._plan = None  # the kernel-built ScanPlan for keys[start:end]
        self._inserted: list[MegaflowEntry] = []
        # Column rows of the announced entries' masks/keys, so the
        # miss-path coverage check is one vectorised pass instead of a
        # per-entry ``covers`` walk (O(batch^2) under upcall-dominated
        # bursts otherwise).
        self._ins_cap = 0
        self._ins_masks = np.empty((0, _N_COLUMNS), dtype=np.uint64)
        self._ins_keys = np.empty((0, _N_COLUMNS), dtype=np.uint64)

    def note_inserted(self, entry: MegaflowEntry) -> None:
        """Tell the scanner the caller installed ``entry`` mid-batch."""
        self._inserted.append(entry)
        n = len(self._inserted)
        if n > self._ins_cap:
            capacity = max(64, self._ins_cap * 2)
            masks = np.empty((capacity, _N_COLUMNS), dtype=np.uint64)
            keys_ = np.empty((capacity, _N_COLUMNS), dtype=np.uint64)
            masks[: self._ins_cap] = self._ins_masks[: self._ins_cap]
            keys_[: self._ins_cap] = self._ins_keys[: self._ins_cap]
            self._ins_masks, self._ins_keys, self._ins_cap = masks, keys_, capacity
        self._ins_masks[n - 1] = _to_columns(entry.mask.values)
        self._ins_keys[n - 1] = _to_columns(entry.key)

    def result(self, i: int, now: float | None = None) -> TssLookupResult:
        """The lookup result for key ``i`` (call with non-decreasing ``i``)."""
        tss = self.tss
        if now is not None:
            self.now = now
        key = self.keys[i]
        key_values = key.values
        memoised = tss._memo_consult(key_values, self.now)
        if memoised is not None:
            return memoised
        result = self._scan_key(i, key, key_values)
        tss._account_scan(result)
        tss._memo_store(key_values, result)
        return result

    def _scan_key(
        self, i: int, key: FlowKey, key_values: tuple[int, ...]
    ) -> TssLookupResult:
        tss = self.tss
        n_now = len(tss._mask_order)
        if n_now == 0:
            tss.stats_misses += 1
            return TssLookupResult(entry=None, masks_inspected=0)
        if tss._acc_dirty:
            tss._rebuild_accelerator()
        if tss._order_seq != self._order_seq or not (self._start <= i < self._end):
            self._build_plan(i)
        j = i - self._start
        plan = self._plan
        if plan.has[j]:
            index = plan.first[j]
            hit = tss._acc_confirm(plan.first_compound[j], index, key_values)
            while hit is None:
                # Filter false positive: resume the scan past the failed
                # index and confirm the next candidate.
                nxt = plan.next_hit(j, index)
                if nxt is None:
                    break
                index, compound = nxt
                hit = tss._acc_confirm(int(compound), index, key_values)
            if hit is not None:
                tss._register_hit(hit, self.now)
                return TssLookupResult(entry=hit, masks_inspected=index + 1)
        # Plan says miss: only entries installed after the plan snapshot
        # can change that (Inv(2): at most one installed entry covers any
        # key, so a snapshot hit cannot be preempted).
        n_inserted = len(self._inserted)
        if n_inserted:
            if self._rows is not None:
                row = self._rows[i]
            else:
                row = _to_columns(key_values)
            covered = (
                (self._ins_masks[:n_inserted] & row) == self._ins_keys[:n_inserted]
            ).all(axis=1)
            hits = np.flatnonzero(covered)
            if len(hits):
                entry = self._inserted[int(hits[0])]
                position = tss._mask_index.get(entry.mask)
                if position is None:
                    position = tss._mask_order.index(entry.mask)
                tss._register_hit(entry, self.now)
                return TssLookupResult(entry=entry, masks_inspected=position + 1)
        tss._register_miss()
        return TssLookupResult(entry=None, masks_inspected=n_now)

    def _build_plan(self, start: int) -> None:
        """Kernel-computed compound/candidate plan for keys[start:end]."""
        tss = self.tss
        n = len(tss._mask_order)
        chunk = max(32, self.CHUNK_ELEMS // max(n, 1))
        end = min(len(self.keys), start + chunk)
        if self._rows is not None:
            rows = self._rows[start:end]
        else:
            rows = _to_column_matrix([k.values for k in self.keys[start:end]])
        if tss._burst_buf:
            # Deferred burst appends must reach the accelerator before the
            # plan snapshots it (this clears ``_inserted`` below, so the
            # announced-insert fallback no longer covers them).
            tss._burst_drain()
        if tss._acc_pending:
            # The kernels refine filter candidates against the sorted
            # compound set; fold the unsorted insert backlog in first so
            # the snapshot is complete (amortised: once per plan).
            tss._acc_merge_pending()
        self._plan = tss._scan_kernel.build_plan(
            rows,
            tss._acc_mask_buffer[:n],
            tss._acc_salt_buffer[:n],
            tss._acc_filter,
            int(tss._acc_filter_shift),
            tss._acc_compounds,
        )
        self._start = start
        self._end = end
        self._order_seq = tss._order_seq
        self._inserted.clear()

    def plan_misses(self, start: int) -> list[int]:
        """Key indices ``>= start`` guaranteed to miss the plan snapshot.

        The filter has no false negatives, so a key with no plan candidate
        cannot hit any entry installed before the batch — the upcall
        coalescer uses this as its burst of soon-to-miss keys.  Only
        entries installed *mid-batch* can still serve some of them (which
        is fine: megaflow generation is pure, so speculatively generating
        for a key that ends up hitting changes nothing).  When no plan
        covers ``start`` (empty tuple space: the scan early-exits before
        planning), every remaining key is a guaranteed miss.
        """
        plan = self._plan
        if (
            plan is None
            or self.tss._order_seq != self._order_seq
            or not (self._start <= start < self._end)
        ):
            return list(range(start, len(self.keys)))
        has = plan.has
        offset = self._start
        return [j for j in range(start, self._end) if not has[j - offset]]


register_megaflow_backend("tss", TupleSpaceSearch)
