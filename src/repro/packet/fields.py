"""Header-field registry and the :class:`FlowKey` / :class:`FlowMask` model.

Packet classification in this library operates on *flow keys*: fixed-width
unsigned integer values for a canonical, ordered set of protocol header
fields (the same abstraction as the ``struct flow`` of Open vSwitch).  A
:class:`FlowKey` assigns a value to every field (absent protocol layers are
zero-filled, as in OVS); a :class:`FlowMask` assigns a *bit mask* to every
field, where ``0`` means the field is fully wildcarded.

Bit positions within a field are numbered **from the most significant bit**,
starting at 0, matching the paper's convention: for the 3-bit header value
``001`` the first bit (position 0) is ``0`` and the last (position 2) is
``1``.  Prefix masks cover positions ``0..plen-1``.

The registry is intentionally small and fixed: the canonical field order
determines the order in which megaflow generation examines fields, so it is
part of the reproduction's semantics (see ``repro.classifier.slowpath``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.exceptions import FieldError

__all__ = [
    "FieldDef",
    "FIELDS",
    "FIELD_ORDER",
    "field",
    "field_names",
    "prefix_mask",
    "first_diff_bit",
    "popcount",
    "FlowKey",
    "FlowMask",
    "EXACT_MASK",
    "WILDCARD_MASK",
]


@dataclass(frozen=True)
class FieldDef:
    """Definition of one classification header field.

    Attributes:
        name: canonical field name (e.g. ``"ip_src"``).
        width: field width in bits.
        layer: informational protocol layer tag (``"l1"``…``"l4"``).
        description: human-readable description.
    """

    name: str
    width: int
    layer: str
    description: str

    @property
    def max_value(self) -> int:
        """Largest value representable in this field."""
        return (1 << self.width) - 1

    @property
    def full_mask(self) -> int:
        """Mask with every bit of the field set (exact match)."""
        return (1 << self.width) - 1

    def check_value(self, value: int) -> int:
        """Validate that ``value`` fits the field width and return it."""
        if not isinstance(value, int):
            raise FieldError(f"{self.name}: value must be int, got {type(value).__name__}")
        if value < 0 or value > self.max_value:
            raise FieldError(
                f"{self.name}: value {value:#x} does not fit in {self.width} bits"
            )
        return value

    def check_mask(self, mask: int) -> int:
        """Validate that ``mask`` fits the field width and return it."""
        if not isinstance(mask, int):
            raise FieldError(f"{self.name}: mask must be int, got {type(mask).__name__}")
        if mask < 0 or mask > self.max_value:
            raise FieldError(
                f"{self.name}: mask {mask:#x} does not fit in {self.width} bits"
            )
        return mask

    def prefix_mask(self, plen: int) -> int:
        """Mask covering the ``plen`` most significant bits of the field."""
        if plen < 0 or plen > self.width:
            raise FieldError(f"{self.name}: prefix length {plen} out of range 0..{self.width}")
        if plen == 0:
            return 0
        return ((1 << plen) - 1) << (self.width - plen)

    def bit_mask(self, position: int) -> int:
        """Mask with only the bit at MSB-first ``position`` set."""
        if position < 0 or position >= self.width:
            raise FieldError(f"{self.name}: bit position {position} out of range")
        return 1 << (self.width - 1 - position)


# Canonical field registry.  The order below is the canonical examination
# order used by megaflow generation and must stay stable.
_FIELD_DEFS = (
    FieldDef("in_port", 16, "l1", "ingress switch port"),
    FieldDef("eth_src", 48, "l2", "Ethernet source MAC"),
    FieldDef("eth_dst", 48, "l2", "Ethernet destination MAC"),
    FieldDef("eth_type", 16, "l2", "EtherType"),
    FieldDef("ip_src", 32, "l3", "IPv4 source address"),
    FieldDef("ip_dst", 32, "l3", "IPv4 destination address"),
    FieldDef("ipv6_src", 128, "l3", "IPv6 source address"),
    FieldDef("ipv6_dst", 128, "l3", "IPv6 destination address"),
    FieldDef("ip_proto", 8, "l3", "IP protocol number"),
    FieldDef("ip_ttl", 8, "l3", "IPv4 TTL / IPv6 hop limit"),
    FieldDef("ip_tos", 8, "l3", "IPv4 ToS / IPv6 traffic class"),
    FieldDef("tp_src", 16, "l4", "TCP/UDP source port"),
    FieldDef("tp_dst", 16, "l4", "TCP/UDP destination port"),
)

FIELDS: Mapping[str, FieldDef] = {f.name: f for f in _FIELD_DEFS}
FIELD_ORDER: tuple[str, ...] = tuple(f.name for f in _FIELD_DEFS)
_INDEX: Mapping[str, int] = {name: i for i, name in enumerate(FIELD_ORDER)}
_NFIELDS = len(FIELD_ORDER)
_WIDTHS: tuple[int, ...] = tuple(f.width for f in _FIELD_DEFS)
_FULL_MASKS: tuple[int, ...] = tuple(f.full_mask for f in _FIELD_DEFS)


def field(name: str) -> FieldDef:
    """Look up a field definition by name, raising :class:`FieldError`."""
    try:
        return FIELDS[name]
    except KeyError:
        raise FieldError(f"unknown field {name!r}; known fields: {', '.join(FIELD_ORDER)}") from None


def field_names() -> tuple[str, ...]:
    """Canonical field order (a copy-safe tuple)."""
    return FIELD_ORDER


def prefix_mask(name: str, plen: int) -> int:
    """Prefix mask of length ``plen`` for field ``name`` (MSB-first)."""
    return field(name).prefix_mask(plen)


def first_diff_bit(a: int, b: int, width: int) -> int | None:
    """First MSB-first bit position where ``a`` and ``b`` differ.

    Returns ``None`` when the values are equal on all ``width`` bits.
    """
    diff = (a ^ b) & ((1 << width) - 1)
    if diff == 0:
        return None
    return width - diff.bit_length()


def popcount(value: int) -> int:
    """Number of set bits in ``value``."""
    return value.bit_count()


class _FieldVector:
    """Immutable vector of per-field integers (shared FlowKey/FlowMask base).

    Values are stored as a tuple aligned with :data:`FIELD_ORDER`; the hash
    is precomputed because keys are used heavily as dict keys inside the
    tuple-space hashes.
    """

    __slots__ = ("_values", "_hash")

    def __init__(self, values: tuple[int, ...]):
        self._values = values
        self._hash = hash(values)

    @classmethod
    def _build(cls, kind: str, kwargs: Mapping[str, int], checker: str) -> "_FieldVector":
        values = [0] * _NFIELDS
        for name, value in kwargs.items():
            idx = _INDEX.get(name)
            if idx is None:
                raise FieldError(f"unknown field {name!r} for {kind}")
            check = getattr(_FIELD_DEFS[idx], checker)
            values[idx] = check(value)
        return cls(tuple(values))

    # -- mapping-ish interface ------------------------------------------------
    def __getitem__(self, name: str) -> int:
        idx = _INDEX.get(name)
        if idx is None:
            raise FieldError(f"unknown field {name!r}")
        return self._values[idx]

    def get(self, name: str, default: int = 0) -> int:
        idx = _INDEX.get(name)
        return default if idx is None else self._values[idx]

    def at(self, index: int) -> int:
        """Value at canonical field index (fast path, no name lookup)."""
        return self._values[index]

    @property
    def values(self) -> tuple[int, ...]:
        """The raw per-field tuple, aligned with :data:`FIELD_ORDER`."""
        return self._values

    def items(self) -> Iterator[tuple[str, int]]:
        return iter(zip(FIELD_ORDER, self._values))

    def items_nonzero(self) -> Iterator[tuple[str, int]]:
        for name, value in zip(FIELD_ORDER, self._values):
            if value:
                yield name, value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _FieldVector):
            return self._values == other._values
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def _format_fields(self) -> str:
        return ", ".join(f"{n}={v:#x}" for n, v in self.items_nonzero())


class FlowKey(_FieldVector):
    """A concrete packet header, one value per registry field.

    Fields that are not given default to zero (absent layers), mirroring the
    zero-filled ``struct flow`` of OVS.

    Example::

        key = FlowKey(ip_src=0x0a000001, ip_proto=6, tp_dst=80)
        key["tp_dst"]    # 80
    """

    __slots__ = ()

    def __init__(self, **kwargs: int):
        vec = _FieldVector._build("FlowKey", kwargs, "check_value")
        super().__init__(vec._values)

    @classmethod
    def from_values(cls, values: tuple[int, ...]) -> "FlowKey":
        """Build directly from a canonical value tuple (trusted, fast)."""
        if len(values) != _NFIELDS:
            raise FieldError(f"FlowKey needs {_NFIELDS} values, got {len(values)}")
        obj = cls.__new__(cls)
        _FieldVector.__init__(obj, values)
        return obj

    def replace(self, **kwargs: int) -> "FlowKey":
        """A copy of this key with the given fields replaced."""
        values = list(self._values)
        for name, value in kwargs.items():
            idx = _INDEX.get(name)
            if idx is None:
                raise FieldError(f"unknown field {name!r}")
            values[idx] = _FIELD_DEFS[idx].check_value(value)
        return FlowKey.from_values(tuple(values))

    def masked(self, mask: "FlowMask") -> tuple[int, ...]:
        """This key under ``mask`` — the hashable tuple stored in TSS hashes."""
        return tuple(v & m for v, m in zip(self._values, mask.values))

    def matches(self, value_mask: "FlowMask", value: "FlowKey") -> bool:
        """True when this key agrees with ``value`` on all bits of the mask."""
        for v, m, r in zip(self._values, value_mask.values, value.values):
            if (v & m) != (r & m):
                return False
        return True

    def __repr__(self) -> str:
        return f"FlowKey({self._format_fields()})"


class FlowMask(_FieldVector):
    """A per-field bit mask; zero bits are wildcarded.

    FlowMasks identify the *tuples* of Tuple Space Search: every distinct
    FlowMask in the megaflow cache owns one hash table, and lookup scans
    masks sequentially (Algorithm 1 of the paper).
    """

    __slots__ = ()

    def __init__(self, **kwargs: int):
        vec = _FieldVector._build("FlowMask", kwargs, "check_mask")
        super().__init__(vec._values)

    @classmethod
    def from_values(cls, values: tuple[int, ...]) -> "FlowMask":
        """Build directly from a canonical mask tuple (trusted, fast)."""
        if len(values) != _NFIELDS:
            raise FieldError(f"FlowMask needs {_NFIELDS} values, got {len(values)}")
        obj = cls.__new__(cls)
        _FieldVector.__init__(obj, values)
        return obj

    @classmethod
    def exact(cls) -> "FlowMask":
        """Mask matching every bit of every field (microflow-style key)."""
        return cls.from_values(_FULL_MASKS)

    @classmethod
    def wildcard(cls) -> "FlowMask":
        """Mask matching nothing (every field fully wildcarded)."""
        return cls.from_values((0,) * _NFIELDS)

    def union(self, other: "FlowMask") -> "FlowMask":
        """Bitwise OR of two masks."""
        return FlowMask.from_values(
            tuple(a | b for a, b in zip(self._values, other.values))
        )

    def with_bits(self, name: str, bits: int) -> "FlowMask":
        """A copy with ``bits`` OR-ed into field ``name``."""
        idx = _INDEX.get(name)
        if idx is None:
            raise FieldError(f"unknown field {name!r}")
        _FIELD_DEFS[idx].check_mask(bits)
        values = list(self._values)
        values[idx] |= bits
        return FlowMask.from_values(tuple(values))

    def covers(self, other: "FlowMask") -> bool:
        """True when every bit set in ``other`` is also set in this mask."""
        return all((a & b) == b for a, b in zip(self._values, other.values))

    def overlaps_key(
        self, key_a: tuple[int, ...], other: "FlowMask", key_b: tuple[int, ...]
    ) -> bool:
        """True when some packet can match both (mask, key) pairs.

        ``key_a`` / ``key_b`` are canonical masked-value tuples.  Two
        masked entries overlap iff their keys agree on the intersection of
        their masks.
        """
        for ma, mb, ka, kb in zip(self._values, other.values, key_a, key_b):
            common = ma & mb
            if (ka & common) != (kb & common):
                return False
        return True

    def n_bits(self) -> int:
        """Total number of un-wildcarded bits across all fields."""
        return sum(v.bit_count() for v in self._values)

    def wildcarded_bits(self) -> int:
        """Total number of wildcarded bits across all fields."""
        return sum(_WIDTHS) - self.n_bits()

    def is_exact(self) -> bool:
        """True when no bit of any field is wildcarded."""
        return self._values == _FULL_MASKS

    def __repr__(self) -> str:
        return f"FlowMask({self._format_fields()})"


EXACT_MASK = FlowMask.exact()
WILDCARD_MASK = FlowMask.wildcard()
