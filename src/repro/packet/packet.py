"""Layered packets: header stacks, wire serialization, flow-key extraction.

A :class:`Packet` is an ordered stack of header objects (from
:mod:`repro.packet.headers`) plus an opaque payload.  It can be serialized to
wire bytes (with checksums), parsed back from bytes, and reduced to the
:class:`~repro.packet.fields.FlowKey` the classifiers operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.exceptions import PacketError
from repro.packet.fields import FlowKey
from repro.packet.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    ICMP,
    IPv4,
    IPv6,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP,
    UDP,
    Ethernet,
    _pseudo_header_v4,
    _pseudo_header_v6,
)

__all__ = ["Packet", "parse_packet"]

Header = Ethernet | IPv4 | IPv6 | TCP | UDP | ICMP


@dataclass
class Packet:
    """An ordered header stack plus payload.

    Layers must be given outermost-first (Ethernet, then IP, then L4); the
    constructor validates the ordering so a malformed stack fails fast
    rather than producing bytes no parser would accept.
    """

    layers: list[Header] = dc_field(default_factory=list)
    payload: bytes = b""

    def __post_init__(self) -> None:
        self._validate_stack()

    def _validate_stack(self) -> None:
        allowed_next = {
            Ethernet: (IPv4, IPv6),
            IPv4: (TCP, UDP, ICMP),
            IPv6: (TCP, UDP, ICMP),
            TCP: (),
            UDP: (),
            ICMP: (),
        }
        previous: type | None = None
        for layer in self.layers:
            if type(layer) not in allowed_next:
                raise PacketError(f"unsupported layer type {type(layer).__name__}")
            if previous is not None and type(layer) not in allowed_next[previous]:
                raise PacketError(
                    f"{type(layer).__name__} cannot follow {previous.__name__}"
                )
            previous = type(layer)

    # -- layer access ---------------------------------------------------------
    def layer(self, layer_type: type) -> Header | None:
        """The first layer of the given type, or ``None``."""
        for layer in self.layers:
            if isinstance(layer, layer_type):
                return layer
        return None

    @property
    def eth(self) -> Ethernet | None:
        return self.layer(Ethernet)  # type: ignore[return-value]

    @property
    def ip(self) -> IPv4 | None:
        return self.layer(IPv4)  # type: ignore[return-value]

    @property
    def ip6(self) -> IPv6 | None:
        return self.layer(IPv6)  # type: ignore[return-value]

    @property
    def tcp(self) -> TCP | None:
        return self.layer(TCP)  # type: ignore[return-value]

    @property
    def udp(self) -> UDP | None:
        return self.layer(UDP)  # type: ignore[return-value]

    @property
    def icmp(self) -> ICMP | None:
        return self.layer(ICMP)  # type: ignore[return-value]

    # -- serialization --------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to wire bytes, filling lengths and checksums."""
        # Serialize innermost-first so outer layers know payload lengths.
        data = self.payload
        ip_layer = self.ip or self.ip6
        for layer in reversed(self.layers):
            if isinstance(layer, TCP):
                pseudo = self._pseudo_header(ip_layer, PROTO_TCP, TCP.HEADER_LEN + len(data))
                data = layer.pack(payload=data, pseudo_header=pseudo) + data
            elif isinstance(layer, UDP):
                pseudo = self._pseudo_header(ip_layer, PROTO_UDP, UDP.HEADER_LEN + len(data))
                data = layer.pack(payload=data, pseudo_header=pseudo) + data
            elif isinstance(layer, ICMP):
                data = layer.pack(payload=data) + data
            elif isinstance(layer, (IPv4, IPv6)):
                data = layer.pack(payload_len=len(data)) + data
            elif isinstance(layer, Ethernet):
                data = layer.pack() + data
        return data

    @staticmethod
    def _pseudo_header(ip_layer: IPv4 | IPv6 | None, proto: int, length: int) -> bytes | None:
        if isinstance(ip_layer, IPv4):
            return _pseudo_header_v4(ip_layer.src, ip_layer.dst, proto, length)
        if isinstance(ip_layer, IPv6):
            return _pseudo_header_v6(ip_layer.src, ip_layer.dst, proto, length)
        return None

    def wire_length(self) -> int:
        """Total serialized length in bytes."""
        length = len(self.payload)
        for layer in self.layers:
            length += layer.HEADER_LEN
        return length

    # -- classification -------------------------------------------------------
    def flow_key(self, in_port: int = 0) -> FlowKey:
        """Extract the flow key the classifiers match on.

        Mirrors OVS flow extraction: zero-fill fields of absent layers and
        take L4 ports from TCP/UDP (ICMP type/code are mapped onto the port
        fields, as OVS does).
        """
        kwargs: dict[str, int] = {"in_port": in_port}
        eth = self.eth
        if eth is not None:
            kwargs["eth_src"] = eth.src
            kwargs["eth_dst"] = eth.dst
            kwargs["eth_type"] = eth.ethertype
        ip4 = self.ip
        ip6 = self.ip6
        if ip4 is not None:
            kwargs["ip_src"] = ip4.src
            kwargs["ip_dst"] = ip4.dst
            kwargs["ip_proto"] = ip4.proto
            kwargs["ip_ttl"] = ip4.ttl
            kwargs["ip_tos"] = ip4.tos
            kwargs.setdefault("eth_type", ETHERTYPE_IPV4)
        elif ip6 is not None:
            kwargs["ipv6_src"] = ip6.src
            kwargs["ipv6_dst"] = ip6.dst
            kwargs["ip_proto"] = ip6.next_header
            kwargs["ip_ttl"] = ip6.hop_limit
            kwargs["ip_tos"] = ip6.traffic_class
            kwargs.setdefault("eth_type", ETHERTYPE_IPV6)
        tcp = self.tcp
        udp = self.udp
        icmp = self.icmp
        if tcp is not None:
            kwargs["tp_src"] = tcp.src_port
            kwargs["tp_dst"] = tcp.dst_port
        elif udp is not None:
            kwargs["tp_src"] = udp.src_port
            kwargs["tp_dst"] = udp.dst_port
        elif icmp is not None:
            kwargs["tp_src"] = icmp.icmp_type
            kwargs["tp_dst"] = icmp.code
        return FlowKey(**kwargs)

    def __repr__(self) -> str:
        names = "/".join(type(layer).__name__ for layer in self.layers)
        return f"Packet({names}, payload={len(self.payload)}B)"


def parse_packet(data: bytes, link_layer: bool = True) -> Packet:
    """Parse wire bytes into a :class:`Packet`.

    Args:
        data: raw bytes.
        link_layer: when True, expect an Ethernet header first; otherwise
            start at the IP layer (pcap files written with a RAW linktype).
    """
    layers: list[Header] = []
    rest = data
    next_proto: int | None = None

    if link_layer:
        eth, rest = Ethernet.unpack(rest)
        layers.append(eth)
        ethertype = eth.ethertype
    else:
        if not rest:
            raise PacketError("empty packet")
        version = rest[0] >> 4
        ethertype = ETHERTYPE_IPV4 if version == 4 else ETHERTYPE_IPV6

    if ethertype == ETHERTYPE_IPV4:
        ip4, rest = IPv4.unpack(rest)
        layers.append(ip4)
        next_proto = ip4.proto
    elif ethertype == ETHERTYPE_IPV6:
        ip6, rest = IPv6.unpack(rest)
        layers.append(ip6)
        next_proto = ip6.next_header
    else:
        # Unknown L3: keep remaining bytes as payload.
        return Packet(layers=layers, payload=rest)

    if next_proto == PROTO_TCP:
        tcp, rest = TCP.unpack(rest)
        layers.append(tcp)
    elif next_proto == PROTO_UDP:
        udp, rest = UDP.unpack(rest)
        layers.append(udp)
    elif next_proto == PROTO_ICMP:
        icmp, rest = ICMP.unpack(rest)
        layers.append(icmp)

    return Packet(layers=layers, payload=rest)
