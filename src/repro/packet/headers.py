"""Wire-format protocol headers (Ethernet, IPv4, IPv6, TCP, UDP, ICMP).

This is the packet-crafting substrate the paper used Scapy for: each header
is a dataclass that can ``pack()`` itself to wire bytes and ``unpack()``
itself from bytes, with real Internet checksums.  The attack tooling crafts
packets with these headers and can export them to pcap for replay
(:mod:`repro.packet.pcap`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.exceptions import PacketError

__all__ = [
    "ETHERTYPE_IPV4",
    "ETHERTYPE_IPV6",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "internet_checksum",
    "Ethernet",
    "IPv4",
    "IPv6",
    "TCP",
    "UDP",
    "ICMP",
]

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17


def internet_checksum(data: bytes) -> int:
    """RFC 1071 Internet checksum over ``data`` (padded to 16-bit words)."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _check_range(name: str, value: int, width: int) -> None:
    if value < 0 or value >= (1 << width):
        raise PacketError(f"{name}={value:#x} does not fit in {width} bits")


@dataclass
class Ethernet:
    """Ethernet II header (14 bytes)."""

    dst: int = 0
    src: int = 0
    ethertype: int = ETHERTYPE_IPV4

    HEADER_LEN = 14

    def pack(self) -> bytes:
        _check_range("eth_dst", self.dst, 48)
        _check_range("eth_src", self.src, 48)
        _check_range("eth_type", self.ethertype, 16)
        return (
            self.dst.to_bytes(6, "big")
            + self.src.to_bytes(6, "big")
            + struct.pack("!H", self.ethertype)
        )

    @classmethod
    def unpack(cls, data: bytes) -> tuple["Ethernet", bytes]:
        """Parse one Ethernet header; return (header, remaining bytes)."""
        if len(data) < cls.HEADER_LEN:
            raise PacketError(f"Ethernet header truncated: {len(data)} bytes")
        dst = int.from_bytes(data[0:6], "big")
        src = int.from_bytes(data[6:12], "big")
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst=dst, src=src, ethertype=ethertype), data[14:]


@dataclass
class IPv4:
    """IPv4 header (20 bytes; options unsupported on purpose).

    ``total_length`` and ``checksum`` are computed at :meth:`pack` time when
    left at zero, which is the common crafting pattern.
    """

    src: int = 0
    dst: int = 0
    proto: int = PROTO_TCP
    ttl: int = 64
    tos: int = 0
    ident: int = 0
    flags: int = 0  # 3 bits: reserved/DF/MF
    frag_offset: int = 0
    total_length: int = 0
    checksum: int = 0

    HEADER_LEN = 20

    def pack(self, payload_len: int = 0) -> bytes:
        _check_range("ip_src", self.src, 32)
        _check_range("ip_dst", self.dst, 32)
        _check_range("ip_proto", self.proto, 8)
        _check_range("ip_ttl", self.ttl, 8)
        _check_range("ip_tos", self.tos, 8)
        _check_range("ip_ident", self.ident, 16)
        _check_range("ip_flags", self.flags, 3)
        _check_range("ip_frag_offset", self.frag_offset, 13)
        total_length = self.total_length or (self.HEADER_LEN + payload_len)
        _check_range("ip_total_length", total_length, 16)
        version_ihl = (4 << 4) | 5
        flags_frag = (self.flags << 13) | self.frag_offset
        header = struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            self.tos,
            total_length,
            self.ident,
            flags_frag,
            self.ttl,
            self.proto,
            0,
            self.src.to_bytes(4, "big"),
            self.dst.to_bytes(4, "big"),
        )
        checksum = self.checksum or internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def unpack(cls, data: bytes) -> tuple["IPv4", bytes]:
        """Parse one IPv4 header; return (header, remaining bytes)."""
        if len(data) < cls.HEADER_LEN:
            raise PacketError(f"IPv4 header truncated: {len(data)} bytes")
        (
            version_ihl,
            tos,
            total_length,
            ident,
            flags_frag,
            ttl,
            proto,
            checksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        version = version_ihl >> 4
        if version != 4:
            raise PacketError(f"IPv4 header has version {version}")
        ihl = (version_ihl & 0xF) * 4
        if ihl < 20 or len(data) < ihl:
            raise PacketError(f"IPv4 header has bad IHL {ihl}")
        header = cls(
            src=int.from_bytes(src, "big"),
            dst=int.from_bytes(dst, "big"),
            proto=proto,
            ttl=ttl,
            tos=tos,
            ident=ident,
            flags=flags_frag >> 13,
            frag_offset=flags_frag & 0x1FFF,
            total_length=total_length,
            checksum=checksum,
        )
        return header, data[ihl:]

    def verify_checksum(self) -> bool:
        """True when the stored checksum matches the header contents."""
        packed = IPv4(
            src=self.src,
            dst=self.dst,
            proto=self.proto,
            ttl=self.ttl,
            tos=self.tos,
            ident=self.ident,
            flags=self.flags,
            frag_offset=self.frag_offset,
            total_length=self.total_length or self.HEADER_LEN,
        ).pack()
        return internet_checksum(packed) == 0


@dataclass
class IPv6:
    """IPv6 fixed header (40 bytes)."""

    src: int = 0
    dst: int = 0
    next_header: int = PROTO_TCP
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0
    payload_length: int = 0

    HEADER_LEN = 40

    def pack(self, payload_len: int = 0) -> bytes:
        _check_range("ipv6_src", self.src, 128)
        _check_range("ipv6_dst", self.dst, 128)
        _check_range("ipv6_next_header", self.next_header, 8)
        _check_range("ipv6_hop_limit", self.hop_limit, 8)
        _check_range("ipv6_traffic_class", self.traffic_class, 8)
        _check_range("ipv6_flow_label", self.flow_label, 20)
        payload_length = self.payload_length or payload_len
        _check_range("ipv6_payload_length", payload_length, 16)
        first_word = (6 << 28) | (self.traffic_class << 20) | self.flow_label
        return (
            struct.pack("!IHBB", first_word, payload_length, self.next_header, self.hop_limit)
            + self.src.to_bytes(16, "big")
            + self.dst.to_bytes(16, "big")
        )

    @classmethod
    def unpack(cls, data: bytes) -> tuple["IPv6", bytes]:
        """Parse one IPv6 header; return (header, remaining bytes)."""
        if len(data) < cls.HEADER_LEN:
            raise PacketError(f"IPv6 header truncated: {len(data)} bytes")
        first_word, payload_length, next_header, hop_limit = struct.unpack("!IHBB", data[:8])
        version = first_word >> 28
        if version != 6:
            raise PacketError(f"IPv6 header has version {version}")
        header = cls(
            src=int.from_bytes(data[8:24], "big"),
            dst=int.from_bytes(data[24:40], "big"),
            next_header=next_header,
            hop_limit=hop_limit,
            traffic_class=(first_word >> 20) & 0xFF,
            flow_label=first_word & 0xFFFFF,
            payload_length=payload_length,
        )
        return header, data[40:]


def _pseudo_header_v4(src: int, dst: int, proto: int, length: int) -> bytes:
    return src.to_bytes(4, "big") + dst.to_bytes(4, "big") + struct.pack("!BBH", 0, proto, length)


def _pseudo_header_v6(src: int, dst: int, proto: int, length: int) -> bytes:
    return (
        src.to_bytes(16, "big")
        + dst.to_bytes(16, "big")
        + struct.pack("!IHBB", length, 0, 0, proto)
    )


@dataclass
class TCP:
    """TCP header (20 bytes, no options)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0x02  # SYN by default: attack packets open "new flows"
    window: int = 65535
    checksum: int = 0
    urgent: int = 0

    HEADER_LEN = 20
    FLAG_FIN = 0x01
    FLAG_SYN = 0x02
    FLAG_RST = 0x04
    FLAG_PSH = 0x08
    FLAG_ACK = 0x10

    def pack(self, payload: bytes = b"", pseudo_header: bytes | None = None) -> bytes:
        _check_range("tp_src", self.src_port, 16)
        _check_range("tp_dst", self.dst_port, 16)
        _check_range("tcp_seq", self.seq, 32)
        _check_range("tcp_ack", self.ack, 32)
        _check_range("tcp_flags", self.flags, 9)
        _check_range("tcp_window", self.window, 16)
        offset_flags = (5 << 12) | self.flags
        header = struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset_flags,
            self.window,
            0,
            self.urgent,
        )
        checksum = self.checksum
        if not checksum and pseudo_header is not None:
            checksum = internet_checksum(pseudo_header + header + payload)
        return header[:16] + struct.pack("!H", checksum) + header[18:]

    @classmethod
    def unpack(cls, data: bytes) -> tuple["TCP", bytes]:
        """Parse one TCP header; return (header, remaining bytes)."""
        if len(data) < cls.HEADER_LEN:
            raise PacketError(f"TCP header truncated: {len(data)} bytes")
        src_port, dst_port, seq, ack, offset_flags, window, checksum, urgent = struct.unpack(
            "!HHIIHHHH", data[:20]
        )
        offset = (offset_flags >> 12) * 4
        if offset < 20 or len(data) < offset:
            raise PacketError(f"TCP header has bad data offset {offset}")
        header = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=offset_flags & 0x1FF,
            window=window,
            checksum=checksum,
            urgent=urgent,
        )
        return header, data[offset:]


@dataclass
class UDP:
    """UDP header (8 bytes)."""

    src_port: int = 0
    dst_port: int = 0
    length: int = 0
    checksum: int = 0

    HEADER_LEN = 8

    def pack(self, payload: bytes = b"", pseudo_header: bytes | None = None) -> bytes:
        _check_range("tp_src", self.src_port, 16)
        _check_range("tp_dst", self.dst_port, 16)
        length = self.length or (self.HEADER_LEN + len(payload))
        _check_range("udp_length", length, 16)
        header = struct.pack("!HHHH", self.src_port, self.dst_port, length, 0)
        checksum = self.checksum
        if not checksum and pseudo_header is not None:
            checksum = internet_checksum(pseudo_header + header + payload) or 0xFFFF
        return header[:6] + struct.pack("!H", checksum)

    @classmethod
    def unpack(cls, data: bytes) -> tuple["UDP", bytes]:
        """Parse one UDP header; return (header, remaining bytes)."""
        if len(data) < cls.HEADER_LEN:
            raise PacketError(f"UDP header truncated: {len(data)} bytes")
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", data[:8])
        return (
            cls(src_port=src_port, dst_port=dst_port, length=length, checksum=checksum),
            data[8:],
        )


@dataclass
class ICMP:
    """ICMP header (8 bytes: type, code, checksum, rest-of-header)."""

    icmp_type: int = 8  # echo request
    code: int = 0
    checksum: int = 0
    rest: int = 0

    HEADER_LEN = 8

    def pack(self, payload: bytes = b"") -> bytes:
        _check_range("icmp_type", self.icmp_type, 8)
        _check_range("icmp_code", self.code, 8)
        _check_range("icmp_rest", self.rest, 32)
        header = struct.pack("!BBHI", self.icmp_type, self.code, 0, self.rest)
        checksum = self.checksum or internet_checksum(header + payload)
        return header[:2] + struct.pack("!H", checksum) + header[4:]

    @classmethod
    def unpack(cls, data: bytes) -> tuple["ICMP", bytes]:
        """Parse one ICMP header; return (header, remaining bytes)."""
        if len(data) < cls.HEADER_LEN:
            raise PacketError(f"ICMP header truncated: {len(data)} bytes")
        icmp_type, code, checksum, rest = struct.unpack("!BBHI", data[:8])
        return cls(icmp_type=icmp_type, code=code, checksum=checksum, rest=rest), data[8:]
