"""High-level packet crafting: the ergonomic layer attack tooling builds on.

The :class:`PacketBuilder` crafts TCP/UDP/ICMP packets from keyword
arguments, converts :class:`~repro.packet.fields.FlowKey` objects back into
concrete packets (used when replaying adversarial traces through the
simulated switch as real wire packets), and adds the "random noise on
unimportant header fields" the paper uses to exhaust the microflow cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PacketError
from repro.packet.fields import FIELDS, FlowKey
from repro.packet.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    ICMP,
    IPv4,
    IPv6,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP,
    UDP,
    Ethernet,
)
from repro.packet.packet import Packet

__all__ = ["PacketBuilder", "NoiseConfig"]


@dataclass(frozen=True)
class NoiseConfig:
    """Which "unimportant" fields to randomize, per the paper's §5.2.

    The paper adds noise (e.g. varying TTL) to attack traces "to increase
    the entropy hence using up the microflow cache": the microflow cache
    matches exactly on *all* fields, so any varying field defeats it while
    leaving megaflow behaviour untouched.
    """

    vary_ttl: bool = True
    vary_tos: bool = False
    vary_payload: bool = True
    payload_len: int = 46  # minimal Ethernet payload


class PacketBuilder:
    """Craft concrete packets (optionally with deterministic random noise).

    Args:
        seed: seed for the internal RNG used for noise; crafting is fully
            deterministic for a given seed.
        default_eth_src / default_eth_dst: MACs applied when not overridden.
    """

    def __init__(
        self,
        seed: int = 0,
        default_eth_src: int = 0x020000000001,
        default_eth_dst: int = 0x020000000002,
    ) -> None:
        self._rng = np.random.default_rng(seed)
        self.default_eth_src = default_eth_src
        self.default_eth_dst = default_eth_dst

    # -- direct crafting ------------------------------------------------------
    def tcp(
        self,
        ip_src: int = 0,
        ip_dst: int = 0,
        tp_src: int = 0,
        tp_dst: int = 0,
        ttl: int = 64,
        tos: int = 0,
        payload: bytes = b"",
        flags: int = TCP.FLAG_SYN,
    ) -> Packet:
        """Craft an Ethernet/IPv4/TCP packet."""
        return Packet(
            layers=[
                Ethernet(src=self.default_eth_src, dst=self.default_eth_dst),
                IPv4(src=ip_src, dst=ip_dst, proto=PROTO_TCP, ttl=ttl, tos=tos),
                TCP(src_port=tp_src, dst_port=tp_dst, flags=flags),
            ],
            payload=payload,
        )

    def udp(
        self,
        ip_src: int = 0,
        ip_dst: int = 0,
        tp_src: int = 0,
        tp_dst: int = 0,
        ttl: int = 64,
        tos: int = 0,
        payload: bytes = b"",
    ) -> Packet:
        """Craft an Ethernet/IPv4/UDP packet."""
        return Packet(
            layers=[
                Ethernet(src=self.default_eth_src, dst=self.default_eth_dst),
                IPv4(src=ip_src, dst=ip_dst, proto=PROTO_UDP, ttl=ttl, tos=tos),
                UDP(src_port=tp_src, dst_port=tp_dst),
            ],
            payload=payload,
        )

    def icmp(self, ip_src: int = 0, ip_dst: int = 0, icmp_type: int = 8, code: int = 0) -> Packet:
        """Craft an Ethernet/IPv4/ICMP packet."""
        return Packet(
            layers=[
                Ethernet(src=self.default_eth_src, dst=self.default_eth_dst),
                IPv4(src=ip_src, dst=ip_dst, proto=PROTO_ICMP),
                ICMP(icmp_type=icmp_type, code=code),
            ]
        )

    # -- FlowKey -> Packet -----------------------------------------------------
    def from_flow_key(self, key: FlowKey, noise: NoiseConfig | None = None) -> Packet:
        """Materialize a concrete packet realizing ``key``.

        Fields the flow key leaves at zero stay zero (they are *values*, not
        wildcards — a FlowKey is always concrete).  Noise, when given, only
        touches fields the paper calls unimportant (TTL/ToS/payload), so the
        classification-relevant part of the key is preserved exactly.
        """
        ttl = key["ip_ttl"] or 64
        tos = key["ip_tos"]
        payload = b""
        if noise is not None:
            if noise.vary_ttl:
                ttl = int(self._rng.integers(2, 255))
            if noise.vary_tos:
                tos = int(self._rng.integers(0, 256))
            if noise.vary_payload:
                payload = self._rng.bytes(noise.payload_len)

        eth = Ethernet(
            src=key["eth_src"] or self.default_eth_src,
            dst=key["eth_dst"] or self.default_eth_dst,
            ethertype=key["eth_type"] or ETHERTYPE_IPV4,
        )
        proto = key["ip_proto"] or PROTO_TCP

        ip_layer: IPv4 | IPv6
        if eth.ethertype == ETHERTYPE_IPV6 or key["ipv6_src"] or key["ipv6_dst"]:
            eth.ethertype = ETHERTYPE_IPV6
            ip_layer = IPv6(
                src=key["ipv6_src"],
                dst=key["ipv6_dst"],
                next_header=proto,
                hop_limit=ttl,
                traffic_class=tos,
            )
        else:
            ip_layer = IPv4(src=key["ip_src"], dst=key["ip_dst"], proto=proto, ttl=ttl, tos=tos)

        layers: list = [eth, ip_layer]
        if proto == PROTO_TCP:
            layers.append(TCP(src_port=key["tp_src"], dst_port=key["tp_dst"]))
        elif proto == PROTO_UDP:
            layers.append(UDP(src_port=key["tp_src"], dst_port=key["tp_dst"]))
        elif proto == PROTO_ICMP:
            layers.append(ICMP(icmp_type=key["tp_src"] & 0xFF, code=key["tp_dst"] & 0xFF))
        else:
            raise PacketError(f"cannot materialize packet for ip_proto={proto}")
        return Packet(layers=layers, payload=payload)

    # -- randomized crafting ----------------------------------------------------
    def random_field_value(self, name: str) -> int:
        """A uniformly random value for registry field ``name``."""
        width = FIELDS[name].width
        # numpy integers cap at 64 bits; compose wider values from chunks.
        value = 0
        remaining = width
        while remaining > 0:
            take = min(remaining, 32)
            value = (value << take) | int(self._rng.integers(0, 1 << take))
            remaining -= take
        return value
