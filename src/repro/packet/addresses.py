"""IPv4/IPv6/MAC address helpers.

All classifier code works on plain integers; these helpers convert between
human-readable notation and the integer form, and generate addresses for
workload synthesis.  They wrap :mod:`ipaddress` so parsing quirks (zone IDs,
shorthand) follow the standard library.
"""

from __future__ import annotations

import ipaddress

from repro.exceptions import FieldError

__all__ = [
    "ipv4",
    "ipv4_str",
    "ipv6",
    "ipv6_str",
    "mac",
    "mac_str",
    "cidr4",
    "cidr6",
]


def ipv4(text: str) -> int:
    """Parse dotted-quad IPv4 notation into a 32-bit integer."""
    try:
        return int(ipaddress.IPv4Address(text))
    except (ipaddress.AddressValueError, ValueError) as exc:
        raise FieldError(f"bad IPv4 address {text!r}: {exc}") from exc


def ipv4_str(value: int) -> str:
    """Format a 32-bit integer as dotted-quad IPv4 notation."""
    if value < 0 or value > 0xFFFFFFFF:
        raise FieldError(f"IPv4 value {value:#x} out of range")
    return str(ipaddress.IPv4Address(value))


def ipv6(text: str) -> int:
    """Parse IPv6 notation into a 128-bit integer."""
    try:
        return int(ipaddress.IPv6Address(text))
    except (ipaddress.AddressValueError, ValueError) as exc:
        raise FieldError(f"bad IPv6 address {text!r}: {exc}") from exc


def ipv6_str(value: int) -> str:
    """Format a 128-bit integer as canonical IPv6 notation."""
    if value < 0 or value > (1 << 128) - 1:
        raise FieldError(f"IPv6 value {value:#x} out of range")
    return str(ipaddress.IPv6Address(value))


def mac(text: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` MAC notation into a 48-bit integer."""
    parts = text.split(":")
    if len(parts) != 6:
        raise FieldError(f"bad MAC address {text!r}: expected 6 colon-separated octets")
    try:
        octets = [int(p, 16) for p in parts]
    except ValueError as exc:
        raise FieldError(f"bad MAC address {text!r}: {exc}") from exc
    if any(o < 0 or o > 0xFF for o in octets):
        raise FieldError(f"bad MAC address {text!r}: octet out of range")
    value = 0
    for octet in octets:
        value = (value << 8) | octet
    return value


def mac_str(value: int) -> str:
    """Format a 48-bit integer as colon-separated MAC notation."""
    if value < 0 or value > (1 << 48) - 1:
        raise FieldError(f"MAC value {value:#x} out of range")
    return ":".join(f"{(value >> shift) & 0xFF:02x}" for shift in range(40, -8, -8))


def cidr4(text: str) -> tuple[int, int]:
    """Parse ``a.b.c.d/plen`` into an ``(address, prefix mask)`` pair."""
    try:
        network = ipaddress.IPv4Network(text, strict=False)
    except (ipaddress.AddressValueError, ipaddress.NetmaskValueError, ValueError) as exc:
        raise FieldError(f"bad IPv4 CIDR {text!r}: {exc}") from exc
    return int(network.network_address), int(network.netmask)


def cidr6(text: str) -> tuple[int, int]:
    """Parse IPv6 CIDR notation into an ``(address, prefix mask)`` pair."""
    try:
        network = ipaddress.IPv6Network(text, strict=False)
    except (ipaddress.AddressValueError, ipaddress.NetmaskValueError, ValueError) as exc:
        raise FieldError(f"bad IPv6 CIDR {text!r}: {exc}") from exc
    return int(network.network_address), int(network.netmask)
