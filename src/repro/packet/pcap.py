"""Reader/writer for the classic libpcap capture format.

The paper's testbed replays attack traces "via replaying a pcap file"; this
module lets the trace generators export adversarial packet sequences as real
pcap files (microsecond timestamps, Ethernet or raw-IP linktype) and read
them back for replay through the simulated switch.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.exceptions import PcapError
from repro.packet.packet import Packet, parse_packet

__all__ = [
    "LINKTYPE_ETHERNET",
    "LINKTYPE_RAW",
    "PcapRecord",
    "PcapWriter",
    "PcapReader",
    "write_pcap",
    "read_pcap",
]

_MAGIC_US = 0xA1B2C3D4  # microsecond-resolution, native byte order
_MAGIC_US_SWAPPED = 0xD4C3B2A1
_VERSION_MAJOR = 2
_VERSION_MINOR = 4

LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class PcapRecord:
    """One captured packet: timestamp (seconds, float) plus raw bytes."""

    timestamp: float
    data: bytes

    @property
    def ts_sec(self) -> int:
        return int(self.timestamp)

    @property
    def ts_usec(self) -> int:
        return int(round((self.timestamp - int(self.timestamp)) * 1_000_000))


class PcapWriter:
    """Streaming pcap writer.

    Usage::

        with PcapWriter(path) as writer:
            writer.write(packet_bytes, timestamp=0.01)
    """

    def __init__(self, target: str | Path | BinaryIO, linktype: int = LINKTYPE_ETHERNET,
                 snaplen: int = 65535):
        if isinstance(target, (str, Path)):
            self._file: BinaryIO = open(target, "wb")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.linktype = linktype
        self.snaplen = snaplen
        self._file.write(
            _GLOBAL_HEADER.pack(_MAGIC_US, _VERSION_MAJOR, _VERSION_MINOR, 0, 0, snaplen, linktype)
        )
        self.packets_written = 0

    def write(self, data: bytes, timestamp: float = 0.0) -> None:
        """Append one packet record."""
        captured = data[: self.snaplen]
        record = PcapRecord(timestamp=timestamp, data=captured)
        self._file.write(
            _RECORD_HEADER.pack(record.ts_sec, record.ts_usec, len(captured), len(data))
        )
        self._file.write(captured)
        self.packets_written += 1

    def write_packet(self, packet: Packet, timestamp: float = 0.0) -> None:
        """Serialize and append a :class:`Packet`."""
        self.write(packet.to_bytes(), timestamp=timestamp)

    def close(self) -> None:
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PcapReader:
    """Streaming pcap reader (iterates :class:`PcapRecord`)."""

    def __init__(self, source: str | Path | BinaryIO):
        if isinstance(source, (str, Path)):
            self._file: BinaryIO = open(source, "rb")
            self._owns_file = True
        else:
            self._file = source
            self._owns_file = False
        header = self._file.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PcapError("pcap global header truncated")
        magic, major, minor, _tz, _sig, snaplen, linktype = _GLOBAL_HEADER.unpack(header)
        if magic == _MAGIC_US:
            self._swapped = False
        elif magic == _MAGIC_US_SWAPPED:
            self._swapped = True
        else:
            raise PcapError(f"bad pcap magic {magic:#010x}")
        self.version = (major, minor)
        self.snaplen = snaplen
        self.linktype = linktype

    def __iter__(self) -> Iterator[PcapRecord]:
        record_struct = struct.Struct(">IIII" if self._swapped else "<IIII")
        while True:
            header = self._file.read(record_struct.size)
            if not header:
                return
            if len(header) < record_struct.size:
                raise PcapError("pcap record header truncated")
            ts_sec, ts_usec, incl_len, orig_len = record_struct.unpack(header)
            if incl_len > orig_len or incl_len > self.snaplen + 65535:
                raise PcapError(f"pcap record has implausible length {incl_len}")
            data = self._file.read(incl_len)
            if len(data) < incl_len:
                raise PcapError("pcap record body truncated")
            yield PcapRecord(timestamp=ts_sec + ts_usec / 1_000_000, data=data)

    def packets(self) -> Iterator[tuple[float, Packet]]:
        """Iterate (timestamp, parsed Packet) pairs."""
        link_layer = self.linktype == LINKTYPE_ETHERNET
        for record in self:
            yield record.timestamp, parse_packet(record.data, link_layer=link_layer)

    def close(self) -> None:
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_pcap(
    path: str | Path,
    packets: Iterable[Packet],
    rate_pps: float = 1000.0,
    linktype: int = LINKTYPE_ETHERNET,
) -> int:
    """Write ``packets`` to ``path`` spaced at ``rate_pps``; return the count."""
    if rate_pps <= 0:
        raise PcapError(f"rate_pps must be positive, got {rate_pps}")
    interval = 1.0 / rate_pps
    with PcapWriter(path, linktype=linktype) as writer:
        for i, packet in enumerate(packets):
            writer.write_packet(packet, timestamp=i * interval)
        return writer.packets_written


def read_pcap(path: str | Path) -> list[tuple[float, Packet]]:
    """Read every packet of a pcap file into memory."""
    with PcapReader(path) as reader:
        return list(reader.packets())
