"""Figs. 1–5 — the paper's worked examples, regenerated literally.

The 3-bit HYP protocol of Fig. 1 (allow ``001``, DefaultDeny) and the
two-field HYP×HYP2 ACL of Fig. 4 are mapped onto masked sub-fields of real
headers (the top 3 bits of ``ip_tos``, the top 4 of ``ip_ttl``); the
chunked megaflow generation then reproduces Fig. 2 (exact-match strategy),
Fig. 3 (wildcarding strategy) and Fig. 5 (the 13-mask two-field cache)
entry by entry.
"""

from __future__ import annotations

from repro.classifier.actions import ALLOW
from repro.classifier.flowtable import FlowTable
from repro.classifier.slowpath import EXACT_MATCH, WILDCARDING, MegaflowGenerator
from repro.classifier.rule import Match
from repro.classifier.tss import TupleSpaceSearch
from repro.core.tracegen import ColocatedTraceGenerator
from repro.experiments.common import ExperimentResult
from repro.packet.fields import FlowKey

__all__ = ["run", "HYP_SHIFT", "HYP2_SHIFT", "hyp_table", "hyp_hyp2_table"]

HYP_SHIFT = 5  # HYP = top 3 bits of ip_tos
HYP_MASK = 0b111 << HYP_SHIFT
HYP2_SHIFT = 4  # HYP2 = top 4 bits of ip_ttl
HYP2_MASK = 0b1111 << HYP2_SHIFT


def hyp_table() -> FlowTable:
    """The Fig. 1 flow table: allow HYP=001, deny everything else."""
    table = FlowTable(name="fig1")
    table.add_rule(Match(ip_tos=(0b001 << HYP_SHIFT, HYP_MASK)), ALLOW,
                   priority=10, name="allow-001")
    table.add_default_deny()
    return table


def hyp_hyp2_table() -> FlowTable:
    """The Fig. 4 two-field ACL: allow HYP=001; allow HYP2=1111; deny."""
    table = FlowTable(name="fig4")
    table.add_rule(Match(ip_tos=(0b001 << HYP_SHIFT, HYP_MASK)), ALLOW,
                   priority=20, name="allow-hyp")
    table.add_rule(Match(ip_ttl=(0b1111 << HYP2_SHIFT, HYP2_MASK)), ALLOW,
                   priority=10, name="allow-hyp2")
    table.add_default_deny()
    return table


def _fill(table: FlowTable, strategy, keys) -> TupleSpaceSearch:
    generator = MegaflowGenerator(table, strategy)
    cache = TupleSpaceSearch(check_invariants=True)
    for key in keys:
        cache.insert(generator.generate(key).entry)
    return cache


def run() -> ExperimentResult:
    """Regenerate the Figs. 2/3/5 cache shapes."""
    all_hyp = [FlowKey(ip_tos=v << HYP_SHIFT) for v in range(8)]
    exact = _fill(hyp_table(), EXACT_MATCH, all_hyp)
    wild = _fill(hyp_table(), WILDCARDING, all_hyp)

    trace = ColocatedTraceGenerator(hyp_table()).generate()
    trace_hyp = [key["ip_tos"] >> HYP_SHIFT for key in trace.keys]

    two_field = hyp_hyp2_table()
    all_pairs = [
        FlowKey(ip_tos=a << HYP_SHIFT, ip_ttl=b << HYP2_SHIFT)
        for a in range(8)
        for b in range(16)
    ]
    fig5 = _fill(two_field, WILDCARDING, all_pairs)

    result = ExperimentResult(
        experiment_id="didactic",
        title="the worked examples of Figs. 1-5",
        paper_reference="Figs. 1, 2, 3, 4, 5 (§3.2, §4)",
        columns=["figure", "strategy", "masks", "entries", "paper_masks", "paper_entries"],
    )
    result.add_row("Fig. 2 (exact-match)", "k=1", exact.n_masks, exact.n_entries, 1, 8)
    result.add_row("Fig. 3 (wildcarding)", "k=w", wild.n_masks, wild.n_entries, 3, 4)
    result.add_row("Fig. 5 (two fields)", "k=w", fig5.n_masks, fig5.n_entries, 13, 16)
    result.notes.append(
        f"Fig. 1 bit-inversion trace: HYP = "
        f"{{{', '.join(format(v, '03b') for v in trace_hyp)}}} "
        "(paper: {001, 101, 011, 000})"
    )
    wild_entries = sorted(
        ((e.key[10] >> HYP_SHIFT, e.mask['ip_tos'] >> HYP_SHIFT, str(e.action))
         for e in wild.entries()),
        key=lambda item: (-item[1], item[0]),
    )
    result.notes.append(
        "Fig. 3 cache: "
        + "; ".join(f"key={k:03b}/mask={m:03b}->{a}" for k, m, a in wild_entries)
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
