"""§6.2 in-text numbers — General TSE efficiency at fixed packet budgets.

The paper evaluates the random-trace attack at two budgets: 1,000 packets
(the budget that suffices for a full Co-located SipDp teardown, ~0.67 Mbps)
and 50,000 packets (where the expected mask counts saturate).  For each
budget and use case it quotes the victim capacity left, per NIC profile.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.analysis import expected_masks
from repro.core.usecases import DP, SIPDP, SIPSPDP, SPDP, UseCase
from repro.experiments.common import ExperimentResult
from repro.experiments.fig9b import measured_masks
from repro.switch.calibration import fit_profile
from repro.switch.offload import FHO_TCP, GRO_OFF_TCP, GRO_ON_TCP, UDP_PROFILE

__all__ = ["run", "PAPER_NUMBERS"]

# §6.2: % of full capacity at 50k and 1k random packets —
# (GRO OFF, GRO ON, FHO, UDP) per use case.
PAPER_NUMBERS = {
    (50000, "Dp"): (52.0, 97.0, 88.0, 60.0),
    (50000, "SipDp"): (12.0, 96.0, 87.0, 15.8),
    (50000, "SipSpDp"): (1.0, 73.5, 25.5, 3.25),
    (1000, "Dp"): (72.8, 99.15, 91.25, 77.28),
    (1000, "SipDp"): (25.4, 96.8, 87.95, 32.35),
    (1000, "SipSpDp"): (11.7, 95.8, 87.0, 12.5),
}


def run(
    budgets: Sequence[int] = (1000, 50000),
    runs: int = 3,
    seed: int = 0,
    use_cases: Sequence[UseCase] = (DP, SPDP, SIPDP, SIPSPDP),
) -> ExperimentResult:
    """Regenerate the §6.2 capacity-retention table."""
    curves = {
        "gro_off": fit_profile(GRO_OFF_TCP),
        "gro_on": fit_profile(GRO_ON_TCP),
        "fho": fit_profile(FHO_TCP),
        "udp": fit_profile(UDP_PROFILE),
    }
    result = ExperimentResult(
        experiment_id="section62",
        title=f"General TSE at fixed budgets ({runs}-run Monte Carlo + Eq. 2)",
        paper_reference="§6.2 in-text numbers",
        columns=[
            "packets", "use_case", "masks_measured", "masks_expected",
            "gro_off_pct", "gro_on_pct", "fho_pct", "udp_pct",
            "paper_gro_off", "paper_udp",
        ],
    )
    for use_case in use_cases:
        counts = sorted(budgets)
        measured = measured_masks(use_case, counts, runs=runs, seed=seed)
        for n, masks in zip(counts, measured):
            expected = expected_masks(use_case.field_widths(), n)
            paper = PAPER_NUMBERS.get((n, use_case.name))
            result.add_row(
                n,
                use_case.name,
                round(masks, 1),
                round(expected, 1),
                round(100 * curves["gro_off"].fraction(masks), 1),
                round(100 * curves["gro_on"].fraction(masks), 1),
                round(100 * curves["fho"].fraction(masks), 1),
                round(100 * curves["udp"].fraction(masks), 1),
                paper[0] if paper else float("nan"),
                paper[3] if paper else float("nan"),
            )
    result.notes.append(
        "1,000 random packets ≈ the Co-located budget that tears down OVS (0.67 Mbps); "
        "General TSE needs 50x more packets to approach the same mask counts"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
