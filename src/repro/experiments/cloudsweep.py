"""Cloudsweep — victim-floor distributions across a multi-rack fleet.

The paper's co-location result measured one contended hypervisor; this
experiment asks the *cloud* question: what does a tuple-space-explosion
campaign do to the tenant population of a whole fleet?  A multi-rack
:class:`~repro.netsim.fleet.Fleet` (default 100 hosts × 1000 tenants)
runs under the event-driven scheduler — racks settle their tenants in
one vectorised pass per period, attack sources tick at the base dt on
the hosts they detonate — under two campaign shapes with the *same total
attack budget*:

* **spread**: the budget is divided evenly across every host (each
  hypervisor sees a trickle of crafted packets);
* **concentrated**: the full budget detonates one host's datapath.

The readout is the distribution of per-tenant throughput *floors* (the
minimum achieved rate during the attack window): p50 tells the typical
tenant's story, p99/p01 the tails.  A concentrated campaign starves one
host's tenants outright (deep p01) while the fleet median barely moves.
The spread campaign is the sharper result: because the crafted trace
loops and the detonated megaflows *persist* (the revalidator only evicts
after sustained idleness), even a per-host trickle walks the full mask
staircase within the window — the same budget that starved one host
floors the median tenant of the *entire fleet*.  That is the fleet-scale
restatement of the paper's core finding: the attack's power is its
cheapness against a shared cache — tens of pps per hypervisor, amplified
by state that stays detonated, not raw packet volume.
"""

from __future__ import annotations

from repro.experiments.backendsweep import attacker_rules
from repro.experiments.common import ExperimentResult
from repro.exceptions import ExperimentError
from repro.netsim.cloud import ENVIRONMENTS, SYNTHETIC_ENV
from repro.netsim.engine import Simulation
from repro.netsim.fleet import Fleet
from repro.netsim.flows import ActiveWindow, AttackSource
from repro.netsim.metrics import quantile

__all__ = ["run", "run_plan"]

PLANS = ("spread", "concentrated")


def run_plan(
    plan: str,
    environment=SYNTHETIC_ENV,
    n_racks: int = 4,
    hosts_per_rack: int = 25,
    tenants_per_host: int = 1000,
    duration: float = 30.0,
    attack_start: float = 5.0,
    attack_stop: float = 25.0,
    attack_pps: float = 2000.0,
    use_case_name: str = "SipDp",
    seed: int = 0,
    dt: float = 0.1,
    rack_period: float = 1.0,
    mode: str = "event",
    settlement_mode: str = "vector",
) -> dict:
    """One detonation plan over a fresh fleet; returns its floor stats.

    ``plan="concentrated"`` aims the whole ``attack_pps`` at host (0, 0);
    ``plan="spread"`` divides it evenly across every host in the fleet —
    same crafted trace per host, same total budget either way.
    """
    if plan not in PLANS:
        raise ExperimentError(f"unknown plan {plan!r}; expected one of {PLANS}")
    fleet = Fleet(
        environment,
        n_racks=n_racks,
        hosts_per_rack=hosts_per_rack,
        tenants_per_host=tenants_per_host,
        seed=seed,
        rack_period=rack_period,
        settlement_mode=settlement_mode,
    )
    try:
        simulation = Simulation(dt=dt, mode=mode)
        fleet.register(simulation)
        rules = attacker_rules(use_case_name)
        window = [ActiveWindow(attack_start, attack_stop)]
        hosts = list(fleet.hosts())
        targets = hosts if plan == "spread" else [fleet.host(0, 0)]
        per_host_pps = attack_pps / len(targets)
        for host in targets:
            trace = host.detonation_trace(rules, label=use_case_name)
            simulation.add(
                AttackSource(
                    host=host,
                    keys=trace.keys,
                    pps=per_host_pps,
                    windows=window,
                    name=f"attacker-{host.name}",
                    period=dt,
                )
            )

        simulation.run(attack_start)
        baseline = fleet.rates().tolist()
        fleet.start_recording()
        simulation.run(duration - attack_start)

        floors = fleet.floors()
        attacked = [
            value
            for host in targets
            for value in host.tenants.floor_gbps.tolist()
        ]
        return {
            "plan": plan,
            "n_hosts": len(hosts),
            "n_tenants": fleet.tenant_count,
            "attacked_hosts": len(targets),
            "per_host_pps": per_host_pps,
            "baseline_p50": quantile(baseline, 50.0),
            "floor_p01": quantile(floors.tolist(), 1.0),
            "floor_p50": quantile(floors.tolist(), 50.0),
            "floor_p99": quantile(floors.tolist(), 99.0),
            "attacked_floor_p50": quantile(attacked, 50.0),
            "floor_min": float(floors.min()),
        }
    finally:
        fleet.close()


def run(
    environment_name: str = "Synthetic",
    n_racks: int = 4,
    hosts_per_rack: int = 25,
    tenants_per_host: int = 1000,
    duration: float = 30.0,
    attack_start: float = 5.0,
    attack_stop: float = 25.0,
    attack_pps: float = 2000.0,
    use_case_name: str = "SipDp",
    seed: int = 0,
    dt: float = 0.1,
    rack_period: float = 1.0,
    mode: str = "event",
) -> ExperimentResult:
    """Floor distributions for both detonation plans over the same fleet shape."""
    try:
        environment = ENVIRONMENTS[environment_name]
    except KeyError:
        raise ExperimentError(
            f"unknown environment {environment_name!r}; have {sorted(ENVIRONMENTS)}"
        ) from None
    result = ExperimentResult(
        experiment_id="cloudsweep",
        title=(
            f"{use_case_name} campaign over {n_racks * hosts_per_rack} hosts x "
            f"{tenants_per_host} tenants ({environment_name}), "
            f"spread vs concentrated at {attack_pps:.0f} pps total"
        ),
        paper_reference="fleet-scale extension of §5.4 (ROADMAP item 1; arXiv:2011.09107)",
        columns=[
            "plan",
            "attacked_hosts",
            "per_host_pps",
            "baseline_p50_gbps",
            "floor_p01_gbps",
            "floor_p50_gbps",
            "floor_p99_gbps",
            "attacked_floor_p50_gbps",
            "floor_min_gbps",
        ],
    )
    cells = [
        run_plan(
            plan,
            environment=environment,
            n_racks=n_racks,
            hosts_per_rack=hosts_per_rack,
            tenants_per_host=tenants_per_host,
            duration=duration,
            attack_start=attack_start,
            attack_stop=attack_stop,
            attack_pps=attack_pps,
            use_case_name=use_case_name,
            seed=seed,
            dt=dt,
            rack_period=rack_period,
            mode=mode,
        )
        for plan in PLANS
    ]
    for cell in cells:
        result.add_row(
            cell["plan"],
            cell["attacked_hosts"],
            round(cell["per_host_pps"], 2),
            round(cell["baseline_p50"], 5),
            round(cell["floor_p01"], 5),
            round(cell["floor_p50"], 5),
            round(cell["floor_p99"], 5),
            round(cell["attacked_floor_p50"], 5),
            round(cell["floor_min"], 5),
        )
    spread, concentrated = cells
    result.notes.append(
        f"{spread['n_tenants']} tenants across {spread['n_hosts']} hosts; "
        "same total attack budget per plan."
    )
    result.notes.append(
        "concentrated: attacked-host tenant floor p50 "
        f"{concentrated['attacked_floor_p50']:.4f} Gbps vs fleet baseline p50 "
        f"{concentrated['baseline_p50']:.4f} Gbps; fleet floor p50 stays at "
        f"{concentrated['floor_p50']:.4f}."
    )
    result.notes.append(
        "spread: the same budget as a per-host trickle "
        f"({spread['per_host_pps']:.0f} pps/host) floors the fleet-wide tenant "
        f"p50 to {spread['floor_p50']:.4f} Gbps — looped traces and persistent "
        "megaflows let tens of pps fully detonate every shared cache."
    )
    return result
