"""§7 — classifier robustness comparison under TSE traffic.

The paper's long-term mitigation: replace TSS with classifiers whose
lookup cost does not depend on traffic history — hierarchical tries,
HyperCuts, HaRP.  This harness runs the same three traffic phases through
every classifier in the :data:`repro.classifier.SECTION7_CLASSIFIERS`
lineup (one cached datapath per registered megaflow backend, plus the
traffic-independent alternatives) and reports the mean per-packet lookup
cost (each in its own units — the *trend across phases* is the result):

1. **benign** — packets matching the ACL's allow rules;
2. **attack** — the co-located TSE trace;
3. **benign-after** — the benign mix again, after the attack.

The TSS-cached datapath's benign cost explodes after the attack (its mask
list is bloated); the TupleChain-cached datapath inherits the same bloated
cache but keeps probing it in near-constant chain steps; the alternatives
are flat by construction.
"""

from __future__ import annotations

from typing import Sequence

from repro.classifier import section7_classifiers
from repro.classifier.adapter import TssCachedClassifier
from repro.classifier.base import PacketClassifier
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPSPDP, UseCase
from repro.experiments.common import ExperimentResult, benign_keys
from repro.packet.headers import PROTO_TCP

__all__ = ["run"]


def run(
    use_case: UseCase = SIPSPDP,
    benign_packets: int = 2000,
    seed: int = 0,
) -> ExperimentResult:
    """Run the three-phase robustness comparison."""
    table = use_case.build_table()
    rules = table.rules_by_priority()
    classifiers: Sequence[PacketClassifier] = section7_classifiers(rules)
    benign = benign_keys(use_case, benign_packets, seed)
    attack = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate().keys

    result = ExperimentResult(
        experiment_id="comparison",
        title=f"per-packet lookup cost by phase ({use_case.name} ACL)",
        paper_reference="§7 long-term mitigation / §9",
        columns=[
            "classifier", "benign_cost", "attack_cost", "benign_after_cost",
            "degradation_x", "memory_units",
        ],
    )
    for classifier in classifiers:
        phases = []
        for phase_index, keys in enumerate((benign, attack, benign)):
            if phase_index == 2 and isinstance(classifier, TssCachedClassifier):
                # Steady state: a long-running switch's mask order has
                # decorrelated from insertion order (idle churn), which is
                # the paper's victim-at-mid-scan model.
                classifier.churn(seed=1)
            costs = [classifier.classify(key).cost for key in keys]
            phases.append(sum(costs) / len(costs))
        degradation = phases[2] / phases[0] if phases[0] else float("inf")
        result.add_row(
            classifier.name,
            round(phases[0], 2),
            round(phases[1], 2),
            round(phases[2], 2),
            round(degradation, 1),
            classifier.memory_units(),
        )
    result.notes.append(
        "degradation_x = benign cost after the attack / before it; TSS inherits the "
        "bloated mask list, the grouped tuplechain cache probes the same bloat in "
        "near-constant chain steps, the §7 alternatives are traffic-independent (≈1.0)"
    )
    result.notes.append(
        "costs are classifier-specific units (masks probed, rules scanned, nodes "
        "visited, hash probes) — compare trends, not absolute values"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
