"""CLI: ``python -m repro.experiments <id> [--save DIR]``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table/figure of the TSE paper.",
    )
    parser.add_argument("experiment", nargs="?", choices=sorted(EXPERIMENTS) + ["all"],
                        help="experiment id (or 'all')")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--save", metavar="DIR", help="also write results under DIR")
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        for experiment_id, runner in sorted(EXPERIMENTS.items()):
            doc = (runner.__doc__ or "").strip().splitlines()[0] if runner.__doc__ else ""
            print(f"{experiment_id:12s} {doc}")
        return 0

    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        started = time.perf_counter()
        result = EXPERIMENTS[experiment_id]()
        elapsed = time.perf_counter() - started
        print(result.format_table())
        print(f"[{experiment_id} finished in {elapsed:.1f}s]\n")
        if args.save:
            path = result.save(args.save)
            print(f"saved: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
