"""RSS rebalancing game — the RSS-aware attacker vs. the re-keying defender.

The enhanced attack of arXiv:2011.09107: an attacker who knows the NIC's
RSS hash grinds the megaflow-wildcarded bits of its crafting packets
(:func:`~repro.switch.rss.retarget_trace`) until every one lands on the
queue a chosen victim's flow is pinned to — the tuple-space explosion,
which plain RSS would dilute 1/N across PMD cores, concentrates on the
victim's core and floors exactly that victim.

ROADMAP item 5's defense is to make the placement a moving target: a
:class:`~repro.core.rebalance.RebalanceController` watches per-shard
scan-cost skew and, when one core's cost explodes while the others stay
benign, re-keys the RSS hash and live-migrates the cached flow state to
its new home shards (:meth:`~repro.switch.sharded.ShardedDatapath.rebalance`
— quiesced, zero entries dropped).  The attacker's ground placement is
invalidated wholesale; it must re-observe and re-grind its whole trace.

This experiment plays that game in rounds: every ``round_period`` seconds
the attacker re-targets its trace against the *current* dispatcher onto
the victim's *current* home queue (it is assumed to know both — the
worst case for the defender), and the defender re-keys whenever the skew
signature re-appears.  Two cells differ only in whether the defender
plays:

* ``static`` — classic fixed RSS; the attacker grinds once and the victim
  stays floored for the whole attack.
* ``rebalance`` — the controller re-keys each time the attacker
  re-concentrates; between the re-map and the attacker's next move the
  explosion is diluted 1/N again and the victim's rate comes back.

Scored on **round tails**: the victim's minimum settled rate over the
second half of every retargeting round — after the defender has had its
chance to respond, before the attacker moves again.  The headline ratio
(rebalancing tail floor vs. static tail floor, acceptance >= 10x) is
guarded by ``benchmarks/bench_rebalance.py`` alongside the re-map's
zero-drop invariant.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.rebalance import RebalancePolicy
from repro.experiments.backendsweep import attacker_rules
from repro.experiments.common import ExperimentResult
from repro.experiments.testbeds import build_testbed
from repro.netsim.cloud import MULTIQUEUE_ENV
from repro.netsim.flows import ActiveWindow, AttackSource
from repro.switch.rss import retarget_trace

__all__ = ["run", "run_policy_cell", "POLICIES"]

POLICIES = ("static", "rebalance")

#: The sweep's rebalance policy.  The skew trigger (worst/mean per-shard
#: scan cost) reads the concentration signature: an even dilution sits
#: near 1.05, a fresh detonation packed onto one of 4 cold queues
#: approaches 4 — but a *re*-concentration after a re-map climbs slowly,
#: because the previous round's scattered entries keep the other cores'
#: mask lists warm and hold the mean up.  1.5 catches that climb within
#: a couple of seconds while staying well clear of benign noise.  The
#: cooldown is much shorter than the attacker's observe+re-grind round,
#: so the defender always gets its move in.
SWEEP_POLICY = RebalancePolicy(
    skew_threshold=1.5,
    cost_floor=64.0,
    hysteresis=0.5,
    cooldown=2.0,
    period=0.5,
    mode="rekey",
)


def run_policy_cell(
    policy: str,
    use_case_name: str = "SipSpDp",
    duration: float = 40.0,
    attack_start: float = 5.0,
    attack_stop: float = 35.0,
    round_period: float = 10.0,
    attack_pps: float = 1200.0,
    offered_gbps: float = 10.0,
    dt: float = 0.1,
    rebalance_policy: RebalancePolicy | None = None,
    victim_queue: int = 0,
    victim_kind: str = "udp",
) -> dict:
    """One defender policy's full adversarial-game run.

    The attacker re-targets at ``attack_start`` and then every
    ``round_period`` seconds while the attack window is open.  Each
    re-targeting grinds against the dispatcher *currently installed* and
    aims at the victim's *current* home queue.  Returns the time series
    plus the round-tail summary (see module docstring).

    The victim is UDP by default: its rate tracks the capacity the
    hypervisor assigns each tick, so the series measures the *placement*
    game directly rather than convolving it with TCP's ramp constant
    (a TCP victim recovers to the same level, tau=2 s later).
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; known: {', '.join(POLICIES)}")
    rpolicy = rebalance_policy or SWEEP_POLICY
    environment = replace(
        MULTIQUEUE_ENV,
        name=f"Multiqueue/{policy}",
        megaflow_backend="tss",
        rebalance_policy=rpolicy if policy == "rebalance" else None,
    )
    testbed = build_testbed(environment, dt=dt)
    host = testbed.server.host
    datapath = testbed.server.datapath
    flow_table = testbed.server.flow_table
    victim = testbed.add_victim_flow(
        "victim", offered_gbps=offered_gbps, queue=victim_queue, kind=victim_kind
    )
    trace = testbed.attack_trace(attacker_rules(use_case_name), label=use_case_name)
    base_keys = list(trace.keys)

    retargets: list[dict] = []

    def regrind(now: float) -> list:
        """The attacker's move: observe placement, re-grind the trace."""
        target = host.victims["victim"].home_shards[0]
        keys, report = retarget_trace(
            base_keys, flow_table, datapath.rss, queue_for=lambda i, k: target
        )
        retargets.append(
            {
                "at": now,
                "target_queue": target,
                "retargeted": report.retargeted,
                "already_on_target": report.already_on_target,
                "stuck": report.stuck,
            }
        )
        return keys

    attacker = AttackSource(
        host=host,
        keys=regrind(attack_start),
        pps=attack_pps,
        windows=[ActiveWindow(attack_start, attack_stop)],
        name="rss-aware-attacker",
    )
    simulation = testbed.simulation
    simulation.add(attacker)
    simulation.add(host)

    series: list[tuple[float, float, int, float]] = []
    next_round = attack_start + round_period

    def observer(now: float) -> None:
        nonlocal next_round
        victim.settle(now, dt)
        series.append((now, victim.rate_gbps, datapath.n_masks, datapath.scan_cost))
        if next_round <= now < attack_stop:
            attacker.set_trace(regrind(now))
            next_round += round_period

    simulation.observe(observer)
    simulation.run(duration)

    # Round-tail floors: the second half of every retargeting round — the
    # defended steady state, after the re-map response, before the
    # attacker's next move.
    tail_floors: list[float] = []
    start = attack_start
    while start < attack_stop:
        stop = min(start + round_period, attack_stop)
        tail = [r for t, r, _m, _c in series if start + (stop - start) / 2 <= t < stop]
        if tail:
            tail_floors.append(min(tail))
        start = stop
    baseline = max((r for t, r, _m, _c in series if t < attack_start), default=0.0)
    attack_floor = min(
        (r for t, r, _m, _c in series if attack_start + 2.0 <= t < attack_stop),
        default=float("inf"),
    )
    status = (
        datapath.rebalance_status()
        if hasattr(datapath, "rebalance_status")
        else {"remaps": 0, "entries_moved": 0, "salt": 0}
    )
    return {
        "policy": policy,
        "series": series,
        "retargets": retargets,
        "baseline_gbps": baseline,
        "attack_floor_gbps": attack_floor,
        "tail_floor_gbps": min(tail_floors) if tail_floors else float("inf"),
        "tail_floors_gbps": tail_floors,
        "rounds": len(retargets),
        "remaps": status["remaps"],
        "entries_moved": status["entries_moved"],
        "final_salt": status["salt"],
        "peak_masks": max(m for _t, _r, m, _c in series),
        "peak_scan_cost": max(c for _t, _r, _m, c in series),
        "trace_packets": len(base_keys),
    }


def run(
    use_case_name: str = "SipSpDp",
    duration: float = 40.0,
    attack_start: float = 5.0,
    attack_stop: float = 35.0,
    round_period: float = 10.0,
    attack_pps: float = 1200.0,
    dt: float = 0.1,
    rebalance_policy: RebalancePolicy | None = None,
) -> ExperimentResult:
    """Play the retargeting game with and without the rebalancing defender."""
    cells = {
        policy: run_policy_cell(
            policy,
            use_case_name=use_case_name,
            duration=duration,
            attack_start=attack_start,
            attack_stop=attack_stop,
            round_period=round_period,
            attack_pps=attack_pps,
            dt=dt,
            rebalance_policy=rebalance_policy,
        )
        for policy in POLICIES
    }

    result = ExperimentResult(
        experiment_id="rsssweep",
        title=f"RSS retargeting game under the {use_case_name} detonation",
        paper_reference="arXiv:2011.09107 enhanced attack + ROADMAP item 5",
        columns=[
            "policy", "baseline_gbps", "attack_floor_gbps", "tail_floor_gbps",
            "rounds", "remaps", "entries_moved", "peak_masks",
            "peak_scan_cost",
        ],
    )
    for policy in POLICIES:
        cell = cells[policy]
        result.add_row(
            policy,
            round(cell["baseline_gbps"], 3),
            round(cell["attack_floor_gbps"], 4),
            round(cell["tail_floor_gbps"], 4),
            cell["rounds"],
            cell["remaps"],
            cell["entries_moved"],
            cell["peak_masks"],
            round(cell["peak_scan_cost"], 1),
        )

    static_floor = cells["static"]["tail_floor_gbps"]
    defended_floor = cells["rebalance"]["tail_floor_gbps"]
    ratio = defended_floor / static_floor if static_floor > 0 else float("inf")
    result.notes.append(
        f"round-tail victim floor: rebalancing {defended_floor:.3f} Gbps vs "
        f"static RSS {static_floor:.4f} Gbps — {ratio:.0f}x "
        f"(acceptance: >= 10x, guarded by benchmarks/bench_rebalance.py)"
    )
    result.notes.append(
        "the attacker is maximally informed: each round it reads the live "
        "dispatcher and the victim's current home queue and re-grinds only "
        "megaflow-wildcarded bits, so every retargeted trace detonates the "
        "identical tuple space (retarget_trace verifies (mask, masked key))"
    )
    result.notes.append(
        "re-maps migrate the cached flow state live: entries are re-homed by "
        "masked key under datapath.maintenance() with zero drops (the "
        "aggregate (mask, masked key) union is shard-count-invariant through "
        "every re-map — bench_rebalance.py asserts it under all executors)"
    )
    result.notes.append(
        f"defender moved {cells['rebalance']['entries_moved']} entries across "
        f"{cells['rebalance']['remaps']} re-maps; the static cell's dispatcher "
        f"never changes, so its attacker pays the grind exactly once"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
