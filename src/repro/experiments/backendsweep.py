"""Megaflow-backend sweep — the same TSE detonation against every backend.

The §7 discussion argues the TSE attack is specific to Tuple Space Search:
any cache whose lookup cost does not scale with the installed mask count
shrugs the detonation off.  With the megaflow cache behind the pluggable
:class:`~repro.classifier.backend.MegaflowBackend` seam this is now
measurable *inside the full cached datapath* (the regime the OVS
feasibility follow-up, arXiv:2011.09107, says defenses must be judged in),
not just on bare classifiers: this harness runs the identical three-phase
traffic program — benign, co-located TSE detonation, benign again —
through one datapath per registered backend and reports, per backend, the
mask/entry growth (identical by construction: the slow path installs the
same entries regardless of the cache that stores them) and the per-packet
lookup cost in the backend's native probe units (mask tables scanned for
TSS, chain probes for the grouped TupleChain backend).

The headline contrast: after the attack, TSS probes grow with the mask
count it inherited, while the grouped backend's chain probes stay near
their pre-attack level — the defense effect the ``bench_backend`` guard
pins with wall-clock numbers on the full 8k-mask detonation.
"""

from __future__ import annotations

from typing import Sequence

from repro.classifier.backend import megaflow_backend_names
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import use_case
from repro.experiments.common import ExperimentResult, benign_keys
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig

__all__ = ["run"]


def _mean_probes(verdicts) -> float:
    return sum(v.masks_inspected for v in verdicts) / max(len(verdicts), 1)


def run(
    use_case_name: str = "SipDp",
    benign_packets: int = 400,
    backends: Sequence[str] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Run the three-phase program through a datapath per backend."""
    case = use_case(use_case_name)
    names = tuple(backends) if backends is not None else megaflow_backend_names()
    benign = benign_keys(case, benign_packets, seed)

    result = ExperimentResult(
        experiment_id="backendsweep",
        title=f"megaflow backends under the co-located TSE detonation ({case.name} ACL)",
        paper_reference="§7 long-term mitigation (TupleChain regime)",
        columns=[
            "backend", "masks", "entries", "groups",
            "benign_probe", "attack_probe", "benign_after_probe", "degradation_x",
        ],
    )

    transcripts: dict[str, list] = {}
    for name in names:
        datapath = Datapath(
            case.build_table(),
            DatapathConfig(microflow_capacity=0, megaflow_backend=name),
        )
        cache = datapath.megaflows
        actions: list = []

        verdicts = datapath.process_batch(benign)
        actions.extend(v.action for v in verdicts)
        benign_probe = _mean_probes(verdicts)

        attack = ColocatedTraceGenerator(
            datapath.flow_table, base={"ip_proto": PROTO_TCP}
        ).generate()
        actions.extend(v.action for v in datapath.process_batch(list(attack.keys)))
        cache.shuffle_masks(seed=1)  # steady-state scan order (no-op cost for chains)

        cache.clear_memo()
        attack_verdicts = datapath.process_batch(list(attack.keys))
        actions.extend(v.action for v in attack_verdicts)
        attack_probe = _mean_probes(attack_verdicts)

        cache.clear_memo()
        after_verdicts = datapath.process_batch(benign)
        actions.extend(v.action for v in after_verdicts)
        after_probe = _mean_probes(after_verdicts)

        transcripts[name] = actions
        result.add_row(
            name,
            datapath.n_masks,
            datapath.n_megaflows,
            getattr(cache, "n_groups", datapath.n_masks),
            round(benign_probe, 2),
            round(attack_probe, 2),
            round(after_probe, 2),
            round(after_probe / benign_probe if benign_probe else float("inf"), 1),
        )

    reference = transcripts[names[0]]
    agree = all(transcripts[name] == reference for name in names[1:])
    result.notes.append(
        "verdict equivalence across backends (benign + attack + benign-after): "
        + ("IDENTICAL" if agree else "MISMATCH — backend bug!")
    )
    result.notes.append(
        "probe units are backend-native (mask tables scanned vs chain hash probes); "
        "compare each backend's before/after trend, not absolute columns"
    )
    result.notes.append(
        "masks/entries are backend-independent: the slow path generates the same "
        "megaflows, only the structure that scans them changes"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
