"""Megaflow-backend sweep — the same TSE detonation against every backend.

The §7 discussion argues the TSE attack is specific to Tuple Space Search:
any cache whose lookup cost does not scale with the installed mask count
shrugs the detonation off.  With the megaflow cache behind the pluggable
:class:`~repro.classifier.backend.MegaflowBackend` seam *and* the cost
plane priced in backend-native probe units, this is measurable in two
regimes, both covered here:

* **the probe table** — the identical three-phase traffic program (benign,
  co-located TSE detonation, benign again) through one bare datapath per
  registered backend, reporting mask/entry growth (identical by
  construction) and per-packet lookup cost in the backend's native probe
  units;
* **the netsim time series** — the full Fig. 7 hypervisor under a
  detonation window, one run per backend, with victim throughput settled
  by the probe-native cost plane.  Because the hypervisor now divides
  budgets by ``expected_scan_cost()`` instead of the mask count, the
  grouped backend's victim *visibly keeps its throughput* while TSS's
  collapses — the regime the OVS feasibility follow-up (arXiv:2011.09107)
  says defenses must be judged in, not just bare replay pps.

The headline contrast: after the attack both backends hold the same
exploded mask list, but TSS's expected scan cost *is* that mask count
while the grouped backend's chain walk stays near its pre-attack level —
so only the TSS victim starves.  ``benchmarks/bench_probe.py`` guards the
netsim contrast on the full 8k-mask SipSpDp detonation and
``bench_backend.py`` pins the wall-clock replay numbers.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.classifier.backend import megaflow_backend_names
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import use_case
from repro.experiments.common import ExperimentResult, benign_keys
from repro.experiments.testbeds import TRUSTED_IP, build_testbed
from repro.netsim.cloud import SYNTHETIC_ENV
from repro.netsim.cms import PolicyRule
from repro.netsim.flows import ActiveWindow, AttackSource
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig

__all__ = ["run", "run_netsim_cell", "attacker_rules"]


def _mean_probes(verdicts) -> float:
    return sum(v.masks_inspected for v in verdicts) / max(len(verdicts), 1)


def attacker_rules(use_case_name: str) -> list[PolicyRule]:
    """The attacker's ACL for a named use case (§5.2 staircase products).

    Each allow rule contributes one exact-match field whose bit-inversion
    staircase multiplies into the detonated tuple space: Dp = 16 masks,
    SipDp = 16·32, SipSpDp = 16·32·16 (8,192 deny masks).
    """
    fields = use_case(use_case_name).allow_fields
    rules = []
    for field in fields:
        if field == "tp_dst":
            rules.append(PolicyRule(dst_port=80))
        elif field == "tp_src":
            rules.append(PolicyRule(src_port=1000))
        elif field == "ip_src":
            rules.append(PolicyRule(remote_ip=(TRUSTED_IP, 0xFFFFFFFF)))
        else:  # pragma: no cover - no current use case reaches here
            raise ValueError(f"no attacker rule template for field {field!r}")
    return rules


def run_netsim_cell(
    backend: str,
    use_case_name: str = "SipSpDp",
    duration: float = 35.0,
    attack_start: float = 5.0,
    attack_stop: float = 25.0,
    attack_pps: float = 1200.0,
    offered_gbps: float = 10.0,
    dt: float = 0.1,
) -> dict:
    """One backend's full netsim run: detonation window, settled victim rates.

    Returns the time series plus its summary: victim baseline (max before
    the attack), floor (min once the detonation has settled, from
    ``attack_start + 5`` to ``attack_stop``), the final mask count and the
    final expected scan cost in the backend's normalised probe units.
    """
    environment = replace(
        SYNTHETIC_ENV, name=f"Synthetic/{backend}", megaflow_backend=backend
    )
    testbed = build_testbed(environment, dt=dt)
    victim = testbed.add_victim_flow("victim", offered_gbps=offered_gbps)
    trace = testbed.attack_trace(attacker_rules(use_case_name), label=use_case_name)
    attacker = AttackSource(
        host=testbed.server.host,
        keys=trace.keys,
        pps=attack_pps,
        windows=[ActiveWindow(attack_start, attack_stop)],
        name="attacker",
    )
    simulation = testbed.simulation
    simulation.add(attacker)
    simulation.add(testbed.server.host)

    series: list[tuple[float, float, int, float]] = []

    def observer(now: float) -> None:
        victim.settle(now, dt)
        datapath = testbed.server.datapath
        series.append((now, victim.rate_gbps, datapath.n_masks, datapath.scan_cost))

    simulation.observe(observer)
    simulation.run(duration)

    settle_from = attack_start + 5.0
    baseline = max((r for t, r, _m, _c in series if t < attack_start), default=0.0)
    floor = min(
        (r for t, r, _m, _c in series if settle_from <= t < attack_stop),
        default=float("inf"),
    )
    peak_masks = max(m for _t, _r, m, _c in series)
    peak_cost = max(c for _t, _r, _m, c in series)
    return {
        "backend": backend,
        "series": series,
        "baseline_gbps": baseline,
        "floor_gbps": floor,
        "peak_masks": peak_masks,
        "peak_scan_cost": peak_cost,
        "trace_packets": len(trace.keys),
    }


def run(
    use_case_name: str = "SipDp",
    benign_packets: int = 400,
    backends: Sequence[str] | None = None,
    seed: int = 0,
    netsim: bool = True,
    netsim_use_case: str | None = None,
    duration: float = 35.0,
    attack_start: float = 5.0,
    attack_stop: float = 25.0,
    attack_pps: float = 1200.0,
    dt: float = 0.1,
) -> ExperimentResult:
    """Run the three-phase probe table and the netsim time series per backend.

    ``netsim_use_case`` defaults to ``use_case_name``; pass ``"SipSpDp"``
    for the full 8k-mask detonation of the acceptance guard (what
    ``bench_probe.py`` runs).  ``netsim=False`` skips the time-series
    phase (bare-classifier probe table only).
    """
    case = use_case(use_case_name)
    names = tuple(backends) if backends is not None else megaflow_backend_names()
    benign = benign_keys(case, benign_packets, seed)

    result = ExperimentResult(
        experiment_id="backendsweep",
        title=f"megaflow backends under the co-located TSE detonation ({case.name} ACL)",
        paper_reference="§7 long-term mitigation (TupleChain regime)",
        columns=[
            "backend", "masks", "entries", "groups",
            "benign_probe", "attack_probe", "benign_after_probe", "degradation_x",
        ]
        + (["victim_baseline_gbps", "victim_floor_gbps", "scan_cost_units"] if netsim else []),
    )

    cells: dict[str, dict] = {}
    if netsim:
        for name in names:
            cells[name] = run_netsim_cell(
                name,
                use_case_name=netsim_use_case or use_case_name,
                duration=duration,
                attack_start=attack_start,
                attack_stop=attack_stop,
                attack_pps=attack_pps,
                dt=dt,
            )

    transcripts: dict[str, list] = {}
    for name in names:
        datapath = Datapath(
            case.build_table(),
            DatapathConfig(microflow_capacity=0, megaflow_backend=name),
        )
        cache = datapath.megaflows
        actions: list = []

        verdicts = datapath.process_batch(benign)
        actions.extend(v.action for v in verdicts)
        benign_probe = _mean_probes(verdicts)

        attack = ColocatedTraceGenerator(
            datapath.flow_table, base={"ip_proto": PROTO_TCP}
        ).generate()
        actions.extend(v.action for v in datapath.process_batch(list(attack.keys)))
        cache.shuffle_masks(seed=1)  # steady-state scan order (no-op cost for chains)

        cache.clear_memo()
        attack_verdicts = datapath.process_batch(list(attack.keys))
        actions.extend(v.action for v in attack_verdicts)
        attack_probe = _mean_probes(attack_verdicts)

        cache.clear_memo()
        after_verdicts = datapath.process_batch(benign)
        actions.extend(v.action for v in after_verdicts)
        after_probe = _mean_probes(after_verdicts)

        transcripts[name] = actions
        row = [
            name,
            datapath.n_masks,
            datapath.n_megaflows,
            getattr(cache, "n_groups", datapath.n_masks),
            round(benign_probe, 2),
            round(attack_probe, 2),
            round(after_probe, 2),
            round(after_probe / benign_probe if benign_probe else float("inf"), 1),
        ]
        if netsim:
            cell = cells[name]
            row += [
                round(cell["baseline_gbps"], 3),
                round(cell["floor_gbps"], 3),
                round(cell["peak_scan_cost"], 1),
            ]
        result.add_row(*row)

    reference = transcripts[names[0]]
    agree = all(transcripts[name] == reference for name in names[1:])
    result.notes.append(
        "verdict equivalence across backends (benign + attack + benign-after): "
        + ("IDENTICAL" if agree else "MISMATCH — backend bug!")
    )
    result.notes.append(
        "probe units are backend-native (mask tables scanned vs chain hash probes); "
        "compare each backend's before/after trend, not absolute columns"
    )
    result.notes.append(
        "masks/entries are backend-independent: the slow path generates the same "
        "megaflows, only the structure that scans them changes"
    )
    if netsim:
        detonation = netsim_use_case or use_case_name
        for name in names:
            cell = cells[name]
            result.notes.append(
                f"netsim ({detonation} detonation at {attack_pps:.0f} pps): {name} victim "
                f"{cell['baseline_gbps']:.2f} -> {cell['floor_gbps']:.3f} Gbps at "
                f"{cell['peak_masks']} masks / scan cost {cell['peak_scan_cost']:.1f} probe units"
            )
        result.notes.append(
            "the probe-native cost plane prices each victim at its backend's expected "
            "scan cost, so only backends whose scan cost tracks the mask count starve"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
