"""Theorem 4.2 — the multi-field space–time trade-off.

With per-field chunk counts ``k_i`` the bounds multiply: lookup time
``prod k_i`` masks, space ``prod k_i·(2^(w_i/k_i) − 1)`` entries.  The
harness sweeps representative ``(k_1, k_2, k_3)`` choices on the Fig. 6
field widths (16, 32, 16) and checks the constructive closed form against
a real cache built on scaled-down widths.
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

from repro.classifier.actions import ALLOW
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import Match
from repro.classifier.slowpath import MegaflowGenerator, StrategyConfig
from repro.classifier.tss import TupleSpaceSearch
from repro.core.complexity import constructive_cost_multi, theorem42_bound
from repro.experiments.common import ExperimentResult
from repro.packet.fields import FlowKey

__all__ = ["run", "build_cache_multi"]


def build_cache_multi(widths: Sequence[int], ks: Sequence[int]) -> TupleSpaceSearch:
    """Exhaustively build the multi-field k-chunk cache (small widths only).

    Fields map to the top bits of tp_dst / ip_src / tp_src, mirroring the
    Fig. 6 priority order.
    """
    field_names = ("tp_dst", "ip_src", "tp_src")
    full_widths = (16, 32, 16)
    table = FlowTable()
    priority = 30
    masks_values = []
    for name, width, full in zip(field_names, widths, full_widths):
        field_mask = ((1 << width) - 1) << (full - width)
        allow_value = 1 << (full - width)
        masks_values.append((name, field_mask, full - width))
        table.add_rule(Match(**{name: (allow_value, field_mask)}), ALLOW,
                       priority=priority, name=f"allow-{name}")
        priority -= 10
    table.add_default_deny()
    strategy = StrategyConfig(
        field_chunks={name: k for (name, _m, _s), k in zip(masks_values, ks)}
    )
    generator = MegaflowGenerator(table, strategy)
    cache = TupleSpaceSearch()
    for combo in product(*(range(1 << w) for w in widths)):
        key = FlowKey(**{
            name: value << shift
            for (name, _m, shift), value in zip(masks_values, combo)
        })
        cache.insert(generator.generate(key).entry)
    return cache


def run(
    widths: Sequence[int] = (16, 32, 16),
    check_widths: Sequence[int] = (4, 5, 4),
) -> ExperimentResult:
    """Regenerate the Theorem 4.2 trade-off table (Fig. 6 widths)."""
    result = ExperimentResult(
        experiment_id="theorem42",
        title=f"Theorem 4.2 trade-offs on fields {tuple(widths)}",
        paper_reference="Theorem 4.2 / §4.2",
        columns=["k1", "k2", "k3", "time_masks", "bound_entries", "constructive_entries"],
    )
    choices = [
        (1, 1, 1),
        (widths[0], 1, 1),
        (4, 4, 4),
        (widths[0], widths[1], widths[2]),
    ]
    for ks in choices:
        bound = theorem42_bound(widths, ks)
        construct = constructive_cost_multi(widths, ks)
        result.add_row(*ks, construct.time, bound.space, construct.space)

    # Exhaustive validation at scaled-down widths.
    small_ks = tuple(min(2, w) for w in check_widths)
    cache = build_cache_multi(check_widths, small_ks)
    closed = constructive_cost_multi(check_widths, small_ks)
    result.notes.append(
        f"exhaustive check at widths {tuple(check_widths)}, k={small_ks}: built "
        f"{cache.n_masks} masks / {cache.n_entries} entries vs closed form "
        f"{closed.time} / {closed.space}"
    )
    result.notes.append(
        f"k_i = w_i (wildcarding) gives the paper's {widths[0]}*{widths[1]}*{widths[2]} = "
        f"{widths[0] * widths[1] * widths[2]} mask product — the SipSpDp explosion"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
