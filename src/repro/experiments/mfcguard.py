"""§8 — MFCGuard end-to-end: victim recovery under active mitigation.

Runs the synthetic SipSpDp attack twice — guard off, guard on — and
reports the victim's throughput timeline.  With the guard, the mask count
is clipped back at every 10-second pass and the victim returns to (near)
baseline *while the attack continues*; the price is the attack traffic
being pinned to the slow path (upcall rate ≈ attack rate, the CPU cost
Fig. 9c quantifies).
"""

from __future__ import annotations

from repro.core.mitigation import MFCGuardConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.testbeds import TRUSTED_IP, build_testbed
from repro.netsim.cloud import SYNTHETIC_ENV
from repro.netsim.cms import PolicyRule
from repro.netsim.flows import ActiveWindow, AttackSource

__all__ = ["run"]


def _one_run(
    with_guard: bool,
    duration: float,
    attack_start: float,
    attack_pps: float,
    dt: float,
    sample_every: float,
) -> list[tuple[float, float, int, float]]:
    testbed = build_testbed(SYNTHETIC_ENV, dt=dt, victim_protocol="udp", with_guard=with_guard)
    if with_guard:
        testbed.server.host.guard.config = MFCGuardConfig(
            mask_threshold=100, cpu_threshold_pct=200.0
        )
    trace = testbed.attack_trace(
        [
            PolicyRule(dst_port=80),
            PolicyRule(remote_ip=(TRUSTED_IP, 0xFFFFFFFF)),
            PolicyRule(src_port=12345),
        ],
        label="SipSpDp",
        # Deny-only trace: the strongest variant against a guard that may
        # only evict drop entries (requirement (i) of §8).
        include_allow_paths=False,
    )
    victim = testbed.add_victim_flow("victim", offered_gbps=9.5, kind="udp")
    attacker = AttackSource(
        host=testbed.server.host,
        keys=trace.keys,
        pps=attack_pps,
        windows=[ActiveWindow(attack_start, duration)],
    )
    simulation = testbed.simulation
    simulation.add(attacker)
    simulation.add(testbed.server.host)

    samples: list[tuple[float, float, int, float]] = []
    sample_ticks = max(1, round(sample_every / dt))
    counter = {"n": 0}

    def observer(now: float) -> None:
        victim.settle(now, dt)
        counter["n"] += 1
        if counter["n"] % sample_ticks:
            return
        samples.append(
            (
                round(now, 3),
                round(victim.rate_gbps, 4),
                testbed.server.datapath.n_masks,
                round(testbed.server.host.upcall_pps, 1),
            )
        )

    simulation.observe(observer)
    simulation.run(duration)
    return samples


def run(
    duration: float = 60.0,
    attack_start: float = 10.0,
    attack_pps: float = 1000.0,
    dt: float = 0.1,
    sample_every: float = 2.0,
) -> ExperimentResult:
    """Regenerate the guard-on/guard-off comparison."""
    without = _one_run(False, duration, attack_start, attack_pps, dt, sample_every)
    with_guard = _one_run(True, duration, attack_start, attack_pps, dt, sample_every)

    result = ExperimentResult(
        experiment_id="mfcguard",
        title=f"MFCGuard on/off under a {attack_pps:.0f} pps SipSpDp attack",
        paper_reference="§8 (Alg. 2) / Fig. 9c",
        columns=[
            "t_s", "victim_gbps_noguard", "masks_noguard",
            "victim_gbps_guard", "masks_guard", "upcall_pps_guard",
        ],
    )
    for (t, v0, m0, _u0), (_t, v1, m1, u1) in zip(without, with_guard):
        result.add_row(t, v0, m0, v1, m1, u1)

    late = [row for row in result.rows if row[0] >= attack_start + 25]
    result.notes.append(
        f"steady state under attack: no-guard victim ~{late[-1][1]:.2f} Gbps at "
        f"{late[-1][2]} masks; guarded victim ~{late[-1][3]:.2f} Gbps at {late[-1][4]} masks"
    )
    result.notes.append(
        f"guarded slow-path load ~{late[-1][5]:.0f} upcalls/s ≈ the attack rate — the "
        "deleted entries never re-spark, so adversarial packets stay on the slow path (§8)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
