"""§7 in-text numbers — CMS expressiveness vs attainable tuple space.

The discussion section quantifies the attack surface each control plane
exposes: OpenStack/Kubernetes ingress policies (source IP + destination
port) admit 32·16 = 512 masks; Calico's source-port ingress rules push
that to 8192 ("already enough for a full-blown DoS"); Calico egress
policies add the destination IP for ~200 thousand masks.  This harness
computes those ceilings from the analytic model, plus the random-attack
expectation and the modelled victim throughput at each ceiling.
"""

from __future__ import annotations

from repro.core.analysis import attainable_masks, expected_masks
from repro.experiments.common import ExperimentResult
from repro.switch.calibration import fit_profile
from repro.switch.offload import GRO_OFF_TCP

__all__ = ["run", "SCENARIOS"]

# (label, paper quote, field widths in rule priority order)
SCENARIOS = (
    ("OpenStack/K8s ingress", "512 excess masks", (16, 32)),
    ("Calico ingress (+src port)", "8192 masks — full-blown DoS", (16, 32, 16)),
    ("Calico egress (+dst IP)", "~200 thousand masks", (16, 32, 16, 32)),
)


def run(random_budget: int = 50000) -> ExperimentResult:
    """Regenerate the §7 expressiveness table."""
    curve = fit_profile(GRO_OFF_TCP)
    result = ExperimentResult(
        experiment_id="section7",
        title="CMS expressiveness vs attainable tuple space",
        paper_reference="§7 in-text numbers",
        columns=[
            "policy_surface", "paper_quote", "fields", "max_masks",
            f"expected_masks_{random_budget}_random", "victim_pct_at_max",
        ],
    )
    for label, quote, widths in SCENARIOS:
        ceiling = attainable_masks(widths)
        expectation = expected_masks(widths, random_budget)
        result.add_row(
            label,
            quote,
            "x".join(str(w) for w in widths),
            ceiling,
            round(expectation, 1),
            round(100 * curve.fraction(ceiling), 3),
        )
    result.notes.append(
        "ceilings are deny-mask products plus the allow-rule correction terms; "
        "the paper quotes the products (512 / 8192 / ~200k)"
    )
    result.notes.append(
        "victim % extrapolates the GRO OFF curve beyond its last anchor for the "
        "egress case — read it as 'effectively zero'"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
