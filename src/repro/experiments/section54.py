"""§5.4 in-text table — use-case mask ceilings and throughput retention.

The synthetic-test narrative quotes, per use case, the maximum attainable
MFC masks (17 / 260 / 516 / 8200 on the x-axis of Fig. 9a) and the victim
throughput as a percentage of baseline per NIC profile.  This harness
replays each use case's co-located trace through a real datapath, counts
the masks it actually spawns, and evaluates the calibrated curves at that
count.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import DP, SIPDP, SIPSPDP, SPDP, UseCase
from repro.experiments.common import ExperimentResult
from repro.packet.headers import PROTO_TCP
from repro.switch.calibration import fit_profile
from repro.switch.datapath import Datapath, DatapathConfig
from repro.switch.offload import FHO_TCP, GRO_OFF_TCP, GRO_ON_TCP, UDP_PROFILE

__all__ = ["run", "PAPER_PERCENTAGES"]

# §5.4 narrative: % of baseline at each use case, (GRO ON, FHO, GRO OFF).
PAPER_PERCENTAGES = {
    "Dp": (97.0, 88.0, 53.0),
    "SpDp": (95.0, 43.0, 10.0),
    "SipDp": (76.0, 29.0, 4.7),
    "SipSpDp": (3.9, 2.1, 0.2),
}


def run(use_cases: Sequence[UseCase] = (DP, SPDP, SIPDP, SIPSPDP)) -> ExperimentResult:
    """Regenerate the §5.4 use-case table."""
    result = ExperimentResult(
        experiment_id="section54",
        title="use-case mask ceilings and throughput retention (% of baseline)",
        paper_reference="§5.4 in-text numbers / Fig. 9a x-ticks",
        columns=[
            "use_case", "trace_pkts", "mfc_masks", "paper_masks",
            "gro_on_pct", "fho_pct", "gro_off_pct", "udp_pct",
            "paper_gro_on", "paper_fho", "paper_gro_off",
        ],
    )
    curves = {
        "gro_on": fit_profile(GRO_ON_TCP),
        "fho": fit_profile(FHO_TCP),
        "gro_off": fit_profile(GRO_OFF_TCP),
        "udp": fit_profile(UDP_PROFILE),
    }
    paper_mask_ticks = {"Dp": 17, "SpDp": 260, "SipDp": 516, "SipSpDp": 8200}

    for use_case in use_cases:
        table = use_case.build_table()
        trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
        datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
        for key in trace.keys:
            datapath.process(key)
        masks = datapath.n_masks
        paper = PAPER_PERCENTAGES[use_case.name]
        result.add_row(
            use_case.name,
            len(trace),
            masks,
            paper_mask_ticks[use_case.name],
            round(100 * curves["gro_on"].fraction(masks), 1),
            round(100 * curves["fho"].fraction(masks), 1),
            round(100 * curves["gro_off"].fraction(masks), 2),
            round(100 * curves["udp"].fraction(masks), 2),
            *paper,
        )
    result.notes.append(
        "measured masks are the analytic ceilings (16/257/513/8209); the paper's ticks "
        "include the benign flow's mask and round to 17/260/516/8200"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
