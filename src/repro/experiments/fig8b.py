"""Fig. 8b — OpenStack testbed, SipDp scenario, UDP victim.

Timeline (per §5.5): the attacker sends from t = 0 at 100 pps, stops at
60 s, restarts at 90 s.  The victim joins with a full-rate UDP iperf at
30 s.  The paper reports >90% degradation while both are active, recovery
10 s after the attacker stops, and — the curious part — only a ~10% dip
when the attacker *resumes*, because established flows are barely affected
(our model: the kernel mask-memo quirk, see DESIGN.md substitution #5).

The OpenStack CMS only admits SipDp (no source-port filters), which is why
this testbed cannot run the full Fig. 6 ACL.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.testbeds import TRUSTED_IP, build_testbed
from repro.netsim.cloud import OPENSTACK_ENV
from repro.netsim.cms import PolicyRule
from repro.netsim.flows import ActiveWindow, AttackSource

__all__ = ["run"]


def run(
    duration: float = 120.0,
    victim_start: float = 30.0,
    attack_windows: tuple[tuple[float, float], ...] = ((0.0, 60.0), (90.0, 120.0)),
    attack_pps: float = 100.0,
    dt: float = 0.1,
    sample_every: float = 1.0,
) -> ExperimentResult:
    """Regenerate the Fig. 8b time series."""
    testbed = build_testbed(OPENSTACK_ENV, dt=dt, victim_protocol="udp")
    trace = testbed.attack_trace(
        [
            PolicyRule(dst_port=80),
            PolicyRule(remote_ip=(TRUSTED_IP, 0xFFFFFFFF)),
        ],
        label="SipDp",
    )
    victim = testbed.add_victim_flow(
        "victim",
        offered_gbps=9.5,
        kind="udp",
        windows=[ActiveWindow(victim_start, duration)],
    )
    attacker = AttackSource(
        host=testbed.server.host,
        keys=trace.keys,
        pps=attack_pps,
        windows=[ActiveWindow(start, stop) for start, stop in attack_windows],
        name="attacker",
    )
    simulation = testbed.simulation
    simulation.add(attacker)
    simulation.add(testbed.server.host)

    result = ExperimentResult(
        experiment_id="fig8b",
        title="OpenStack SipDp: UDP victim vs on/off attacker",
        paper_reference="Fig. 8b (§5.5)",
        columns=["t_s", "victim_gbps", "attacker_pps", "mfc_masks", "victim_protected"],
    )
    sample_ticks = max(1, round(sample_every / dt))
    tick_counter = {"n": 0}

    def observer(now: float) -> None:
        victim.settle(now, dt)
        tick_counter["n"] += 1
        if tick_counter["n"] % sample_ticks:
            return
        state = testbed.server.host.victims["victim"]
        result.add_row(
            round(now, 3),
            round(victim.rate_gbps, 4),
            attacker.current_pps,
            testbed.server.datapath.n_masks,
            state.protected,
        )

    simulation.observe(observer)
    simulation.run(duration)

    times = result.column("t_s")
    rates = result.column("victim_gbps")
    first_attack = [v for t, v in zip(times, rates) if victim_start + 3 <= t < attack_windows[0][1]]
    calm = [v for t, v in zip(times, rates) if attack_windows[0][1] + 15 <= t < attack_windows[1][0]]
    re_attack = [v for t, v in zip(times, rates) if attack_windows[1][0] + 5 <= t < duration]
    baseline = max(calm) if calm else float("nan")
    result.notes.append(
        f"victim under first attack: {min(first_attack):.2f}-{max(first_attack):.2f} Gbps "
        f"({100 * (1 - min(first_attack) / baseline):.0f}% degradation; paper: >90%)"
    )
    result.notes.append(
        f"calm-window rate {baseline:.2f} Gbps; re-attack rate {min(re_attack):.2f} Gbps "
        f"({100 * (1 - min(re_attack) / baseline):.0f}% dip; paper: ~10% — established flows "
        "barely affected, modelled by the kernel mask-memo quirk)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
