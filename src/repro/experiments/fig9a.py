"""Fig. 9a — victim throughput vs megaflow mask count, per NIC profile.

The paper sweeps the attainable mask counts of the §5.2 use cases and
plots the victim's TCP/UDP throughput under four NIC configurations (FHO,
GRO ON, GRO OFF, UDP), plus — on the secondary axis — the completion time
of a 1 GB TCP transfer with GRO OFF.

Here the sweep drives the calibrated cost model directly (the simulated
datapath produces the mask counts; the curves convert them to Gbps), and
each use case's tick (Dp/SpDp/SipDp/SipSpDp) is annotated like the paper's
x-axis labels.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.switch.costmodel import CostModel
from repro.switch.offload import FHO_TCP, GRO_OFF_TCP, GRO_ON_TCP, UDP_PROFILE

__all__ = ["run", "DEFAULT_MASK_SWEEP", "USE_CASE_TICKS"]

DEFAULT_MASK_SWEEP: tuple[int, ...] = (
    1, 2, 5, 10, 17, 50, 100, 260, 516, 1000, 2000, 4000, 8200,
)

# The x-tick annotations of Fig. 9a.
USE_CASE_TICKS = {17: "Dp", 260: "SpDp", 516: "SipDp", 8200: "SipSpDp"}


def run(mask_counts: Sequence[int] = DEFAULT_MASK_SWEEP) -> ExperimentResult:
    """Regenerate the Fig. 9a curves.

    Returns one row per mask count: throughput (Gbps) per profile plus the
    1 GB flow completion time under GRO OFF.
    """
    models = {
        "fho_gbps": CostModel(profile=FHO_TCP, link_gbps=40.0),
        "gro_on_gbps": CostModel(profile=GRO_ON_TCP, link_gbps=10.0),
        "gro_off_gbps": CostModel(profile=GRO_OFF_TCP, link_gbps=10.0),
        "udp_gbps": CostModel(profile=UDP_PROFILE, link_gbps=10.0),
    }
    gro_off = models["gro_off_gbps"]

    result = ExperimentResult(
        experiment_id="fig9a",
        title="victim throughput vs #MFC masks (per NIC profile) + 1 GB FCT",
        paper_reference="Fig. 9a (§5.4)",
        columns=["mfc_masks", "use_case", "fho_gbps", "gro_on_gbps",
                 "gro_off_gbps", "udp_gbps", "fct_1gb_s"],
    )
    for masks in mask_counts:
        row = [masks, USE_CASE_TICKS.get(masks, "")]
        for model in models.values():
            row.append(round(model.victim_gbps(masks), 4))
        row.append(round(gro_off.flow_completion_seconds(1.0, masks), 2))
        result.add_row(*row)

    # Paper-vs-measured at the §5.4 anchor sentences.
    for masks, label in USE_CASE_TICKS.items():
        gro_on_pct = 100 * models["gro_on_gbps"].victim_fraction(masks)
        fho_pct = 100 * models["fho_gbps"].victim_fraction(masks)
        gro_off_pct = 100 * models["gro_off_gbps"].victim_fraction(masks)
        result.notes.append(
            f"{label} ({masks} masks): GRO ON {gro_on_pct:.0f}% / FHO {fho_pct:.0f}% / "
            f"GRO OFF {gro_off_pct:.1f}% of baseline"
        )
    result.notes.append(
        "paper §5.4: Dp 97/88/53%, SpDp 95/43/10%, SipDp 76/29/4.7%, SipSpDp 3.9/2.1/0.2%"
    )
    result.notes.append(
        "FCT grows roughly half as fast as the mask count (the victim's mask sits "
        "mid-scan on average), as the paper observes"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
