"""Shared experiment-result plumbing.

Every experiment module exposes ``run(**params) -> ExperimentResult``; the
result carries the table/series the paper's figure reports plus notes on
paper-vs-measured agreement.  Benchmarks wrap the same ``run`` functions,
and ``python -m repro.experiments <id>`` prints them.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.exceptions import ExperimentError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.usecases import UseCase
    from repro.packet.fields import FlowKey

__all__ = ["ExperimentResult", "benign_keys", "format_cell"]


def benign_keys(use_case: "UseCase", n: int, seed: int = 0) -> "list[FlowKey]":
    """Packets the ACL admits (one per allow rule, varied source ports).

    The benign traffic mix the §7 comparison and the backend sweep probe
    their classifiers with, before and after an attack.
    """
    import numpy as np

    from repro.packet.fields import FlowKey
    from repro.packet.headers import PROTO_TCP

    rng = np.random.default_rng(seed)
    keys = []
    for index in range(n):
        field = use_case.allow_fields[index % len(use_case.allow_fields)]
        kwargs = {"ip_proto": PROTO_TCP, field: use_case.allow_value(field)}
        if field != "tp_src":
            kwargs["tp_src"] = int(rng.integers(1024, 65536))
        keys.append(FlowKey(**kwargs))
    return keys


def format_cell(value: object) -> str:
    """Render one table cell (floats get sensible precision)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class ExperimentResult:
    """One reproduced table or figure.

    Attributes:
        experiment_id: short id (``fig9a``, ``section54``, …).
        title: human-readable description.
        paper_reference: which figure/table/section of the paper this
            regenerates.
        columns: column headers.
        rows: table rows (tuples aligned with ``columns``).
        notes: paper-vs-measured commentary, modelling caveats.
    """

    experiment_id: str
    title: str
    paper_reference: str
    columns: Sequence[str]
    rows: list[tuple] = dc_field(default_factory=list)
    notes: list[str] = dc_field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ExperimentError(
                f"{self.experiment_id}: row has {len(values)} cells, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list:
        """All values of one column."""
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise ExperimentError(
                f"{self.experiment_id}: no column {name!r}; have {list(self.columns)}"
            ) from None
        return [row[index] for row in self.rows]

    def format_table(self) -> str:
        """Aligned text rendering (what the CLI and benches print)."""
        cells = [[format_cell(v) for v in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            f"== {self.experiment_id}: {self.title}",
            f"   (reproduces {self.paper_reference})",
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def save(self, directory: str | Path) -> Path:
        """Write the rendered table to ``<directory>/<id>.txt``; return the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.txt"
        path.write_text(self.format_table() + "\n")
        return path
