"""Reusable testbed wiring for the Fig. 8 time-series experiments.

Builds the Fig. 7 layout on a chosen environment: victim and attacker
tenants co-located on Server 1, the victim's backend on Server 2, ACLs
installed through the environment's CMS backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tracegen import AdversarialTrace, ColocatedTraceGenerator
from repro.netsim.cloud import Datacenter, EnvironmentProfile, Server, VirtualMachine
from repro.netsim.cms import PolicyRule
from repro.netsim.engine import Simulation
from repro.netsim.flows import VictimFlow
from repro.netsim.metrics import MetricsCollector
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP, PROTO_UDP
from repro.switch.rss import pin_to_queue

__all__ = ["Fig7Testbed", "build_testbed"]

TRUSTED_IP = 0x0A000001  # 10.0.0.1, the Fig. 6 trusted host
IPERF_PORT = 5001


@dataclass
class Fig7Testbed:
    """The wired-up simplified cloud of Fig. 7."""

    datacenter: Datacenter
    server: Server  # Server 1, the contended hypervisor
    victim_vm: VirtualMachine
    attacker_vm: VirtualMachine
    backend_vm: VirtualMachine
    metrics: MetricsCollector
    simulation: Simulation

    def victim_keys(
        self, flow_index: int = 0, proto: int = PROTO_TCP, queue: int | None = None
    ) -> tuple[FlowKey, ...]:
        """Flow keys of one victim iperf session (admitted by ACL-V).

        With ``queue`` set on a sharded (multi-PMD) server, the source
        port is chosen so RSS pins the flow to that PMD queue — the
        experimenter's analogue of placing iperf endpoints until the flow
        lands on the core under study.
        """
        key = FlowKey(
            ip_src=self.backend_vm.ip,
            ip_dst=self.victim_vm.ip,
            ip_proto=proto,
            tp_src=52000 + flow_index,
            tp_dst=IPERF_PORT,
        )
        dispatcher = getattr(self.server.datapath, "rss", None)
        if queue is not None and dispatcher is not None:
            # Distinct search lanes per flow_index keep victim ports unique.
            key = pin_to_queue(
                key, dispatcher, queue, field="tp_src",
                start=52000 + flow_index * 512,
            )
        return (key,)

    def attack_trace(
        self,
        attacker_rules: list[PolicyRule],
        label: str,
        include_allow_paths: bool = True,
    ) -> AdversarialTrace:
        """Install the attacker's ACL and craft the co-located trace.

        ``include_allow_paths=False`` crafts the deny-only variant: every
        packet is dropped by the ACL, which still detonates the full deny
        mask product while leaving no allow megaflows behind — the variant
        that matters against MFCGuard, whose requirement (i) only permits
        deleting drop entries.
        """
        self.server.install_policy(self.attacker_vm, attacker_rules, label="acl-a")
        self.server.ensure_default_deny()
        generator = ColocatedTraceGenerator(
            self.server.flow_table,
            base={"ip_dst": self.attacker_vm.ip, "ip_proto": PROTO_TCP},
            include_allow_paths=include_allow_paths,
        )
        return generator.generate(use_case=label)

    def add_victim_flow(
        self,
        name: str,
        flow_index: int = 0,
        offered_gbps: float = 3.3,
        kind: str = "tcp",
        windows=(),
        queue: int | None = None,
    ) -> VictimFlow:
        proto = PROTO_TCP if kind == "tcp" else PROTO_UDP
        flow = VictimFlow(
            host=self.server.host,
            name=name,
            keys=self.victim_keys(flow_index, proto=proto, queue=queue),
            offered_gbps=offered_gbps,
            kind=kind,
            windows=windows,
        )
        self.simulation.add(flow)
        return flow


def build_testbed(
    environment: EnvironmentProfile,
    dt: float = 0.1,
    victim_protocol: str = "tcp",
    with_guard: bool = False,
) -> Fig7Testbed:
    """Assemble the Fig. 7 datacenter on ``environment``.

    Installs ACL-V (allow the victim's iperf service) through the CMS; the
    attacker's ACL is installed later by :meth:`Fig7Testbed.attack_trace`
    (or mid-run, as in Fig. 8c).
    """
    datacenter = Datacenter(environment, n_servers=2, with_guard=with_guard)
    victim_vm = datacenter.launch_vm("victim", "V1", 0)
    attacker_vm = datacenter.launch_vm("attacker", "A1", 0)
    backend_vm = datacenter.launch_vm("victim", "V2", 1)
    server = datacenter.servers[0]
    server.install_policy(
        victim_vm,
        [PolicyRule(dst_port=IPERF_PORT, protocol=victim_protocol)],
        label="acl-v",
    )
    return Fig7Testbed(
        datacenter=datacenter,
        server=server,
        victim_vm=victim_vm,
        attacker_vm=attacker_vm,
        backend_vm=backend_vm,
        metrics=MetricsCollector(),
        simulation=Simulation(dt=dt),
    )
