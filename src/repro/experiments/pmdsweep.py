"""PMD sweep — attack impact vs. core count and vs. queue placement.

The paper's testbeds ran a single datapath thread; the feasibility
follow-up (arXiv:2011.09107) observes that multi-queue deployments change
the attack's blast radius entirely: RSS spreads flows across PMD cores
with private caches, so a *spread* mask-exploding trace dilutes its
staircase over every core (each core scans a fraction of the masks), while
a *queue-concentrated* trace — the attacker grinding the wildcarded bits of
its 5-tuples until RSS lands every crafting packet on one chosen queue —
detonates the full explosion on a single core and collapses exactly the
victims RSS co-scheduled there.

This scenario sweeps three axes on the synthetic SUT: one victim pinned
per queue (round-robin), the SipDp co-located trace replayed during an
attack window, and each row reporting the per-victim throughput floor,
the aggregate floor, per-core mask counts and peak core load.  Rows may
additionally pick the shard *executor* (see
:mod:`repro.switch.executor`): the simulated impact numbers are
executor-invariant by the parallel ≡ serial invariant — the executor
column demonstrates exactly that, while changing which strategy actually
burns the wall clock.  Expected shape:

* spread rows: the aggregate floor *rises* with ``n_pmd`` (dilution);
* the concentrated row: only the victim on the targeted queue collapses,
  the others hold ~baseline — per-core isolation;
* thread/process rows: identical floors/masks to their serial twin.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.experiments.testbeds import TRUSTED_IP, build_testbed
from repro.netsim.cloud import SYNTHETIC_ENV
from repro.netsim.cms import PolicyRule
from repro.netsim.flows import ActiveWindow, AttackSource, queue_aware_trace

__all__ = ["run", "run_config"]

# (n_pmd, trace plan[, executor]) — plan is "spread" or a queue index;
# executor defaults to "serial".
DEFAULT_CONFIGS: tuple[tuple, ...] = (
    (1, "spread"),
    (2, "spread"),
    (4, "spread"),
    (4, 0),  # concentrated on queue 0 (victim1's core)
    (4, "spread", "thread"),  # same cell, parallel executors: floors must
    (4, "spread", "process"),  # match the (4, spread, serial) row exactly
)


def run_config(
    n_pmd: int,
    plan: str | int,
    executor: str = "serial",
    duration: float = 40.0,
    attack_start: float = 10.0,
    attack_stop: float = 30.0,
    attack_pps: float = 200.0,
    n_victims: int = 4,
    dt: float = 0.1,
) -> dict:
    """One sweep cell: build the testbed, run it, summarise the window."""
    environment = replace(
        SYNTHETIC_ENV,
        name=f"Synthetic/{n_pmd}pmd/{executor}",
        n_pmd=n_pmd,
        executor=executor,
    )
    testbed = build_testbed(environment, dt=dt)
    try:
        return _run_cell(
            testbed,
            n_pmd,
            plan,
            executor,
            duration,
            attack_start,
            attack_stop,
            attack_pps,
            n_victims,
            dt,
        )
    finally:
        testbed.server.close()  # stop any executor worker pool


def _run_cell(
    testbed,
    n_pmd: int,
    plan: str | int,
    executor: str,
    duration: float,
    attack_start: float,
    attack_stop: float,
    attack_pps: float,
    n_victims: int,
    dt: float,
) -> dict:
    victims = [
        testbed.add_victim_flow(
            f"victim{i + 1}",
            flow_index=i,
            offered_gbps=10.0 / n_victims,
            queue=i % n_pmd,
        )
        for i in range(n_victims)
    ]
    trace = testbed.attack_trace(
        [
            PolicyRule(dst_port=80),
            PolicyRule(remote_ip=(TRUSTED_IP, 0xFFFFFFFF)),
        ],
        label="SipDp",
    )
    keys, report = queue_aware_trace(testbed.server.host, list(trace.keys), plan)
    attacker = AttackSource(
        host=testbed.server.host,
        keys=keys,
        pps=attack_pps,
        windows=[ActiveWindow(attack_start, attack_stop)],
        name="attacker",
    )
    simulation = testbed.simulation
    simulation.add(attacker)
    simulation.add(testbed.server.host)

    baselines = [0.0] * n_victims
    floors = [float("inf")] * n_victims
    peak_core_load = 0.0

    def observer(now: float) -> None:
        nonlocal peak_core_load
        for index, victim in enumerate(victims):
            victim.settle(now, dt)
            if now < attack_start:
                baselines[index] = max(baselines[index], victim.rate_gbps)
            elif attack_start + 5.0 <= now < attack_stop:
                floors[index] = min(floors[index], victim.rate_gbps)
        if attack_start <= now < attack_stop:
            peak_core_load = max(
                peak_core_load, max(testbed.server.host.per_core_load)
            )

    simulation.observe(observer)
    simulation.run(duration)

    datapath = testbed.server.datapath
    masks_per_shard = [shard.n_masks for shard in datapath.shards]
    return {
        "n_pmd": n_pmd,
        "plan": plan,
        "executor": executor,
        "baselines": baselines,
        "floors": floors,
        "peak_core_load": peak_core_load,
        "masks_total": datapath.n_masks,
        "masks_per_shard": masks_per_shard,
        "retarget": report,
        "victim_queues": [
            state.home_shards[0]
            for state in testbed.server.host.victims.values()
        ],
    }


def run(
    configs: Sequence[tuple] = DEFAULT_CONFIGS,
    duration: float = 40.0,
    attack_start: float = 10.0,
    attack_stop: float = 30.0,
    attack_pps: float = 200.0,
    n_victims: int = 4,
    dt: float = 0.1,
) -> ExperimentResult:
    """Sweep attack impact vs. PMD count, queue placement and executor.

    Each row is one ``(n_pmd, trace plan[, executor])`` cell; ``trace`` is
    ``spread`` (round-robin across queues) or ``queue<k>`` (concentrated),
    ``executor`` one of the shard-execution strategies (default
    ``serial``).  Victim ``i`` is RSS-pinned to queue ``i % n_pmd``.
    """
    result = ExperimentResult(
        experiment_id="pmdsweep",
        title="TSE impact vs PMD core count, queue placement and executor",
        paper_reference="multi-queue feasibility follow-up (arXiv:2011.09107)",
        columns=["n_pmd", "trace", "executor"]
        + [f"victim{i + 1}_floor_gbps" for i in range(n_victims)]
        + ["sum_floor_gbps", "sum_baseline_gbps", "masks_max_shard", "peak_core_load"],
    )
    for config in configs:
        n_pmd, plan = config[0], config[1]
        executor = config[2] if len(config) > 2 else "serial"
        cell = run_config(
            n_pmd,
            plan,
            executor=executor,
            duration=duration,
            attack_start=attack_start,
            attack_stop=attack_stop,
            attack_pps=attack_pps,
            n_victims=n_victims,
            dt=dt,
        )
        label = "spread" if plan == "spread" else f"queue{plan}"
        result.add_row(
            n_pmd,
            label,
            executor,
            *[round(f, 4) for f in cell["floors"]],
            round(sum(cell["floors"]), 4),
            round(sum(cell["baselines"]), 4),
            max(cell["masks_per_shard"]),
            round(cell["peak_core_load"], 3),
        )
        result.notes.append(
            f"n_pmd={n_pmd} {label} {executor}: masks/shard "
            f"{cell['masks_per_shard']}, "
            f"victim queues {cell['victim_queues']}, "
            f"retargeted {cell['retarget'].retargeted} keys "
            f"({cell['retarget'].stuck} stuck)"
        )

    spread_rows = [
        (row, config)
        for row, config in zip(result.rows, configs)
        if config[1] == "spread" and (len(config) < 3 or config[2] == "serial")
    ]
    if len(spread_rows) >= 2:
        sum_floor = list(result.columns).index("sum_floor_gbps")
        first, last = spread_rows[0][0][sum_floor], spread_rows[-1][0][sum_floor]
        result.notes.append(
            f"spread dilution: aggregate floor {first:.2f} Gbps at "
            f"{spread_rows[0][1][0]} PMD -> {last:.2f} Gbps at "
            f"{spread_rows[-1][1][0]} PMD"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
