"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes ``run(**params) -> ExperimentResult``.  Run any of
them from the command line::

    python -m repro.experiments <id> [--save DIR]
    python -m repro.experiments --list

IDs: didactic, fig8a, fig8b, fig8c, fig9a, fig9b, fig9c, section54,
section62, table1, theorem41, theorem42, ipv6, comparison, mfcguard,
pmdsweep, backendsweep, cloudsweep, migrationsweep, rsssweep.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    backendsweep,
    cloudsweep,
    comparison,
    didactic,
    fig8a,
    fig8b,
    fig8c,
    fig9a,
    fig9b,
    fig9c,
    ipv6_quirk,
    mfcguard,
    migrationsweep,
    pmdsweep,
    rsssweep,
    section54,
    section62,
    section7,
    table1,
    theorem41,
    theorem42,
)
from repro.experiments.common import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "ExperimentResult"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "didactic": didactic.run,
    "fig8a": fig8a.run,
    "fig8b": fig8b.run,
    "fig8c": fig8c.run,
    "fig9a": fig9a.run,
    "fig9b": fig9b.run,
    "fig9c": fig9c.run,
    "section54": section54.run,
    "section62": section62.run,
    "section7": section7.run,
    "table1": table1.run,
    "theorem41": theorem41.run,
    "theorem42": theorem42.run,
    "ipv6": ipv6_quirk.run,
    "comparison": comparison.run,
    "mfcguard": mfcguard.run,
    "pmdsweep": pmdsweep.run,
    "backendsweep": backendsweep.run,
    "cloudsweep": cloudsweep.run,
    "migrationsweep": migrationsweep.run,
    "rsssweep": rsssweep.run,
}


def run_experiment(experiment_id: str, **params) -> ExperimentResult:
    """Run one experiment by id (raises KeyError for unknown ids)."""
    return EXPERIMENTS[experiment_id](**params)
