"""Live-backend-migration sweep — online recovery policies under detonation.

``backendsweep`` measured the *deployment* gap: under the same 8k-mask
SipSpDp detonation a TSS victim floors at ~0.004 Gbps while a tuplechain
victim keeps ~2.4 (``results/BENCH_probe.json``).  This experiment measures
the *online* version of that gap (ROADMAP item 3): every run starts on TSS,
gets detonated, and differs only in which recovery policy is armed —

* ``none`` — no defense; the victim stays floored until the attack stops.
* ``guard`` — MFCGuard only (§8): deletes adversarial entries each period;
  the cache stays TSS and every deletion is a permanent slow-path demotion.
* ``migration`` — :class:`~repro.core.migration.MigrationController` only:
  when the probe-cost plane sees the shard's expected scan cost explode it
  rebuilds the cache as ``tuplechain`` in bounded slices and atomically
  swaps — zero entries dropped, but the victim starves until the swap.
* ``hybrid`` — both: MFCGuard holds the line while the rebuild races, then
  stands down by itself once the swapped backend collapses the scan cost
  below its chain-aware threshold
  (:meth:`~repro.core.mitigation.MFCGuard.stand_down_at`).

Reported per policy: time-to-recover (from the collapse until the victim
holds an absolute service bar again, in-attack — see
:func:`run_policy_cell`) and the collateral the recovery cost — entries
deleted (permanent upcalls), peak upcall rate, peak rebuild memory (the
target backend being built next to the live one).
``benchmarks/bench_migration.py`` guards the headline ratio — the hybrid
policy's recovered victim floor vs the undefended TSS floor — and the
swap's verdict-for-verdict identity.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.migration import MigrationPolicy
from repro.experiments.backendsweep import attacker_rules
from repro.experiments.common import ExperimentResult
from repro.experiments.testbeds import build_testbed
from repro.netsim.cloud import SYNTHETIC_ENV
from repro.netsim.flows import ActiveWindow, AttackSource

__all__ = ["run", "run_policy_cell", "POLICIES"]

POLICIES = ("none", "guard", "migration", "hybrid")

#: The sweep's migration policy: the trigger sits well above any benign
#: mask count and far below the detonated staircase's ~8.2k-unit scan cost.
SWEEP_POLICY = MigrationPolicy(
    target_backend="tuplechain",
    cost_threshold=512.0,
    period=0.5,
    slice_entries=4096,
    cooldown=30.0,
)


def run_policy_cell(
    policy: str,
    use_case_name: str = "SipSpDp",
    duration: float = 40.0,
    attack_start: float = 5.0,
    attack_stop: float = 35.0,
    attack_pps: float = 1200.0,
    offered_gbps: float = 10.0,
    dt: float = 0.1,
    migration_policy: MigrationPolicy | None = None,
    recovery_gbps: float = 1.0,
) -> dict:
    """One recovery policy's full netsim run under the TSE detonation.

    Returns the time series plus its summary: baseline (max pre-attack
    rate), floor (min once the detonation settles), recovered floor (min
    over the attack window's last 5 s — what the policy claws back *while
    still under attack*), time-to-recover, and the collateral counters.

    Time-to-recover is measured against an absolute service bar,
    ``recovery_gbps``: seconds from the throughput collapse until the
    victim's settled rate is back above the bar *while the attack is still
    running* — ~250x the undefended TSS floor, and deliberately below the
    grouped backend's own under-detonation ceiling (~2.4 Gbps), so a
    successful migration clears it and a policy that merely softens the
    collapse does not.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; known: {', '.join(POLICIES)}")
    mpolicy = migration_policy or SWEEP_POLICY
    with_migration = policy in ("migration", "hybrid")
    with_guard = policy in ("guard", "hybrid")
    environment = replace(
        SYNTHETIC_ENV,
        name=f"Synthetic/{policy}",
        megaflow_backend="tss",
        migration_policy=mpolicy if with_migration else None,
    )
    testbed = build_testbed(environment, dt=dt, with_guard=with_guard)
    victim = testbed.add_victim_flow("victim", offered_gbps=offered_gbps)
    trace = testbed.attack_trace(attacker_rules(use_case_name), label=use_case_name)
    attacker = AttackSource(
        host=testbed.server.host,
        keys=trace.keys,
        pps=attack_pps,
        windows=[ActiveWindow(attack_start, attack_stop)],
        name="attacker",
    )
    simulation = testbed.simulation
    simulation.add(attacker)
    simulation.add(testbed.server.host)

    host = testbed.server.host
    datapath = testbed.server.datapath
    series: list[tuple[float, float, int, float]] = []
    peak_upcall_pps = 0.0
    peak_rebuild_memory = 0

    def observer(now: float) -> None:
        nonlocal peak_upcall_pps, peak_rebuild_memory
        victim.settle(now, dt)
        series.append((now, victim.rate_gbps, datapath.n_masks, datapath.scan_cost))
        peak_upcall_pps = max(peak_upcall_pps, host.upcall_pps)
        if with_migration:
            status = datapath.migration_status()
            records = status if isinstance(status, list) else [status]
            for record in records:
                peak_rebuild_memory = max(
                    peak_rebuild_memory, record["rebuild_memory_bytes"]
                )

    simulation.observe(observer)
    simulation.run(duration)

    settle_from = attack_start + 5.0
    baseline = max((r for t, r, _m, _c in series if t < attack_start), default=0.0)
    floor = min(
        (r for t, r, _m, _c in series if settle_from <= t < attack_stop),
        default=float("inf"),
    )
    recovered_floor = min(
        (r for t, r, _m, _c in series if attack_stop - 5.0 <= t < attack_stop),
        default=float("inf"),
    )
    collapse_at = next(
        (t for t, r, _m, _c in series if t >= attack_start and r < recovery_gbps),
        None,
    )
    recover_at = (
        next(
            (
                t
                for t, r, _m, _c in series
                if collapse_at < t < attack_stop and r >= recovery_gbps
            ),
            None,
        )
        if collapse_at is not None
        else None
    )
    time_to_recover = (
        recover_at - collapse_at
        if collapse_at is not None and recover_at is not None
        else None
    )

    status = datapath.migration_status()
    records = status if isinstance(status, list) else [status]
    guard = host.guard
    return {
        "policy": policy,
        "series": series,
        "baseline_gbps": baseline,
        "floor_gbps": floor,
        "recovered_floor_gbps": recovered_floor,
        "collapse_at": collapse_at,
        "time_to_recover_s": time_to_recover,
        "entries_deleted": guard.total_deleted if guard is not None else 0,
        "peak_upcall_pps": peak_upcall_pps,
        "peak_rebuild_memory_bytes": peak_rebuild_memory,
        "swaps": sum(record["swaps"] for record in records),
        "final_backend": records[0]["backend"],
        "final_scan_cost": max(record["scan_cost"] for record in records),
        "peak_masks": max(m for _t, _r, m, _c in series),
        "trace_packets": len(trace.keys),
    }


def run(
    use_case_name: str = "SipSpDp",
    duration: float = 40.0,
    attack_start: float = 5.0,
    attack_stop: float = 35.0,
    attack_pps: float = 1200.0,
    dt: float = 0.1,
    migration_policy: MigrationPolicy | None = None,
    recovery_gbps: float = 1.0,
) -> ExperimentResult:
    """Run every recovery policy against the same detonation and compare."""
    cells = {
        policy: run_policy_cell(
            policy,
            use_case_name=use_case_name,
            duration=duration,
            attack_start=attack_start,
            attack_stop=attack_stop,
            attack_pps=attack_pps,
            dt=dt,
            migration_policy=migration_policy,
            recovery_gbps=recovery_gbps,
        )
        for policy in POLICIES
    }

    result = ExperimentResult(
        experiment_id="migrationsweep",
        title=f"online recovery policies under the {use_case_name} detonation",
        paper_reference="§8 mitigation + ROADMAP item 3 (live backend migration)",
        columns=[
            "policy", "baseline_gbps", "floor_gbps", "recovered_floor_gbps",
            "time_to_recover_s", "swaps", "entries_deleted",
            "peak_upcall_pps", "peak_rebuild_mb", "final_backend",
            "final_scan_cost",
        ],
    )
    for policy in POLICIES:
        cell = cells[policy]
        ttr = cell["time_to_recover_s"]
        result.add_row(
            policy,
            round(cell["baseline_gbps"], 3),
            round(cell["floor_gbps"], 4),
            round(cell["recovered_floor_gbps"], 4),
            round(ttr, 1) if ttr is not None else "n/a",
            cell["swaps"],
            cell["entries_deleted"],
            round(cell["peak_upcall_pps"], 0),
            round(cell["peak_rebuild_memory_bytes"] / 1e6, 2),
            cell["final_backend"],
            round(cell["final_scan_cost"], 1),
        )

    none_floor = cells["none"]["floor_gbps"]
    hybrid_recovered = cells["hybrid"]["recovered_floor_gbps"]
    ratio = hybrid_recovered / none_floor if none_floor > 0 else float("inf")
    result.notes.append(
        f"hybrid recovered floor {hybrid_recovered:.3f} Gbps vs undefended TSS "
        f"floor {none_floor:.4f} Gbps — {ratio:.0f}x online recovery "
        f"(acceptance: >= 100x, guarded by benchmarks/bench_migration.py)"
    )
    result.notes.append(
        "migration collateral is structural: the rebuild adopts the live entry "
        "objects from the truth-store dicts, so entries dropped is 0 by contract "
        "and the swap is verdict-for-verdict invisible"
    )
    result.notes.append(
        "guard-only keeps the cache TSS: every deletion is a permanent slow-path "
        "demotion (the §8 quirk), visible as entries_deleted and the upcall burst"
    )
    result.notes.append(
        "hybrid = guard cleans while the rebuild races, then stands down on its "
        "own once the swapped backend collapses the expected scan cost below the "
        "chain-aware threshold (guard.stand_down_at)"
    )
    if cells["hybrid"]["entries_deleted"] == 0:
        result.notes.append(
            "at these timescales the rebuild wins the race outright: the swap "
            "lands before the guard's first 10 s period fires, so hybrid pays "
            "zero deletion collateral — guard-only shows what holding the line "
            "with deletions alone costs"
        )
    result.notes.append(
        f"time_to_recover_s: seconds from collapse until the victim holds >= "
        f"{recovery_gbps:g} Gbps again while the attack is still running "
        f"(n/a = never recovered in-attack)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
