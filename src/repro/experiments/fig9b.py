"""Fig. 9b — expected (E) vs measured (M) MFC masks under General TSE.

For each use case the paper sends n ∈ {10 … 50,000} uniformly random
packets at an unknown ACL and compares the measured mask count (averaged
over runs) with the expectation of Eq. 2 / §11.3.  We reproduce both: the
E lines come from :mod:`repro.core.analysis`, the M lines from replaying
seeded random traces through the real megaflow generation.

The paper's headline numbers (maximum attainable with 50k packets):
Dp ≈ 16, SpDp ≈ 121, SipDp ≈ 122, SipSpDp ≈ 581 — and SpDp ≈ SipDp, which
is why the paper drops the SpDp curve "for brevity" (we keep it).
"""

from __future__ import annotations

from typing import Sequence

from repro.classifier.slowpath import WILDCARDING, MegaflowGenerator
from repro.core.analysis import expected_masks
from repro.core.general import GeneralTraceGenerator
from repro.core.usecases import DP, SIPDP, SIPSPDP, SPDP, UseCase
from repro.experiments.common import ExperimentResult
from repro.packet.headers import PROTO_TCP

__all__ = ["run", "DEFAULT_PACKET_COUNTS", "measured_masks"]

DEFAULT_PACKET_COUNTS: tuple[int, ...] = (
    10, 17, 50, 100, 260, 516, 1000, 5000, 10000, 50000,
)


def measured_masks(
    use_case: UseCase,
    packet_counts: Sequence[int],
    runs: int = 3,
    seed: int = 0,
) -> list[float]:
    """Monte Carlo: masks spawned by n random packets (mean over runs).

    A single pass per run: random keys stream through the megaflow
    generator and the distinct-mask set is checkpointed at each requested
    count (equivalent to, and much faster than, a full cache replay —
    lookup hits cannot create masks).
    """
    checkpoints = sorted(packet_counts)
    table = use_case.build_table()
    totals = [0.0] * len(checkpoints)
    for run_index in range(runs):
        generator = MegaflowGenerator(table, WILDCARDING)
        source = GeneralTraceGenerator(
            fields=use_case.allow_fields,
            base={"ip_proto": PROTO_TCP},
            seed=seed + 1000 * run_index,
        )
        masks: set = set()
        sent = 0
        for target_index, target in enumerate(checkpoints):
            for key in source.keys(target - sent):
                masks.add(generator.generate(key).entry.mask)
            sent = target
            totals[target_index] += len(masks)
    means = [total / runs for total in totals]
    order = {n: i for i, n in enumerate(checkpoints)}
    return [means[order[n]] for n in packet_counts]


def run(
    packet_counts: Sequence[int] = DEFAULT_PACKET_COUNTS,
    runs: int = 3,
    seed: int = 0,
    use_cases: Sequence[UseCase] = (DP, SPDP, SIPDP, SIPSPDP),
) -> ExperimentResult:
    """Regenerate the Fig. 9b E/M curves."""
    result = ExperimentResult(
        experiment_id="fig9b",
        title=f"expected (E) vs measured (M, {runs} runs) MFC masks, random packets",
        paper_reference="Fig. 9b (§6.2)",
        columns=["packets"]
        + [f"{uc.name}_{kind}" for uc in use_cases for kind in ("E", "M")],
    )
    expectations = {
        uc.name: [expected_masks(uc.field_widths(), n) for n in packet_counts]
        for uc in use_cases
    }
    measurements = {
        uc.name: measured_masks(uc, packet_counts, runs=runs, seed=seed)
        for uc in use_cases
    }
    for index, n in enumerate(packet_counts):
        row: list[object] = [n]
        for uc in use_cases:
            row.append(round(expectations[uc.name][index], 1))
            row.append(round(measurements[uc.name][index], 1))
        result.add_row(*row)

    largest = max(packet_counts)
    summary = ", ".join(
        f"{uc.name} E={expectations[uc.name][-1]:.0f}/M={measurements[uc.name][-1]:.0f}"
        for uc in use_cases
    )
    result.notes.append(f"at n={largest}: {summary}")
    result.notes.append("paper at n=50,000: Dp ~16, SpDp ~121, SipDp ~122, SipSpDp ~581")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
