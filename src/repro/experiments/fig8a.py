"""Fig. 8a — three concurrent TCP victims under a co-located SipDp attack.

The paper's synthetic testbed: three parallel iperf TCP flows sum to
~9.7 Gbps; the attacker replays the SipDp adversarial trace at 100 pps
(≈50 kbps) from t1 = 30 s to t2 = 60 s, collapsing the aggregate victim
rate below 0.5 Gbps; the victims recover only ~10 s after t2 because the
idle-timeout revalidator keeps the adversarial megaflows alive that long.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.testbeds import TRUSTED_IP, build_testbed
from repro.netsim.cloud import SYNTHETIC_ENV
from repro.netsim.cms import PolicyRule
from repro.netsim.flows import ActiveWindow, AttackSource

__all__ = ["run"]


def run(
    duration: float = 90.0,
    attack_start: float = 30.0,
    attack_stop: float = 60.0,
    attack_pps: float = 100.0,
    n_victims: int = 3,
    dt: float = 0.1,
    sample_every: float = 1.0,
) -> ExperimentResult:
    """Regenerate the Fig. 8a time series.

    Returns one row per sample: time, per-victim Gbps, their sum, the
    attacker rate (pps) and the current megaflow mask count.
    """
    testbed = build_testbed(SYNTHETIC_ENV, dt=dt)
    trace = testbed.attack_trace(
        [
            PolicyRule(dst_port=80),
            PolicyRule(remote_ip=(TRUSTED_IP, 0xFFFFFFFF)),
        ],
        label="SipDp",
    )
    victims = [
        testbed.add_victim_flow(f"victim{i + 1}", flow_index=i, offered_gbps=3.3)
        for i in range(n_victims)
    ]
    attacker = AttackSource(
        host=testbed.server.host,
        keys=trace.keys,
        pps=attack_pps,
        windows=[ActiveWindow(attack_start, attack_stop)],
        name="attacker",
    )
    simulation = testbed.simulation
    simulation.add(attacker)
    simulation.add(testbed.server.host)

    result = ExperimentResult(
        experiment_id="fig8a",
        title=f"{n_victims} concurrent TCP victims, co-located SipDp attack at {attack_pps:.0f} pps",
        paper_reference="Fig. 8a (synthetic testbed, §5.4)",
        columns=["t_s"]
        + [f"victim{i + 1}_gbps" for i in range(n_victims)]
        + ["victim_sum_gbps", "attacker_pps", "mfc_masks"],
    )

    sample_ticks = max(1, round(sample_every / dt))
    tick_counter = {"n": 0}

    def observer(now: float) -> None:
        for victim in victims:
            victim.settle(now, dt)
        tick_counter["n"] += 1
        if tick_counter["n"] % sample_ticks:
            return
        rates = [victim.rate_gbps for victim in victims]
        result.add_row(
            round(now, 3),
            *[round(rate, 4) for rate in rates],
            round(sum(rates), 4),
            attacker.current_pps,
            testbed.server.datapath.n_masks,
        )

    simulation.observe(observer)
    simulation.run(duration)

    sums = result.column("victim_sum_gbps")
    times = result.column("t_s")
    baseline = max(v for t, v in zip(times, sums) if t < attack_start)
    floor = min(v for t, v in zip(times, sums) if attack_start + 5 <= t < attack_stop)
    recovered_at = next(
        (t for t, v in zip(times, sums) if t > attack_stop and v >= 0.9 * baseline),
        None,
    )
    result.notes.append(
        f"baseline sum {baseline:.2f} Gbps (paper ~9.7); attack floor {floor:.2f} Gbps "
        f"(paper: below 0.5)"
    )
    result.notes.append(
        f"recovered to 90% of baseline at t={recovered_at} s "
        f"(paper: ~10 s after t2={attack_stop:.0f} s — the MFC idle timeout)"
    )
    result.notes.append(
        f"trace: {len(trace)} crafted packets, {trace.expected_masks} expected masks"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
