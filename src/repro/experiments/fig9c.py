"""Fig. 9c — CPU usage of the slow path under MFCGuard, vs attack rate.

With MFCGuard deleting the adversarial (drop) megaflows, every matching
attack packet is processed by the slow path forever (the never-re-sparked
quirk, §8).  The figure plots the resulting ``ovs-vswitchd`` CPU load as
the attack rate grows: ~15% up to 1 kpps, ~80% at 10 kpps, saturating
around 250% — past ~10 kpps the attack is volumetric and out of scope.

Rows combine the calibrated slow-path CPU model with a simulated
validation at the lower rates: a real datapath + guard run measuring the
demoted packet rate that drives the model.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.mitigation import MFCGuard, MFCGuardConfig
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPSPDP
from repro.experiments.common import ExperimentResult
from repro.packet.headers import PROTO_TCP
from repro.switch.costmodel import SlowPathModel
from repro.switch.datapath import Datapath, DatapathConfig

__all__ = ["run", "DEFAULT_RATES"]

DEFAULT_RATES: tuple[float, ...] = (10, 100, 1000, 5000, 10000, 20000, 50000)


def _simulate_demotion(attack_pps: float, sim_seconds: float = 30.0) -> float:
    """Run guard + attack on a real datapath; return the demoted pps.

    The guard deletes the TSE entries on its first pass; every subsequent
    attack packet upcalls (dead entries never re-spark), so the measured
    upcall rate converges to the attack rate — the quantity Fig. 9c's CPU
    model takes as input.
    """
    table = SIPSPDP.build_table()
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
    guard = MFCGuard(datapath, MFCGuardConfig(mask_threshold=100, cpu_threshold_pct=1000.0))

    # Warm up: one full trace pass installs the tuple space.
    now = 0.0
    for key in trace.keys:
        datapath.process(key, now=now)
    guard.run(now=10.0)

    # Steady state: replay for sim_seconds at attack_pps (time-compressed —
    # only the demoted fraction matters, not wall-clock pacing).
    demoted = 0
    total = int(min(attack_pps * sim_seconds, 20_000))
    keys = trace.keys
    for index in range(total):
        verdict = datapath.process(keys[index % len(keys)], now=10.0 + index / attack_pps)
        if verdict.is_upcall:
            demoted += 1
    return attack_pps * (demoted / total if total else 0.0)


def run(
    rates: Sequence[float] = DEFAULT_RATES,
    model: SlowPathModel | None = None,
    simulate_up_to: float = 1000.0,
) -> ExperimentResult:
    """Regenerate the Fig. 9c curve."""
    model = model or SlowPathModel()
    result = ExperimentResult(
        experiment_id="fig9c",
        title="slow-path (ovs-vswitchd) CPU usage under MFCGuard vs attack rate",
        paper_reference="Fig. 9c (§8)",
        columns=["attack_pps", "cpu_pct", "demoted_pps_simulated"],
    )
    for pps in rates:
        demoted = _simulate_demotion(pps) if pps <= simulate_up_to else float("nan")
        result.add_row(pps, round(model.cpu_pct(pps), 1), round(demoted, 1))
    result.notes.append(
        "paper: ~15% CPU below 1 kpps (enough to stop Co-located TSE), ~80% at 10 kpps; "
        "above that the attack is volumetric and other defences apply"
    )
    result.notes.append(
        "simulated demotion confirms the guard pins (approximately) the full attack "
        "rate onto the slow path — deleted megaflows never re-spark (§8)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
