"""Theorem 4.1 — the single-field space–time trade-off, bound vs construction.

For a ``w``-bit exact-match allow rule plus DefaultDeny, sweep the number
of masks ``k``: the constructive chunked strategy's entry count must meet
the ``k·(2^(w/k) − 1)`` lower bound, hitting it exactly when ``k | w``.
The two extremes are the paper's named strategies: ``k = 1`` is
exact-match (1 mask, ``2^w`` entries — Fig. 2), ``k = w`` is wildcarding
(``w`` masks, ``w + 1`` entries — Fig. 3).

For small widths the harness additionally *builds* the cache by exhaustive
traffic and checks the closed-form numbers against reality.
"""

from __future__ import annotations

from repro.classifier.actions import ALLOW
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import Match
from repro.classifier.slowpath import MegaflowGenerator, StrategyConfig
from repro.classifier.tss import TupleSpaceSearch
from repro.core.complexity import constructive_cost_single, theorem41_bound
from repro.experiments.common import ExperimentResult
from repro.packet.fields import FlowKey

__all__ = ["run", "build_cache_for_k"]


def build_cache_for_k(width: int, k: int) -> TupleSpaceSearch:
    """Exhaustively build the k-chunk cache for a ``width``-bit field.

    Uses the top ``width`` bits of ``tp_dst``; feasible for width <= ~12.
    """
    field_mask = ((1 << width) - 1) << (16 - width)
    allow_value = 1 << (16 - width)  # the "001" pattern of Fig. 1
    table = FlowTable()
    table.add_rule(Match(tp_dst=(allow_value, field_mask)), ALLOW, priority=10, name="allow")
    table.add_default_deny()
    generator = MegaflowGenerator(table, StrategyConfig(field_chunks={"tp_dst": k}))
    cache = TupleSpaceSearch()
    for value in range(1 << width):
        cache.insert(generator.generate(FlowKey(tp_dst=value << (16 - width))).entry)
    return cache


def run(width: int = 16, constructive_width: int = 8) -> ExperimentResult:
    """Regenerate the Theorem 4.1 trade-off table."""
    result = ExperimentResult(
        experiment_id="theorem41",
        title=f"Theorem 4.1 trade-off on a {width}-bit field (+ exhaustive check at w={constructive_width})",
        paper_reference="Theorem 4.1 / §4.1 strategies",
        columns=["k_masks", "bound_entries", "constructive_entries",
                 "built_masks", "built_entries"],
    )
    interesting = sorted({1, 2, 4, 8, width // 2, width} & set(range(1, width + 1)))
    for k in interesting:
        bound = theorem41_bound(width, k)
        construct = constructive_cost_single(width, k)
        if width == constructive_width or k <= constructive_width:
            cache = build_cache_for_k(constructive_width, min(k, constructive_width))
            built_masks, built_entries = cache.n_masks, cache.n_entries
        else:  # pragma: no cover - widths beyond exhaustive reach
            built_masks = built_entries = -1
        result.add_row(k, bound.space, construct.space, built_masks, built_entries)
    result.notes.append(
        f"k=1 is the exact-match strategy (1 mask, 2^{width} entries, Fig. 2); "
        f"k={width} is wildcarding ({width} masks, {width}+1 entries, Fig. 3)"
    )
    result.notes.append(
        f"built_* columns exhaustively replay all 2^{constructive_width} headers at "
        f"w={constructive_width} and match the closed form"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
