"""Table 1 — the three evaluation environments, as modelled.

The original table lists CPU/memory/NIC/kernel/OVS/orchestrator versions;
our reproduction maps each column to an environment profile with a
calibrated cost model, a CMS backend (which bounds the expressible attack,
§7), link speed and behavioural quirks.  This harness prints that mapping
so every Fig. 8 experiment's provenance is explicit.
"""

from __future__ import annotations

from repro.core.usecases import use_case
from repro.experiments.common import ExperimentResult
from repro.netsim.cloud import ENVIRONMENTS

__all__ = ["run"]


def run() -> ExperimentResult:
    """Regenerate the environment/configuration table."""
    result = ExperimentResult(
        experiment_id="table1",
        title="evaluation environments (modelled counterparts of Table 1)",
        paper_reference="Table 1 / §5.3",
        columns=[
            "environment", "cms_backend", "max_use_case", "max_masks",
            "link_gbps", "cpu_baseline_gbps", "mask_memo", "description",
        ],
    )
    for env in ENVIRONMENTS.values():
        ceiling = use_case(env.cms.max_use_case())
        result.add_row(
            env.name,
            env.cms.name,
            env.cms.max_use_case(),
            ceiling.expected_max_masks,
            env.cost_model.link_gbps,
            round(env.cost_model.baseline_gbps, 2),
            env.datapath.enable_mask_cache,
            env.description,
        )
    result.notes.append(
        "the CMS API bounds the attack surface: OpenStack ingress rules cannot filter "
        "source ports (SipDp ceiling, 512 masks); Calico semantics unlock SipSpDp (8192)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
