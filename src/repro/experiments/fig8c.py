"""Fig. 8c — Kubernetes testbed, SipSpDp scenario, mid-run ACL injection.

Timeline (per §5.6): the victim's iperf reaches the 1 Gbps virtio line
rate; at t1 the attacker starts sending its crafted trace at 1,000 pps —
harmless, because the malicious ACL is not installed yet (a "minor
glitch").  At t2 the attacker injects the full Fig. 6 ACL (Calico-style
source-port rules): the caches revalidate and the replayed trace detonates
thousands of megaflow masks, dropping the victim by ~80%.  At t4 the
attacker doubles its rate to 2,000 pps; on the weak two-laptop testbed the
attack traffic's classification work exhausts the remaining fast-path
budget and the victim drops close to 0 for the rest of the run.

The secondary series reports the megaflow entry count, like the paper's
right-hand axis.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.testbeds import TRUSTED_IP, build_testbed
from repro.netsim.cloud import KUBERNETES_ENV
from repro.netsim.cms import PolicyRule
from repro.netsim.flows import ActiveWindow, AttackSource

__all__ = ["run"]


def run(
    duration: float = 150.0,
    victim_start: float = 5.0,
    t1_attack_start: float = 30.0,
    t2_acl_injection: float = 60.0,
    t4_escalation: float = 110.0,
    base_pps: float = 1000.0,
    escalated_pps: float = 2000.0,
    dt: float = 0.1,
    sample_every: float = 1.0,
) -> ExperimentResult:
    """Regenerate the Fig. 8c time series."""
    testbed = build_testbed(KUBERNETES_ENV, dt=dt, victim_protocol="tcp")
    testbed.server.ensure_default_deny()
    server = testbed.server

    # The attacker's ACL (full Fig. 6, via Calico semantics) is prepared up
    # front but *installed* only at t2; the trace is crafted against the
    # future table on a scratch copy of the testbed.
    attacker_rules = [
        PolicyRule(dst_port=80),
        PolicyRule(remote_ip=(TRUSTED_IP, 0xFFFFFFFF)),
        PolicyRule(src_port=12345),
    ]
    scratch = build_testbed(KUBERNETES_ENV)
    scratch_trace = scratch.attack_trace(attacker_rules, label="SipSpDp")

    victim = testbed.add_victim_flow(
        "victim",
        offered_gbps=1.0,
        kind="tcp",
        windows=[ActiveWindow(victim_start, duration)],
    )
    attacker = AttackSource(
        host=server.host,
        keys=scratch_trace.keys,
        pps=base_pps,
        windows=[ActiveWindow(t1_attack_start, duration)],
        name="attacker",
    )
    simulation = testbed.simulation
    simulation.add(attacker)
    simulation.add(server.host)

    result = ExperimentResult(
        experiment_id="fig8c",
        title="Kubernetes SipSpDp: ACL injected mid-run, then rate escalation",
        paper_reference="Fig. 8c (§5.6)",
        columns=["t_s", "victim_gbps", "attack_pps", "mfc_masks", "megaflows"],
    )
    sample_ticks = max(1, round(sample_every / dt))
    state = {"ticks": 0, "acl_installed": False, "escalated": False}

    def stage_events(now: float) -> None:
        if not state["acl_installed"] and now >= t2_acl_injection:
            server.install_policy(testbed.attacker_vm, attacker_rules, label="acl-a")
            server.ensure_default_deny()
            state["acl_installed"] = True
        if not state["escalated"] and now >= t4_escalation:
            attacker.set_rate(escalated_pps)
            state["escalated"] = True

    def observer(now: float) -> None:
        stage_events(now)
        victim.settle(now, dt)
        state["ticks"] += 1
        if state["ticks"] % sample_ticks:
            return
        result.add_row(
            round(now, 3),
            round(victim.rate_gbps, 4),
            attacker.current_pps,
            server.datapath.n_masks,
            server.datapath.n_megaflows,
        )

    simulation.observe(observer)
    simulation.run(duration)

    times = result.column("t_s")
    rates = result.column("victim_gbps")
    pre_acl = [v for t, v in zip(times, rates) if t1_attack_start + 2 <= t < t2_acl_injection]
    post_acl = [v for t, v in zip(times, rates) if t2_acl_injection + 15 <= t < t4_escalation]
    post_escalation = [v for t, v in zip(times, rates) if t4_escalation + 10 <= t < duration]
    result.notes.append(
        f"pre-ACL attack (t1..t2): victim {min(pre_acl):.2f}-{max(pre_acl):.2f} Gbps "
        "(paper: minor glitch only)"
    )
    result.notes.append(
        f"after ACL injection: victim ~{sum(post_acl) / len(post_acl):.2f} Gbps "
        f"({100 * (1 - min(post_acl) / 1.0):.0f}% below the 1 Gbps line; paper: ~80% drop)"
    )
    result.notes.append(
        f"after 2 kpps escalation: victim ~{sum(post_escalation) / len(post_escalation):.3f} Gbps "
        "(paper: full DoS, rate close to 0)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
