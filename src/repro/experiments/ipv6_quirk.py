"""§5.4 IPv6 quirk — exact-matched 128-bit fields trade masks for memory.

When the SipDp vector runs over IPv6, the paper observes OVS wildcarding
only the TCP destination port while *exact-matching* the IPv6 source
address: a handful of masks, but hundreds of thousands of megaflow entries
— the damage shifts from lookup time to memory and revalidator CPU (OVS
burned 8 cores trying to reclaim megaflow memory).

Our strategy model reproduces this with ``OVS_DEFAULT`` (fields wider than
64 bits collapse to one chunk); the counterfactual bit-level wildcarding
strategy is shown for contrast.
"""

from __future__ import annotations

from repro.classifier.actions import ALLOW
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import Match
from repro.classifier.slowpath import OVS_DEFAULT, WILDCARDING, StrategyConfig
from repro.core.general import GeneralTraceGenerator
from repro.experiments.common import ExperimentResult
from repro.packet.addresses import ipv6
from repro.packet.headers import ETHERTYPE_IPV6, PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig
from repro.switch.revalidator import REVALIDATE_UNITS_PER_ENTRY

__all__ = ["run"]


def _ipv6_sipdp_table() -> FlowTable:
    table = FlowTable(name="acl-sipdp-v6")
    table.add_rule(Match(ip_proto=PROTO_TCP, tp_dst=80), ALLOW, priority=20, name="allow-tp_dst")
    table.add_rule(
        Match(ipv6_src=ipv6("2001:db8::1"), ip_proto=PROTO_TCP),
        ALLOW,
        priority=10,
        name="allow-ipv6_src",
    )
    table.add_default_deny()
    return table


def _attack(strategy: StrategyConfig, n_packets: int, seed: int) -> Datapath:
    table = _ipv6_sipdp_table()
    datapath = Datapath(
        table,
        DatapathConfig(microflow_capacity=0, strategy=strategy, max_megaflows=1_000_000),
    )
    source = GeneralTraceGenerator(
        fields=("ipv6_src", "tp_dst"),
        base={"eth_type": ETHERTYPE_IPV6, "ip_proto": PROTO_TCP},
        seed=seed,
    )
    for key in source.keys(n_packets):
        datapath.process(key)
    return datapath


def run(n_packets: int = 20000, seed: int = 0) -> ExperimentResult:
    """Contrast exact-match IPv6 handling with bit-level wildcarding."""
    result = ExperimentResult(
        experiment_id="ipv6",
        title=f"SipDp over IPv6: {n_packets} random packets, per strategy",
        paper_reference="§5.4 IPv6 observation",
        columns=[
            "strategy", "mfc_masks", "megaflows", "memory_mb", "reval_units_per_sweep",
        ],
    )
    for label, strategy in (
        ("ovs-default (v6 exact)", OVS_DEFAULT),
        ("bit-wildcarding", WILDCARDING),
    ):
        datapath = _attack(strategy, n_packets, seed)
        result.add_row(
            label,
            datapath.n_masks,
            datapath.n_megaflows,
            round(datapath.megaflows.memory_bytes() / 1e6, 2),
            round(datapath.n_megaflows * REVALIDATE_UNITS_PER_ENTRY, 0),
        )
    result.notes.append(
        "ovs-default: a handful of masks but one megaflow per distinct source address — "
        "memory and revalidation blow up instead of lookup time (OVS took 8 cores "
        "reclaiming megaflow memory; capped at 2 cores the victim fell to 5%)"
    )
    result.notes.append(
        "bit-wildcarding on the same traffic: masks grow toward 128*16 but entries stay "
        "near the mask count — the trade-off Theorem 4.1 parameterises"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().format_table())
