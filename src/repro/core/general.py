"""General TSE: random adversarial traces against an *unknown* ACL (§6).

When the attacker has neither co-located resources nor knowledge of the
installed policies, she falls back to randomization: packets with uniformly
random values in the fields typical cloud ACLs match on (source IP, ports),
plus noise in unimportant fields to exhaust the microflow cache.  Each
random packet has some probability of landing on a yet-unspawned megaflow
entry (Eq. 1); :mod:`repro.core.analysis` predicts the expected mask count
(Eq. 2) that this module's traces realise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.tracegen import AdversarialTrace
from repro.exceptions import ExperimentError
from repro.packet.fields import FIELDS, FlowKey

__all__ = ["GeneralTraceGenerator"]


@dataclass
class GeneralTraceGenerator:
    """Uniformly random flow keys over a set of targeted fields.

    Attributes:
        fields: header fields to randomize (the use case's attacked
            fields, e.g. ``("ip_src", "tp_dst")`` for SipDp).
        base: fixed values for the remaining fields (destination address
            of the victim service, IP protocol, …).
        seed: RNG seed; traces are reproducible per seed.
    """

    fields: Sequence[str]
    base: Mapping[str, int] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.fields:
            raise ExperimentError("GeneralTraceGenerator needs at least one field")
        for name in self.fields:
            if name not in FIELDS:
                raise ExperimentError(f"unknown field {name!r}")
        overlap = set(self.fields) & set(self.base or {})
        if overlap:
            raise ExperimentError(f"fields {sorted(overlap)} are both randomized and fixed")
        self._rng = np.random.default_rng(self.seed)

    def _random_value(self, name: str) -> int:
        width = FIELDS[name].width
        value = 0
        remaining = width
        while remaining > 0:
            take = min(remaining, 32)
            value = (value << take) | int(self._rng.integers(0, 1 << take))
            remaining -= take
        return value

    def keys(self, n: int) -> Iterator[FlowKey]:
        """Yield ``n`` random flow keys (duplicates possible, as on the wire)."""
        if n < 0:
            raise ExperimentError(f"packet count must be >= 0, got {n}")
        base = dict(self.base or {})
        for _ in range(n):
            values = dict(base)
            for name in self.fields:
                values[name] = self._random_value(name)
            yield FlowKey(**values)

    def generate(self, n: int, use_case: str = "") -> AdversarialTrace:
        """A trace of ``n`` random packets (expected_masks left at 0 —
        use :func:`repro.core.analysis.expected_masks` for the analytic
        prediction)."""
        return AdversarialTrace(keys=list(self.keys(n)), expected_masks=0, use_case=use_case)

    def reseed(self, seed: int) -> None:
        """Restart the RNG (Monte Carlo runs)."""
        self._rng = np.random.default_rng(seed)
