"""Space–time trade-off calculators for Theorems 4.1 and 4.2.

Theorem 4.1: for an ACL with one exact-match allow rule on a ``w``-bit
field plus DefaultDeny, any TSS construction with lookup time ``O(k)``
(``k`` masks) needs ``Omega(k * 2^(w/k))`` space, ``1 <= k <= w``.

Theorem 4.2: with ``n`` single-field allow rules the bounds multiply per
field: time ``O(prod k_i)`` and space ``O(prod k_i * (2^(w_i/k_i) - 1))``.

This module evaluates the bounds, computes the *constructive* cost of the
chunked strategy of :mod:`repro.classifier.slowpath` (its masks and entry
counts in closed form), and verifies that construction meets the bound —
the benchmarks sweep ``k`` to draw the trade-off curves the theorems
describe, and the tests check the constructive numbers against a real
cache populated by exhaustive traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ExperimentError

__all__ = [
    "TradeoffPoint",
    "chunk_sizes",
    "theorem41_bound",
    "constructive_cost_single",
    "theorem42_bound",
    "constructive_cost_multi",
    "tradeoff_curve",
]


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of a space–time trade-off curve.

    Attributes:
        k: masks (lookup time units).
        time: worst-case masks inspected per lookup.
        space: megaflow entries needed to cover the full header space.
    """

    k: int
    time: int
    space: int

    @property
    def product(self) -> int:
        """The time × space figure of merit."""
        return self.time * self.space


def chunk_sizes(width: int, k: int) -> list[int]:
    """Sizes of the ``k`` nearly-equal chunks a ``width``-bit field splits into."""
    if not 1 <= k <= width:
        raise ExperimentError(f"k={k} outside 1..{width}")
    base, extra = divmod(width, k)
    return [base + 1 if i < extra else base for i in range(k)]


def theorem41_bound(width: int, k: int) -> TradeoffPoint:
    """The Theorem 4.1 lower bound at ``k`` masks: space >= k·(2^(w/k) - 1).

    Computed with the real-valued exponent ``w/k`` (the geometric-mean
    argument of the proof), so constructions with integral chunk sizes sit
    on or above it.
    """
    if not 1 <= k <= width:
        raise ExperimentError(f"k={k} outside 1..{width}")
    space = k * (2.0 ** (width / k) - 1.0)
    return TradeoffPoint(k=k, time=k, space=int(space))


def constructive_cost_single(width: int, k: int) -> TradeoffPoint:
    """Masks/entries of the chunked strategy on a single exact-match rule.

    With chunk sizes ``b_1..b_k``: mask ``i`` handles "first mismatching
    chunk = i" with ``2^(b_i) - 1`` deny keys; the allow entry shares the
    ``k``-th mask.  Total: ``k`` masks, ``sum(2^b_i - 1) + 1`` entries —
    for even chunks exactly the ``k * (2^(w/k) - 1)`` of the bound.
    """
    sizes = chunk_sizes(width, k)
    entries = sum((1 << b) - 1 for b in sizes) + 1
    return TradeoffPoint(k=k, time=k, space=entries)


def theorem42_bound(widths: Sequence[int], ks: Sequence[int]) -> TradeoffPoint:
    """The Theorem 4.2 multi-field lower bound for per-field ``k_i``."""
    if len(widths) != len(ks):
        raise ExperimentError("widths and ks must have equal length")
    time = 1
    space = 1.0
    for width, k in zip(widths, ks):
        point = theorem41_bound(width, k)
        time *= point.time
        space *= k * (2.0 ** (width / k) - 1.0)
    return TradeoffPoint(k=time, time=time, space=int(space))


def constructive_cost_multi(widths: Sequence[int], ks: Sequence[int]) -> TradeoffPoint:
    """Masks/entries of the chunked strategy on the multi-field ACL family.

    Deny masks are the Cartesian product of per-field chunk choices
    (``prod k_i``); deny entries multiply the per-field per-chunk key
    counts.  Allow-rule masks/entries add the lower-order terms (the
    ``+1``-style corrections of §4.2).
    """
    if len(widths) != len(ks):
        raise ExperimentError("widths and ks must have equal length")
    m = len(widths)
    per_field_masks = list(ks)
    per_field_entries: list[int] = []
    for width, k in zip(widths, ks):
        sizes = chunk_sizes(width, k)
        per_field_entries.append(sum((1 << b) - 1 for b in sizes))

    time = 1
    for k in per_field_masks:
        time *= k

    # Deny entries: product over fields of per-field deny keys.
    space = 1
    for count in per_field_entries:
        space *= count

    # Allow entries via rule i: prefix fields mismatch (product of their
    # deny-key counts), field i exact (1 key), later fields wildcarded.
    masks = time
    prefix_masks = 1
    prefix_entries = 1
    for i in range(m):
        space += prefix_entries
        if i < m - 1:
            masks += prefix_masks
        prefix_masks *= per_field_masks[i]
        prefix_entries *= per_field_entries[i]
    return TradeoffPoint(k=masks, time=masks, space=space)


def tradeoff_curve(width: int) -> list[TradeoffPoint]:
    """The constructive trade-off curve for all ``k`` in ``1..width``."""
    return [constructive_cost_single(width, k) for k in range(1, width + 1)]
