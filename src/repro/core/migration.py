"""Cost-plane-driven live backend migration (ROADMAP item 3).

PR 4's probe-cost plane made the tuple-space-explosion attack *visible* as
a number: a detonated TSS shard's ``expected_scan_cost`` explodes with the
mask count while a grouped backend's stays near its pre-attack level — a
~600× victim-floor gap under the same 8k-mask detonation
(``results/BENCH_probe.json``).  This module turns that gap into an
*online* defense: when a shard's expected scan cost crosses a threshold,
:class:`MigrationController` rebuilds that shard's megaflow cache as the
cheap-to-scan target backend in the background (bounded slices through
:class:`~repro.classifier.backend.BackendRebuild`, the truth-store dicts
as the rebuild contract) and atomically swaps it in under the datapath's
maintenance lock.

Three policies, compared by the ``migrationsweep`` experiment:

* **MFCGuard-only** — §8's eviction daemon keeps deleting adversarial
  entries; the cache stays TSS and every deletion costs permanent
  slow-path demotion.
* **migration-only** — no deletions; the victim stays floored until the
  rebuild finishes, then recovers fully with zero entries dropped.
* **hybrid** — MFCGuard holds the line while the rebuild races.  Realised
  with no extra mechanism: the controller arms the guard's chain-aware
  ``probe_cost_threshold`` (:meth:`~repro.core.mitigation.MFCGuard.stand_down_at`)
  at the migration trigger threshold, so the guard cleans while the TSS
  scan cost is exploded and stands down by itself the moment the swapped
  backend collapses the cost.

Trigger discipline: threshold with hysteresis (after a swap the shard
must fall below ``cost_threshold * hysteresis`` before the trigger
re-arms — a cache that stays expensive after migrating must not flap) and
a per-shard cooldown between swaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mitigation import MFCGuard
from repro.exceptions import ExperimentError
from repro.switch.sharded import AnyDatapath

__all__ = ["MigrationPolicy", "MigrationReport", "MigrationController"]


@dataclass(frozen=True)
class MigrationPolicy:
    """When and how to migrate a shard's megaflow backend.

    Attributes:
        target_backend: registry name of the backend to rebuild into
            (``"tuplechain"`` — scan cost sublinear in the mask count).
        cost_threshold: expected full-scan cost (normalised probe units)
            at which a shard's migration triggers.  Well above any benign
            mask count and well below a detonated staircase (the 8k
            SipSpDp detonation scans at ~8,200 units on TSS).
        hysteresis: re-arm fraction — after a swap the shard's cost must
            drop below ``cost_threshold * hysteresis`` before the trigger
            re-arms (no flapping on a cache that stays expensive).
        cooldown: minimum seconds between swaps of the same shard.
        slice_entries: snapshot entries copied per controller tick while a
            rebuild is in flight (bounds per-tick maintenance work; the
            hot path serves from the old backend between slices).
        period: seconds between controller runs (``tick`` cadence).
        stand_down_guard: arm a co-deployed MFCGuard's chain-aware
            stand-down at ``cost_threshold`` (hybrid mode).
    """

    target_backend: str = "tuplechain"
    cost_threshold: float = 512.0
    hysteresis: float = 0.5
    cooldown: float = 30.0
    slice_entries: int = 4096
    period: float = 0.5
    stand_down_guard: bool = True

    def __post_init__(self) -> None:
        if self.cost_threshold <= 0:
            raise ExperimentError("cost_threshold must be positive")
        if not 0 < self.hysteresis <= 1:
            raise ExperimentError("hysteresis must be in (0, 1]")
        if self.cooldown < 0:
            raise ExperimentError("cooldown must be >= 0")
        if self.slice_entries <= 0:
            raise ExperimentError("slice_entries must be positive")
        if self.period <= 0:
            raise ExperimentError("period must be positive")


@dataclass
class MigrationReport:
    """What one controller run did."""

    ran: bool = False
    checked: int = 0
    worst_scan_cost: float = 0.0
    started: tuple[int, ...] = ()
    stepped: tuple[int, ...] = ()
    swapped: tuple[int, ...] = ()
    statuses: list[dict] = field(default_factory=list)


class MigrationController:
    """The migration daemon: watches the cost plane, rebuilds, swaps.

    Wired next to MFCGuard in the hypervisor's maintenance cadence
    (``HypervisorHost(migrator=...)``); drives plain and sharded datapaths
    uniformly through the ``migrate_backend_*`` surface, so under the
    ``process`` executor each shard's rebuild runs inside its owning
    worker via the control pipe — entry objects never cross the boundary.

    Args:
        datapath: the switch to watch (plain or sharded).
        policy: thresholds and cadence (defaults to :class:`MigrationPolicy`).
        guard: a co-deployed MFCGuard; with ``policy.stand_down_guard``
            its chain-aware stand-down is armed at ``cost_threshold``
            (hybrid mode — see the module docstring).
    """

    def __init__(
        self,
        datapath: AnyDatapath,
        policy: MigrationPolicy | None = None,
        guard: MFCGuard | None = None,
    ):
        self.datapath = datapath
        self.policy = policy or MigrationPolicy()
        self.guard = guard
        if guard is not None and self.policy.stand_down_guard:
            guard.stand_down_at(self.policy.cost_threshold)
        self._next_run = self.policy.period
        self._cooldown_until: dict[int, float] = {}
        self._armed: dict[int, bool] = {}
        self.migrations_completed = 0
        self.runs = 0

    # -- scheduling -----------------------------------------------------------
    def tick(self, now: float) -> MigrationReport:
        """Run the controller if its cadence has elapsed."""
        if now < self._next_run:
            return MigrationReport(ran=False)
        self._next_run = now + self.policy.period
        return self.run(now)

    # -- one pass ---------------------------------------------------------------
    def run(self, now: float) -> MigrationReport:
        """One controller pass, serialised against in-flight shard batches."""
        with self.datapath.maintenance():
            return self._run_locked(now)

    def _run_locked(self, now: float) -> MigrationReport:
        self.runs += 1
        policy = self.policy
        report = MigrationReport(ran=True)
        started: list[int] = []
        stepped: list[int] = []
        swapped: list[int] = []
        for shard_id, shard in enumerate(self.datapath.shards):
            status = shard.migration_status()
            report.checked += 1
            report.worst_scan_cost = max(report.worst_scan_cost, status["scan_cost"])
            if status["status"] == "rebuilding":
                status = shard.migrate_backend_step(policy.slice_entries)
                stepped.append(shard_id)
            elif self._should_start(shard_id, status, now):
                status = shard.migrate_backend_start(
                    policy.target_backend, slice_size=policy.slice_entries
                )
                started.append(shard_id)
                status = shard.migrate_backend_step(policy.slice_entries)
            if status["status"] == "rebuilding" and status["rebuild_done"]:
                status = shard.migrate_backend_swap()
                swapped.append(shard_id)
                self._cooldown_until[shard_id] = now + policy.cooldown
                self._armed[shard_id] = False
                self.migrations_completed += 1
            report.statuses.append(status)
        report.started = tuple(started)
        report.stepped = tuple(stepped)
        report.swapped = tuple(swapped)
        return report

    def _should_start(self, shard_id: int, status: dict, now: float) -> bool:
        policy = self.policy
        cost = status["scan_cost"]
        # Hysteresis: a shard that swapped re-arms only once its cost has
        # genuinely collapsed — otherwise a still-expensive cache would
        # re-trigger every cooldown.
        if not self._armed.get(shard_id, True):
            if cost < policy.cost_threshold * policy.hysteresis:
                self._armed[shard_id] = True
            else:
                return False
        if status["backend"] == policy.target_backend:
            return False
        if now < self._cooldown_until.get(shard_id, float("-inf")):
            return False
        return cost >= policy.cost_threshold
