"""The paper's contribution: TSE attacks, analytics, detection, mitigation."""

from repro.core.analysis import (
    AclSpec,
    attainable_entries,
    attainable_masks,
    entry_census,
    eq1_probability,
    expected_entries,
    expected_masks,
    expected_masks_curve,
    mask_census,
    spawn_probability,
)
from repro.core.complexity import (
    TradeoffPoint,
    chunk_sizes,
    constructive_cost_multi,
    constructive_cost_single,
    theorem41_bound,
    theorem42_bound,
    tradeoff_curve,
)
from repro.core.detector import (
    TsePattern,
    entry_matches_pattern,
    find_tse_entries,
    tse_mask_fraction,
    tse_scan_cost_dilution,
)
from repro.core.general import GeneralTraceGenerator
from repro.core.migration import MigrationController, MigrationPolicy, MigrationReport
from repro.core.mitigation import GuardReport, MFCGuard, MFCGuardConfig
from repro.core.planner import AttackPlan, plan_colocated, plan_for_cms, plan_general
from repro.core.rebalance import RebalanceController, RebalancePolicy, RebalanceReport
from repro.core.tracegen import AdversarialTrace, ColocatedTraceGenerator, bit_inversion_list
from repro.core.usecases import (
    BASELINE,
    DP,
    SIPDP,
    SIPSPDP,
    SPDP,
    USE_CASES,
    UseCase,
    use_case,
)

__all__ = [
    "UseCase",
    "USE_CASES",
    "use_case",
    "BASELINE",
    "DP",
    "SPDP",
    "SIPDP",
    "SIPSPDP",
    "AdversarialTrace",
    "ColocatedTraceGenerator",
    "bit_inversion_list",
    "GeneralTraceGenerator",
    "AclSpec",
    "spawn_probability",
    "eq1_probability",
    "attainable_masks",
    "attainable_entries",
    "entry_census",
    "mask_census",
    "expected_entries",
    "expected_masks",
    "expected_masks_curve",
    "TradeoffPoint",
    "chunk_sizes",
    "theorem41_bound",
    "theorem42_bound",
    "constructive_cost_single",
    "constructive_cost_multi",
    "tradeoff_curve",
    "TsePattern",
    "entry_matches_pattern",
    "find_tse_entries",
    "tse_mask_fraction",
    "tse_scan_cost_dilution",
    "MFCGuard",
    "MFCGuardConfig",
    "GuardReport",
    "MigrationController",
    "MigrationPolicy",
    "MigrationReport",
    "RebalanceController",
    "RebalancePolicy",
    "RebalanceReport",
    "AttackPlan",
    "plan_colocated",
    "plan_general",
    "plan_for_cms",
]
