"""Attack planning: what can an adversary achieve against a given cloud?

Ties the analytic machinery together the way the paper's discussion (§7)
does: given the CMS backend (which bounds the expressible ACL), a packet
budget and a NIC profile, predict the attainable masks, the expected masks
for the general (random) variant, the packet cost of the co-located trace
and the victim throughput left — the numbers an operator needs to reason
about exposure, and a reviewer needs to sanity-check the attack surface
table of §7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import attainable_masks, expected_masks
from repro.core.usecases import USE_CASES, UseCase, use_case
from repro.exceptions import ExperimentError
from repro.netsim.cms import CmsBackend
from repro.switch.calibration import fit_profile
from repro.switch.offload import GRO_OFF_TCP, NicProfile

__all__ = ["AttackPlan", "plan_colocated", "plan_general", "plan_for_cms"]

# Minimum-size attack frame on the wire (Ethernet + IPv4 + TCP + FCS etc.).
ATTACK_PACKET_BYTES = 84


@dataclass(frozen=True)
class AttackPlan:
    """Predicted outcome of one attack configuration.

    Attributes:
        use_case: the §5.2 scenario.
        variant: ``"co-located"`` or ``"general"``.
        packets: packets needed (trace size, or the random budget).
        masks: megaflow masks achieved (ceiling, or expectation).
        attack_mbps: one-shot trace bandwidth at ``pps`` packets/second.
        victim_fraction: victim throughput fraction left at ``masks``.
    """

    use_case: UseCase
    variant: str
    packets: int
    masks: float
    pps: float
    victim_fraction: float

    @property
    def attack_mbps(self) -> float:
        return self.pps * ATTACK_PACKET_BYTES * 8 / 1e6

    def summary(self) -> str:
        return (
            f"{self.use_case.name:8s} [{self.variant}] {self.packets:>6d} packets "
            f"at {self.pps:.0f} pps ({self.attack_mbps:.2f} Mbps) -> "
            f"{self.masks:7.1f} masks, victim at "
            f"{100 * self.victim_fraction:.1f}% of baseline"
        )


def plan_colocated(
    scenario: UseCase | str,
    pps: float = 1000.0,
    profile: NicProfile = GRO_OFF_TCP,
) -> AttackPlan:
    """Predict the co-located attack: exact ceilings from the ACL family."""
    scenario = use_case(scenario) if isinstance(scenario, str) else scenario
    widths = scenario.field_widths()
    masks = attainable_masks(widths)
    # Trace size = one packet per decision path: match rule i after
    # rejecting rules 1..i-1 (prod of earlier widths), plus the all-reject
    # deny paths (prod of all widths).
    packets = sum(_prefix_product(widths, i) for i in range(len(widths) + 1))
    if pps <= 0:
        raise ExperimentError("pps must be positive")
    fraction = fit_profile(profile).fraction(masks)
    return AttackPlan(
        use_case=scenario,
        variant="co-located",
        packets=packets,
        masks=float(masks),
        pps=pps,
        victim_fraction=fraction,
    )


def _prefix_product(widths: tuple[int, ...], index: int) -> int:
    product = 1
    for width in widths[:index]:
        product *= width
    return product


def plan_general(
    scenario: UseCase | str,
    packets: int,
    pps: float = 1000.0,
    profile: NicProfile = GRO_OFF_TCP,
) -> AttackPlan:
    """Predict the general (random) attack via Eq. 2."""
    scenario = use_case(scenario) if isinstance(scenario, str) else scenario
    if packets < 0:
        raise ExperimentError("packets must be >= 0")
    if pps <= 0:
        raise ExperimentError("pps must be positive")
    masks = expected_masks(scenario.field_widths(), packets)
    fraction = fit_profile(profile).fraction(masks)
    return AttackPlan(
        use_case=scenario,
        variant="general",
        packets=packets,
        masks=masks,
        pps=pps,
        victim_fraction=fraction,
    )


def plan_for_cms(
    cms: CmsBackend,
    pps: float = 1000.0,
    general_budget: int = 50000,
    profile: NicProfile = GRO_OFF_TCP,
) -> list[AttackPlan]:
    """Every plan the CMS admits, strongest first (the §7 exposure table).

    The backend's expressiveness ceiling bounds which use cases a tenant
    can provoke: OpenStack stops at SipDp, Calico admits SipSpDp.
    """
    ceiling = use_case(cms.max_use_case())
    admitted = [
        scenario
        for scenario in USE_CASES.values()
        if scenario.name != "Baseline"
        and len(scenario.allow_fields) <= len(ceiling.allow_fields)
        and set(scenario.allow_fields) <= set(ceiling.allow_fields)
    ]
    plans: list[AttackPlan] = []
    for scenario in admitted:
        plans.append(plan_colocated(scenario, pps=pps, profile=profile))
        plans.append(plan_general(scenario, packets=general_budget, pps=pps, profile=profile))
    plans.sort(key=lambda plan: plan.victim_fraction)
    return plans
