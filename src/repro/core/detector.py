"""Detection of TSE attack patterns in a megaflow cache (Alg. 2, line 5).

MFCGuard's ``lookPatternInMFC(rule)`` needs to decide, per flow-table rule,
whether the cache contains the entry pattern a TSE attack would generate
(§4): families of *deny* megaflows whose masks un-wildcard strict MSB
prefixes of the bits the rule constrains — the staircase the bit-inversion
trace (or enough random traffic) carves into the tuple space.

The detector is deliberately conservative: an entry is only attributed to a
rule when every partially-constrained field in its mask is a strict prefix
of that rule's constrained bits, and the prefix *disproves* the rule (the
entry's key differs from the rule's value at the last prefix bit).  Benign
traffic — which matches allow rules — never produces such entries, which is
how MFCGuard honours requirement (i) of §8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classifier.backend import (
    MegaflowBackend,
    MegaflowEntry,
    backend_name_of,
    make_megaflow_backend,
)
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import FlowRule
from repro.packet.fields import FIELD_ORDER, FIELDS

__all__ = [
    "TsePattern",
    "entry_matches_pattern",
    "find_tse_entries",
    "tse_mask_fraction",
    "tse_scan_cost_dilution",
]

_INDEX = {name: i for i, name in enumerate(FIELD_ORDER)}


@dataclass(frozen=True)
class TsePattern:
    """Summary of the TSE evidence found for one rule."""

    rule: FlowRule
    entries: tuple[MegaflowEntry, ...]

    @property
    def mask_count(self) -> int:
        return len({entry.mask for entry in self.entries})


def _is_strict_msb_prefix(partial: int, full: int, width: int) -> bool:
    """True when ``partial`` is a non-empty strict MSB prefix of ``full``."""
    if partial == 0 or partial == full:
        return False
    if partial & ~full:
        return False
    # A prefix of the constrained positions: the set bits of `partial` must
    # be the leading run of `full`'s set bits.
    remaining = full & ~partial
    if remaining == 0:
        return False
    lowest_partial = partial & -partial
    highest_remaining_pos = remaining.bit_length()
    return lowest_partial.bit_length() > highest_remaining_pos


def _first_diff_signature(entry_key: int, rule_value: int, prefix: int) -> bool:
    """Agree on the prefix above its last bit, differ exactly at it."""
    last_bit = prefix & -prefix
    above = prefix & ~last_bit
    agrees_above = (entry_key & above) == (rule_value & above)
    differs_at = (entry_key & last_bit) != (rule_value & last_bit)
    return agrees_above and differs_at


def entry_matches_pattern(entry: MegaflowEntry, rule: FlowRule) -> bool:
    """Would a TSE attack against ``rule`` generate ``entry``?

    Mimics the slow path's decision walk: the rule's constrained fields
    are examined in canonical order; fields before the rejection must be
    fully un-wildcarded *and agree* with the rule (they were passed), and
    the rejection field must carry the first-diff signature — an MSB
    prefix of the rule's bits whose last bit disagrees with the rule's
    value while everything above agrees.  Deny entries produced by benign
    traffic (which matches allow rules) never carry this signature.
    """
    if not entry.action.is_drop:
        return False
    for fname, rule_value, rule_mask in rule.match.constraints():
        idx = _INDEX[fname]
        entry_mask = entry.mask.values[idx]
        entry_key = entry.key[idx]
        width = FIELDS[fname].width
        overlap = entry_mask & rule_mask
        if overlap == rule_mask:
            if (entry_key & rule_mask) == rule_value:
                continue  # field passed; the rejection is further along
            # Fully un-wildcarded but disagreeing: TSE iff the entry
            # disproves the rule exactly at the last bit (prefix = width).
            return _first_diff_signature(entry_key, rule_value, rule_mask)
        if _is_strict_msb_prefix(overlap, rule_mask, width):
            return _first_diff_signature(entry_key, rule_value, overlap)
        return False  # partial non-prefix coverage: not a TSE shape
    return False  # every field agreed: the rule matches; not a rejection


def find_tse_entries(cache: MegaflowBackend, table: FlowTable) -> list[TsePattern]:
    """Alg. 2's per-rule pattern scan over the whole cache."""
    patterns: list[TsePattern] = []
    entries = list(cache.entries())
    for rule in table.rules_by_priority():
        if rule.match.is_catchall:
            continue
        matched = tuple(e for e in entries if entry_matches_pattern(e, rule))
        if matched:
            patterns.append(TsePattern(rule=rule, entries=matched))
    return patterns


def tse_mask_fraction(cache: MegaflowBackend, table: FlowTable) -> float:
    """Fraction of cache masks attributable to TSE patterns (a health metric).

    Masks are the *composition* metric (how much of the tuple space the
    attack carved), backend-independent by construction; what scanning
    that composition costs is :func:`tse_scan_cost_dilution`'s question.
    """
    n_masks = cache.n_masks
    if n_masks == 0:
        return 0.0
    suspicious: set = set()
    for pattern in find_tse_entries(cache, table):
        suspicious.update(entry.mask for entry in pattern.entries)
    return len(suspicious) / n_masks


def tse_scan_cost_dilution(cache: MegaflowBackend, table: FlowTable) -> float:
    """How much TSE-attributed entries inflate the cache's scan cost (>= 1).

    The probe-native dilution ratio: the cache's structural full-scan cost
    divided by the structural cost of the same backend holding only the
    non-TSE entries.  For TSS this is the mask-count ratio (every mask is
    one probe), reproducing the old ``n_masks``-anchored dilution; for
    grouped backends it is computed in their own chain-probe currency and
    stays near 1 even when :func:`tse_mask_fraction` approaches 1 — the
    staircase shares chain steps, so the attack dilutes the *mask list*
    without diluting the *scan*.  That contrast is exactly what a
    chain-aware MFCGuard keys on.
    """
    patterns = find_tse_entries(cache, table)
    suspicious = {id(entry) for pattern in patterns for entry in pattern.entries}
    name = backend_name_of(cache)
    clean = make_megaflow_backend(name) if name is not None else type(cache)()
    for entry in cache.entries():
        if id(entry) not in suspicious:
            clean.insert(MegaflowEntry(mask=entry.mask, key=entry.key, action=entry.action))
    dirty_cost = cache.probe_unit_cost() * cache.structural_scan_cost()
    clean_cost = clean.probe_unit_cost() * clean.structural_scan_cost()
    return dirty_cost / clean_cost
