"""The paper's evaluation use cases: Baseline, Dp, SpDp, SipDp, SipSpDp (§5.2).

Each use case is an ACL from the family the attack targets — a handful of
allow rules, each exact-matching a *different* header field, in front of a
DefaultDeny — plus the list of fields the adversarial traffic varies.  The
full-blown SipSpDp case is exactly Fig. 6:

    Rule id  ip_src    tcp_src  tcp_dst  action
    #1       *         *        80       allow
    #2       10.0.0.1  *        *        allow
    #3       *         12345    *        allow
    #4       *         *        *        deny
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classifier.actions import ALLOW
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import Match
from repro.exceptions import ExperimentError
from repro.packet.addresses import ipv4
from repro.packet.fields import FIELDS
from repro.packet.headers import PROTO_TCP

__all__ = ["UseCase", "BASELINE", "DP", "SPDP", "SIPDP", "SIPSPDP", "USE_CASES", "use_case"]


@dataclass(frozen=True)
class UseCase:
    """One evaluation scenario of §5.2.

    Attributes:
        name: the paper's label (Dp, SpDp, …).
        description: what is attacked.
        allow_fields: fields carrying an exact-match allow rule, in rule
            priority order (highest first).  The attack varies exactly
            these fields.
        expected_max_masks: the co-located mask ceiling the paper quotes.
    """

    name: str
    description: str
    allow_fields: tuple[str, ...]
    expected_max_masks: int

    # Concrete allowed values for each field rule (service port 80,
    # trusted host 10.0.0.1, trusted source port 12345 — Fig. 6).
    _ALLOW_VALUES = {
        "tp_dst": 80,
        "ip_src": 0x0A000001,  # 10.0.0.1
        "tp_src": 12345,
    }

    def allow_value(self, field_name: str) -> int:
        """The allowed (exact-match) value for ``field_name``."""
        try:
            return self._ALLOW_VALUES[field_name]
        except KeyError:
            raise ExperimentError(f"use case has no allow value for {field_name!r}") from None

    def field_widths(self) -> tuple[int, ...]:
        """Bit widths of the attacked fields, in rule priority order."""
        return tuple(FIELDS[name].width for name in self.allow_fields)

    def build_table(
        self,
        ip_dst: int | None = None,
        ip_proto: int = PROTO_TCP,
        extra_scope: Match | None = None,
    ) -> FlowTable:
        """Build the use case's flow table.

        Args:
            ip_dst: when given, every rule additionally exact-matches the
                destination address (tenant scoping in the cloud testbed).
                All attack packets carry this destination, so the extra
                constraint never multiplies masks.
            ip_proto: protocol the L4 rules apply to (TCP by default).
            extra_scope: additional constraints AND-ed into every rule.
        """
        table = FlowTable(name=f"acl-{self.name.lower()}")
        scope: dict[str, int | tuple[int, int]] = {}
        if ip_dst is not None:
            scope["ip_dst"] = ip_dst
        needs_proto = any(name.startswith("tp_") for name in self.allow_fields)
        if needs_proto:
            scope["ip_proto"] = ip_proto
        if extra_scope is not None:
            for fname, value, mask in extra_scope.constraints():
                scope[fname] = (value, mask)

        priority = 10 * len(self.allow_fields)
        for index, field_name in enumerate(self.allow_fields, start=1):
            constraints: dict[str, int | tuple[int, int]] = dict(scope)
            constraints[field_name] = self.allow_value(field_name)
            table.add_rule(
                Match(**constraints), ALLOW, priority=priority, name=f"allow-{field_name}"
            )
            priority -= 10
        table.add_default_deny()
        return table

    def __str__(self) -> str:
        return self.name


BASELINE = UseCase(
    name="Baseline",
    description="one allow rule, benign traffic only — full switch capacity",
    allow_fields=("tp_dst",),
    expected_max_masks=1,
)

DP = UseCase(
    name="Dp",
    description="attack the 16-bit TCP destination port",
    allow_fields=("tp_dst",),
    expected_max_masks=16,
)

SPDP = UseCase(
    name="SpDp",
    description="attack source and destination ports (16 x 16)",
    allow_fields=("tp_dst", "tp_src"),
    expected_max_masks=256,
)

SIPDP = UseCase(
    name="SipDp",
    description="attack source IP and destination port (32 x 16)",
    allow_fields=("tp_dst", "ip_src"),
    expected_max_masks=512,
)

SIPSPDP = UseCase(
    name="SipSpDp",
    description="full-blown Fig. 6 attack (16 x 32 x 16)",
    allow_fields=("tp_dst", "ip_src", "tp_src"),
    expected_max_masks=8192,
)

USE_CASES: dict[str, UseCase] = {
    uc.name: uc for uc in (BASELINE, DP, SPDP, SIPDP, SIPSPDP)
}


def use_case(name: str) -> UseCase:
    """Look up a use case by its paper label (case-insensitive)."""
    for candidate in USE_CASES.values():
        if candidate.name.lower() == name.lower():
            return candidate
    raise ExperimentError(f"unknown use case {name!r}; known: {', '.join(USE_CASES)}")


# Re-export for callers building the Fig. 6 table with the exact paper IPs.
TRUSTED_IP = ipv4("10.0.0.1")
