"""Skew-driven live RSS rebalancing (ROADMAP item 5).

The RSS-aware attacker of arXiv:2011.09107 grinds the wildcarded 5-tuple
bits of its crafting packets until the NIC's hash lands every one on a
*chosen* queue (:func:`~repro.switch.rss.retarget_trace`), concentrating
the tuple-space explosion on one PMD core and flooring exactly the victims
RSS co-scheduled there.  On the cost plane that attack has a signature the
dilution-aware detector already measures per shard: one core's expected
scan cost explodes while the others stay benign — *skew*.

:class:`RebalanceController` turns the signature into the defense ROADMAP
item 5 calls for: when worst/mean per-shard scan cost skews past a
threshold, it re-keys the RSS hash (a fresh salt — the stand-in for
programming a new Toeplitz key) or rotates the queue-indirection table,
and :meth:`~repro.switch.sharded.ShardedDatapath.rebalance` migrates the
cached flow state to its new home shards live — quiesced under the
maintenance lock, zero entries dropped, dead-entry records carried along.
The attacker's carefully-ground placement is invalidated wholesale; it
must re-grind its whole trace against the new mapping, and every round of
that race costs it the concentration it had built.

Trigger discipline borrows :class:`~repro.core.migration.MigrationController`'s
cost floor (don't churn a benign datapath) and cooldown (a hard minimum
between re-maps — every re-map costs the moved flows their microflow and
memo warmth), but its re-arm rule is deliberately the *opposite* of the
migration controller's.  A backend that stays expensive after a swap means
the swap was the wrong call — hold still.  A placement that re-concentrates
after a re-key means the attacker took its next turn and re-ground the
trace — exactly the signal to re-key again; a defender that waited for the
skew to collapse before re-arming would be permanently disarmed by any
attacker who retargets faster than the load disperses.  So the trigger
re-arms on *either* a genuine skew collapse (hysteresis — the re-map took)
*or* cooldown expiry (time — the defender gets a move every round of the
game no matter what the attacker does).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError
from repro.switch.rss import RetaDispatcher
from repro.switch.sharded import ShardedDatapath

__all__ = ["RebalancePolicy", "RebalanceReport", "RebalanceController"]

# The golden-ratio increment: successive re-keys get well-separated salts
# deterministically (reproducible runs need the salt sequence fixed).
_SALT_STEP = 0x9E3779B9


@dataclass(frozen=True)
class RebalancePolicy:
    """When and how to re-map RSS.

    Attributes:
        skew_threshold: worst/mean per-shard scan-cost ratio at which a
            re-map triggers.  A benign or evenly-diluted load sits near
            1; a queue-concentrated detonation on a 4-shard datapath
            approaches the shard count.
        cost_floor: minimum worst-shard scan cost (normalised probe
            units) before skew is acted on — an idle datapath can be
            arbitrarily skewed by a handful of entries and must not churn.
        hysteresis: early re-arm fraction — skew dropping below
            ``skew_threshold * hysteresis`` re-arms the trigger before the
            cooldown expires (the re-map demonstrably dispersed the load).
            Cooldown expiry re-arms it unconditionally; see the module
            docstring for why renewed concentration must re-trigger.
        cooldown: minimum seconds between re-maps (a hard rate bound).
        period: seconds between controller runs (``tick`` cadence).
        mode: ``"rekey"`` derives a fresh salt per re-map (scatters every
            flow); ``"reta"`` rotates the indirection table by one queue
            (shifts whole slot populations — cheaper to model on real
            hardware, weaker against an attacker who can re-grind).
    """

    skew_threshold: float = 3.0
    cost_floor: float = 64.0
    hysteresis: float = 0.5
    cooldown: float = 5.0
    period: float = 0.5
    mode: str = "rekey"

    def __post_init__(self) -> None:
        if self.skew_threshold < 1:
            raise ExperimentError("skew_threshold must be >= 1")
        if self.cost_floor < 0:
            raise ExperimentError("cost_floor must be >= 0")
        if not 0 < self.hysteresis <= 1:
            raise ExperimentError("hysteresis must be in (0, 1]")
        if self.cooldown < 0:
            raise ExperimentError("cooldown must be >= 0")
        if self.period <= 0:
            raise ExperimentError("period must be positive")
        if self.mode not in ("rekey", "reta"):
            raise ExperimentError(f"mode must be 'rekey' or 'reta', got {self.mode!r}")


@dataclass
class RebalanceReport:
    """What one controller run saw and did."""

    ran: bool = False
    worst_cost: float = 0.0
    mean_cost: float = 0.0
    skew: float = 1.0
    remapped: bool = False
    entries_moved: int = 0
    salt: int = 0


class RebalanceController:
    """The rebalancing daemon: watches per-shard skew, re-keys, migrates.

    Wired next to MFCGuard / MigrationController in the hypervisor's
    maintenance cadence (``HypervisorHost(rebalancer=...)``).  Only a
    :class:`~repro.switch.sharded.ShardedDatapath` with more than one
    shard can meaningfully re-map; on a 1-shard datapath every run is a
    no-op by construction (skew is identically 1).

    Args:
        datapath: the sharded switch to watch.
        policy: thresholds and cadence (defaults to :class:`RebalancePolicy`).
    """

    def __init__(self, datapath: ShardedDatapath, policy: RebalancePolicy | None = None):
        self.datapath = datapath
        self.policy = policy or RebalancePolicy()
        self._next_run = self.policy.period
        self._cooldown_until = float("-inf")
        self._armed = True
        self.remaps_completed = 0
        self.runs = 0

    # -- scheduling -----------------------------------------------------------
    def tick(self, now: float) -> RebalanceReport:
        """Run the controller if its cadence has elapsed."""
        if now < self._next_run:
            return RebalanceReport(ran=False)
        self._next_run = now + self.policy.period
        return self.run(now)

    # -- one pass ---------------------------------------------------------------
    def run(self, now: float) -> RebalanceReport:
        """One controller pass (the re-map itself quiesces the shards)."""
        self.runs += 1
        report = RebalanceReport(ran=True)
        costs = [snapshot.scan_cost for snapshot in self.datapath.core_report()]
        report.worst_cost = max(costs)
        report.mean_cost = sum(costs) / len(costs)
        report.skew = report.worst_cost / report.mean_cost if report.mean_cost else 1.0
        report.salt = getattr(self.datapath.rss, "salt", 0)
        if not self._should_remap(report, now):
            return report
        successor = self._successor()
        status = self.datapath.rebalance(successor)
        self._cooldown_until = now + self.policy.cooldown
        self._armed = False
        self.remaps_completed += 1
        report.remapped = True
        report.entries_moved = status["entries_moved"]
        report.salt = status["salt"]
        return report

    def _should_remap(self, report: RebalanceReport, now: float) -> bool:
        policy = self.policy
        if self.datapath.n_shards < 2:
            return False
        # Early re-arm: the skew genuinely collapsed, so the last re-map
        # dispersed the load (or the attack stopped).
        if report.skew < policy.skew_threshold * policy.hysteresis:
            self._armed = True
        # The cooldown is a hard rate bound: nothing re-maps inside it.
        if now < self._cooldown_until:
            return False
        # Time-based re-arm: the cooldown expired.  If the skew is *still*
        # (or again) past threshold, the attacker re-concentrated after our
        # move — re-keying again is the defender's turn in the game, not
        # flapping.  (MigrationController's re-arm rule is the opposite,
        # on purpose: see the module docstring.)
        self._armed = True
        if report.worst_cost < policy.cost_floor:
            return False
        return report.skew >= policy.skew_threshold

    def _successor(self) -> RetaDispatcher:
        """The dispatcher the next re-map installs."""
        rss = self.datapath.rss
        if not isinstance(rss, RetaDispatcher):
            rss = RetaDispatcher(rss.n_queues, rss.hash_fn)
        if self.policy.mode == "reta":
            rotated = tuple((q + 1) % rss.n_queues for q in rss.reta)
            return rss.with_reta(rotated)
        salt = (rss.salt + _SALT_STEP) & 0xFFFFFFFF or _SALT_STEP
        return rss.with_salt(salt)
