"""Co-located TSE: adversarial packet traces against a *known* ACL (§5.1).

The generator walks the flow table's decision structure and emits, for every
reachable decision path, one flow key exercising it:

* **single header** — the paper's bit-inversion method: one packet matching
  the allow rule, then one per constrained bit with exactly that bit
  inverted (higher bits kept at the allowed value).  Against the Fig. 1
  ACL this yields HYP ∈ {001, 101, 011, 000} — precisely the four MFC
  entries / three masks of Fig. 3.
* **multiple headers** — the outer product of the per-rule inversion lists
  (§5.1 "Multiple Headers"), pruned so that combinations shadowed by a
  higher-priority match are emitted once.  Against Fig. 4 this yields the
  13 packets / 13 masks the paper computes (``3*4 + 1``).

The implementation handles the general ACL family (multi-field rules,
shared fields across rules) by tracking partial bit assignments per path
and skipping contradictory paths; for the paper's disjoint-field family
the enumeration is exact and minimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import FlowRule
from repro.exceptions import ExperimentError
from repro.packet.builder import NoiseConfig, PacketBuilder
from repro.packet.fields import FIELDS, FlowKey
from repro.packet.packet import Packet
from repro.packet.pcap import write_pcap

__all__ = ["bit_inversion_list", "AdversarialTrace", "ColocatedTraceGenerator"]


def bit_inversion_list(value: int, width: int, mask: int | None = None) -> list[int]:
    """The paper's single-header trace: allowed value, then each bit flipped.

    Args:
        value: the allowed (exact-match) value.
        width: field width in bits.
        mask: constrained bits (defaults to the full field); only those
            bits are inverted.

    Returns:
        ``[value, value ^ msb, value ^ next_bit, ...]`` — for the Fig. 1
        ACL (value ``001`` on 3 bits) this is ``[001, 101, 011, 000]``.
    """
    if mask is None:
        mask = (1 << width) - 1
    values = [value]
    for position in range(width):
        bit = 1 << (width - 1 - position)
        if mask & bit:
            values.append(value ^ bit)
    return values


@dataclass(frozen=True)
class _Assignment:
    """Partial bit assignment along one decision path: field -> (value, bits)."""

    fields: tuple[tuple[str, int, int], ...] = ()

    def merge(self, name: str, value: int, bits: int) -> "_Assignment | None":
        """Merge a new constraint; None when contradictory."""
        merged: list[tuple[str, int, int]] = []
        done = False
        for fname, fvalue, fbits in self.fields:
            if fname != name:
                merged.append((fname, fvalue, fbits))
                continue
            common = fbits & bits
            if (fvalue & common) != (value & common):
                return None
            merged.append((fname, fvalue | (value & ~fbits), fbits | bits))
            done = True
        if not done:
            merged.append((name, value, bits))
        return _Assignment(tuple(merged))

    def to_key(self, base: Mapping[str, int]) -> FlowKey:
        values = dict(base)
        for name, value, _bits in self.fields:
            values[name] = value  # path bits dominate the base packet
        return FlowKey(**values)


@dataclass
class AdversarialTrace:
    """A generated attack trace.

    Attributes:
        keys: adversarial flow keys, in send order.
        expected_masks: masks these keys spawn in a bit-wildcarding MFC
            (the co-located ceiling).
        use_case: optional label for reports.
    """

    keys: list[FlowKey]
    expected_masks: int
    use_case: str = ""

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self) -> Iterator[FlowKey]:
        return iter(self.keys)

    def packets(
        self, builder: PacketBuilder | None = None, noise: NoiseConfig | None = NoiseConfig()
    ) -> list[Packet]:
        """Materialize concrete packets (with microflow-thrashing noise)."""
        builder = builder or PacketBuilder()
        return [builder.from_flow_key(key, noise=noise) for key in self.keys]

    def to_pcap(self, path: str | Path, rate_pps: float = 1000.0,
                noise: NoiseConfig | None = NoiseConfig()) -> int:
        """Write the trace as a replayable pcap; returns the packet count."""
        return write_pcap(path, self.packets(noise=noise), rate_pps=rate_pps)


class ColocatedTraceGenerator:
    """Generates the minimal adversarial trace for a known flow table.

    Args:
        table: the targeted ACL.
        base: field values applied to every packet (e.g. the destination
            address of the attacker's own co-located service, the IP
            protocol).  Fields the decision paths constrain override the
            base values.
        include_allow_paths: also emit packets for allow-rule decision
            paths that create no *new* masks (reproduces every entry of
            Fig. 5 instead of only every mask).
    """

    def __init__(
        self,
        table: FlowTable,
        base: Mapping[str, int] | None = None,
        include_allow_paths: bool = True,
    ):
        self.table = table
        self.base = dict(base or {})
        self.include_allow_paths = include_allow_paths

    def generate(self, use_case: str = "") -> AdversarialTrace:
        """Enumerate decision paths and emit one flow key per path.

        Fields given in ``base`` are *pinned*: every attack packet carries
        them (they must reach the attacker's service), so decision paths
        requiring a different value there are unreachable and pruned.
        That is why tenant scoping (exact ``ip_dst``/``ip_proto`` on every
        rule) does not multiply masks: the attacker cannot vary those
        fields, and the slow path un-wildcards them identically everywhere.
        """
        rules = self.table.rules_by_priority()
        if not rules:
            raise ExperimentError("cannot generate a trace for an empty flow table")
        seed = _Assignment()
        for name, value in self.base.items():
            merged = seed.merge(name, value, FIELDS[name].full_mask)
            if merged is None:  # pragma: no cover - distinct names cannot clash
                raise ExperimentError(f"contradictory base values for {name!r}")
            seed = merged
        keys: list[FlowKey] = []
        seen: set[FlowKey] = set()
        for assignment in self._paths(rules, 0, seed):
            key = assignment.to_key(self.base)
            if key not in seen:
                seen.add(key)
                keys.append(key)
        expected = self._expected_masks(keys)
        return AdversarialTrace(keys=keys, expected_masks=expected, use_case=use_case)

    def _paths(
        self, rules: list[FlowRule], index: int, assignment: _Assignment
    ) -> Iterator[_Assignment]:
        """Depth-first enumeration of decision paths from rule ``index``."""
        if index >= len(rules):
            # Fell off the table: the path itself is an attack packet
            # (table-miss megaflow).
            yield assignment
            return
        rule = rules[index]

        # Path A: this rule matches.  Emit unless suppressed; no deeper
        # paths — lower-priority rules are shadowed.
        matched = assignment
        contradictory = False
        for fname, value, mask in rule.match.constraints():
            merged = matched.merge(fname, value, mask)
            if merged is None:
                contradictory = True
                break
            matched = merged
        if not contradictory:
            if self.include_allow_paths or rule.action.is_drop or index == len(rules) - 1:
                yield matched

        # Path B: mismatch at each constrained bit (examination order =
        # canonical field order, MSB-first — same as the slow path).  The
        # packet carries the rule's value with exactly one bit inverted,
        # which is the paper's bit-inversion method: first-diff lands on
        # that bit and the lower bits keep the allowed value (the Fig. 1
        # trace comes out literally as {001, 101, 011, 000}).
        prefix = assignment
        for fname, value, mask in rule.match.constraints():
            width = FIELDS[fname].width
            for position in range(width):
                bit = 1 << (width - 1 - position)
                if not mask & bit:
                    continue
                branched = prefix.merge(fname, value ^ bit, mask)
                if branched is None:
                    # The literal inverted value clashes with already-pinned
                    # bits (e.g. a base-pinned ip_dst examined by another
                    # tenant's rule).  Retry pinning only what the decision
                    # actually needs: agreement above the bit, difference at
                    # it — the merge then resolves the free bits from the
                    # pinned value.
                    above = mask & ~((bit << 1) - 1)
                    branched = prefix.merge(
                        fname, (value & above) | ((value ^ bit) & bit), above | bit
                    )
                if branched is not None:
                    yield from self._paths(rules, index + 1, branched)
            # To examine the *next* field, this whole field must have agreed.
            merged = prefix.merge(fname, value, mask)
            if merged is None:
                return  # the rule can never match along this path
            prefix = merged

    def _expected_masks(self, keys: list[FlowKey]) -> int:
        """Predicted distinct masks under bit-level wildcarding."""
        from repro.classifier.slowpath import WILDCARDING, MegaflowGenerator

        generator = MegaflowGenerator(self.table, WILDCARDING)
        masks = {generator.generate(key).entry.mask for key in keys}
        return len(masks)
