"""Analytic model of the tuple space: Eq. 1, Eq. 2 and the §11.3 convolution.

The ACL family under analysis is the paper's: ``m`` allow rules, rule ``i``
exact-matching a distinct header field of width ``w_i`` (priority order
``w_1`` highest), in front of a DefaultDeny.  Under bit-level wildcarding
the megaflow cache contains:

* **deny entries** — one per prefix-length combination
  ``(l_1, …, l_m), 1 <= l_i <= w_i``: field ``i`` agrees with the allowed
  value on ``l_i - 1`` leading bits and differs at bit ``l_i``.  A random
  packet spawns that entry with probability ``prod(2^-l_i)``.
* **allow entries via rule i** — fields before ``i`` mismatch with some
  prefix pattern, field ``i`` matches exactly, later fields are
  wildcarded.

Eq. 1 of the paper gives the probability that at least one of ``n`` random
packets spawns an entry with ``k`` wildcarded bits; Eq. 2 sums over the
entry census ``C_k``.  This module computes the expected number of
distinct *entries* (Eq. 2 literally) and of distinct *masks* (what Fig. 9b
plots), the latter two independent ways — exact enumeration over prefix
combinations, and a convolution over the wildcard census (§11.3) — which
the test suite cross-checks against each other and against Monte Carlo
simulation of the real cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ExperimentError

__all__ = [
    "AclSpec",
    "spawn_probability",
    "eq1_probability",
    "attainable_masks",
    "attainable_entries",
    "entry_census",
    "mask_census",
    "expected_entries",
    "expected_masks",
    "expected_masks_curve",
]


@dataclass(frozen=True)
class AclSpec:
    """The analysed ACL family: allow-rule field widths in priority order."""

    widths: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.widths:
            raise ExperimentError("AclSpec needs at least one field width")
        if any(w < 1 for w in self.widths):
            raise ExperimentError(f"field widths must be >= 1: {self.widths}")

    @property
    def total_bits(self) -> int:
        return sum(self.widths)


def _spec(widths: Sequence[int] | AclSpec) -> AclSpec:
    return widths if isinstance(widths, AclSpec) else AclSpec(tuple(widths))


def spawn_probability(wildcarded_bits: int, total_bits: int) -> float:
    """Per-packet probability of spawning one specific entry (p_k of §6.1).

    An entry with ``k`` wildcarded bits is matched by ``2^k`` of the
    ``2^h`` possible headers: ``p_k = 2^(k - h)``.
    """
    if not 0 <= wildcarded_bits <= total_bits:
        raise ExperimentError(f"wildcarded bits {wildcarded_bits} outside 0..{total_bits}")
    return 2.0 ** (wildcarded_bits - total_bits)


def _hit_probability(p: float, n: int) -> float:
    """1 - (1-p)^n, computed stably for tiny p."""
    if p >= 1.0:
        return 1.0
    return float(-np.expm1(n * np.log1p(-p)))


def eq1_probability(wildcarded_bits: int, total_bits: int, n: int) -> float:
    """Eq. 1: probability that >= 1 of ``n`` random packets spawns the entry."""
    if n < 0:
        raise ExperimentError(f"n must be >= 0, got {n}")
    return _hit_probability(spawn_probability(wildcarded_bits, total_bits), n)


# ---------------------------------------------------------------------------
# Structure of the attainable tuple space (co-located ceiling)
# ---------------------------------------------------------------------------

def attainable_masks(widths: Sequence[int] | AclSpec) -> int:
    """Maximum distinct masks the ACL admits (the co-located ceiling).

    ``prod(w_i)`` deny masks, plus the allow-via-rule-``i`` masks for
    ``i < m`` (``prod_{j<i} w_j`` each — rule ``m``'s allow masks coincide
    with deny masks whose last prefix is full).  For Fig. 6 this evaluates
    to ``16*32*16 + 1 + 16 = 8209``, the paper's "~8200"; for Fig. 4 to
    ``3*4 + 1 = 13``.
    """
    spec = _spec(widths)
    total = 1
    for width in spec.widths:
        total *= width
    prefix_product = 1
    for i in range(len(spec.widths) - 1):
        total += prefix_product
        prefix_product *= spec.widths[i]
    return total


def attainable_entries(widths: Sequence[int] | AclSpec) -> int:
    """Maximum megaflow entries (deny combinations + one allow per rule path)."""
    spec = _spec(widths)
    total = 1
    for width in spec.widths:
        total *= width
    prefix_product = 1
    for i in range(len(spec.widths)):
        total += prefix_product
        prefix_product *= spec.widths[i]
    return total


def _deny_wildcard_census(widths: Sequence[int]) -> dict[int, int]:
    """Count prefix-length combinations by total wildcarded bits (§11.3).

    The convolution ``f_i(k) = sum_j f_{i-1}(k - j)`` of the paper's
    appendix, expressed over wildcard counts ``w_i - l_i``.
    """
    census: dict[int, int] = {0: 1}
    for width in widths:
        updated: dict[int, int] = {}
        for k, count in census.items():
            for length in range(1, width + 1):
                kk = k + (width - length)
                updated[kk] = updated.get(kk, 0) + count
        census = updated
    return census


def entry_census(widths: Sequence[int] | AclSpec) -> dict[int, int]:
    """``C_k`` over *entries*: the census Eq. 2 sums over.

    Deny entries contribute one per prefix combination; every rule ``i``
    contributes its allow entries (one per prefix combination of the
    fields before it, all later fields wildcarded).
    """
    spec = _spec(widths)
    census = _deny_wildcard_census(spec.widths)
    for i in range(len(spec.widths)):
        tail_bits = sum(spec.widths[i + 1 :])
        for k, count in _deny_wildcard_census(spec.widths[:i]).items():
            kk = k + tail_bits
            census[kk] = census.get(kk, 0) + count
    return census


def mask_census(widths: Sequence[int] | AclSpec) -> dict[int, int]:
    """``C_k`` over distinct *masks* with ``k`` wildcarded bits.

    Like :func:`entry_census` but the allow masks of the last rule are not
    counted (they coincide with the full-last-prefix deny masks).
    """
    spec = _spec(widths)
    census = _deny_wildcard_census(spec.widths)
    for i in range(len(spec.widths) - 1):
        tail_bits = sum(spec.widths[i + 1 :])
        for k, count in _deny_wildcard_census(spec.widths[:i]).items():
            kk = k + tail_bits
            census[kk] = census.get(kk, 0) + count
    return census


# ---------------------------------------------------------------------------
# Expected entries / masks after n random packets (Eq. 2)
# ---------------------------------------------------------------------------

def expected_entries(widths: Sequence[int] | AclSpec, n: int) -> float:
    """Eq. 2 literally: expected spawned entries after ``n`` random packets."""
    spec = _spec(widths)
    if n < 0:
        raise ExperimentError(f"n must be >= 0, got {n}")
    total_bits = spec.total_bits
    return float(
        sum(count * eq1_probability(k, total_bits, n) for k, count in entry_census(spec).items())
    )


def expected_masks(widths: Sequence[int] | AclSpec, n: int, method: str = "census") -> float:
    """Expected distinct MFC *masks* after ``n`` uniformly random packets.

    A mask is present when at least one of its entries has been spawned.
    Every mask has exactly one entry except the shared masks (deny with a
    full last prefix + the last rule's allow entry), which have two.

    Args:
        widths: the ACL spec (attacked-field widths, priority order).
        n: number of random packets.
        method: ``"census"`` groups masks by (wildcarded bits, entry
            multiplicity) via the §11.3 convolution; ``"enumerate"`` walks
            every prefix combination explicitly.  Both are exact for this
            ACL family and cross-checked in tests.
    """
    spec = _spec(widths)
    if n < 0:
        raise ExperimentError(f"n must be >= 0, got {n}")
    if method == "census":
        return _expected_masks_census(spec, n)
    if method == "enumerate":
        return _expected_masks_enumerate(spec, n)
    raise ExperimentError(f"unknown method {method!r}")


def _expected_masks_census(spec: AclSpec, n: int) -> float:
    total_bits = spec.total_bits
    widths = spec.widths
    m = len(widths)
    expected = 0.0

    # Deny masks, split by whether the last field's prefix is full (those
    # masks carry the extra allow-via-last-rule entry: double probability).
    head = _deny_wildcard_census(widths[:-1])
    w_last = widths[-1]
    for k_head, count in head.items():
        for length in range(1, w_last + 1):
            k = k_head + (w_last - length)
            p = spawn_probability(k, total_bits)
            if length == w_last:
                p *= 2.0  # deny entry + exact-match allow entry share the mask
            expected += count * _hit_probability(p, n)

    # Allow-via-rule-i masks for i < m (single entry each).
    for i in range(m - 1):
        tail_bits = sum(widths[i + 1 :])
        for k_head, count in _deny_wildcard_census(widths[:i]).items():
            k = k_head + tail_bits
            expected += count * eq1_probability(k, total_bits, n)
    return expected


def _expected_masks_enumerate(spec: AclSpec, n: int) -> float:
    widths = spec.widths
    m = len(widths)
    expected = 0.0

    def deny(index: int, log2p: float) -> float:
        if index == m:
            return _hit_probability(2.0**log2p, n)
        total = 0.0
        width = widths[index]
        for length in range(1, width + 1):
            if index == m - 1 and length == width:
                total += _hit_probability(2.0 ** (log2p - length) * 2.0, n)
            else:
                total += deny(index + 1, log2p - length)
        return total

    expected += deny(0, 0.0)

    def allow(rule_index: int, index: int, log2p: float) -> float:
        if index == rule_index:
            return _hit_probability(2.0 ** (log2p - widths[rule_index]), n)
        return sum(
            allow(rule_index, index + 1, log2p - length)
            for length in range(1, widths[index] + 1)
        )

    for i in range(m - 1):
        expected += allow(i, 0, 0.0)
    return expected


def expected_masks_curve(
    widths: Sequence[int] | AclSpec, packet_counts: Sequence[int]
) -> list[float]:
    """Expected-mask values for a sweep of packet counts (Fig. 9b's E lines)."""
    return [expected_masks(widths, n) for n in packet_counts]
