"""MFCGuard: the short-term mitigation of §8 (Algorithm 2).

MFCGuard monitors the megaflow cache every ``period`` seconds (10 s, the
MFC eviction cadence).  When the mask count exceeds ``mask_threshold`` it
scans the flow table for rules whose TSE pattern appears in the cache
(:mod:`repro.core.detector`) and deletes the matching entries — **deny
entries only** (requirement (i) of §8), so traffic the ACL admits keeps its
fast path while adversarial packets are demoted to the slow path.

Deleting has a price: per the documented OVS quirk, deleted megaflows never
re-spark, so every matching packet hits the slow path forever after.  The
guard therefore tracks the estimated upcall rate its deletions cause and
stops deleting when the projected slow-path CPU would exceed
``cpu_threshold`` (requirement (ii); Fig. 9c plots this CPU curve).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detector import find_tse_entries
from repro.exceptions import ExperimentError
from repro.switch.costmodel import SlowPathModel
from repro.switch.sharded import AnyDatapath

__all__ = ["MFCGuardConfig", "GuardReport", "MFCGuard"]


@dataclass(frozen=True)
class MFCGuardConfig:
    """Algorithm 2 inputs.

    Attributes:
        mask_threshold: ``m_th`` — masks tolerated before cleaning starts.
        probe_cost_threshold: ``p_th`` — expected full-scan cost (in the
            backend's normalised probe units) additionally required before
            cleaning starts, or ``None`` to trigger on masks alone (the
            paper's TSS-era behaviour).  Mask count no longer implies scan
            cost on grouped backends: an 8k-mask staircase that a chained
            lookup walks in ~60 probes is not worth the permanent
            slow-path demotion deleting entries costs, so a chain-aware
            deployment sets both thresholds and the guard stands down
            while the probe cost stays low.
        cpu_threshold_pct: ``c_th`` — slow-path CPU budget; deletion stops
            when the projected load reaches it.
        period: seconds between runs (the paper uses 10 s).
        permanent_delete: model the "never re-sparked" OVS behaviour;
            disable to study a hypothetical fixed datapath.
    """

    mask_threshold: int = 100
    probe_cost_threshold: float | None = None
    cpu_threshold_pct: float = 90.0
    period: float = 10.0
    permanent_delete: bool = True

    def __post_init__(self) -> None:
        if self.mask_threshold < 0:
            raise ExperimentError("mask_threshold must be >= 0")
        if self.probe_cost_threshold is not None and self.probe_cost_threshold < 0:
            raise ExperimentError("probe_cost_threshold must be >= 0")
        if not 0 < self.cpu_threshold_pct <= 1000:
            raise ExperimentError("cpu_threshold_pct out of range")
        if self.period <= 0:
            raise ExperimentError("period must be positive")


@dataclass
class GuardReport:
    """What one MFCGuard run did."""

    ran: bool = False
    masks_before: int = 0
    masks_after: int = 0
    probe_cost_before: float = 0.0
    entries_deleted: int = 0
    rules_cleaned: tuple[str, ...] = ()
    projected_cpu_pct: float = 0.0
    stopped_by_cpu: bool = False
    stood_down_by_probe_cost: bool = False


class MFCGuard:
    """The monitoring/eviction daemon of §8, bound to one datapath.

    On a sharded (multi-PMD) datapath the guard reads the aggregate
    distinct-mask count (what ``ovs-dpctl show`` reports) and cleans each
    shard's cache in turn — the CPU budget check runs after every rule on
    every shard, since demoted traffic from all cores funnels into the one
    shared slow-path daemon.

    The guard drives caches through the
    :class:`~repro.classifier.backend.MegaflowBackend` protocol only
    (``entries()`` via the detector, ``kill_entry`` via the datapath), so
    it works unchanged over non-TSS backends — and with
    ``probe_cost_threshold`` set it is *chain-aware*: it reads the worst
    core's expected scan cost in the backend's normalised probe units and
    stands down while an exploded mask count remains cheap to scan,
    because deleting entries buys nothing and costs permanent slow-path
    demotion (§8's requirement (ii) generalised to the probe currency).

    Args:
        datapath: the switch to guard (plain or sharded).
        config: thresholds and cadence.
        slow_path_model: upcall-rate → CPU%% model (Fig. 9c calibration).
    """

    def __init__(
        self,
        datapath: AnyDatapath,
        config: MFCGuardConfig | None = None,
        slow_path_model: SlowPathModel | None = None,
    ):
        self.datapath = datapath
        self.config = config or MFCGuardConfig()
        self.slow_path_model = slow_path_model or SlowPathModel()
        self._next_run = self.config.period
        self._demoted_pps = 0.0  # estimated packet rate now pinned to the slow path
        self.total_deleted = 0
        self.runs = 0

    # -- scheduling -----------------------------------------------------------
    def tick(self, now: float) -> GuardReport:
        """Run Algorithm 2 if the 10-second cadence has elapsed."""
        if now < self._next_run:
            masks = self.datapath.n_masks  # one aggregate snapshot, not two
            return GuardReport(ran=False, masks_before=masks, masks_after=masks)
        self._next_run = now + self.config.period
        return self.run(now)

    # -- Algorithm 2 ------------------------------------------------------------
    def probe_cost(self) -> float:
        """Worst per-core expected full-scan cost (normalised probe units).

        The chain-aware counterpart of the ``ovs-dpctl`` mask count the
        paper's guard reads: what one scan actually costs on the most
        loaded core, in the backend's own calibrated currency.
        """
        return max(
            shard.megaflows.expected_scan_cost() for shard in self.datapath.shards
        )

    def run(self, now: float) -> GuardReport:
        """One guard pass: check masks (and probe cost), scan rules, delete, watch CPU.

        Runs under the datapath's maintenance lock: a parallel shard
        executor serialises the pass against in-flight batches, so the
        guard never reads a shard's cache mid-batch (entry copies from
        worker-owned shards are killed by value, like every management
        delete).
        """
        with self.datapath.maintenance():
            return self._run_locked(now)

    def _run_locked(self, now: float) -> GuardReport:
        self.runs += 1
        masks_before = self.datapath.n_masks
        probe_cost_before = self.probe_cost()
        report = GuardReport(ran=True, masks_before=masks_before, masks_after=masks_before,
                             probe_cost_before=probe_cost_before,
                             projected_cpu_pct=self.projected_cpu_pct())
        if masks_before <= self.config.mask_threshold:
            return report
        if (
            self.config.probe_cost_threshold is not None
            and probe_cost_before < self.config.probe_cost_threshold
        ):
            # Mask count exploded but scanning it is still cheap (grouped
            # backend): deleting would trade nothing for permanent upcalls.
            report.stood_down_by_probe_cost = True
            return report

        deleted = 0
        cleaned: list[str] = []
        stopped = False
        for shard in self.datapath.shards:
            patterns = find_tse_entries(shard.megaflows, self.datapath.flow_table)
            for pattern in patterns:
                # Delete this rule's adversarial entries (drop-only by
                # construction of the detector).
                rate = 0.0
                for entry in pattern.entries:
                    age = max(now - entry.created_at, self.config.period)
                    rate += entry.hits / age
                    shard.kill_entry(entry, permanent=self.config.permanent_delete)
                    deleted += 1
                cleaned.append(pattern.rule.name or repr(pattern.rule.match))
                self._demoted_pps += rate

                # Line 9-12: re-check CPU after each rule's cleanup.
                cpu = self.projected_cpu_pct()
                if cpu >= self.config.cpu_threshold_pct:
                    stopped = True
                    break
            if stopped:
                break

        self.total_deleted += deleted
        return GuardReport(
            ran=True,
            masks_before=masks_before,
            masks_after=self.datapath.n_masks,
            probe_cost_before=probe_cost_before,
            entries_deleted=deleted,
            rules_cleaned=tuple(dict.fromkeys(cleaned)),
            projected_cpu_pct=self.projected_cpu_pct(),
            stopped_by_cpu=stopped,
        )

    # -- cooperation with live backend migration ------------------------------------
    def stand_down_at(self, probe_cost_threshold: float) -> None:
        """Arm the chain-aware stand-down at ``probe_cost_threshold``.

        How the :class:`~repro.core.migration.MigrationController` realises
        hybrid mode with no extra mechanism: while the detonated TSS cache
        keeps the expected scan cost above the threshold the guard cleans
        as usual (holding the line while the rebuild races), and the
        moment the cheap-to-scan backend is swapped in the cost collapses
        below it and the guard stands down on its own.  A deployment that
        already configured ``probe_cost_threshold`` explicitly keeps its
        value.
        """
        if self.config.probe_cost_threshold is None:
            from dataclasses import replace

            self.config = replace(
                self.config, probe_cost_threshold=probe_cost_threshold
            )

    # -- CPU accounting ------------------------------------------------------------
    def projected_cpu_pct(self) -> float:
        """Slow-path CPU implied by the traffic the guard has demoted."""
        return self.slow_path_model.cpu_pct(self._demoted_pps)

    def note_attack_rate(self, pps: float) -> None:
        """Feed an externally measured demoted-packet rate (simulations
        where entry hit counters are not advanced packet-by-packet)."""
        if pps < 0:
            raise ExperimentError("pps must be >= 0")
        self._demoted_pps = pps

    @property
    def demoted_pps(self) -> float:
        """Current estimate of slow-path-pinned packet rate."""
        return self._demoted_pps
