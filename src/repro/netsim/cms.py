"""Cloud management system (CMS) policy APIs and their ACL expressiveness.

§7 of the paper maps attack surface to CMS expressiveness:

* **OpenStack security groups** — ingress rules filter on remote (source)
  IP prefix and destination port only ⇒ at most the SipDp scenario
  (32·16 = 512 masks).
* **Kubernetes NetworkPolicy** — ingress from ipBlock + destination ports;
  same SipDp ceiling.
* **Calico** — additionally supports *source* ports on ingress
  (⇒ SipSpDp, 8192 masks) and egress policies add the destination IP
  (⇒ ~200 k masks).

Each backend validates a vendor-neutral :class:`PolicyRule` against its
expressiveness and compiles accepted rules into flow rules scoped to the
target VM — rejecting what the real API would reject, which is exactly how
the paper distinguishes its OpenStack and Kubernetes testbeds.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.classifier.actions import ALLOW
from repro.classifier.rule import FlowRule, Match
from repro.exceptions import PolicyError
from repro.packet.headers import PROTO_TCP, PROTO_UDP

__all__ = [
    "PolicyRule",
    "CmsBackend",
    "OpenStackSecurityGroups",
    "KubernetesNetworkPolicy",
    "CalicoPolicy",
    "BACKENDS",
]

_PROTO_NUMBERS = {"tcp": PROTO_TCP, "udp": PROTO_UDP}


@dataclass(frozen=True)
class PolicyRule:
    """A vendor-neutral ACL rule a tenant asks the CMS to install.

    Attributes:
        direction: ``"ingress"`` or ``"egress"`` (relative to the VM).
        protocol: ``"tcp"`` or ``"udp"``.
        remote_ip: source prefix as ``(address, mask)``; None = any.
        src_port: exact source port; None = any.
        dst_port: exact destination port; None = any.
        remote_dst_ip: destination prefix for egress rules.
    """

    direction: str = "ingress"
    protocol: str = "tcp"
    remote_ip: tuple[int, int] | None = None
    src_port: int | None = None
    dst_port: int | None = None
    remote_dst_ip: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.direction not in ("ingress", "egress"):
            raise PolicyError(f"unknown direction {self.direction!r}")
        if self.protocol not in _PROTO_NUMBERS:
            raise PolicyError(f"unknown protocol {self.protocol!r}")


class CmsBackend(abc.ABC):
    """One CMS's security-policy API."""

    name: str = "cms"

    @abc.abstractmethod
    def validate(self, rule: PolicyRule) -> None:
        """Raise :class:`PolicyError` when the API cannot express ``rule``."""

    def compile_rule(
        self, rule: PolicyRule, vm_ip: int, priority: int, name: str = ""
    ) -> FlowRule:
        """Compile an accepted rule into a flow rule scoped to ``vm_ip``."""
        self.validate(rule)
        constraints: dict[str, int | tuple[int, int]] = {
            "ip_proto": _PROTO_NUMBERS[rule.protocol],
        }
        if rule.direction == "ingress":
            constraints["ip_dst"] = vm_ip
            if rule.remote_ip is not None:
                constraints["ip_src"] = rule.remote_ip
        else:
            constraints["ip_src"] = vm_ip
            if rule.remote_dst_ip is not None:
                constraints["ip_dst"] = rule.remote_dst_ip
        if rule.src_port is not None:
            constraints["tp_src"] = rule.src_port
        if rule.dst_port is not None:
            constraints["tp_dst"] = rule.dst_port
        return FlowRule(match=Match(**constraints), action=ALLOW, priority=priority, name=name)

    def max_use_case(self) -> str:
        """The most aggressive §5.2 scenario this API admits."""
        return "SipDp"


class OpenStackSecurityGroups(CmsBackend):
    """OpenStack: ingress filtering on remote IP and destination port only."""

    name = "openstack"

    def validate(self, rule: PolicyRule) -> None:
        if rule.direction != "ingress":
            raise PolicyError("OpenStack security groups here model ingress only")
        if rule.src_port is not None:
            raise PolicyError(
                "OpenStack security groups cannot filter on the source port "
                "(the CMS API only allows the SipDp scenario, §5.5)"
            )

    def max_use_case(self) -> str:
        return "SipDp"


class KubernetesNetworkPolicy(CmsBackend):
    """Vanilla Kubernetes NetworkPolicy: ipBlock + destination ports."""

    name = "kubernetes"

    def validate(self, rule: PolicyRule) -> None:
        if rule.direction != "ingress":
            raise PolicyError("NetworkPolicy egress is not modelled; use Calico")
        if rule.src_port is not None:
            raise PolicyError("Kubernetes NetworkPolicy cannot filter on the source port")

    def max_use_case(self) -> str:
        return "SipDp"


class CalicoPolicy(CmsBackend):
    """Calico: adds source-port ingress filters and egress destination IPs.

    This is the plugin that unlocks the full-blown Fig. 6 ACL ("already
    enough for a full-blown DoS", §7); in the paper's Kubernetes testbed
    the source-port rules were injected manually because Kubernetes/OVN
    did not support full Calico semantics — either way the resulting flow
    table is the same.
    """

    name = "calico"

    def validate(self, rule: PolicyRule) -> None:
        if rule.direction == "egress" and rule.remote_dst_ip is None:
            raise PolicyError("Calico egress rules need a destination selector")

    def max_use_case(self) -> str:
        return "SipSpDp"


BACKENDS: dict[str, CmsBackend] = {
    backend.name: backend
    for backend in (OpenStackSecurityGroups(), KubernetesNetworkPolicy(), CalicoPolicy())
}
