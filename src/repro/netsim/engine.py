"""Simulation engine: fixed-step exact-compat loop + event-driven scheduler.

The experiments advance in small ticks (100 ms by default): traffic sources
inject real packets into the simulated datapath, then the hypervisor model
settles CPU accounting and assigns victim rates, then observers sample
metrics.  Components are ticked in registration order, so register sources
before the hypervisor and the hypervisor before observers.

Two scheduling modes share one drift-free clock:

* ``mode="fixed"`` (the default, and the exact-compat mode every paper
  preset runs in): every component ticks at every ``dt`` step, exactly as
  the original fixed-step loop did — byte-identical Fig 8/9 / Table 1
  outputs.
* ``mode="event"``: components declare a ``period`` (an attribute, or the
  ``period=`` argument to :meth:`Simulation.add`) and are ticked from a
  heap at their own cadence.  A 10k-host fleet whose idle hosts settle
  once a second no longer pays 100 ms ticks everywhere; a component's
  ``tick`` receives the time elapsed since *its* previous tick as ``dt``,
  so rate integration (``pps * dt``) stays exact at any cadence.

Periods are quantised onto the base ``dt`` grid (integer tick multiples),
which keeps coincident events exactly coincident — a 0.1 s source and a
1.0 s revalidator meet on the same timestamp every 10 ticks instead of
drifting apart by float rounding.  All timestamps are derived as
``origin + k * dt`` from a single integer tick counter that spans the
simulation's whole lifetime, so ``run(a); run(b)`` produces the identical
timestamp sequence to ``run(a + b)``, tick for tick, even over millions of
ticks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field as dc_field
from typing import Callable, Protocol

from repro.exceptions import SimulationError

__all__ = ["SimComponent", "Simulation"]


class SimComponent(Protocol):
    """Anything the simulation loop can drive.

    A component may additionally expose a ``period`` attribute (seconds);
    the event-driven scheduler ticks it at that cadence (quantised to the
    base ``dt`` grid).  The fixed-step mode ignores periods entirely.
    """

    def tick(self, now: float, dt: float) -> None:  # pragma: no cover - protocol
        ...


@dataclass
class _Scheduled:
    """One registered component with its scheduling state."""

    component: SimComponent
    period_ticks: int
    order: int
    next_tick: int = dc_field(default=0)


class Simulation:
    """The simulation loop.

    Args:
        dt: base tick length in seconds (the fixed-step cadence, and the
            grid event-mode periods are quantised onto).
        mode: ``"fixed"`` (every component every tick — the paper-exact
            compat mode) or ``"event"`` (heap-scheduled per-component
            periods).
    """

    MODES = ("fixed", "event")

    def __init__(self, dt: float = 0.1, mode: str = "fixed"):
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt}")
        if mode not in self.MODES:
            raise SimulationError(f"unknown mode {mode!r}; expected one of {self.MODES}")
        self.dt = dt
        self.mode = mode
        self.now = 0.0
        # Single integer tick counter spanning the simulation's lifetime.
        # Every timestamp is derived as `tick * dt` from it (never
        # accumulated with `now += dt`), so rounding error cannot compound
        # across ticks *or* across resumed `run()` calls — the contract the
        # 10 s idle-eviction comparisons of Fig. 8a/8b rely on.
        self._tick = 0
        self._components: list[_Scheduled] = []
        self._heap: list[tuple[int, int, _Scheduled]] = []
        self._observers: list[Callable[[float], None]] = []

    def add(self, component: SimComponent, period: float | None = None) -> None:
        """Register a component (ticked in registration order at equal times).

        ``period`` (seconds) sets the component's event-mode cadence; when
        omitted, a ``period`` attribute on the component is honoured, and
        components declaring neither tick at every base ``dt``.  Periods
        are quantised to the nearest whole number of base ticks (at least
        one).  The fixed-step mode ticks every component at every ``dt``
        regardless of period.
        """
        if not hasattr(component, "tick"):
            raise SimulationError(f"{component!r} has no tick() method")
        if period is None:
            period = getattr(component, "period", None)
        period_ticks = 1
        if period is not None:
            if period <= 0:
                raise SimulationError(f"period must be positive, got {period}")
            period_ticks = max(1, round(period / self.dt))
        entry = _Scheduled(
            component,
            period_ticks,
            order=len(self._components),
            next_tick=self._tick,
        )
        self._components.append(entry)
        heapq.heappush(self._heap, (entry.next_tick, entry.order, entry))

    def observe(self, callback: Callable[[float], None]) -> None:
        """Register a sampling callback run after the components of a tick.

        In fixed mode observers run after every base tick; in event mode
        they run after every timestamp at which at least one component
        ticked (there is nothing new to sample in between).
        """
        if not callable(callback):
            raise SimulationError(f"observer {callback!r} is not callable")
        self._observers.append(callback)

    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        if duration < 0:
            raise SimulationError(f"duration must be >= 0, got {duration}")
        ticks = round(duration / self.dt)
        end_tick = self._tick + ticks
        if self.mode == "fixed":
            self._run_fixed(end_tick)
        else:
            self._run_events(end_tick)
        self._tick = end_tick
        self.now = end_tick * self.dt

    def _run_fixed(self, end_tick: int) -> None:
        """The exact-compat fixed-step loop (every component, every tick)."""
        for k in range(self._tick, end_tick):
            self.now = k * self.dt
            for entry in self._components:
                entry.component.tick(self.now, self.dt)
            for observer in self._observers:
                observer(self.now)

    def _run_events(self, end_tick: int) -> None:
        """Pop the schedule heap up to (excluding) ``end_tick``.

        Components due at the same tick run in registration order (the
        heap is keyed ``(tick, registration order)``); each receives the
        wall time elapsed since its own previous tick as ``dt``.
        """
        heap = self._heap
        while heap and heap[0][0] < end_tick:
            tick = heap[0][0]
            self.now = tick * self.dt
            while heap and heap[0][0] == tick:
                _, order, entry = heapq.heappop(heap)
                entry.component.tick(self.now, entry.period_ticks * self.dt)
                entry.next_tick = tick + entry.period_ticks
                heapq.heappush(heap, (entry.next_tick, order, entry))
            for observer in self._observers:
                observer(self.now)
