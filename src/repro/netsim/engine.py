"""Fixed-step simulation engine.

The experiments advance in small ticks (100 ms by default): traffic sources
inject real packets into the simulated datapath, then the hypervisor model
settles CPU accounting and assigns victim rates, then observers sample
metrics.  Components are ticked in registration order, so register sources
before the hypervisor and the hypervisor before observers.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.exceptions import SimulationError

__all__ = ["SimComponent", "Simulation"]


class SimComponent(Protocol):
    """Anything the simulation loop can drive."""

    def tick(self, now: float, dt: float) -> None:  # pragma: no cover - protocol
        ...


class Simulation:
    """The fixed-step loop.

    Args:
        dt: tick length in seconds.
    """

    def __init__(self, dt: float = 0.1):
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt}")
        self.dt = dt
        self.now = 0.0
        self._components: list[SimComponent] = []
        self._observers: list[Callable[[float], None]] = []

    def add(self, component: SimComponent) -> None:
        """Register a component (ticked in registration order)."""
        if not hasattr(component, "tick"):
            raise SimulationError(f"{component!r} has no tick() method")
        self._components.append(component)

    def observe(self, callback: Callable[[float], None]) -> None:
        """Register a sampling callback run after all components each tick."""
        self._observers.append(callback)

    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        if duration < 0:
            raise SimulationError(f"duration must be >= 0, got {duration}")
        # Guard against float drift twice over: the tick count is computed
        # up front, and each timestamp is derived as start + i * dt rather
        # than accumulated with repeated `now += dt` (whose rounding error
        # compounds over long runs and skews the `now` comparisons behind
        # the 10 s idle-eviction recoveries of Fig. 8a/8b).
        start = self.now
        ticks = round(duration / self.dt)
        for i in range(ticks):
            self.now = start + i * self.dt
            for component in self._components:
                component.tick(self.now, self.dt)
            for observer in self._observers:
                observer(self.now)
        self.now = start + ticks * self.dt
