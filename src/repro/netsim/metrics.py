"""Time-series collection for the simulation experiments (Fig. 8 a/b/c)."""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Iterator

from repro.exceptions import SimulationError

__all__ = ["TimeSeries", "MetricsCollector", "quantile"]


@dataclass
class TimeSeries:
    """One named series of (time, value) samples."""

    name: str
    times: list[float] = dc_field(default_factory=list)
    values: list[float] = dc_field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise SimulationError(f"{self.name}: time went backwards ({time})")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def at(self, time: float) -> float:
        """Value of the latest sample at or before ``time``."""
        if not self.times or time < self.times[0]:
            raise SimulationError(f"{self.name}: no sample at or before t={time}")
        # Linear scan from the back: queries are usually near the end.
        for t, v in zip(reversed(self.times), reversed(self.values)):
            if t <= time:
                return v
        raise SimulationError(f"{self.name}: no sample at or before t={time}")

    def mean(self, start: float = float("-inf"), stop: float = float("inf")) -> float:
        """Mean value over samples with start <= t < stop."""
        window = [v for t, v in self if start <= t < stop]
        if not window:
            raise SimulationError(f"{self.name}: no samples in [{start}, {stop})")
        return sum(window) / len(window)

    def minimum(self, start: float = float("-inf"), stop: float = float("inf")) -> float:
        """Min value over samples with start <= t < stop."""
        window = [v for t, v in self if start <= t < stop]
        if not window:
            raise SimulationError(f"{self.name}: no samples in [{start}, {stop})")
        return min(window)

    def maximum(self, start: float = float("-inf"), stop: float = float("inf")) -> float:
        """Max value over samples with start <= t < stop."""
        window = [v for t, v in self if start <= t < stop]
        if not window:
            raise SimulationError(f"{self.name}: no samples in [{start}, {stop})")
        return max(window)

    def percentile(
        self,
        q: float,
        start: float = float("-inf"),
        stop: float = float("inf"),
    ) -> float:
        """The ``q``-th percentile (0..100) over samples with start <= t < stop."""
        window = [v for t, v in self if start <= t < stop]
        if not window:
            raise SimulationError(f"{self.name}: no samples in [{start}, {stop})")
        return quantile(window, q)


def quantile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default), 0 <= q <= 100.

    Shared by :meth:`TimeSeries.percentile` and the fleet readouts, which
    compute p50/p99 over per-tenant floors rather than over time.
    """
    if not 0.0 <= q <= 100.0:
        raise SimulationError(f"percentile must be in [0, 100], got {q}")
    if not values:
        raise SimulationError("percentile of an empty window")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


class MetricsCollector:
    """A bag of named time series."""

    def __init__(self) -> None:
        self._series: dict[str, TimeSeries] = {}

    def record(self, name: str, time: float, value: float) -> None:
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name=name)
            self._series[name] = series
        series.record(time, value)

    def series(self, name: str) -> TimeSeries:
        try:
            return self._series[name]
        except KeyError:
            raise SimulationError(
                f"no series {name!r}; have: {', '.join(sorted(self._series))}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series
