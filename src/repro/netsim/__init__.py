"""Discrete-time network/testbed simulation (the Fig. 7/8 environments)."""

from repro.netsim.cloud import (
    ENVIRONMENTS,
    KUBERNETES_ENV,
    OPENSTACK_ENV,
    SYNTHETIC_ENV,
    Datacenter,
    EnvironmentProfile,
    Server,
    Tenant,
    VirtualMachine,
)
from repro.netsim.cms import (
    BACKENDS,
    CalicoPolicy,
    CmsBackend,
    KubernetesNetworkPolicy,
    OpenStackSecurityGroups,
    PolicyRule,
)
from repro.netsim.engine import SimComponent, Simulation
from repro.netsim.fleet import Fleet, FleetHost, Rack, TenantBlock, TenantStream
from repro.netsim.flows import ActiveWindow, AttackSource, RandomFloodSource, VictimFlow
from repro.netsim.hypervisor import HypervisorHost, QuirkConfig, VictimState
from repro.netsim.metrics import MetricsCollector, TimeSeries, quantile

__all__ = [
    "Simulation",
    "SimComponent",
    "MetricsCollector",
    "TimeSeries",
    "quantile",
    "Fleet",
    "FleetHost",
    "Rack",
    "TenantBlock",
    "TenantStream",
    "HypervisorHost",
    "QuirkConfig",
    "VictimState",
    "ActiveWindow",
    "AttackSource",
    "RandomFloodSource",
    "VictimFlow",
    "PolicyRule",
    "CmsBackend",
    "OpenStackSecurityGroups",
    "KubernetesNetworkPolicy",
    "CalicoPolicy",
    "BACKENDS",
    "EnvironmentProfile",
    "SYNTHETIC_ENV",
    "OPENSTACK_ENV",
    "KUBERNETES_ENV",
    "ENVIRONMENTS",
    "Datacenter",
    "Server",
    "Tenant",
    "VirtualMachine",
]
