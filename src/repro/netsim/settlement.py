"""Vectorised per-tick victim settlement — the fleet-scale pricing kernel.

This module is the one place victim capacity is priced.  It extracts the
per-victim accounting that used to live inline in
:meth:`repro.netsim.hypervisor.HypervisorHost.tick` — equal split of each
core's remaining budget across the active victims RSS pinned there, each
share priced at the owning core's expected scan cost in normalised probe
units, mask-memo protection mix applied, clamped by the victim's link
share — and states it twice:

* :func:`settle_rates` is the numpy implementation: *all* tenants of a
  host (and, via concatenated core/tenant columns with per-host offsets,
  all hosts of a rack) are priced in one array pass.  This is what every
  settlement runs through by default.
* :func:`settle_rates_scalar` is the original per-victim Python loop,
  retained verbatim as the differential-test reference.  It evaluates the
  calibrated cost curve per victim-core pair exactly as the historical
  ``HypervisorHost.tick`` did; ``tests/test_settlement.py`` asserts the
  two are float-for-float identical across environments, shard counts and
  victim placements, which is what keeps every Table 1 / Fig 8-9 preset
  byte-identical under the vectorised path.

The same split applies to the mask-memo protection state machine
(:func:`update_protection` / :func:`update_protection_scalar`): calm /
attacked is judged on *mask counts* (the kernel memo is per mask), never
on probe units.

Victim-core membership is expressed as flat pair columns
(``pair_victim[i]`` is priced on core ``pair_core[i]``); a victim spanning
several cores (forward + reverse keys hashed apart) contributes several
pairs and sums its per-core shares.  Summation runs through
``np.bincount``, which accumulates sequentially in pair order — the same
float addition order as the scalar loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.hypervisor import QuirkConfig
    from repro.switch.costmodel import CostModel
    from repro.switch.datapath import CoreReport

__all__ = [
    "CoreCosts",
    "core_costs",
    "settle_rates",
    "settle_rates_scalar",
    "update_protection",
    "update_protection_scalar",
    "check_settlement_mode",
    "SETTLEMENT_MODES",
]

SETTLEMENT_MODES = ("vector", "scalar")


@dataclass(frozen=True)
class CoreCosts:
    """Marshalled per-core pricing inputs for one settlement pass.

    One entry per PMD core; for a rack-wide pass, the per-host core arrays
    are concatenated and tenant pair columns carry per-host core offsets
    (cores are never shared between hosts, so the concatenated pass is
    exactly the per-host passes run back to back).

    Attributes:
        available: remaining fast-path budget (units/second) after attack
            and revalidation charges.
        scan_units: victim per-unit cost at the core's expected full-scan
            cost (the calibrated curve, evaluated once per core).
        protected_units: per-unit cost under the mask-memo protection mix
            (``(1-chi)*1 + chi*scan_units``).
        n_masks: installed distinct-mask count (drives the protection
            quirk, never pricing).
    """

    available: np.ndarray
    scan_units: np.ndarray
    protected_units: np.ndarray
    n_masks: np.ndarray


def core_costs(
    reports: "Sequence[CoreReport]",
    available: Sequence[float],
    cost_model: "CostModel",
    quirks: "QuirkConfig",
) -> CoreCosts:
    """Build the per-core pricing arrays from one tick's core reports.

    The calibrated relative-cost curve is evaluated once per core — the
    scalar reference evaluates it once per victim-core pair, with the same
    scan cost, so the values are identical floats; hoisting it is where
    the vectorised pass stops paying the curve per tenant.
    """
    n = len(reports)
    scan_units = np.empty(n, dtype=np.float64)
    protected_units = np.empty(n, dtype=np.float64)
    n_masks = np.empty(n, dtype=np.int64)
    chi = quirks.collision_rate
    for i, report in enumerate(reports):
        units = cost_model.victim_cost_units_probes(report.scan_cost)
        scan_units[i] = units
        protected_units[i] = (1.0 - chi) * 1.0 + chi * units
        n_masks[i] = report.n_masks
    return CoreCosts(
        available=np.asarray(available, dtype=np.float64),
        scan_units=scan_units,
        protected_units=protected_units,
        n_masks=n_masks,
    )


def settle_rates(
    core: CoreCosts,
    pair_victim: np.ndarray,
    pair_core: np.ndarray,
    protected: np.ndarray,
    n_victims: int,
    link_cap: float | np.ndarray,
    unit_bits: float,
) -> np.ndarray:
    """Price every victim in one array pass; returns assigned Gbps.

    Args:
        core: per-core pricing arrays (possibly rack-concatenated).
        pair_victim / pair_core: flat victim-core membership columns.
        protected: per-victim mask-memo protection flags.
        n_victims: number of (active) victims being settled.
        link_cap: per-victim wire-share clamp — a scalar for one host
            (``link_gbps / n_active``) or a per-victim array for a
            rack-wide pass over hosts with their own links.
        unit_bits: bits moved per classified unit.
    """
    victims_on_core = np.bincount(pair_core, minlength=len(core.available))
    share = core.available[pair_core] / victims_on_core[pair_core]
    cost = np.where(
        protected[pair_victim],
        core.protected_units[pair_core],
        core.scan_units[pair_core],
    )
    units_per_sec = np.bincount(
        pair_victim, weights=share / cost, minlength=n_victims
    )
    gbps = units_per_sec * unit_bits / 1e9
    return np.minimum(link_cap, gbps)


def settle_rates_scalar(
    scan_cost: Sequence[float],
    available: Sequence[float],
    pair_victim: Sequence[int],
    pair_core: Sequence[int],
    protected: Sequence[bool],
    n_victims: int,
    link_cap: float | Sequence[float],
    cost_model: "CostModel",
    quirks: "QuirkConfig",
) -> list[float]:
    """The original per-victim settlement loop (differential reference).

    Mirrors the historical ``HypervisorHost.tick`` accounting operation
    for operation — per-pair curve evaluation included — so the vectorised
    pass can be differential-tested (and benchmarked) against it.
    """
    victims_on_core = [0] * len(available)
    for s in pair_core:
        victims_on_core[s] += 1
    caps = (
        [link_cap] * n_victims
        if isinstance(link_cap, (int, float))
        else list(link_cap)
    )
    chi = quirks.collision_rate
    units_per_sec = [0.0] * n_victims
    for v, s in zip(pair_victim, pair_core):
        share = available[s] / victims_on_core[s]
        scan_units = cost_model.victim_cost_units_probes(scan_cost[s])
        if protected[v]:
            cheap = 1.0
            cost = (1.0 - chi) * cheap + chi * scan_units
        else:
            cost = scan_units
        units_per_sec[v] += share / cost
    unit_bits = cost_model.unit_bits
    return [
        min(caps[v], units_per_sec[v] * unit_bits / 1e9)
        for v in range(n_victims)
    ]


def update_protection(
    now: float,
    masks: np.ndarray,
    calm_since: np.ndarray,
    protected: np.ndarray,
    quirks: "QuirkConfig",
) -> None:
    """Vectorised mask-memo protection update (arrays mutated in place).

    ``masks`` is each victim's home-core mask count (max over its home
    shards, floored at 1); ``calm_since`` uses ``nan`` for "not calm".
    Exactly the scalar state machine, applied columnwise: a victim earns
    its memo after ``establish_seconds`` of continuous calm (mask count at
    or below the ceiling) and keeps it until the flow stops.
    """
    if not quirks.established_flow_protection:
        protected[:] = False
        return
    calm = masks <= quirks.establish_mask_ceiling
    newly_calm = calm & np.isnan(calm_since)
    calm_since[newly_calm] = now
    earned = calm & (now - calm_since >= quirks.establish_seconds)
    protected[earned] = True
    calm_since[~calm] = np.nan


def update_protection_scalar(
    now: float,
    masks: Sequence[int],
    calm_since: list[float],
    protected: list[bool],
    quirks: "QuirkConfig",
) -> None:
    """The original per-victim protection state machine (reference).

    Operates on the same column convention as :func:`update_protection`
    (``nan`` for "not calm") so the two can be differential-tested on
    identical inputs.
    """
    if not quirks.established_flow_protection:
        for v in range(len(protected)):
            protected[v] = False
        return
    for v, m in enumerate(masks):
        if m <= quirks.establish_mask_ceiling:
            if np.isnan(calm_since[v]):
                calm_since[v] = now
            if now - calm_since[v] >= quirks.establish_seconds:
                protected[v] = True
        else:
            calm_since[v] = float("nan")


def check_settlement_mode(mode: str) -> str:
    """Validate a settlement-mode knob (``"vector"`` or ``"scalar"``)."""
    if mode not in SETTLEMENT_MODES:
        raise SimulationError(
            f"unknown settlement mode {mode!r}; expected one of {SETTLEMENT_MODES}"
        )
    return mode
