"""Traffic sources: attack replay, random floods, iperf-like victim flows.

Attack sources inject *real* packets into the hypervisor's datapath — at
the paper's attack rates (100–2000 pps) that is cheap enough to simulate
per packet, and it is what makes the mask counts genuine.  Victim flows
operate in the hybrid mode described in DESIGN.md: a few keepalive packets
per tick hold their cache entries, while their rate follows the capacity
the hypervisor assigns (TCP ramps toward it, UDP jumps to it).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.general import GeneralTraceGenerator
from repro.exceptions import SimulationError
from repro.netsim.hypervisor import HypervisorHost
from repro.packet.fields import FlowKey
from repro.switch.rss import RetargetReport, retarget_trace

__all__ = [
    "ActiveWindow",
    "AttackSource",
    "RandomFloodSource",
    "VictimFlow",
    "queue_aware_trace",
]


def queue_aware_trace(
    host: HypervisorHost,
    keys: Sequence[FlowKey],
    plan: int | str | Callable[[int, FlowKey], int],
    seed: int = 0,
) -> tuple[list[FlowKey], RetargetReport]:
    """Craft a queue-aware variant of an attack trace for ``host``.

    On a sharded host, packets dispatch to PMD cores via RSS; because the
    attacker controls its packets' 5-tuples, it can grind the bits its
    megaflows wildcard until the hash lands where it wants (see
    :func:`repro.switch.rss.retarget_trace` — the crafted variant detonates
    the identical tuple space).  ``plan`` is either a queue index
    (concentrate the explosion on one core), ``"spread"`` (round-robin
    across all cores), or a callable ``(index, key) -> queue``.  On an
    unsharded host the trace is returned unchanged.
    """
    datapath = host.datapath
    dispatcher = getattr(datapath, "rss", None)
    if dispatcher is None or datapath.n_shards == 1:
        return list(keys), RetargetReport(already_on_target=len(keys))
    queue_for: Callable[[int, FlowKey], int]
    if plan == "spread":
        def queue_for(i, _key):
            return i % dispatcher.n_queues
    elif isinstance(plan, int):
        def queue_for(_i, _key):
            return plan
    elif callable(plan):
        queue_for = plan
    else:
        raise SimulationError(f"unknown queue plan {plan!r}")
    return retarget_trace(
        keys,
        datapath.flow_table,
        dispatcher,
        queue_for,
        strategy=datapath.config.strategy,
        seed=seed,
    )


@dataclass(frozen=True)
class ActiveWindow:
    """A half-open activity interval [start, stop)."""

    start: float
    stop: float

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise SimulationError(f"empty window [{self.start}, {self.stop})")

    def contains(self, time: float) -> bool:
        return self.start <= time < self.stop


class AttackSource:
    """Replays an adversarial trace at a fixed packet rate.

    Each tick's packets are injected in rx-burst-sized batches through
    :meth:`HypervisorHost.inject_attack_batch`, mirroring how DPDK/OVS
    pull ~32-packet bursts off the NIC; semantics are identical to
    per-packet injection (the batched datapath is verdict-equivalent),
    only the per-packet Python overhead is amortised.  On a sharded host
    each batch is RSS-partitioned onto PMD shards by the datapath; pass
    the trace through :func:`queue_aware_trace` first to concentrate or
    spread the explosion across queues.

    Args:
        host: the hypervisor under attack.
        keys: the trace (looped when exhausted, like ``tcpreplay --loop``).
        pps: packet rate while active.
        windows: activity intervals; always active when empty.
        name: label for metrics.
        batch_size: packets per injected batch (OVS-like 32 by default).
        period: event-mode tick cadence in seconds (``Simulation.add``
            honours the attribute); the fractional-packet carry keeps the
            injected rate exact at any cadence.  ``None`` ticks at the
            base ``dt``.
    """

    def __init__(
        self,
        host: HypervisorHost,
        keys: Sequence[FlowKey] | Iterable[FlowKey],
        pps: float,
        windows: Sequence[ActiveWindow] = (),
        name: str = "attacker",
        loop: bool = True,
        key_stream: Iterator[FlowKey] | None = None,
        batch_size: int = 32,
        period: float | None = None,
    ):
        if pps < 0:
            raise SimulationError(f"pps must be >= 0, got {pps}")
        if batch_size < 1:
            raise SimulationError(f"batch_size must be >= 1, got {batch_size}")
        self.host = host
        self.pps = pps
        self.windows = tuple(windows)
        self.name = name
        self.batch_size = batch_size
        self.period = period
        if key_stream is not None:
            self._iter: Iterator[FlowKey] = key_stream
        else:
            trace = list(keys)
            if not trace:
                raise SimulationError("attack trace is empty")
            self._iter = itertools.cycle(trace) if loop else iter(trace)
        self._carry = 0.0  # fractional packets across ticks
        self.packets_sent = 0
        self.current_pps = 0.0

    def active(self, now: float) -> bool:
        if not self.windows:
            return True
        return any(window.contains(now) for window in self.windows)

    def set_rate(self, pps: float) -> None:
        """Change the attack rate mid-run (the Fig. 8c escalation)."""
        if pps < 0:
            raise SimulationError(f"pps must be >= 0, got {pps}")
        self.pps = pps

    def set_trace(self, keys: Sequence[FlowKey], loop: bool = True) -> None:
        """Swap the replayed trace mid-run (the RSS-aware attacker's move).

        The adversarial game of the ``rsssweep`` experiment: after the
        defender re-keys RSS, the attacker re-grinds its crafting packets
        against the new dispatcher (:func:`~repro.switch.rss.retarget_trace`)
        and swaps the re-targeted trace in here — subsequent batches replay
        the new keys; packets already injected are history.
        """
        trace = list(keys)
        if not trace:
            raise SimulationError("attack trace is empty")
        self._iter = itertools.cycle(trace) if loop else iter(trace)

    def tick(self, now: float, dt: float) -> None:
        if not self.active(now):
            self.current_pps = 0.0
            self._carry = 0.0
            return
        self._carry += self.pps * dt
        to_send = int(self._carry)
        self._carry -= to_send
        sent = 0
        while sent < to_send:
            batch = list(
                itertools.islice(self._iter, min(self.batch_size, to_send - sent))
            )
            if not batch:
                break
            self.host.inject_attack_batch(batch, now)
            sent += len(batch)
        self.packets_sent += sent
        self.current_pps = sent / dt if dt else 0.0


class RandomFloodSource(AttackSource):
    """General-TSE flood: every packet a fresh random flow.

    Unlike a looped trace replay (whose packets hit existing megaflows
    after the first pass), sustained random traffic keeps spawning new
    megaflow *entries* under the deep masks, so a large share of packets
    upcall forever — the escalation that produces the full denial of
    service at 2 kpps in Fig. 8c.
    """

    def __init__(
        self,
        host: HypervisorHost,
        generator: GeneralTraceGenerator,
        pps: float,
        windows: Sequence[ActiveWindow] = (),
        name: str = "random-flood",
    ):
        self._generator = generator

        def stream() -> Iterator[FlowKey]:
            while True:
                yield from generator.keys(1024)

        super().__init__(
            host, keys=(), pps=pps, windows=windows, name=name, key_stream=stream()
        )


class VictimFlow:
    """An iperf-like victim session.

    Args:
        host: the hypervisor carrying the flow.
        name: flow label (metrics key).
        keys: flow keys the victim's packets carry (forward plus optional
            reverse direction) — sent as keepalives each tick.
        offered_gbps: the sender's offered load.
        kind: ``"tcp"`` (ramping, drop-sensitive) or ``"udp"`` (CBR).
        windows: activity intervals.
        ramp_tau: TCP exponential-ramp time constant (seconds).
        period: event-mode tick cadence in seconds (keepalives need not
            run at the base ``dt``; the cache entries stay warm at any
            cadence below the idle timeout).  ``None`` ticks at ``dt``.
    """

    def __init__(
        self,
        host: HypervisorHost,
        name: str,
        keys: Sequence[FlowKey],
        offered_gbps: float,
        kind: str = "tcp",
        windows: Sequence[ActiveWindow] = (),
        ramp_tau: float = 2.0,
        period: float | None = None,
    ):
        if kind not in ("tcp", "udp"):
            raise SimulationError(f"unknown flow kind {kind!r}")
        if offered_gbps <= 0:
            raise SimulationError("offered_gbps must be positive")
        self.host = host
        self.name = name
        self.kind = kind
        self.offered_gbps = offered_gbps
        self.windows = tuple(windows)
        self.ramp_tau = ramp_tau
        self.period = period
        self.rate_gbps = 0.0
        self._was_active = False
        host.register_victim(name, tuple(keys))

    def active(self, now: float) -> bool:
        if not self.windows:
            return True
        return any(window.contains(now) for window in self.windows)

    def tick(self, now: float, dt: float) -> None:
        active = self.active(now)
        if active and not self._was_active:
            self.host.victim_started(self.name, now)
        elif not active and self._was_active:
            self.host.victim_stopped(self.name)
            self.rate_gbps = 0.0
        self._was_active = active
        if not active:
            return
        self.host.keepalive(self.name, now)

    def settle(self, now: float, dt: float) -> None:
        """Update the achieved rate from the host's capacity assignment.

        Must run *after* the host's tick.  TCP converges exponentially
        upward (slow-start/congestion-avoidance abstraction) and collapses
        quickly when capacity disappears; UDP tracks capacity instantly.
        """
        if not self._was_active:
            return
        capacity = min(self.offered_gbps, self.host.victim_rate(self.name))
        if self.kind == "udp":
            self.rate_gbps = capacity
            return
        if capacity < self.rate_gbps:
            # Multiplicative decrease dominates: near-immediate collapse.
            self.rate_gbps = capacity
        else:
            alpha = min(1.0, dt / self.ramp_tau)
            self.rate_gbps += (capacity - self.rate_gbps) * alpha
