"""The simulated datacenter of Fig. 7: servers, tenants, VMs, shared switches.

Each server runs one hypervisor switch (:class:`HypervisorHost`); all VMs
scheduled onto the server share its datapath — and therefore its megaflow
cache, which is the co-location premise of the attack: the attacker's ACL
and trace, aimed at the attacker's *own* VM, still explode the tuple space
every co-located tenant's traffic must scan.

Environment presets capture the three testbeds of Table 1 (synthetic,
OpenStack, Kubernetes) with their link speeds, calibrated cost curves, CMS
backends and behavioural quirks.

This module models a *single rack's worth* of explicitly-constructed
tenants.  For fleet-scale runs — hundreds of hosts, millions of tenants
streamed from seeded generators and settled columnarly — see
:mod:`repro.netsim.fleet`, which builds on the same environment presets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field, replace as dc_replace

from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import FlowRule
from repro.core.migration import MigrationController, MigrationPolicy
from repro.core.mitigation import MFCGuard, MFCGuardConfig
from repro.core.rebalance import RebalanceController, RebalancePolicy
from repro.exceptions import SimulationError
from repro.netsim.cms import BACKENDS, CmsBackend, PolicyRule
from repro.netsim.hypervisor import HypervisorHost, QuirkConfig
from repro.packet.addresses import ipv4
from repro.switch.costmodel import CostModel
from repro.switch.datapath import Datapath, DatapathConfig
from repro.switch.offload import GRO_OFF_TCP, NicProfile, UDP_PROFILE
from repro.switch.sharded import ShardedDatapath

__all__ = [
    "EnvironmentProfile",
    "SYNTHETIC_ENV",
    "OPENSTACK_ENV",
    "KUBERNETES_ENV",
    "MULTIQUEUE_ENV",
    "ENVIRONMENTS",
    "VirtualMachine",
    "Tenant",
    "Server",
    "Datacenter",
]

# The Kubernetes testbed of Table 1: two laptops, virtio links at 1 Gbps.
# The victim's iperf TCP rides virtio's software GRO, so the fast-path
# *unit* is a 64 kB aggregated buffer and the mask-scan share of a unit's
# cost is moderate (copy costs dominate at low mask counts) — a much
# flatter curve than the Xeon testbed's.  Anchors read off Fig. 8c: the
# victim holds ~20-25% of the 1 Gbps link right after the ACL injection.
KUBERNETES_PROFILE = NicProfile(
    name="Kubernetes virtio (TCP)",
    baseline_gbps=1.4,
    unit_bytes=65536,
    anchors={1: 1.0, 2: 0.94, 1000: 0.55, 8209: 0.33},
)


@dataclass(frozen=True)
class EnvironmentProfile:
    """One testbed environment (a Table 1 column).

    Attributes:
        name: environment label.
        cost_model: calibrated throughput model (budgets are per PMD core).
        cms: the CMS backend mediating tenants' ACLs.
        quirks: behavioural quirks (mask-memo protection on OpenStack).
        datapath: datapath knobs (strategy, caches, timeouts; applied per
            shard when ``n_pmd > 1``).
        n_pmd: PMD cores / receive queues per hypervisor switch.  The
            paper's testbeds all ran a single datapath thread, so the
            Table 1 presets keep ``n_pmd=1``; raise it (or use
            ``MULTIQUEUE_ENV`` / ``dataclasses.replace``) to study the
            RSS-sharded regime of the feasibility follow-up
            (arXiv:2011.09107).
        megaflow_backend: megaflow-cache backend registry name for every
            datapath (shard) this environment builds, overriding the
            ``datapath`` config's choice when set; ``None`` (the default)
            defers to ``datapath.megaflow_backend``.  The paper's testbeds
            all ran Tuple Space Search, so every Table 1 preset resolves
            to ``"tss"``; select ``"tuplechain"`` (or use
            ``dataclasses.replace``) to study the grouped-lookup defense
            regime of the §7 discussion / the ``backendsweep`` experiment.
            The cost plane prices work in the backend's normalised probe
            units (``expected_scan_cost()``), so the grouped backend's
            cheaper scans show up directly in the netsim Gbps/FCT time
            series — and the ``"tss"`` presets price exactly as the
            paper's mask-count model (probes ≡ masks).
        executor: shard-execution strategy for every sharded datapath this
            environment builds (see :mod:`repro.switch.executor`),
            overriding the ``datapath`` config's choice when set; ``None``
            (the default) defers to ``datapath.executor``.  The strategies
            are verdict-equivalent by invariant, so this knob only decides
            *wall-clock* parallelism: the Table 1 presets resolve to
            ``"serial"`` (single datapath thread, and byte-identical
            outputs), while ``"thread"``/``"process"`` make a multi-PMD
            environment actually execute its shards concurrently.
        executor_transport: data-plane transport override for the
            ``process`` executor (``"shm"`` shared-memory rings or
            ``"pipe"``); ``None`` defers to ``datapath.executor_transport``.
        scan_kernel: megaflow scan-kernel override (``"auto"``, ``"numpy"``,
            ``"cffi"``); ``None`` defers to ``datapath.scan_kernel``.
            Kernels are verdict-equivalent by invariant — like ``executor``
            this knob only decides wall-clock speed.
        migration_policy: optional
            :class:`~repro.core.migration.MigrationPolicy` — when set,
            every server built from this profile runs a
            :class:`~repro.core.migration.MigrationController` in its
            hypervisor's maintenance cadence (live backend migration).
            ``None`` (the default, and every Table 1 preset) builds no
            controller, keeping the paper presets byte-identical.
        rebalance_policy: optional
            :class:`~repro.core.rebalance.RebalancePolicy` — when set on a
            multi-PMD profile, every server runs a
            :class:`~repro.core.rebalance.RebalanceController` (live RSS
            re-keying against queue-concentrated attacks).  ``None`` (the
            default, and every Table 1 preset) builds no controller — and
            single-PMD profiles never do, since a 1-queue re-map is a
            no-op by construction.
        description: Table 1 provenance notes.
    """

    name: str
    cost_model: CostModel
    cms: CmsBackend
    quirks: QuirkConfig = dc_field(default_factory=QuirkConfig)
    datapath: DatapathConfig = dc_field(default_factory=DatapathConfig)
    n_pmd: int = 1
    megaflow_backend: str | None = None
    executor: str | None = None
    executor_transport: str | None = None
    scan_kernel: str | None = None
    migration_policy: MigrationPolicy | None = None
    rebalance_policy: "RebalancePolicy | None" = None
    description: str = ""

    def datapath_config(self) -> DatapathConfig:
        """The datapath knobs with this profile's backend/executor applied."""
        config = self.datapath
        overrides = {
            "megaflow_backend": self.megaflow_backend,
            "executor": self.executor,
            "executor_transport": self.executor_transport,
            "scan_kernel": self.scan_kernel,
        }
        changes = {
            field: value
            for field, value in overrides.items()
            if value is not None and getattr(config, field) != value
        }
        if changes:
            config = dc_replace(config, **changes)
        return config


# n_pmd=1: the paper's SUT pinned OVS to a single datapath thread — the
# mask scan contends on one core, which is what Fig. 8a/9a measure.
SYNTHETIC_ENV = EnvironmentProfile(
    name="Synthetic",
    cost_model=CostModel(profile=GRO_OFF_TCP, link_gbps=10.0),
    cms=BACKENDS["calico"],  # flow table bootstrapped manually (§5.4)
    n_pmd=1,
    description="Xeon E5-2620 v3, Intel X710, OVS 2.9.2 — standalone SUT",
)

# n_pmd=1: the OpenStack testbed's kernel datapath has no PMD threads at
# all; its single-context softirq processing maps to one shard.
OPENSTACK_ENV = EnvironmentProfile(
    name="OpenStack",
    cost_model=CostModel(profile=UDP_PROFILE, link_gbps=10.0),
    cms=BACKENDS["openstack"],
    quirks=QuirkConfig(established_flow_protection=True),
    datapath=DatapathConfig(enable_mask_cache=True),
    n_pmd=1,
    description="OpenStack Queens + OVN, OVS 2.9.90 (unstable)",
)

# n_pmd=1: the two-laptop Kubernetes testbed rode a single virtio queue.
KUBERNETES_ENV = EnvironmentProfile(
    name="Kubernetes",
    cost_model=CostModel(
        profile=KUBERNETES_PROFILE,
        link_gbps=1.0,
        upcall_units=2.0,  # in 64 kB-buffer units
        attack_cost_scale=0.4,  # MTU attack packet vs a GRO buffer
        revalidate_units_per_entry=0.02,
    ),
    cms=BACKENDS["calico"],
    n_pmd=1,
    description="Kubernetes 1.7 + OVN, 2x i5-6300U, virtio 1 Gbps",
)

# The multi-queue deployment of the feasibility follow-up: the synthetic
# Xeon SUT with 4 PMD cores behind RSS.  Default for the ``pmdsweep``
# scenario's sharded rows.
MULTIQUEUE_ENV = EnvironmentProfile(
    name="Multiqueue",
    cost_model=CostModel(profile=GRO_OFF_TCP, link_gbps=10.0),
    cms=BACKENDS["calico"],
    n_pmd=4,
    description="Synthetic SUT with 4 RSS queues / PMD cores (arXiv:2011.09107)",
)

ENVIRONMENTS: dict[str, EnvironmentProfile] = {
    env.name: env
    for env in (SYNTHETIC_ENV, OPENSTACK_ENV, KUBERNETES_ENV, MULTIQUEUE_ENV)
}


@dataclass
class VirtualMachine:
    """A tenant workload placed on some server."""

    name: str
    ip: int
    tenant: str
    server: "Server | None" = None


@dataclass
class Tenant:
    """A cloud tenant: owns VMs and installs ACLs through the CMS."""

    name: str
    vms: list[VirtualMachine] = dc_field(default_factory=list)


class Server:
    """One physical server: a hypervisor switch shared by its VMs."""

    def __init__(
        self,
        name: str,
        environment: EnvironmentProfile,
        with_guard: bool = False,
        guard_config: MFCGuardConfig | None = None,
    ):
        self.name = name
        self.environment = environment
        self.flow_table = FlowTable(name=f"{name}-acl")
        datapath_config = environment.datapath_config()
        if environment.n_pmd > 1:
            self.datapath: Datapath | ShardedDatapath = ShardedDatapath(
                self.flow_table, datapath_config, n_shards=environment.n_pmd
            )
        else:
            self.datapath = Datapath(self.flow_table, datapath_config)
        guard = MFCGuard(self.datapath, guard_config) if with_guard else None
        migrator = (
            MigrationController(
                self.datapath, environment.migration_policy, guard=guard
            )
            if environment.migration_policy is not None
            else None
        )
        rebalancer = (
            RebalanceController(self.datapath, environment.rebalance_policy)
            if environment.rebalance_policy is not None and environment.n_pmd > 1
            else None
        )
        self.host = HypervisorHost(
            datapath=self.datapath,
            cost_model=environment.cost_model,
            quirks=environment.quirks,
            guard=guard,
            migrator=migrator,
            rebalancer=rebalancer,
        )
        self.vms: list[VirtualMachine] = []
        self._priority = itertools.count(1000, -1)

    def close(self) -> None:
        """Release the datapath's execution resources (worker pools)."""
        self.datapath.close()

    def place(self, vm: VirtualMachine) -> None:
        vm.server = self
        self.vms.append(vm)

    def install_policy(self, vm: VirtualMachine, rules: list[PolicyRule], label: str = "") -> list[FlowRule]:
        """Compile and install a tenant policy for one of this server's VMs."""
        if vm.server is not self:
            raise SimulationError(f"{vm.name} is not scheduled on {self.name}")
        compiled = []
        for index, rule in enumerate(rules, start=1):
            name = f"{label or vm.name}-r{index}"
            compiled.append(
                self.environment.cms.compile_rule(
                    rule, vm_ip=vm.ip, priority=next(self._priority), name=name
                )
            )
        self.flow_table.extend(compiled)
        return compiled

    def ensure_default_deny(self) -> None:
        """Append the DefaultDeny if not already present."""
        for rule in self.flow_table:
            if rule.match.is_catchall and rule.action.is_drop:
                return
        self.flow_table.add_default_deny()


class Datacenter:
    """The Fig. 7 topology: servers, tenants, a scheduler.

    The default layout is the paper's: two servers; the victim's frontend
    (V1) and the attacker's VM (A1) co-located on Server 1, the victim's
    backend (V2) and the attack generator on Server 2.
    """

    SUBNET = ipv4("10.10.0.0")

    def __init__(self, environment: EnvironmentProfile, n_servers: int = 2,
                 with_guard: bool = False, guard_config: MFCGuardConfig | None = None):
        if n_servers < 1:
            raise SimulationError("need at least one server")
        self.environment = environment
        self.servers = [
            Server(f"server{i + 1}", environment, with_guard=with_guard,
                   guard_config=guard_config)
            for i in range(n_servers)
        ]
        self.tenants: dict[str, Tenant] = {}
        self._next_host = itertools.count(10)

    def tenant(self, name: str) -> Tenant:
        if name not in self.tenants:
            self.tenants[name] = Tenant(name=name)
        return self.tenants[name]

    def launch_vm(self, tenant_name: str, vm_name: str, server_index: int) -> VirtualMachine:
        """Schedule a new VM for ``tenant_name`` onto a specific server.

        (Real schedulers pick the server; the attacker gets co-located by
        launching many instances — we place explicitly for determinism.)
        """
        if not 0 <= server_index < len(self.servers):
            raise SimulationError(f"no server index {server_index}")
        tenant = self.tenant(tenant_name)
        vm = VirtualMachine(
            name=vm_name, ip=self.SUBNET + next(self._next_host), tenant=tenant_name
        )
        tenant.vms.append(vm)
        self.servers[server_index].place(vm)
        return vm

    def server_of(self, vm: VirtualMachine) -> Server:
        if vm.server is None:
            raise SimulationError(f"{vm.name} is not scheduled")
        return vm.server
