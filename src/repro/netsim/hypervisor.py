"""The hypervisor switch host: datapath + CPU accounting + victim rates.

This is the component that turns classification *work* into the throughput
time series of Fig. 8.  Each tick it:

1. receives the attack packets the sources injected (real classifications
   through the simulated datapath — megaflows and masks are genuine);
2. runs the revalidator (10 s idle eviction) and, optionally, MFCGuard;
3. converts the tick's work into CPU units **per PMD core**: attack
   fast-path cost, upcall cost and revalidation cost are charged to the
   shard whose queue carried them;
4. divides each core's remaining budget among the victim flows RSS pinned
   to that core, each paying its per-unit classification cost at *its
   core's* expected scan cost (the calibrated curve, or the cheap
   mask-memo path for protected established flows).

All work is priced in **normalised probe units** — the megaflow backend's
own currency (``expected_scan_cost()`` / per-packet ``probe_costs``), not
the mask count.  For TSS the two coincide exactly (probes ≡ masks), which
preserves every paper preset byte-for-byte; for sublinear backends
(tuplechain) the probe pricing is what makes the defense visible in the
Gbps/FCT time series instead of being charged as if every installed mask
were scanned.

On a single-PMD datapath (every paper testbed) there is one core and the
accounting reduces exactly to the original model; on a sharded datapath a
queue-concentrated attack burns only the targeted core's budget and
inflates only that core's mask scan — co-located victims on other cores
keep their throughput (arXiv:2011.09107's multi-queue observation).

The victim traffic itself is *not* simulated packet-by-packet (hundreds of
thousands of pps); a few keepalive packets per tick keep the victims' cache
entries genuine while their rate is computed analytically — the hybrid the
DESIGN.md substitution table documents.

The settlement arithmetic itself lives in :mod:`repro.netsim.settlement`:
the numpy ``settle_rates`` kernel is the pricing reference shared with the
fleet layer (:mod:`repro.netsim.fleet`), pricing every victim of a host —
or every tenant of a rack — in one array pass, with the original scalar
loop retained there as the differential-test reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.classifier.tss import MegaflowEntry
from repro.core.migration import MigrationController
from repro.core.mitigation import MFCGuard
from repro.core.rebalance import RebalanceController
from repro.exceptions import SimulationError
from repro.netsim import settlement
from repro.packet.fields import FlowKey
from repro.switch.costmodel import CostModel
from repro.switch.datapath import PacketVerdict, PathTaken
from repro.switch.revalidator import Revalidator
from repro.switch.sharded import AnyDatapath

__all__ = ["QuirkConfig", "VictimState", "HypervisorHost"]


@dataclass(frozen=True)
class QuirkConfig:
    """Environment-specific behavioural quirks.

    Attributes:
        established_flow_protection: model the kernel mask-memo effect that
            shields long-lived flows from the mask scan (the OpenStack
            §5.5 observation).  A flow is *protected* once it has been
            continuously active for ``establish_seconds`` while the mask
            count was at or below ``establish_mask_ceiling``.
        establish_seconds: how long a flow must run under a calm cache to
            earn its memo.
        establish_mask_ceiling: "calm" means at most this many masks.
        collision_rate: fraction of a protected flow's packets that still
            miss the memo (slot collisions with attack flows) and pay the
            full scan — produces the ~10%% dip on re-attack.
    """

    established_flow_protection: bool = False
    establish_seconds: float = 5.0
    establish_mask_ceiling: int = 32
    collision_rate: float = 0.005


@dataclass
class VictimState:
    """Bookkeeping for one victim flow attached to this host.

    ``home_shards`` is where RSS pins the flow's keys — stable for the
    flow's lifetime, so it is computed once at registration.  The victim
    only contends with work on those cores.
    """

    name: str
    keys: tuple[FlowKey, ...]
    home_shards: tuple[int, ...] = (0,)
    active: bool = False
    active_since: float | None = None
    calm_since: float | None = None
    protected: bool = False
    assigned_gbps: float = 0.0


class HypervisorHost:
    """One hypervisor's switch, shared by every co-located workload.

    Args:
        datapath: the simulated OVS datapath.
        cost_model: calibrated cost/throughput model for this environment.
        quirks: environment-specific behaviours.
        guard: optional MFCGuard instance (mitigation experiments).
        migrator: optional
            :class:`~repro.core.migration.MigrationController` — ticked in
            the maintenance cadence right after the guard, so live backend
            migration rides the same per-tick serialisation point as every
            other management sweep.
        rebalancer: optional
            :class:`~repro.core.rebalance.RebalanceController` — ticked
            after the migrator.  When a tick re-maps RSS, every victim's
            ``home_shards`` is recomputed against the new dispatcher (the
            victim's flows genuinely moved cores, and settlement must
            charge the cores now carrying them).
        revalidator_period: seconds between idle-eviction sweeps.
        settlement_mode: ``"vector"`` (default — the numpy one-pass
            kernel) or ``"scalar"`` (the original per-victim loop, the
            differential-test reference).  The two are float-identical by
            invariant (``tests/test_settlement.py``), so this knob only
            decides wall-clock cost, never results.
    """

    def __init__(
        self,
        datapath: AnyDatapath,
        cost_model: CostModel,
        quirks: QuirkConfig | None = None,
        guard: MFCGuard | None = None,
        migrator: "MigrationController | None" = None,
        rebalancer: "RebalanceController | None" = None,
        revalidator_period: float = 1.0,
        settlement_mode: str = "vector",
    ):
        self.datapath = datapath
        self.cost_model = cost_model
        self.quirks = quirks or QuirkConfig()
        self.guard = guard
        self.migrator = migrator
        self.rebalancer = rebalancer
        self.settlement_mode = settlement.check_settlement_mode(settlement_mode)
        self.revalidator = Revalidator(datapath, period=revalidator_period)
        self.victims: dict[str, VictimState] = {}
        self.n_cores = datapath.n_shards
        # Per-tick, per-core work accumulators (reset each tick).
        self._attack_units = [0.0] * self.n_cores
        self._upcalls = 0
        self._slow_path_packets = 0
        self._revalidated_entries = 0
        # Last-settled outputs, for observers.
        self.upcall_pps = 0.0
        self.cpu_load_fraction = 0.0
        self.per_core_load = [0.0] * self.n_cores

    # -- wiring ---------------------------------------------------------------
    def register_victim(self, name: str, keys: tuple[FlowKey, ...]) -> VictimState:
        """Attach a victim flow (its keepalive keys) to this host."""
        if name in self.victims:
            raise SimulationError(f"victim {name!r} already registered")
        home = tuple(sorted({self.datapath.shard_of(key) for key in keys})) or (0,)
        state = VictimState(name=name, keys=keys, home_shards=home)
        self.victims[name] = state
        return state

    # -- ingress from traffic sources ---------------------------------------------
    def inject_attack(self, key: FlowKey, now: float) -> PacketVerdict:
        """Classify one attack packet; account its cost to its RSS core.

        The charge is the shard's expected scan cost *before* the packet,
        in the backend's normalised probe units — for TSS exactly the old
        ``max(n_masks, 1)`` mask-count charge.  A single-packet batch:
        delegates to :meth:`inject_attack_batch`, whose per-shard charge
        path is the one copy of the accounting (batch ≡ sequential per
        the datapath invariant, and ``attack_units_batch`` over one cost
        is float-identical to the single-packet formula).
        """
        return self.inject_attack_batch([key], now)[0]

    def inject_attack_batch(self, keys: Sequence[FlowKey], now: float) -> list[PacketVerdict]:
        """Classify one batch of attack packets; account the batch's cost.

        Equivalent to ``[self.inject_attack(k, now) for k in keys]`` —
        same verdicts, same units charged (each packet pays the expected
        scan cost *its core* reported before it ran, via
        ``probe_costs``/``shard_ids``) — but the datapath work runs
        through the batched pipeline and the cost curve is evaluated per
        distinct probe cost, not per packet.
        """
        batch = self.datapath.process_batch(keys, now=now)
        shard_ids = getattr(batch, "shard_ids", None)
        if shard_ids is None or not shard_ids:
            shard_ids = (0,) * len(batch)
        scan_costs: dict[int, list[float]] = {}
        upcalls_by_shard: dict[int, int] = {}
        total_upcalls = 0
        for verdict, scan_cost, shard_id in zip(batch.verdicts, batch.probe_costs, shard_ids):
            if verdict.path is PathTaken.MASK_CACHE:
                self._attack_units[shard_id] += 1.0  # single-table probe
                continue
            scan_costs.setdefault(shard_id, []).append(scan_cost)
            if verdict.is_upcall:
                upcalls_by_shard[shard_id] = upcalls_by_shard.get(shard_id, 0) + 1
                total_upcalls += 1
        for shard_id, costs in scan_costs.items():
            self._attack_units[shard_id] += self.cost_model.attack_units_batch(
                costs, upcalls_by_shard.get(shard_id, 0)
            )
        self._upcalls += total_upcalls
        self._slow_path_packets += total_upcalls
        return list(batch.verdicts)

    def keepalive(self, name: str, now: float) -> list[PacketVerdict]:
        """Send a victim's keepalive packets (keeps cache entries genuine)."""
        state = self._state(name)
        return list(self.datapath.process_batch(state.keys, now=now).verdicts)

    def victim_started(self, name: str, now: float) -> None:
        state = self._state(name)
        state.active = True
        state.active_since = now
        state.calm_since = None
        state.protected = False

    def victim_stopped(self, name: str) -> None:
        state = self._state(name)
        state.active = False
        state.active_since = None
        state.calm_since = None
        state.protected = False
        state.assigned_gbps = 0.0

    def _state(self, name: str) -> VictimState:
        try:
            return self.victims[name]
        except KeyError:
            raise SimulationError(f"unknown victim {name!r}") from None

    # -- the per-tick settlement -----------------------------------------------------
    def _victim_unit_cost(self, state: VictimState, scan_cost: float) -> float:
        """Per-unit cost of one victim at full-scan cost ``scan_cost``
        (normalised probe units, protection mix applied)."""
        scan_units = self.cost_model.victim_cost_units_probes(scan_cost)
        if state.protected:
            cheap = 1.0
            chi = self.quirks.collision_rate
            return (1.0 - chi) * cheap + chi * scan_units
        return scan_units

    def tick(self, now: float, dt: float) -> None:
        """Run maintenance, settle per-core CPU accounting, assign victim capacity."""
        reports, available = self._pre_settle(now, dt)
        self._settle_victims(now, reports, available)
        self._post_settle(dt)

    def _pre_settle(self, now: float, dt: float):
        """Maintenance + per-core budget accounting; returns (reports, available)."""
        evicted = self.revalidator.tick(now)
        self._revalidated_entries += len(evicted)
        if self.guard is not None:
            self.guard.tick(now)
            # Traffic demoted to the slow path by the guard is observable
            # as this tick's suppressed-installs; feed the measured rate.
            self.guard.note_attack_rate(self._slow_path_packets / dt)
        if self.migrator is not None:
            self.migrator.tick(now)
        if self.rebalancer is not None:
            report = self.rebalancer.tick(now)
            if report.remapped:
                # The flows moved cores: re-pin every victim to where the
                # new dispatcher actually sends its keys.
                for state in self.victims.values():
                    state.home_shards = (
                        tuple(sorted({self.datapath.shard_of(key) for key in state.keys}))
                        or (0,)
                    )

        # One consolidated per-core snapshot (a single executor round trip
        # when the shards live in worker processes) prices the whole tick:
        # nothing below mutates the datapath, so reading n_masks /
        # n_megaflows / scan_cost together is exactly equivalent to the
        # attribute-by-attribute reads it replaces.
        reports = self.datapath.core_report()
        budget = self.cost_model.budget_units_per_sec  # per PMD core

        # Work burned by non-victim activity, per core (units/second).
        # Revalidation of a shard's flow dump stalls that shard's PMD.
        consumed = [
            self._attack_units[i] / dt
            + self.cost_model.revalidation_units_per_sec(
                report.n_megaflows, self.revalidator.period
            )
            for i, report in enumerate(reports)
        ]
        total_budget = budget * len(reports)
        self.cpu_load_fraction = (
            min(1.0, sum(consumed) / total_budget) if total_budget else 1.0
        )
        self.per_core_load = [
            min(1.0, c / budget) if budget else 1.0 for c in consumed
        ]
        available = [max(0.0, budget - c) for c in consumed]
        return reports, available

    def _settle_victims(self, now, reports, available) -> None:
        """Protection update + equal-split settlement for this host's victims.

        Victim protection state tracks the victim's own cores' mask load
        (the mask-memo quirk is a *mask-count* behaviour: the kernel memo
        is per mask, so calm/attacked is judged on masks, not probes).
        Then each core's remaining budget is split equally across the
        active victims RSS pinned there; a victim spanning several cores
        (e.g. forward + reverse keys hashed apart) sums its per-core
        shares, each priced at the *owning core's* expected scan cost in
        the backend's normalised probe units (≡ mask count for TSS).
        """
        active = [state for state in self.victims.values() if state.active]
        if not active:
            return
        masks = np.empty(len(active), dtype=np.int64)
        calm_since = np.empty(len(active), dtype=np.float64)
        protected = np.empty(len(active), dtype=bool)
        for idx, state in enumerate(active):
            masks[idx] = max(max(reports[s].n_masks for s in state.home_shards), 1)
            calm_since[idx] = np.nan if state.calm_since is None else state.calm_since
            protected[idx] = state.protected
        pair_victim: list[int] = []
        pair_core: list[int] = []
        for idx, state in enumerate(active):
            for s in state.home_shards:
                pair_victim.append(idx)
                pair_core.append(s)
        link_cap = self.cost_model.link_gbps / len(active)

        if self.settlement_mode == "vector":
            settlement.update_protection(now, masks, calm_since, protected, self.quirks)
            core = settlement.core_costs(reports, available, self.cost_model, self.quirks)
            assigned = settlement.settle_rates(
                core,
                np.asarray(pair_victim, dtype=np.intp),
                np.asarray(pair_core, dtype=np.intp),
                protected,
                len(active),
                link_cap,
                self.cost_model.unit_bits,
            )
        else:
            calm_list = calm_since.tolist()
            prot_list = protected.tolist()
            settlement.update_protection_scalar(
                now, masks.tolist(), calm_list, prot_list, self.quirks
            )
            calm_since = np.asarray(calm_list, dtype=np.float64)
            protected = np.asarray(prot_list, dtype=bool)
            assigned = settlement.settle_rates_scalar(
                [report.scan_cost for report in reports],
                available,
                pair_victim,
                pair_core,
                prot_list,
                len(active),
                link_cap,
                self.cost_model,
                self.quirks,
            )

        for idx, state in enumerate(active):
            state.protected = bool(protected[idx])
            state.calm_since = None if np.isnan(calm_since[idx]) else float(calm_since[idx])
            state.assigned_gbps = float(assigned[idx])

    def _post_settle(self, dt: float) -> None:
        """Publish per-tick observables and reset the work accumulators."""
        self.upcall_pps = self._upcalls / dt
        self._attack_units = [0.0] * self.n_cores
        self._upcalls = 0
        self._slow_path_packets = 0

    # -- queries ---------------------------------------------------------------------
    def victim_rate(self, name: str) -> float:
        """The capacity (Gbps) assigned to a victim at the last settlement."""
        return self._state(name).assigned_gbps

    def evict_entry(self, entry: MegaflowEntry) -> None:
        """Convenience passthrough for tests."""
        self.datapath.kill_entry(entry, permanent=False)
