"""The hypervisor switch host: datapath + CPU accounting + victim rates.

This is the component that turns classification *work* into the throughput
time series of Fig. 8.  Each tick it:

1. receives the attack packets the sources injected (real classifications
   through the simulated datapath — megaflows and masks are genuine);
2. runs the revalidator (10 s idle eviction) and, optionally, MFCGuard;
3. converts the tick's work into CPU units **per PMD core**: attack
   fast-path cost, upcall cost and revalidation cost are charged to the
   shard whose queue carried them;
4. divides each core's remaining budget among the victim flows RSS pinned
   to that core, each paying its per-unit classification cost at *its
   core's* expected scan cost (the calibrated curve, or the cheap
   mask-memo path for protected established flows).

All work is priced in **normalised probe units** — the megaflow backend's
own currency (``expected_scan_cost()`` / per-packet ``probe_costs``), not
the mask count.  For TSS the two coincide exactly (probes ≡ masks), which
preserves every paper preset byte-for-byte; for sublinear backends
(tuplechain) the probe pricing is what makes the defense visible in the
Gbps/FCT time series instead of being charged as if every installed mask
were scanned.

On a single-PMD datapath (every paper testbed) there is one core and the
accounting reduces exactly to the original model; on a sharded datapath a
queue-concentrated attack burns only the targeted core's budget and
inflates only that core's mask scan — co-located victims on other cores
keep their throughput (arXiv:2011.09107's multi-queue observation).

The victim traffic itself is *not* simulated packet-by-packet (hundreds of
thousands of pps); a few keepalive packets per tick keep the victims' cache
entries genuine while their rate is computed analytically — the hybrid the
DESIGN.md substitution table documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.classifier.tss import MegaflowEntry
from repro.core.mitigation import MFCGuard
from repro.exceptions import SimulationError
from repro.packet.fields import FlowKey
from repro.switch.costmodel import CostModel
from repro.switch.datapath import PacketVerdict, PathTaken
from repro.switch.revalidator import Revalidator
from repro.switch.sharded import AnyDatapath

__all__ = ["QuirkConfig", "VictimState", "HypervisorHost"]


@dataclass(frozen=True)
class QuirkConfig:
    """Environment-specific behavioural quirks.

    Attributes:
        established_flow_protection: model the kernel mask-memo effect that
            shields long-lived flows from the mask scan (the OpenStack
            §5.5 observation).  A flow is *protected* once it has been
            continuously active for ``establish_seconds`` while the mask
            count was at or below ``establish_mask_ceiling``.
        establish_seconds: how long a flow must run under a calm cache to
            earn its memo.
        establish_mask_ceiling: "calm" means at most this many masks.
        collision_rate: fraction of a protected flow's packets that still
            miss the memo (slot collisions with attack flows) and pay the
            full scan — produces the ~10%% dip on re-attack.
    """

    established_flow_protection: bool = False
    establish_seconds: float = 5.0
    establish_mask_ceiling: int = 32
    collision_rate: float = 0.005


@dataclass
class VictimState:
    """Bookkeeping for one victim flow attached to this host.

    ``home_shards`` is where RSS pins the flow's keys — stable for the
    flow's lifetime, so it is computed once at registration.  The victim
    only contends with work on those cores.
    """

    name: str
    keys: tuple[FlowKey, ...]
    home_shards: tuple[int, ...] = (0,)
    active: bool = False
    active_since: float | None = None
    calm_since: float | None = None
    protected: bool = False
    assigned_gbps: float = 0.0


class HypervisorHost:
    """One hypervisor's switch, shared by every co-located workload.

    Args:
        datapath: the simulated OVS datapath.
        cost_model: calibrated cost/throughput model for this environment.
        quirks: environment-specific behaviours.
        guard: optional MFCGuard instance (mitigation experiments).
        revalidator_period: seconds between idle-eviction sweeps.
    """

    def __init__(
        self,
        datapath: AnyDatapath,
        cost_model: CostModel,
        quirks: QuirkConfig | None = None,
        guard: MFCGuard | None = None,
        revalidator_period: float = 1.0,
    ):
        self.datapath = datapath
        self.cost_model = cost_model
        self.quirks = quirks or QuirkConfig()
        self.guard = guard
        self.revalidator = Revalidator(datapath, period=revalidator_period)
        self.victims: dict[str, VictimState] = {}
        self.n_cores = datapath.n_shards
        # Per-tick, per-core work accumulators (reset each tick).
        self._attack_units = [0.0] * self.n_cores
        self._upcalls = 0
        self._slow_path_packets = 0
        self._revalidated_entries = 0
        # Last-settled outputs, for observers.
        self.upcall_pps = 0.0
        self.cpu_load_fraction = 0.0
        self.per_core_load = [0.0] * self.n_cores

    # -- wiring ---------------------------------------------------------------
    def register_victim(self, name: str, keys: tuple[FlowKey, ...]) -> VictimState:
        """Attach a victim flow (its keepalive keys) to this host."""
        if name in self.victims:
            raise SimulationError(f"victim {name!r} already registered")
        home = tuple(sorted({self.datapath.shard_of(key) for key in keys})) or (0,)
        state = VictimState(name=name, keys=keys, home_shards=home)
        self.victims[name] = state
        return state

    # -- ingress from traffic sources ---------------------------------------------
    def inject_attack(self, key: FlowKey, now: float) -> PacketVerdict:
        """Classify one attack packet; account its cost to its RSS core.

        The charge is the shard's expected scan cost *before* the packet,
        in the backend's normalised probe units — for TSS exactly the old
        ``max(n_masks, 1)`` mask-count charge.
        """
        shard_id = self.datapath.shard_of(key)
        shard = self.datapath.shards[shard_id]
        scan_cost_before = shard.megaflows.expected_scan_cost()
        verdict = shard.process(key, now=now)
        upcall = verdict.is_upcall
        if verdict.path is PathTaken.MASK_CACHE:
            cost = 1.0  # single-table probe
        else:
            cost = self.cost_model.attack_cost_units_probes(scan_cost_before, upcall=upcall)
        self._attack_units[shard_id] += cost
        if upcall:
            self._upcalls += 1
            self._slow_path_packets += 1
        return verdict

    def inject_attack_batch(self, keys: Sequence[FlowKey], now: float) -> list[PacketVerdict]:
        """Classify one batch of attack packets; account the batch's cost.

        Equivalent to ``[self.inject_attack(k, now) for k in keys]`` —
        same verdicts, same units charged (each packet pays the expected
        scan cost *its core* reported before it ran, via
        ``probe_costs``/``shard_ids``) — but the datapath work runs
        through the batched pipeline and the cost curve is evaluated per
        distinct probe cost, not per packet.
        """
        batch = self.datapath.process_batch(keys, now=now)
        shard_ids = getattr(batch, "shard_ids", None)
        if shard_ids is None or not shard_ids:
            shard_ids = (0,) * len(batch)
        scan_costs: dict[int, list[float]] = {}
        upcalls_by_shard: dict[int, int] = {}
        total_upcalls = 0
        for verdict, scan_cost, shard_id in zip(batch.verdicts, batch.probe_costs, shard_ids):
            if verdict.path is PathTaken.MASK_CACHE:
                self._attack_units[shard_id] += 1.0  # single-table probe
                continue
            scan_costs.setdefault(shard_id, []).append(scan_cost)
            if verdict.is_upcall:
                upcalls_by_shard[shard_id] = upcalls_by_shard.get(shard_id, 0) + 1
                total_upcalls += 1
        for shard_id, costs in scan_costs.items():
            self._attack_units[shard_id] += self.cost_model.attack_units_batch(
                costs, upcalls_by_shard.get(shard_id, 0)
            )
        self._upcalls += total_upcalls
        self._slow_path_packets += total_upcalls
        return list(batch.verdicts)

    def keepalive(self, name: str, now: float) -> list[PacketVerdict]:
        """Send a victim's keepalive packets (keeps cache entries genuine)."""
        state = self._state(name)
        return list(self.datapath.process_batch(state.keys, now=now).verdicts)

    def victim_started(self, name: str, now: float) -> None:
        state = self._state(name)
        state.active = True
        state.active_since = now
        state.calm_since = None
        state.protected = False

    def victim_stopped(self, name: str) -> None:
        state = self._state(name)
        state.active = False
        state.active_since = None
        state.calm_since = None
        state.protected = False
        state.assigned_gbps = 0.0

    def _state(self, name: str) -> VictimState:
        try:
            return self.victims[name]
        except KeyError:
            raise SimulationError(f"unknown victim {name!r}") from None

    # -- the per-tick settlement -----------------------------------------------------
    def _victim_unit_cost(self, state: VictimState, scan_cost: float) -> float:
        """Per-unit cost of one victim at full-scan cost ``scan_cost``
        (normalised probe units, protection mix applied)."""
        scan_units = self.cost_model.victim_cost_units_probes(scan_cost)
        if state.protected:
            cheap = 1.0
            chi = self.quirks.collision_rate
            return (1.0 - chi) * cheap + chi * scan_units
        return scan_units

    def tick(self, now: float, dt: float) -> None:
        """Run maintenance, settle per-core CPU accounting, assign victim capacity."""
        evicted = self.revalidator.tick(now)
        self._revalidated_entries += len(evicted)
        if self.guard is not None:
            self.guard.tick(now)
            # Traffic demoted to the slow path by the guard is observable
            # as this tick's suppressed-installs; feed the measured rate.
            self.guard.note_attack_rate(self._slow_path_packets / dt)

        # One consolidated per-core snapshot (a single executor round trip
        # when the shards live in worker processes) prices the whole tick:
        # nothing below mutates the datapath, so reading n_masks /
        # n_megaflows / scan_cost together is exactly equivalent to the
        # attribute-by-attribute reads it replaces.
        reports = self.datapath.core_report()
        budget = self.cost_model.budget_units_per_sec  # per PMD core

        # Work burned by non-victim activity, per core (units/second).
        # Revalidation of a shard's flow dump stalls that shard's PMD.
        consumed = [
            self._attack_units[i] / dt
            + self.cost_model.revalidation_units_per_sec(
                report.n_megaflows, self.revalidator.period
            )
            for i, report in enumerate(reports)
        ]
        total_budget = budget * len(reports)
        self.cpu_load_fraction = (
            min(1.0, sum(consumed) / total_budget) if total_budget else 1.0
        )
        self.per_core_load = [
            min(1.0, c / budget) if budget else 1.0 for c in consumed
        ]
        available = [max(0.0, budget - c) for c in consumed]

        # Victim protection state tracks the victim's own cores' mask load
        # (the mask-memo quirk is a *mask-count* behaviour: the kernel memo
        # is per mask, so calm/attacked is judged on masks, not probes).
        active = [state for state in self.victims.values() if state.active]
        for state in active:
            masks = max(max(reports[s].n_masks for s in state.home_shards), 1)
            self._update_protection(state, now, masks)

        # Equal split of each core's remaining budget across the active
        # victims RSS pinned there; a victim spanning several cores (e.g.
        # forward + reverse keys hashed apart) sums its per-core shares.
        # Each share is priced at the *owning core's* expected scan cost in
        # the backend's normalised probe units (≡ mask count for TSS).
        if active:
            victims_on_core = [0] * len(reports)
            for state in active:
                for s in state.home_shards:
                    victims_on_core[s] += 1
            for state in active:
                units_per_sec = 0.0
                for s in state.home_shards:
                    share = available[s] / victims_on_core[s]
                    cost = self._victim_unit_cost(state, reports[s].scan_cost)
                    units_per_sec += share / cost
                gbps = units_per_sec * self.cost_model.unit_bits / 1e9
                state.assigned_gbps = min(self.cost_model.link_gbps / len(active), gbps)

        self.upcall_pps = self._upcalls / dt
        self._attack_units = [0.0] * self.n_cores
        self._upcalls = 0
        self._slow_path_packets = 0

    def _update_protection(self, state: VictimState, now: float, masks: int) -> None:
        if not self.quirks.established_flow_protection:
            state.protected = False
            return
        if masks <= self.quirks.establish_mask_ceiling:
            if state.calm_since is None:
                state.calm_since = now
            if now - state.calm_since >= self.quirks.establish_seconds:
                state.protected = True  # memo earned; retained until flow stops
        else:
            state.calm_since = None

    # -- queries ---------------------------------------------------------------------
    def victim_rate(self, name: str) -> float:
        """The capacity (Gbps) assigned to a victim at the last settlement."""
        return self._state(name).assigned_gbps

    def evict_entry(self, entry: MegaflowEntry) -> None:
        """Convenience passthrough for tests."""
        self.datapath.kill_entry(entry, permanent=False)
