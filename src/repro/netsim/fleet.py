"""Fleet-scale cloud topology: racks of hypervisors, columnar tenants.

This is the layer that turns the single-host co-location model of
:mod:`repro.netsim.cloud` into a *cloud* result (ROADMAP item 1): a
multi-rack fleet of :class:`FleetHost` hypervisors, each carrying a whole
tenant population as **columns in per-host numpy arrays**
(:class:`TenantBlock`) rather than per-flow dataclass instances — a
million tenants is a few hundred megabytes of arrays, O(hosts) resident
objects, not a million ``VictimState``/``VictimFlow`` pairs.

Tenant populations are never materialised as lists: they **stream from
seeded generators** (:class:`TenantStream`, one
``np.random.SeedSequence([seed, rack, host])`` per host), so the same seed
reproduces the identical fleet — hosts, tenants, 5-tuples, home shards —
across constructions and Python versions (no dict/set iteration order
anywhere in the path; ``tests/test_fleet.py`` locks this).

Tenants are *analytic*: their traffic is not simulated packet-by-packet
and they hold no cache entries — each tenant's capacity is priced at its
home core's expected scan cost through the shared settlement kernel
(:mod:`repro.netsim.settlement`), one step beyond the keepalive hybrid the
single-host model uses (DESIGN substitution: what matters for the Fig. 8
story is the *pricing* of victim traffic under an exploded tuple space,
which the probe-unit cost plane provides without per-packet work).  The
attack side stays genuine: detonations inject real crafted packets through
each attacked host's datapath, so mask counts and probe costs are
measured, not assumed.

A :class:`Rack` is the simulation component: one ``tick`` runs every
member host's maintenance, then settles **all tenants of all its hosts in
a single array pass** — per-host core arrays are concatenated with core
offsets (cores are never shared between hosts, so the concatenated pass
is exactly the per-host passes run back to back; differential-tested).
Racks declare a ``period``, so an event-mode :class:`~repro.netsim.engine.
Simulation` settles a mostly-idle fleet at 1 s cadence while attack
sources on the few detonating hosts tick at 100 ms.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field
from typing import Iterator, Sequence

import numpy as np

from repro.classifier.flowtable import FlowTable
from repro.core.tracegen import AdversarialTrace, ColocatedTraceGenerator
from repro.exceptions import SimulationError
from repro.netsim import settlement
from repro.netsim.cloud import EnvironmentProfile
from repro.netsim.cms import PolicyRule
from repro.netsim.hypervisor import HypervisorHost
from repro.netsim.metrics import quantile
from repro.packet.addresses import ipv4
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath
from repro.switch.rss import RSS_FIELDS, five_tuple_hash_columns
from repro.switch.sharded import ShardedDatapath

__all__ = [
    "TenantBlock",
    "TenantStream",
    "FleetHost",
    "Rack",
    "Fleet",
]

SERVICE_PORT = 5001  # every tenant fronts an iperf-like service port


@dataclass
class TenantBlock:
    """One host's tenant population, as parallel columns.

    Position ``i`` across every array is one tenant.  The 5-tuple columns
    exist so placement (RSS home shard) and identity are *derived* the
    same way a packet's would be; :meth:`tenant_key` materialises a
    :class:`FlowKey` lazily for spot checks and tests only.
    """

    ip_src: np.ndarray
    ip_dst: np.ndarray
    ip_proto: np.ndarray
    tp_src: np.ndarray
    tp_dst: np.ndarray
    home_shard: np.ndarray
    offered_gbps: np.ndarray
    protected: np.ndarray = dc_field(default=None)  # type: ignore[assignment]
    calm_since: np.ndarray = dc_field(default=None)  # type: ignore[assignment]
    assigned_gbps: np.ndarray = dc_field(default=None)  # type: ignore[assignment]
    rate_gbps: np.ndarray = dc_field(default=None)  # type: ignore[assignment]
    floor_gbps: np.ndarray = dc_field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        n = len(self.ip_src)
        if self.protected is None:
            self.protected = np.zeros(n, dtype=bool)
        if self.calm_since is None:
            self.calm_since = np.full(n, np.nan, dtype=np.float64)
        if self.assigned_gbps is None:
            self.assigned_gbps = np.zeros(n, dtype=np.float64)
        if self.rate_gbps is None:
            self.rate_gbps = np.zeros(n, dtype=np.float64)
        if self.floor_gbps is None:
            self.floor_gbps = np.full(n, np.inf, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.ip_src)

    def tenant_key(self, index: int) -> FlowKey:
        """Materialise tenant ``index``'s 5-tuple as a :class:`FlowKey`."""
        return FlowKey(
            ip_src=int(self.ip_src[index]),
            ip_dst=int(self.ip_dst[index]),
            ip_proto=int(self.ip_proto[index]),
            tp_src=int(self.tp_src[index]),
            tp_dst=int(self.tp_dst[index]),
        )


class TenantStream:
    """Seeded generator of one host's tenant columns.

    The stream is addressed, not ordered: host ``(rack, host)`` of a fleet
    seeded ``seed`` always draws from
    ``np.random.SeedSequence([seed, rack, host])`` regardless of
    construction order, so fleets can be built lazily, in parallel, or
    twice — the columns are identical (SeedSequence hashing is specified,
    stable across platforms and Python versions).

    Args:
        seed: the fleet seed.
        rack_index / host_index: the host's address in the fleet.
        n_tenants: population size.
        subnet: base IPv4 address tenant service IPs are carved from.
        n_shards: PMD queue count of the host (RSS placement modulus).
        offered_range: per-tenant offered load is drawn uniformly from
            this (min, max) Gbps interval.
    """

    def __init__(
        self,
        seed: int,
        rack_index: int,
        host_index: int,
        n_tenants: int,
        subnet: int | None = None,
        n_shards: int = 1,
        offered_range: tuple[float, float] = (0.02, 0.2),
    ):
        if n_tenants < 1:
            raise SimulationError(f"n_tenants must be >= 1, got {n_tenants}")
        self.seed = seed
        self.rack_index = rack_index
        self.host_index = host_index
        self.n_tenants = n_tenants
        self.subnet = Fleet.SUBNET if subnet is None else subnet
        self.n_shards = n_shards
        self.offered_range = offered_range

    def build(self) -> TenantBlock:
        """Draw the host's tenant columns (same seed → same columns)."""
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, self.rack_index, self.host_index])
        )
        n = self.n_tenants
        # Remote endpoints are arbitrary internet hosts; service IPs are
        # one per tenant inside the host's /16-ish slice of the subnet.
        ip_src = rng.integers(0x0B000000, 0xDF000000, size=n, dtype=np.int64)
        host_base = (
            self.subnet
            + ((self.rack_index & 0xFF) << 24)
            + ((self.host_index & 0xFFF) << 12)
        ) & 0xFFFFFFFF
        ip_dst = (host_base + np.arange(n, dtype=np.int64)) & 0xFFFFFFFF
        columns = {
            "ip_src": ip_src,
            "ip_dst": ip_dst,
            "ip_proto": np.full(n, PROTO_TCP, dtype=np.int64),
            "tp_src": rng.integers(1024, 65536, size=n, dtype=np.int64),
            "tp_dst": np.full(n, SERVICE_PORT, dtype=np.int64),
        }
        if self.n_shards > 1:
            home = (
                five_tuple_hash_columns(columns) % np.uint64(self.n_shards)
            ).astype(np.intp)
        else:
            home = np.zeros(n, dtype=np.intp)
        lo, hi = self.offered_range
        return TenantBlock(
            home_shard=home,
            offered_gbps=rng.uniform(lo, hi, size=n),
            **columns,
        )


class FleetHost(HypervisorHost):
    """One fleet hypervisor: a datapath plus a columnar tenant population.

    A :class:`~repro.netsim.hypervisor.HypervisorHost` whose victims are a
    :class:`TenantBlock` instead of registered ``VictimState`` instances.
    Standalone it still works like any host (``tick`` settles its own
    tenants); inside a :class:`Rack` the rack drives the phases so all
    member hosts settle in one array pass.
    """

    def __init__(
        self,
        name: str,
        environment: EnvironmentProfile,
        tenants: TenantBlock,
        attacker_ip: int,
        period: float = 1.0,
        settlement_mode: str = "vector",
    ):
        self.name = name
        self.environment = environment
        self.flow_table = FlowTable(name=f"{name}-acl")
        config = environment.datapath_config()
        if environment.n_pmd > 1:
            datapath: Datapath | ShardedDatapath = ShardedDatapath(
                self.flow_table, config, n_shards=environment.n_pmd
            )
        else:
            datapath = Datapath(self.flow_table, config)
        super().__init__(
            datapath,
            environment.cost_model,
            quirks=environment.quirks,
            settlement_mode=settlement_mode,
        )
        self.tenants = tenants
        self.attacker_ip = attacker_ip
        self.period = period
        self._priority = itertools.count(1000, -1)

    def close(self) -> None:
        """Release the datapath's execution resources (worker pools)."""
        self.datapath.close()

    # -- attacker wiring -------------------------------------------------------
    def detonation_trace(
        self, rules: Sequence[PolicyRule], label: str = "tse"
    ) -> AdversarialTrace:
        """Install an attacker ACL on this host and craft its co-located trace.

        The fleet analogue of ``Fig7Testbed.attack_trace``: the rules are
        compiled through the environment's CMS scoped to this host's
        attacker VM IP, a default deny is appended, and the adversarial
        trace is enumerated from the *installed* table — so each attacked
        host detonates genuine masks through its own datapath.
        """
        compiled = [
            self.environment.cms.compile_rule(
                rule,
                vm_ip=self.attacker_ip,
                priority=next(self._priority),
                name=f"{self.name}-acl-a-r{index}",
            )
            for index, rule in enumerate(rules, start=1)
        ]
        self.flow_table.extend(compiled)
        for existing in self.flow_table:
            if existing.match.is_catchall and existing.action.is_drop:
                break
        else:
            self.flow_table.add_default_deny()
        generator = ColocatedTraceGenerator(
            self.flow_table,
            base={"ip_dst": self.attacker_ip, "ip_proto": PROTO_TCP},
        )
        return generator.generate(use_case=label)

    # -- settlement ------------------------------------------------------------
    def tick(self, now: float, dt: float) -> None:
        """Standalone operation: maintenance + one-host tenant settlement."""
        reports, available = self._pre_settle(now, dt)
        self._settle_victims(now, reports, available)
        self.settle_tenants(now, reports, available)
        self._post_settle(dt)

    def settle_tenants(self, now, reports, available) -> None:
        """Price this host's whole tenant population (one array pass)."""
        block = self.tenants
        n = len(block)
        masks = self._tenant_masks(reports)
        link_cap = self.cost_model.link_gbps / n
        if self.settlement_mode == "vector":
            settlement.update_protection(
                now, masks, block.calm_since, block.protected, self.quirks
            )
            core = settlement.core_costs(
                reports, available, self.cost_model, self.quirks
            )
            assigned = settlement.settle_rates(
                core,
                np.arange(n, dtype=np.intp),
                block.home_shard,
                block.protected,
                n,
                link_cap,
                self.cost_model.unit_bits,
            )
        else:
            calm = block.calm_since.tolist()
            prot = block.protected.tolist()
            settlement.update_protection_scalar(
                now, masks.tolist(), calm, prot, self.quirks
            )
            block.calm_since[:] = calm
            block.protected[:] = prot
            assigned = settlement.settle_rates_scalar(
                [report.scan_cost for report in reports],
                available,
                list(range(n)),
                block.home_shard.tolist(),
                prot,
                n,
                link_cap,
                self.cost_model,
                self.quirks,
            )
        block.assigned_gbps[:] = assigned
        np.minimum(block.offered_gbps, block.assigned_gbps, out=block.rate_gbps)

    def _tenant_masks(self, reports) -> np.ndarray:
        """Each tenant's home-core mask count (floored at 1)."""
        n_masks = np.asarray([report.n_masks for report in reports], dtype=np.int64)
        return np.maximum(n_masks[self.tenants.home_shard], 1)


class Rack:
    """A rack of fleet hosts, settled together as one simulation component.

    ``tick`` runs each member host's maintenance (``_pre_settle``), then
    prices **every tenant of every member host in a single
    :func:`repro.netsim.settlement.settle_rates` call**: the per-host core
    arrays are concatenated and each host's tenant pair columns are
    shifted by its core offset.  Cores are never shared between hosts, so
    the concatenated pass computes exactly what the per-host passes would
    — it just amortises the numpy dispatch over the whole rack.
    """

    def __init__(self, name: str, hosts: Sequence[FleetHost], period: float = 1.0):
        if not hosts:
            raise SimulationError(f"rack {name!r} has no hosts")
        self.name = name
        self.hosts = list(hosts)
        self.period = period
        self.recording = False

    def tick(self, now: float, dt: float) -> None:
        staged = []
        for host in self.hosts:
            reports, available = host._pre_settle(now, dt)
            host._settle_victims(now, reports, available)
            staged.append((host, reports, available))

        if any(host.settlement_mode != "vector" for host, _, _ in staged):
            # Scalar reference mode: per-host loops, no concatenation.
            for host, reports, available in staged:
                host.settle_tenants(now, reports, available)
        else:
            self._settle_rack(now, staged)

        for host, _, _ in staged:
            if self.recording:
                block = host.tenants
                np.minimum(block.floor_gbps, block.rate_gbps, out=block.floor_gbps)
            host._post_settle(dt)

    def _settle_rack(self, now: float, staged) -> None:
        """The rack-wide concatenated settlement pass."""
        all_reports: list = []
        all_available: list[float] = []
        pair_victim_parts = []
        pair_core_parts = []
        protected_parts = []
        link_parts = []
        core_offset = 0
        tenant_offset = 0
        for host, reports, available in staged:
            block = host.tenants
            n = len(block)
            masks = host._tenant_masks(reports)
            settlement.update_protection(
                now, masks, block.calm_since, block.protected, host.quirks
            )
            all_reports.extend(reports)
            all_available.extend(available)
            pair_victim_parts.append(
                np.arange(tenant_offset, tenant_offset + n, dtype=np.intp)
            )
            pair_core_parts.append(block.home_shard + core_offset)
            protected_parts.append(block.protected)
            link_parts.append(
                np.full(n, host.cost_model.link_gbps / n, dtype=np.float64)
            )
            core_offset += len(reports)
            tenant_offset += n

        host0 = staged[0][0]
        core = settlement.core_costs(
            all_reports, all_available, host0.cost_model, host0.quirks
        )
        assigned = settlement.settle_rates(
            core,
            np.concatenate(pair_victim_parts),
            np.concatenate(pair_core_parts),
            np.concatenate(protected_parts),
            tenant_offset,
            np.concatenate(link_parts),
            host0.cost_model.unit_bits,
        )
        start = 0
        for host, _, _ in staged:
            block = host.tenants
            n = len(block)
            block.assigned_gbps[:] = assigned[start : start + n]
            np.minimum(block.offered_gbps, block.assigned_gbps, out=block.rate_gbps)
            start += n


class Fleet:
    """A multi-rack fleet of hypervisors with streamed tenant populations.

    Args:
        environment: the Table 1 environment every host runs.
        n_racks / hosts_per_rack / tenants_per_host: fleet shape.
        seed: fleet seed (same seed → identical fleet, see
            :class:`TenantStream`).
        rack_period: settlement cadence (seconds) racks declare for the
            event-driven scheduler.
        settlement_mode: ``"vector"`` (rack-wide one-pass) or ``"scalar"``
            (the per-tenant reference loops).
        offered_range: per-tenant offered load interval (Gbps).
    """

    SUBNET = ipv4("10.64.0.0")

    def __init__(
        self,
        environment: EnvironmentProfile,
        n_racks: int = 2,
        hosts_per_rack: int = 8,
        tenants_per_host: int = 256,
        seed: int = 0,
        rack_period: float = 1.0,
        settlement_mode: str = "vector",
        offered_range: tuple[float, float] = (0.02, 0.2),
    ):
        if n_racks < 1 or hosts_per_rack < 1:
            raise SimulationError("fleet needs at least one rack and one host")
        self.environment = environment
        self.seed = seed
        self.racks: list[Rack] = []
        for r in range(n_racks):
            hosts = []
            for h in range(hosts_per_rack):
                block = TenantStream(
                    seed,
                    r,
                    h,
                    tenants_per_host,
                    n_shards=environment.n_pmd,
                    offered_range=offered_range,
                ).build()
                # One attacker VM slot per host, outside the tenant IP slice.
                attacker_ip = (self.SUBNET - 0x10000 + r * hosts_per_rack + h) & 0xFFFFFFFF
                hosts.append(
                    FleetHost(
                        f"r{r}h{h}",
                        environment,
                        block,
                        attacker_ip=attacker_ip,
                        period=rack_period,
                        settlement_mode=settlement_mode,
                    )
                )
            self.racks.append(Rack(f"rack{r}", hosts, period=rack_period))

    # -- wiring ----------------------------------------------------------------
    def register(self, simulation) -> None:
        """Add every rack to ``simulation`` (racks carry their period)."""
        for rack in self.racks:
            simulation.add(rack)

    def hosts(self) -> Iterator[FleetHost]:
        for rack in self.racks:
            yield from rack.hosts

    def host(self, rack_index: int, host_index: int) -> FleetHost:
        return self.racks[rack_index].hosts[host_index]

    def close(self) -> None:
        for host in self.hosts():
            host.close()

    # -- readouts --------------------------------------------------------------
    @property
    def tenant_count(self) -> int:
        return sum(len(host.tenants) for host in self.hosts())

    def rates(self) -> np.ndarray:
        """Every tenant's current achieved rate (Gbps), fleet-ordered."""
        return np.concatenate([host.tenants.rate_gbps for host in self.hosts()])

    def floors(self) -> np.ndarray:
        """Every tenant's recorded floor (Gbps), fleet-ordered."""
        return np.concatenate([host.tenants.floor_gbps for host in self.hosts()])

    def start_recording(self) -> None:
        """Reset floors and begin min-tracking achieved rates."""
        for rack in self.racks:
            rack.recording = True
            for host in rack.hosts:
                host.tenants.floor_gbps[:] = np.inf

    def stop_recording(self) -> None:
        for rack in self.racks:
            rack.recording = False

    def floor_quantiles(self, qs: Sequence[float] = (1.0, 50.0, 99.0)) -> dict[float, float]:
        """Percentiles of the per-tenant floor distribution."""
        floors = self.floors()
        if not np.isfinite(floors).all():
            raise SimulationError("floors not recorded (run with recording on)")
        values = floors.tolist()
        return {q: quantile(values, q) for q in qs}
