"""Kernel-style mask cache: per-flow memo of which mask matched last.

The Linux OVS kernel datapath keeps a small direct-mapped cache indexed by
the packet's flow hash whose slots remember the mask (subtable) that
matched that flow last time.  Established flows therefore probe exactly one
hash table instead of scanning the whole mask list, while *new* flows still
pay the full linear scan.

This is our mechanistic model for the behaviour the paper observed but
could not explain on OpenStack (§5.5): when the attacker resumes, flows
that were already active keep their mask memo and suffer only a minor dip,
while newly established flows see the full tuple-space-explosion damage.
The cache is disabled by default and switched on by the OpenStack
environment profile; an ablation benchmark flips it.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import SwitchError
from repro.packet.fields import FlowKey, FlowMask

__all__ = ["KernelMaskCache"]


class KernelMaskCache:
    """Direct-mapped flow-hash → mask memo.

    Args:
        size: number of slots (the kernel uses 256).
    """

    def __init__(self, size: int = 256):
        if size <= 0:
            raise SwitchError(f"mask cache size must be positive, got {size}")
        self.size = size
        self._slots: list[tuple[int, FlowMask] | None] = [None] * size
        self.stats_hits = 0
        self.stats_misses = 0

    def _slot_index(self, key: FlowKey) -> int:
        return hash(key) % self.size

    def probe(self, key: FlowKey) -> FlowMask | None:
        """The memoised mask for ``key``'s flow, or None.

        A hit only means "try this mask first" — the caller must still
        verify the megaflow entry matches, since distinct flows can collide
        on a slot.
        """
        slot = self._slots[self._slot_index(key)]
        if slot is not None and slot[0] == hash(key):
            self.stats_hits += 1
            return slot[1]
        self.stats_misses += 1
        return None

    def update(self, key: FlowKey, mask: FlowMask) -> None:
        """Memoise that ``key``'s flow matched under ``mask``."""
        self._slots[self._slot_index(key)] = (hash(key), mask)

    def invalidate_mask(self, mask: FlowMask) -> int:
        """Drop every slot pointing at ``mask``; returns the count."""
        return self.invalidate_masks((mask,))

    def invalidate_masks(self, masks: Iterable[FlowMask]) -> int:
        """Drop every slot pointing at any of ``masks`` in one pass."""
        victims = set(masks)
        if not victims:
            return 0
        dropped = 0
        for index, slot in enumerate(self._slots):
            if slot is not None and slot[1] in victims:
                self._slots[index] = None
                dropped += 1
        return dropped

    def flush(self) -> None:
        """Drop every slot."""
        self._slots = [None] * self.size

    @property
    def occupancy(self) -> int:
        """Number of populated slots."""
        return sum(1 for slot in self._slots if slot is not None)

    def __repr__(self) -> str:
        return f"KernelMaskCache({self.occupancy}/{self.size} slots)"
