"""The parallel PMD execution engine: pluggable shard-executor strategies.

PR 2 modeled N PMD cores as N independent :class:`Datapath` shards, but
every shard still executed in one Python loop — the sharded datapath was a
*model* of multi-core, not an implementation of it.  This module is the
execution layer that actually fans the per-shard work out:

* ``serial`` — :class:`SerialShardExecutor`, the PR 2 behaviour: shards run
  one after another in the caller's thread.  The reference semantics every
  other strategy must reproduce verdict for verdict.
* ``thread`` — :class:`ThreadShardExecutor`, a persistent thread pool.  The
  per-shard numpy scan kernels release the GIL, so the (keys × masks)
  matrix passes of different shards genuinely overlap; pure-Python stages
  interleave under the GIL.  A per-shard lock serialises batch execution
  against management sweeps (revalidator, MFCGuard) so a sweep never reads
  a shard mid-batch.
* ``process`` — :class:`ProcessShardExecutor`, a persistent worker-process
  pool.  **The shards live in the workers**: each worker process owns a
  subset of the shard datapaths (round-robin by shard id) plus a private
  replica of the flow table, and the parent holds only lightweight
  :class:`ShardProxy` handles that speak a small message protocol over
  pipes.  ``process_batch`` scatters RSS-partitioned sub-batches to the
  owning workers and gathers their :class:`BatchVerdicts` — true
  multi-core wall-clock scaling, no GIL.  Under the default ``shm``
  transport the batch *data* bypasses the pipes entirely: keys travel as
  uint64 column matrices and verdicts come back as numeric arrays through
  per-worker shared-memory rings (:mod:`repro.switch.shm_ring`), with the
  pipe reduced to a sequence-number doorbell.  ``transport="pipe"``
  restores the PR 5 pickled path (also the automatic fallback for a batch
  that does not fit its ring), and ``pinning`` optionally pins each
  worker to a CPU via ``os.sched_setaffinity``.  Control operations and
  flow-table deltas always stay on the pipe — only the packet-rate data
  plane earns shared memory.

Why flow-table mutation ships as *deltas* under the ``process`` executor:
the flow table is the control plane and stays authoritative in the parent,
but each worker needs a replica for its shards' slow-path upcalls.
Re-shipping the whole table on every change would serialise O(|rules|)
per mutation, and sharing the parent's table (or the shards' caches) via
shared memory would re-introduce exactly the cross-core mutable state the
per-PMD design exists to avoid — every megaflow cache is private to its
core, so the only state that may cross the process boundary is messages.
A delta message (rules added / rule ids removed, applied with a single
change notification) keeps each worker's memory bounded by its own shards
plus one rule-list replica, and keeps the revalidation-flush count of a
worker shard identical to a serial shard's: one parent flow-table change
notification becomes exactly one replica notification, so ``stats.flushes``
stays executor-invariant.

Executor invariants (tested in ``tests/test_executor.py``):

* **Parallel ≡ serial, verdict for verdict.**  For every strategy,
  ``process_batch`` returns the same verdicts, ``mask_counts``,
  ``probe_costs`` and ``shard_ids`` as the serial executor, installs the
  same entry/mask unions, and leaves identical per-shard statistics and
  probe accounting (``stats_scans`` / ``stats_scan_probes``).  This holds
  because shards share nothing: within a shard the sub-batch preserves
  arrival order, and across shards the pipelines are independent, so any
  physical interleaving merges back to the serial transcript.
* **The PR 1/2/4 invariants hold under every executor** — dicts-as-truth
  and batch ≡ sequential per shard, probe accounting, hypervisor charge
  invariance, 1-shard ≡ plain datapath.
* **Deterministic merge.**  Sub-batch results are reassembled by original
  arrival index, shard by shard in shard-id order — the result never
  depends on which worker finished first.
* **Management operations are value-addressed across the process
  boundary.**  Entries returned by a worker are copies; operations taking
  an entry (``kill_entry``, ``find_entry``, ``reinject``) resolve it in
  the owning worker by ``(mask, masked key)`` — the same value identity
  the §8 dead-entry quirk already uses.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager, nullcontext
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.classifier.backend import MegaflowEntry, ProbeCostSnapshot
from repro.classifier.flowtable import FlowTable
from repro.exceptions import ExecutorError, SwitchError
from repro.packet.fields import FlowKey, FlowMask
from repro.switch.shm_ring import (
    ShmRing,
    decode_batch,
    decode_verdicts,
    encode_batch,
    encode_verdicts,
)
from repro.switch.datapath import (
    BatchVerdicts,
    CoreReport,
    Datapath,
    DatapathConfig,
    DatapathStats,
    PacketVerdict,
)

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection

__all__ = [
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "ShardProxy",
    "BackendProxy",
    "register_shard_executor",
    "shard_executor_names",
    "make_shard_executor",
]


class ShardExecutor:
    """Strategy interface: how the per-PMD shards execute and are reached.

    Lifecycle: the sharded datapath constructs one executor, calls
    :meth:`build` exactly once (which creates the shard handles), drives
    batches through :meth:`run_batch`, and calls :meth:`close` when done.
    ``serial``/``thread`` build real in-process :class:`Datapath` shards;
    ``process`` builds :class:`ShardProxy` handles onto worker-owned
    shards.  Either way the handles expose the same processing and
    management surface, so every switch layer (hypervisor, revalidator,
    MFCGuard, dpctl) drives them identically.
    """

    name = "abstract"

    def __init__(self) -> None:
        self._shards: tuple = ()

    # -- lifecycle -----------------------------------------------------------
    def build(self, flow_table: FlowTable, config: DatapathConfig, n_shards: int) -> None:
        """Create the shard handles (called once by ShardedDatapath)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pools/workers; idempotent.  Shard state is discarded."""

    # -- execution -----------------------------------------------------------
    @property
    def shards(self) -> tuple:
        """The shard handles, indexed by shard id."""
        return self._shards

    def run_batch(
        self, buckets: dict[int, list[FlowKey]], now: float | None
    ) -> dict[int, BatchVerdicts]:
        """Run each shard's sub-batch; return per-shard verdicts.

        ``buckets`` maps shard id -> that shard's keys in arrival order.
        Implementations may run shards in any physical order/interleaving
        (shards share nothing), but each sub-batch must be that shard's
        ``process_batch`` transcript.
        """
        raise NotImplementedError

    # -- synchronisation -------------------------------------------------------
    def lock(self, shard_id: int):
        """Context manager serialising access to one shard (no-op default)."""
        return nullcontext()

    @contextmanager
    def maintenance(self):
        """Serialise a management sweep against in-flight batches.

        Revalidator and MFCGuard sweeps read and mutate every shard; under
        the ``thread`` executor this acquires all shard locks (in shard-id
        order, so sweeps cannot deadlock each other).
        """
        yield

    # -- aggregate snapshots -----------------------------------------------------
    def core_report(self) -> list[CoreReport]:
        """Per-shard (n_masks, n_megaflows, scan_cost) in one round trip."""
        return [shard.core_report()[0] for shard in self._shards]

    def describe(self) -> str:
        """Human-readable strategy label for dpctl/benchmark output."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self._shards)} shards)"


class SerialShardExecutor(ShardExecutor):
    """The reference strategy: every shard runs in the caller's thread."""

    name = "serial"

    def build(self, flow_table: FlowTable, config: DatapathConfig, n_shards: int) -> None:
        self._shards = tuple(Datapath(flow_table, config) for _ in range(n_shards))

    def run_batch(
        self, buckets: dict[int, list[FlowKey]], now: float | None
    ) -> dict[int, BatchVerdicts]:
        return {
            shard_id: self._shards[shard_id].process_batch(keys, now=now)
            for shard_id, keys in sorted(buckets.items())
        }


class ThreadShardExecutor(ShardExecutor):
    """Persistent thread pool over in-process shards.

    The level-3 scan kernels are numpy passes that release the GIL, so
    different shards' matrix work overlaps on real cores; the remaining
    pure-Python stages interleave.  Every shard has a lock: batch tasks
    hold their shard's lock while running, and :meth:`maintenance` (taken
    by revalidator/MFCGuard sweeps) acquires all of them, so sweeps never
    observe a shard mid-batch.
    """

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        super().__init__()
        self._requested_workers = workers
        self._n_workers = 0
        self._pool: ThreadPoolExecutor | None = None
        self._locks: tuple[threading.RLock, ...] = ()

    @property
    def n_workers(self) -> int:
        return self._n_workers

    def build(self, flow_table: FlowTable, config: DatapathConfig, n_shards: int) -> None:
        self._shards = tuple(Datapath(flow_table, config) for _ in range(n_shards))
        self._locks = tuple(threading.RLock() for _ in range(n_shards))
        self._n_workers = max(1, min(self._requested_workers or n_shards, n_shards))
        self._pool = ThreadPoolExecutor(
            max_workers=self._n_workers, thread_name_prefix="pmd-shard"
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def lock(self, shard_id: int):
        return self._locks[shard_id]

    @contextmanager
    def maintenance(self):
        for lock in self._locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(self._locks):
                lock.release()

    def _run_shard(self, shard_id: int, keys: list[FlowKey], now: float | None) -> BatchVerdicts:
        with self._locks[shard_id]:
            return self._shards[shard_id].process_batch(keys, now=now)

    def run_batch(
        self, buckets: dict[int, list[FlowKey]], now: float | None
    ) -> dict[int, BatchVerdicts]:
        if self._pool is None:
            raise SwitchError("thread executor is closed")
        futures = {
            shard_id: self._pool.submit(self._run_shard, shard_id, keys, now)
            for shard_id, keys in sorted(buckets.items())
        }
        # Gather in shard-id order: result assembly (and any raised error)
        # is deterministic regardless of completion order.
        return {shard_id: future.result() for shard_id, future in futures.items()}

    def describe(self) -> str:
        return f"{self.name}[{self._n_workers} workers]"


# -- the process worker ------------------------------------------------------------
#
# Message protocol (parent -> worker request, worker -> parent ("ok", value)
# or ("err", traceback-string)):
#
#   ("batch", [(shard_id, keys), ...], now)        -> [(shard_id, BatchVerdicts), ...]
#   ("shm_batch", seq)                             -> ("ring", seq) | ("pipe", results)
#       (doorbell: the batch itself is record ``seq`` in the submit ring;
#        verdicts come back in the complete ring, or inline over the pipe
#        when the complete ring is full)
#   ("worker_info",)                               -> {pid, shards, transport, affinity}
#   ("shard_get", shard_id, attr)                  -> getattr(shard, attr)
#   ("shard_call", shard_id, method, args, kwargs) -> shard.method(*args, **kwargs)
#   ("backend_get", shard_id, attr)                -> getattr(shard.megaflows, attr)
#   ("backend_call", shard_id, method, args, kwargs) -> shard.megaflows.method(...)
#   ("core_report",)                               -> [(shard_id, CoreReport), ...]
#   ("flowtable", removed_rule_ids, [(rule_id, FlowRule), ...]) -> None
#   ("ping",)                                      -> "pong"
#   ("close",)                                     -> None (worker exits)
#
# Entries cross the boundary by value: requests carrying a MegaflowEntry are
# resolved to the worker's own object by (mask, masked key) before the real
# method runs, so identity-based bookkeeping (microflow invalidation, the
# per-mask dicts) stays correct inside the worker.

_SHARD_GET = frozenset({"n_masks", "n_megaflows", "scan_cost", "now", "stats", "microflows"})
_SHARD_CALL = frozenset(
    {
        "process",
        "process_batch",
        "kill_entry",
        "reinject",
        "flush_caches",
        "evict_idle",
        "reset_stats",
        "core_report",
        # Live backend migration: the rebuild and swap run *inside* the
        # owning worker; only the plain-dict status record crosses back.
        "migration_status",
        "migrate_backend",
        "migrate_backend_start",
        "migrate_backend_step",
        "migrate_backend_swap",
        "migrate_backend_abort",
        # RSS re-map migration: extraction/installation run inside the
        # owning worker; what crosses the pipe is the moved-entry delta —
        # never a snapshot of a shard's full state.
        "rebalance_extract",
        "rebalance_install",
    }
)
_SHARD_ENTRY_CALLS = frozenset({"kill_entry", "reinject"})
_BACKEND_GET = frozenset(
    {
        "stats_hits",
        "stats_misses",
        "stats_scans",
        "stats_scan_probes",
        "n_masks",
        "n_entries",
        "check_invariants",
        "scan_kernel_name",
    }
)
_BACKEND_CALL = frozenset(
    {
        "expected_scan_cost",
        "structural_scan_cost",
        "probe_unit_cost",
        "probe_cost_snapshot",
        "memory_bytes",
        "entries",
        "masks",
        "entries_for_mask",
        "find",
        "find_entry",
        "get_entry",
        "clear_memo",
        "shuffle_masks",
        "probe_mask",
        "evict_idle",
        "remove",
        "insert_batch",
        "verify_disjoint",
    }
)
_BACKEND_ENTRY_CALLS = frozenset({"find_entry", "remove"})


def _resolve_entry(shard: Datapath, entry: MegaflowEntry) -> MegaflowEntry:
    """The worker's own entry object for a by-value copy (or the copy).

    Falling back to the copy keeps value-keyed semantics working for
    entries that are no longer installed (``reinject`` of a killed entry,
    ``kill_entry`` marking an absent entry dead).
    """
    local = shard.megaflows.get_entry(entry.mask, entry.key)
    return entry if local is None else local


def _worker_handle(op: tuple, table: FlowTable, rules_by_id: dict, shards: dict[int, Datapath]):
    kind = op[0]
    if kind == "batch":
        _, jobs, now = op
        return [(sid, shards[sid].process_batch(keys, now=now)) for sid, keys in jobs]
    if kind == "shard_get":
        _, sid, attr = op
        if attr not in _SHARD_GET:
            raise SwitchError(f"shard attribute {attr!r} not exported")
        return getattr(shards[sid], attr)
    if kind == "shard_call":
        _, sid, method, args, kwargs = op
        if method not in _SHARD_CALL:
            raise SwitchError(f"shard method {method!r} not exported")
        if method in _SHARD_ENTRY_CALLS and args:
            args = (_resolve_entry(shards[sid], args[0]),) + tuple(args[1:])
        return getattr(shards[sid], method)(*args, **kwargs)
    if kind == "backend_get":
        _, sid, attr = op
        if attr not in _BACKEND_GET:
            raise SwitchError(f"backend attribute {attr!r} not exported")
        return getattr(shards[sid].megaflows, attr)
    if kind == "backend_call":
        _, sid, method, args, kwargs = op
        if method not in _BACKEND_CALL:
            raise SwitchError(f"backend method {method!r} not exported")
        backend = shards[sid].megaflows
        if method in _BACKEND_ENTRY_CALLS and args:
            args = (_resolve_entry(shards[sid], args[0]),) + tuple(args[1:])
        result = getattr(backend, method)(*args, **kwargs)
        if method == "entries":  # generator -> concrete, picklable list
            result = list(result)
        return result
    if kind == "core_report":
        return [(sid, shard.core_report()[0]) for sid, shard in shards.items()]
    if kind == "flowtable":
        _, removed_ids, added = op
        removed = [rules_by_id.pop(rid) for rid in removed_ids if rid in rules_by_id]
        for rid, rule in added:
            rules_by_id[rid] = rule
        table.apply_delta(add=[rule for _, rule in added], remove=removed)
        return None
    if kind == "ping":
        return "pong"
    raise SwitchError(f"unknown worker op {kind!r}")


def _worker_shm_batch(
    seq: int,
    submit: "ShmRing",
    complete: "ShmRing",
    shards: dict[int, Datapath],
):
    """Serve one doorbell: decode the ring record, process, reply.

    The verdicts go back through the complete ring when they fit
    (``("ring", seq)``), otherwise inline over the pipe (``("pipe",
    results)``) — either way the pipe reply is the completion signal.
    """
    payload = submit.try_read()
    if payload is None:
        raise SwitchError(f"shm doorbell {seq} arrived with an empty submit ring")
    jobs, now = decode_batch(payload, seq)
    # The wire matrix IS the kernel's key layout: hand it to the scanner
    # as the precomputed row matrix so the scan never re-derives it.
    results = [
        (sid, shards[sid].process_batch(keys, now=now, rows=rows))
        for sid, keys, rows in jobs
    ]
    if encode_verdicts(complete, seq, results):
        return ("ring", seq)
    return ("pipe", results)


def _worker_main(
    conn: "Connection",
    shard_ids: tuple[int, ...],
    init_rules: list,
    config: DatapathConfig,
    ring_names: tuple[str, str] | None = None,
    pin_cpu: int | None = None,
) -> None:
    """One worker process: replica flow table + its owned shards, forever."""
    if pin_cpu is not None:
        try:
            os.sched_setaffinity(0, {pin_cpu})
        except (AttributeError, OSError, ValueError):
            pin_cpu = None  # affinity is best-effort; report what held
    submit = complete = None
    if ring_names is not None:
        submit = ShmRing.attach(ring_names[0])
        complete = ShmRing.attach(ring_names[1])
    rules_by_id = {rid: rule for rid, rule in init_rules}
    table = FlowTable(rules=[rule for _, rule in init_rules], name="pmd-worker-replica")
    shards = {sid: Datapath(table, config) for sid in shard_ids}
    try:
        while True:
            try:
                op = conn.recv()
            except (EOFError, OSError):  # parent died; nothing left to serve
                return
            if op[0] == "close":
                conn.send(("ok", None))
                conn.close()
                return
            try:
                if op[0] == "shm_batch":
                    value = _worker_shm_batch(op[1], submit, complete, shards)
                elif op[0] == "worker_info":
                    value = {
                        "pid": os.getpid(),
                        "shards": shard_ids,
                        "transport": "shm" if submit is not None else "pipe",
                        "affinity": pin_cpu,
                    }
                else:
                    value = _worker_handle(op, table, rules_by_id, shards)
                conn.send(("ok", value))
            except Exception as exc:  # ship the failure; keep serving
                conn.send(("err", f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"))
    finally:
        if submit is not None:
            submit.close()
        if complete is not None:
            complete.close()


class BackendProxy:
    """Parent-side handle onto one worker shard's megaflow backend.

    Exposes the slice of the :class:`MegaflowBackend` protocol the
    management layers (dpctl, MFCGuard, detector, benchmarks) drive.
    Entries returned are copies; entry-taking calls are value-resolved in
    the worker.  ``remove_where`` is unsupported — predicates do not cross
    process boundaries; use ``evict_idle``/``remove`` or run the predicate
    over ``entries()`` copies and ``remove`` the survivors.
    """

    def __init__(self, executor: "ProcessShardExecutor", shard_id: int):
        self._executor = executor
        self._shard_id = shard_id

    def _get(self, attr: str):
        return self._executor._shard_request(self._shard_id, ("backend_get", self._shard_id, attr))

    def _call(self, method: str, *args, **kwargs):
        return self._executor._shard_request(
            self._shard_id, ("backend_call", self._shard_id, method, args, kwargs)
        )

    # statistics surface
    @property
    def stats_hits(self) -> int:
        return self._get("stats_hits")

    @property
    def stats_misses(self) -> int:
        return self._get("stats_misses")

    @property
    def stats_scans(self) -> int:
        return self._get("stats_scans")

    @property
    def stats_scan_probes(self) -> int:
        return self._get("stats_scan_probes")

    @property
    def check_invariants(self) -> bool:
        return self._get("check_invariants")

    @property
    def scan_kernel_name(self) -> str:
        return self._get("scan_kernel_name")

    # size
    @property
    def n_masks(self) -> int:
        return self._get("n_masks")

    @property
    def n_entries(self) -> int:
        return self._get("n_entries")

    def __len__(self) -> int:
        return self.n_entries

    def memory_bytes(self) -> int:
        return self._call("memory_bytes")

    # probe-cost surface
    def probe_unit_cost(self) -> float:
        return self._call("probe_unit_cost")

    def expected_scan_cost(self) -> float:
        return self._call("expected_scan_cost")

    def structural_scan_cost(self) -> float:
        return self._call("structural_scan_cost")

    def probe_cost_snapshot(self) -> ProbeCostSnapshot:
        return self._call("probe_cost_snapshot")

    # iteration / introspection (copies)
    def entries(self) -> Iterator[MegaflowEntry]:
        return iter(self._call("entries"))

    def masks(self) -> list[FlowMask]:
        return self._call("masks")

    def entries_for_mask(self, mask: FlowMask) -> list[MegaflowEntry]:
        return self._call("entries_for_mask", mask)

    def find(self, key: FlowKey) -> MegaflowEntry | None:
        return self._call("find", key)

    def find_entry(self, entry: MegaflowEntry) -> bool:
        return self._call("find_entry", entry)

    def get_entry(self, mask: FlowMask, key: tuple[int, ...]) -> MegaflowEntry | None:
        return self._call("get_entry", mask, key)

    def probe_mask(self, mask: FlowMask, key: FlowKey, now: float = 0.0) -> MegaflowEntry | None:
        return self._call("probe_mask", mask, key, now=now)

    def verify_disjoint(self) -> None:
        return self._call("verify_disjoint")

    # mutation (management granularity; packets go through process_batch)
    def remove(self, entry: MegaflowEntry) -> bool:
        return self._call("remove", entry)

    def evict_idle(self, now: float, idle_timeout: float) -> list[MegaflowEntry]:
        return self._call("evict_idle", now, idle_timeout)

    def clear_memo(self) -> None:
        return self._call("clear_memo")

    def shuffle_masks(self, seed: int = 0) -> None:
        return self._call("shuffle_masks", seed=seed)

    def __repr__(self) -> str:
        return f"BackendProxy(shard {self._shard_id} @ {self._executor.describe()})"


class ShardProxy:
    """Parent-side handle onto one worker-owned :class:`Datapath` shard.

    Duck-typed to the slice of the datapath surface the switch-management
    layers use (hypervisor, revalidator, MFCGuard, dpctl, benchmarks);
    packet batches normally flow through the executor's scatter/gather
    path rather than per-proxy calls.
    """

    def __init__(self, executor: "ProcessShardExecutor", shard_id: int, config: DatapathConfig):
        self._executor = executor
        self._shard_id = shard_id
        self.config = config
        self.megaflows = BackendProxy(executor, shard_id)

    def _get(self, attr: str):
        return self._executor._shard_request(self._shard_id, ("shard_get", self._shard_id, attr))

    def _call(self, method: str, *args, **kwargs):
        return self._executor._shard_request(
            self._shard_id, ("shard_call", self._shard_id, method, args, kwargs)
        )

    @property
    def shard_id(self) -> int:
        return self._shard_id

    @property
    def n_masks(self) -> int:
        return self._get("n_masks")

    @property
    def n_megaflows(self) -> int:
        return self._get("n_megaflows")

    @property
    def scan_cost(self) -> float:
        return self._get("scan_cost")

    @property
    def now(self) -> float:
        return self._get("now")

    @property
    def stats(self) -> DatapathStats:
        return self._get("stats")

    @property
    def microflows(self):
        """A snapshot copy of the worker shard's microflow cache (or None)."""
        return self._get("microflows")

    def core_report(self) -> list[CoreReport]:
        return self._call("core_report")

    # -- packet processing (management/diagnostic granularity) ------------------
    def process(self, key: FlowKey, now: float | None = None) -> PacketVerdict:
        return self._call("process", key, now=now)

    def process_batch(self, keys: Sequence[FlowKey], now: float | None = None) -> BatchVerdicts:
        return self._call("process_batch", list(keys), now=now)

    # -- management --------------------------------------------------------------
    def kill_entry(self, entry: MegaflowEntry, permanent: bool = True) -> bool:
        return self._call("kill_entry", entry, permanent=permanent)

    def reinject(self, entry: MegaflowEntry) -> None:
        return self._call("reinject", entry)

    def flush_caches(self) -> None:
        return self._call("flush_caches")

    def evict_idle(self, now: float | None = None) -> list[MegaflowEntry]:
        return self._call("evict_idle", now)

    def reset_stats(self) -> None:
        return self._call("reset_stats")

    # -- live backend migration (runs in the owning worker) ----------------------
    def migration_status(self) -> dict:
        return self._call("migration_status")

    def migrate_backend(self, target_kind: str, slice_size: int = 512) -> dict:
        return self._call("migrate_backend", target_kind, slice_size=slice_size)

    def migrate_backend_start(self, target_kind: str, slice_size: int = 512) -> dict:
        return self._call("migrate_backend_start", target_kind, slice_size=slice_size)

    def rebalance_extract(self, new_rss, shard_id: int) -> dict:
        return self._call("rebalance_extract", new_rss, shard_id)

    def rebalance_install(self, entries, dead) -> int:
        return self._call("rebalance_install", entries, dead)

    def migrate_backend_step(self, max_entries: int | None = None) -> dict:
        return self._call("migrate_backend_step", max_entries)

    def migrate_backend_swap(self) -> dict:
        return self._call("migrate_backend_swap")

    def migrate_backend_abort(self) -> dict:
        return self._call("migrate_backend_abort")

    def __repr__(self) -> str:
        return f"ShardProxy(shard {self._shard_id} @ {self._executor.describe()})"


class ProcessShardExecutor(ShardExecutor):
    """Persistent worker-process pool; the shards live in the workers.

    Workers are forked once at :meth:`build` (spawn where fork is
    unavailable) and stay up for the datapath's lifetime, so per-batch
    cost is one scatter/gather of pickled keys and verdicts — no
    per-batch process creation, no re-detonation.  Shards are assigned to
    workers round-robin by shard id; with ``workers >= n_shards`` each
    shard gets a dedicated worker (one PMD core each, the deployment the
    model mirrors).

    The parent keeps the authoritative flow table and ships every change
    as a delta message (see the module docstring for why deltas, not
    snapshots or shared memory); worker replicas apply each delta with a
    single change notification, preserving the serial flush cadence.
    """

    name = "process"

    #: Per-direction ring capacity under the ``shm`` transport.
    DEFAULT_RING_BYTES = 1 << 20

    def __init__(
        self,
        workers: int | None = None,
        transport: str = "shm",
        pinning: Sequence[int] = (),
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        super().__init__()
        if transport not in ("shm", "pipe"):
            raise SwitchError(
                f"unknown process transport {transport!r}; known: pipe, shm"
            )
        self._requested_workers = workers
        self._transport = transport
        self._pinning = tuple(pinning)
        self._ring_bytes = ring_bytes
        self._submit_rings: list = []  # parent writes batches
        self._complete_rings: list = []  # parent reads verdicts
        self._seq = itertools.count(1)
        self._last_ops: dict[int, str] = {}  # wid -> last op completed by worker
        self._conns: list = []
        self._procs: list = []
        self._worker_of: dict[int, int] = {}
        self._shards_of: dict[int, tuple[int, ...]] = {}
        self._flow_table: FlowTable | None = None
        self._rule_ids: dict[int, tuple[int, object]] = {}  # id(rule) -> (rid, rule)
        self._next_rule_id = 0
        self._closed = False

    @property
    def transport(self) -> str:
        """The data-plane transport actually in use (``shm`` or ``pipe``)."""
        return self._transport

    @property
    def n_workers(self) -> int:
        return len(self._procs)

    @staticmethod
    def _context():
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            return multiprocessing.get_context()

    def build(self, flow_table: FlowTable, config: DatapathConfig, n_shards: int) -> None:
        self._flow_table = flow_table
        n_workers = max(1, min(self._requested_workers or n_shards, n_shards))
        assignment: dict[int, list[int]] = {wid: [] for wid in range(n_workers)}
        for shard_id in range(n_shards):
            assignment[shard_id % n_workers].append(shard_id)
            self._worker_of[shard_id] = shard_id % n_workers
        init_rules = [(self._rule_id(rule), rule) for rule in flow_table.rules_by_priority()]
        if self._transport == "shm":
            try:
                for _ in range(n_workers):
                    self._submit_rings.append(ShmRing.create(self._ring_bytes))
                    self._complete_rings.append(ShmRing.create(self._ring_bytes))
            except OSError:  # no usable /dev/shm: degrade, don't die
                for ring in self._submit_rings + self._complete_rings:
                    ring.close()
                self._submit_rings = []
                self._complete_rings = []
                self._transport = "pipe"
        ctx = self._context()
        for wid in range(n_workers):
            parent_conn, child_conn = ctx.Pipe()
            ring_names = None
            if self._transport == "shm":
                ring_names = (self._submit_rings[wid].name, self._complete_rings[wid].name)
            pin_cpu = self._pinning[wid % len(self._pinning)] if self._pinning else None
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, tuple(assignment[wid]), init_rules, config,
                      ring_names, pin_cpu),
                name=f"pmd-worker-{wid}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
            self._shards_of[wid] = tuple(assignment[wid])
        self._shards = tuple(ShardProxy(self, sid, config) for sid in range(n_shards))
        # The control plane stays in the parent; every table change ships
        # to the workers as a delta before the next message is processed.
        flow_table.subscribe(self._ship_flow_table_delta)

    # -- rule-id bookkeeping -------------------------------------------------------
    def _rule_id(self, rule) -> int:
        known = self._rule_ids.get(id(rule))
        if known is not None:
            return known[0]
        rid = self._next_rule_id
        self._next_rule_id += 1
        self._rule_ids[id(rule)] = (rid, rule)  # keep the ref: id() stays valid
        return rid

    def _ship_flow_table_delta(self) -> None:
        """Compute and broadcast one flow-table delta (adds + removed ids).

        Called from the parent table's change notification; by the time it
        runs the table already holds the new state, so the delta is the
        diff between the rules previously shipped (tracked by object
        identity — the parent owns the authoritative rule objects) and the
        rules now in the table.  Workers apply the delta with a single
        replica notification, so one parent change equals one worker-side
        revalidation flush.
        """
        if self._closed or self._flow_table is None:
            return
        current = self._flow_table.rules_by_priority()
        current_ids = {id(rule) for rule in current}
        removed_rids = [
            rid for obj_id, (rid, _rule) in self._rule_ids.items() if obj_id not in current_ids
        ]
        self._rule_ids = {
            obj_id: entry for obj_id, entry in self._rule_ids.items() if obj_id in current_ids
        }
        added = [
            (self._rule_id(rule), rule) for rule in current if id(rule) not in self._rule_ids
        ]
        if removed_rids or added:
            self._broadcast(("flowtable", removed_rids, added))

    # -- messaging ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed or not self._conns:
            raise SwitchError("process executor is closed")

    def _worker_died(self, wid: int, op_name: str, exc: Exception) -> ExecutorError:
        """A descriptive :class:`ExecutorError` for a dead worker.

        A dead worker used to surface as the raw pipe ``EOFError`` /
        ``BrokenPipeError``; name the worker, its shards, its exit code and
        the last op it completed so the failure is attributable.
        """
        proc = self._procs[wid] if wid < len(self._procs) else None
        exitcode = None
        if proc is not None:
            proc.join(timeout=0.1)
            exitcode = proc.exitcode
        shards = list(self._shards_of.get(wid, ()))
        last = self._last_ops.get(wid, "<none>")
        return ExecutorError(
            f"pmd worker {wid} (shards {shards}) died during op {op_name!r} "
            f"(exit code {exitcode}, last completed op {last!r}): "
            f"{type(exc).__name__}: {exc}"
        )

    def _send(self, wid: int, op: tuple) -> None:
        try:
            self._conns[wid].send(op)
        except (BrokenPipeError, OSError) as exc:
            raise self._worker_died(wid, op[0], exc) from exc

    def _request(self, wid: int, op: tuple):
        self._check_open()
        self._send(wid, op)
        try:
            status, value = self._conns[wid].recv()
        except (EOFError, OSError) as exc:
            raise self._worker_died(wid, op[0], exc) from exc
        if status == "err":
            raise SwitchError(f"pmd worker {wid} failed op {op[0]!r}:\n{value}")
        self._last_ops[wid] = op[0]
        return value

    def _shard_request(self, shard_id: int, op: tuple):
        return self._request(self._worker_of[shard_id], op)

    def _gather(self, wids: list[int], op_name: str) -> dict[int, object]:
        """Receive one reply per listed worker, draining every connection
        before raising — a failed worker must not leave sibling replies
        queued, or the next request would read a stale answer."""
        replies: dict[int, object] = {}
        errors: list[str] = []
        died = False
        for wid in wids:
            try:
                status, value = self._conns[wid].recv()
            except (EOFError, OSError) as exc:
                errors.append(str(self._worker_died(wid, op_name, exc)))
                died = True
                continue
            if status == "err":
                errors.append(f"pmd worker {wid} failed op {op_name!r}:\n{value}")
            else:
                replies[wid] = value
                self._last_ops[wid] = op_name
        if errors:
            raise (ExecutorError if died else SwitchError)("; ".join(errors))
        return replies

    def _broadcast(self, op: tuple) -> list:
        self._check_open()
        for wid in range(len(self._conns)):
            self._send(wid, op)
        replies = self._gather(list(range(len(self._conns))), op[0])
        return [replies[wid] for wid in range(len(self._conns))]

    # -- execution --------------------------------------------------------------------
    def run_batch(
        self, buckets: dict[int, list[FlowKey]], now: float | None
    ) -> dict[int, BatchVerdicts]:
        self._check_open()
        jobs_by_worker: dict[int, list[tuple[int, list[FlowKey]]]] = {}
        for shard_id, keys in sorted(buckets.items()):
            jobs_by_worker.setdefault(self._worker_of[shard_id], []).append((shard_id, keys))
        # Scatter to every involved worker first, then gather — this is
        # where the parallelism comes from.  Under the shm transport the
        # batch record goes into the worker's submit ring and only a
        # ("shm_batch", seq) doorbell crosses the pipe; a batch that does
        # not fit (oversized, or the worker lags) falls back to the
        # pickled pipe message — same verdicts either way.
        ring_seq: dict[int, int] = {}
        for wid, jobs in jobs_by_worker.items():
            if self._submit_rings:
                seq = next(self._seq)
                if encode_batch(self._submit_rings[wid], seq, jobs, now):
                    ring_seq[wid] = seq
                    self._send(wid, ("shm_batch", seq))
                    continue
            self._send(wid, ("batch", jobs, now))
        merged: dict[int, BatchVerdicts] = {}
        for wid, value in self._gather(list(jobs_by_worker), "batch").items():
            if wid in ring_seq:
                kind, data = value
                if kind == "ring":
                    payload = self._complete_rings[wid].try_read()
                    if payload is None:
                        raise SwitchError(
                            f"pmd worker {wid} signalled ring verdicts for batch "
                            f"{data} but the complete ring is empty"
                        )
                    value = decode_verdicts(payload, ring_seq[wid])
                else:  # worker's complete ring was full; verdicts came inline
                    value = data
            for shard_id, verdicts in value:
                merged[shard_id] = verdicts
        return merged

    def worker_info(self) -> list[dict]:
        """Per-worker {pid, shards, transport, affinity}, by worker id."""
        return self._broadcast(("worker_info",))

    def core_report(self) -> list[CoreReport]:
        by_shard: dict[int, CoreReport] = {}
        for worker_result in self._broadcast(("core_report",)):
            for shard_id, report in worker_result:
                by_shard[shard_id] = report
        return [by_shard[sid] for sid in range(len(self._shards))]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
                conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                pass
            finally:
                conn.close()
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        for ring in self._submit_rings + self._complete_rings:
            ring.close()  # owner side: releases the mapping and unlinks
        self._submit_rings = []
        self._complete_rings = []
        self._conns = []
        self._procs = []

    def describe(self) -> str:
        return f"{self.name}[{self.n_workers} workers]/{self._transport}"

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


# -- registry --------------------------------------------------------------------

_SHARD_EXECUTORS: dict[str, Callable[..., ShardExecutor]] = {
    SerialShardExecutor.name: SerialShardExecutor,
    ThreadShardExecutor.name: ThreadShardExecutor,
    ProcessShardExecutor.name: ProcessShardExecutor,
}


def register_shard_executor(name: str, factory: Callable[..., ShardExecutor]) -> None:
    """Register an executor factory under ``name`` (last registration wins)."""
    _SHARD_EXECUTORS[name] = factory


def shard_executor_names() -> tuple[str, ...]:
    """All registered executor strategy names, sorted."""
    return tuple(sorted(_SHARD_EXECUTORS))


def make_shard_executor(
    name: str,
    workers: int | None = None,
    transport: str | None = None,
    pinning: Sequence[int] = (),
) -> ShardExecutor:
    """Build a shard executor by registry name.

    Args:
        name: registered strategy (``"serial"``, ``"thread"``, ``"process"``).
        workers: worker cap for pooled strategies (``None``/0 → one per
            shard); ignored by ``serial``.
        transport: data-plane transport for ``process`` (``"shm"`` default,
            ``"pipe"`` for the PR 5 pickled path); ignored by in-process
            strategies.
        pinning: CPU ids to pin ``process`` workers to, round-robin;
            ignored by in-process strategies.
    """
    factory = _SHARD_EXECUTORS.get(name)
    if factory is None:
        known = ", ".join(sorted(_SHARD_EXECUTORS))
        raise SwitchError(f"unknown shard executor {name!r}; known: {known}")
    if factory is SerialShardExecutor:
        return factory()
    if factory is ProcessShardExecutor:
        return factory(
            workers=workers or None,
            transport=transport or "shm",
            pinning=tuple(pinning),
        )
    return factory(workers=workers or None)
