"""The revalidator: periodic megaflow maintenance (idle eviction, limits).

OVS runs revalidator threads that dump the datapath flows, evict entries
idle longer than the timeout (10 s by default — the constant behind the
delayed victim recovery in Fig. 8a/8b), and enforce the flow limit.  The
revalidation *work itself* scales with the number of installed megaflows,
which is how the IPv6 exact-match blow-up of §5.4 burns 8 CPU cores: we
account that cost so the experiment can reproduce it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classifier.backend import MegaflowEntry
from repro.exceptions import SwitchError
from repro.switch.sharded import AnyDatapath

__all__ = ["RevalidatorStats", "Revalidator"]

# Cost accounting: revalidating one megaflow entry, in fast-path units
# (dump + re-lookup + stats fold; a few microseconds vs tens of ns).
REVALIDATE_UNITS_PER_ENTRY = 5.0


@dataclass
class RevalidatorStats:
    """Counters across all sweeps."""

    sweeps: int = 0
    evicted_idle: int = 0
    evicted_limit: int = 0
    work_units: float = 0.0


class Revalidator:
    """Periodic sweeper bound to one datapath (sharded or not).

    OVS revalidator threads serve every PMD's flow dump, so one sweeper
    maintains all shards: idle eviction runs per shard, and the flow limit
    is enforced against the *aggregate* entry count (the limit models
    total datapath memory, not a per-core quota).

    Args:
        datapath: the datapath to maintain.
        period: seconds between sweeps when driven by :meth:`tick`.
    """

    def __init__(self, datapath: AnyDatapath, period: float = 1.0):
        if period <= 0:
            raise SwitchError(f"revalidator period must be positive, got {period}")
        self.datapath = datapath
        self.period = period
        self._next_sweep = period
        self.stats = RevalidatorStats()

    def tick(self, now: float) -> list[MegaflowEntry]:
        """Run a sweep if ``now`` has reached the next scheduled sweep."""
        if now < self._next_sweep:
            return []
        self._next_sweep = now + self.period
        return self.sweep(now)

    def sweep(self, now: float) -> list[MegaflowEntry]:
        """One full revalidation pass; returns the evicted entries.

        The sweep runs under the datapath's maintenance lock so a
        parallel executor never lets it observe a shard mid-batch; under
        the process executor the entries it dumps are value-addressed
        copies, which ``kill_entry`` resolves in the owning worker.
        """
        with self.datapath.maintenance():
            self.stats.sweeps += 1
            entries_before = self.datapath.n_megaflows
            self.stats.work_units += entries_before * REVALIDATE_UNITS_PER_ENTRY

            evicted = self.datapath.evict_idle(now)
            self.stats.evicted_idle += len(evicted)

            # Flow-limit pressure: if still above the limit after idle
            # eviction, drop the least recently used entries (OVS lowers the
            # limit and evicts aggressively under memory pressure).
            overflow = self.datapath.n_megaflows - self.datapath.config.max_megaflows
            if overflow > 0:
                by_lru = sorted(
                    (
                        entry
                        for shard in self.datapath.shards
                        for entry in shard.megaflows.entries()
                    ),
                    key=lambda e: e.last_used,
                )
                for entry in by_lru[:overflow]:
                    self.datapath.kill_entry(entry, permanent=False)
                self.stats.evicted_limit += overflow
                evicted = evicted + by_lru[:overflow]
            return evicted

    def sweep_work_units(self) -> float:
        """Units a sweep would cost right now (CPU accounting)."""
        return self.datapath.n_megaflows * REVALIDATE_UNITS_PER_ENTRY

    def __repr__(self) -> str:
        return f"Revalidator(period={self.period}s, sweeps={self.stats.sweeps})"
