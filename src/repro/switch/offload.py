"""NIC / driver offload profiles (§5.4).

The paper measures four configurations whose interaction with the TSE
attack differs sharply:

* **GRO OFF (TCP)** — every MTU-sized frame is classified individually; the
  switch is CPU-bound on classification and collapses fastest.
* **GRO ON (TCP)** — generic receive offload and jumbo frames assemble many
  small TCP segments into one large buffer, dividing the classification
  rate by the aggregation factor; degradation only shows at high mask
  counts.
* **FHO (TCP)** — full hardware offload (Mellanox CX-4): the TSS classifier
  runs in NIC hardware at ~30 Gbps, but remains a TSS and still degrades
  once the mask count exceeds a couple of hundred.
* **UDP** — GRO/TSO do not apply; behaves like GRO OFF with a slightly
  different baseline.

Each profile carries the *shape anchors* reported in §5.4/§6.2 (fraction of
its own baseline at given mask counts); :mod:`repro.switch.calibration`
fits the cost-curve parameters to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Mapping

from repro.exceptions import SwitchError

__all__ = ["NicProfile", "GRO_OFF_TCP", "GRO_ON_TCP", "FHO_TCP", "UDP_PROFILE", "PROFILES"]


@dataclass(frozen=True)
class NicProfile:
    """One NIC/driver configuration of Table 1 / §5.4.

    Attributes:
        name: profile identifier (also the legend label in Fig. 9a).
        baseline_gbps: throughput with a single-mask MFC.
        unit_bytes: bytes classified per TSS lookup (MTU frame, or the
            GRO-aggregated buffer).
        hardware_offload: True when classification runs on the NIC.
        anchors: mask count -> fraction-of-baseline throughput, from the
            paper; drives curve fitting and the EXPERIMENTS.md comparison.
    """

    name: str
    baseline_gbps: float
    unit_bytes: int
    hardware_offload: bool = False
    anchors: Mapping[int, float] = dc_field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.baseline_gbps <= 0:
            raise SwitchError(f"{self.name}: baseline_gbps must be positive")
        if self.unit_bytes <= 0:
            raise SwitchError(f"{self.name}: unit_bytes must be positive")
        for masks, fraction in self.anchors.items():
            if masks < 1 or not (0.0 < fraction <= 1.0):
                raise SwitchError(f"{self.name}: bad anchor ({masks}, {fraction})")

    @property
    def baseline_pps(self) -> float:
        """Classified units per second at baseline."""
        return self.baseline_gbps * 1e9 / 8.0 / self.unit_bytes


# Anchor fractions transcribed from §5.4 (use cases at 17 / 260 / 516 / 8200
# masks) and §6.2 (UDP at the general-TSE mask counts).
GRO_OFF_TCP = NicProfile(
    name="GRO OFF (TCP)",
    baseline_gbps=10.0,
    unit_bytes=1500,
    anchors={1: 1.0, 17: 0.53, 260: 0.10, 516: 0.047, 8200: 0.002},
)

GRO_ON_TCP = NicProfile(
    name="GRO ON (TCP)",
    baseline_gbps=10.0,
    unit_bytes=65536,  # one aggregated TCP buffer per lookup
    anchors={1: 1.0, 17: 0.97, 260: 0.95, 516: 0.76, 8200: 0.039},
)

FHO_TCP = NicProfile(
    name="FHO ON (TCP)",
    baseline_gbps=30.0,
    unit_bytes=1500,
    hardware_offload=True,
    anchors={1: 1.0, 17: 0.88, 260: 0.43, 516: 0.29, 8200: 0.021},
)

UDP_PROFILE = NicProfile(
    name="UDP",
    baseline_gbps=9.5,
    unit_bytes=1470,
    anchors={1: 1.0, 16: 0.60, 122: 0.158, 581: 0.0325, 8200: 0.002},
)

PROFILES: dict[str, NicProfile] = {
    profile.name: profile
    for profile in (GRO_OFF_TCP, GRO_ON_TCP, FHO_TCP, UDP_PROFILE)
}
