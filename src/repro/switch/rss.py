"""RSS dispatch: hashing flows onto PMD queues, and queue-aware crafting.

Multi-queue NICs spread incoming flows across PMD cores with Receive Side
Scaling: a hash of the 5-tuple picks the queue, so every packet of a flow
lands on the same core for its lifetime.  Two consequences matter for the
tuple-space-explosion attack (the multi-queue feasibility follow-up,
arXiv:2011.09107):

* each PMD core owns private caches, so a mask staircase detonates only in
  the shards whose queues received the crafting packets — RSS *dilutes* a
  naive attack across cores;
* the attacker controls its packets' 5-tuples, and the bits a crafted
  packet needs for its mask staircase rarely pin the whole 5-tuple — the
  leftover wildcarded bits can be ground until the RSS hash lands on a
  *chosen* queue, concentrating the explosion on one core (and the victims
  whose flows RSS assigned to it).

:class:`RssDispatcher` is the dispatch layer (hash pluggable, so deployments
with different hash functions — or an attacker's model of one — can be
simulated); :func:`retarget_trace` is the queue-aware crafting tool, which
only ever touches bits the generated megaflow wildcards, so the retargeted
trace provably detonates the same masks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.classifier.flowtable import FlowTable
from repro.classifier.slowpath import OVS_DEFAULT, MegaflowGenerator, StrategyConfig
from repro.exceptions import SwitchError
from repro.packet.fields import FIELD_ORDER, FIELDS, FlowKey

__all__ = [
    "RSS_FIELDS",
    "five_tuple_hash",
    "five_tuple_hash_columns",
    "uniform_key_hash",
    "RssDispatcher",
    "RetaDispatcher",
    "RetargetReport",
    "retarget_trace",
    "pin_to_queue",
]

# The classic RSS input set: the L3/L4 5-tuple.
RSS_FIELDS: tuple[str, ...] = ("ip_src", "ip_dst", "ip_proto", "tp_src", "tp_dst")
_RSS_INDICES: tuple[int, ...] = tuple(FIELD_ORDER.index(name) for name in RSS_FIELDS)

_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193


def _salted_offset(salt: int) -> int:
    """The FNV state after folding ``salt``'s 4 bytes (the re-key prefix).

    Folding the salt *before* the field bytes is the cheap stand-in for
    swapping a NIC's 40-byte Toeplitz key: every downstream byte sees a
    different running state, so flows scatter onto entirely new queues.
    ``salt=0`` short-circuits to the plain offset basis everywhere, which
    is what keeps un-salted hashes (and every paper preset) byte-identical.
    """
    h = _FNV_OFFSET
    for shift in (0, 8, 16, 24):
        h ^= (salt >> shift) & 0xFF
        h = (h * _FNV_PRIME) & 0xFFFFFFFF
    return h


def _fmix32(h: int) -> int:
    """Murmur3's 32-bit finalizer: diffuse high bits into low bits.

    Indispensable for the *salted* path, not decoration: an FNV-1a step is
    affine over GF(2) in its low k bits (``h' = p·(h ^ b) mod 2^k`` — both
    XOR and odd multiplication are linear there), so for the fixed-length
    5-tuple the salted low bits differ from the unsalted ones by a
    *constant* XOR.  Queue selection is ``h mod n_queues``: under a bare
    re-key an attacker's trace ground onto one queue would move *as a
    block* to one new queue — concentration preserved, the re-key
    defeated.  The shift-xor-multiply cascade mixes the well-diffused high
    bits down, making the low bits a genuine function of (key, salt).
    """
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & 0xFFFFFFFF
    h ^= h >> 16
    return h


def five_tuple_hash(key: FlowKey, salt: int = 0) -> int:
    """Deterministic 32-bit FNV-1a over the 5-tuple (a Toeplitz stand-in).

    Real NICs use a keyed Toeplitz hash; what the simulation needs from it
    is determinism (a flow's queue is stable for its lifetime) and bit
    sensitivity (flipping any 5-tuple bit can move the flow) — FNV-1a over
    the field bytes provides both without the 40-byte key machinery.

    ``salt`` models the re-keyable part of that machinery: a non-zero salt
    is folded into the FNV state before the field bytes (the simulation's
    analogue of programming a fresh Toeplitz key into the NIC) and the
    result is passed through :func:`_fmix32` — without that finalizer the
    low bits a queue index is taken from would shift by a salt-dependent
    *constant*, moving an attacker's whole ground trace to one new queue
    instead of scattering it.  ``salt=0`` (the default) is bit-for-bit
    the historical un-salted hash.
    """
    h = _salted_offset(salt) if salt else _FNV_OFFSET
    for index in _RSS_INDICES:
        value = key.at(index)
        for shift in (0, 8, 16, 24):
            h ^= (value >> shift) & 0xFF
            h = (h * _FNV_PRIME) & 0xFFFFFFFF
    if salt:
        h = _fmix32(h)
    return h


def five_tuple_hash_columns(columns, salt: int = 0):
    """Vectorised twin of :func:`five_tuple_hash` over 5-tuple columns.

    ``columns`` maps each of :data:`RSS_FIELDS` to an integer array; all
    arrays share one length and position ``i`` across them is one flow.
    Returns the uint64 array of 32-bit hashes, bit-identical to calling
    :func:`five_tuple_hash` per flow — including under a re-key salt,
    which enters as the same pre-folded FNV state (the salt is constant
    across the batch, so its prefix contributes one scalar fill value).
    The streaming tenant generators of :mod:`repro.netsim.fleet` place
    whole hosts' populations onto PMD queues in one pass with it
    (differential-tested in ``tests/test_fleet.py`` and, for the salted
    path, ``tests/test_rebalance.py``).
    """
    import numpy as np

    first = np.asarray(columns[RSS_FIELDS[0]], dtype=np.uint64)
    offset = _salted_offset(salt) if salt else _FNV_OFFSET
    h = np.full(first.shape, offset, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    mask32 = np.uint64(0xFFFFFFFF)
    byte = np.uint64(0xFF)
    for name in RSS_FIELDS:
        value = np.asarray(columns[name], dtype=np.uint64)
        for shift in (0, 8, 16, 24):
            h ^= (value >> np.uint64(shift)) & byte
            h = (h * prime) & mask32
    if salt:
        # The _fmix32 finalizer, vectorised (see the scalar twin for why
        # the salted path needs it).
        h ^= h >> np.uint64(16)
        h = (h * np.uint64(0x85EBCA6B)) & mask32
        h ^= h >> np.uint64(13)
        h = (h * np.uint64(0xC2B2AE35)) & mask32
        h ^= h >> np.uint64(16)
    return h


def uniform_key_hash(key: FlowKey, salt: int = 0) -> int:
    """A well-mixing hash over the *full* key (balanced-placement studies).

    The crafted keys of a TSE staircase differ in structured bit patterns
    that the byte-serial FNV walk keeps correlated, so the natural
    :func:`five_tuple_hash` placement of a detonation can be lopsided (one
    queue carrying ~half the masks).  Python's tuple hash mixes every
    field through a SipHash-derived round and spreads the same staircase
    near-uniformly.  Deterministic for integer tuples (``PYTHONHASHSEED``
    only perturbs str/bytes), stable per flow — a drop-in ``hash_fn`` for
    experiments and benchmarks that need the *even-spread* regime (e.g.
    measuring executor scaling without queue imbalance in the way) rather
    than a NIC-faithful one.

    A non-zero ``salt`` re-keys the placement by prepending the salt to
    the hashed tuple; ``salt=0`` is bit-for-bit the historical hash.
    """
    if salt:
        return hash((salt,) + key.values) & 0xFFFFFFFF
    return hash(key.values) & 0xFFFFFFFF


class RssDispatcher:
    """Maps flow keys onto ``n_queues`` PMD queues.

    Args:
        n_queues: number of receive queues (= PMD shards).
        hash_fn: pluggable hash ``FlowKey -> int`` (defaults to
            :func:`five_tuple_hash`); substituting the deployment's real
            hash lets traces be crafted queue-aware against it.
    """

    def __init__(self, n_queues: int, hash_fn: Callable[[FlowKey], int] = five_tuple_hash):
        if n_queues < 1:
            raise SwitchError(f"n_queues must be >= 1, got {n_queues}")
        self.n_queues = n_queues
        self.hash_fn = hash_fn

    def queue_of(self, key: FlowKey) -> int:
        """The queue ``key``'s flow is pinned to (stable for its lifetime)."""
        if self.n_queues == 1:
            return 0
        return self.hash_fn(key) % self.n_queues

    def partition(self, keys: Iterable[FlowKey]) -> dict[int, list[int]]:
        """Indices of ``keys`` grouped by queue, preserving order per queue."""
        buckets: dict[int, list[int]] = {}
        for index, key in enumerate(keys):
            buckets.setdefault(self.queue_of(key), []).append(index)
        return buckets

    def __repr__(self) -> str:
        return f"RssDispatcher(n_queues={self.n_queues})"


class RetaDispatcher(RssDispatcher):
    """A re-keyable, re-mappable dispatcher (DPDK RETA-style).

    Two independent levers move flows between queues without restarting
    the datapath, mirroring what real NICs expose:

    * **salt** — a 32-bit re-key folded into the hash (the stand-in for
      programming a fresh Toeplitz key); changing it scatters *every*
      flow onto a fresh pseudo-random queue;
    * **reta** — an explicit queue-indirection table: the hash picks a
      RETA slot, the slot names the queue.  Editing individual slots
      moves *fractions* of the flow population (e.g. shedding 1/128th of
      a hot queue's load), which a re-key cannot do.

    With ``salt=0`` and the default identity table (slot count a multiple
    of ``n_queues``, slot ``i`` naming queue ``i % n_queues``),
    ``reta[h % slots] == h % n_queues`` for every hash — placement is
    bit-identical to the plain :class:`RssDispatcher`, which is what lets
    :class:`~repro.switch.sharded.ShardedDatapath` use this class
    unconditionally without perturbing any paper preset.

    Dispatchers are immutable; :meth:`with_salt` / :meth:`with_reta`
    derive the successor a re-map installs.  Everything held is ints,
    tuples, or a module-level function, so instances cross the process
    executor's pickle boundary.
    """

    def __init__(
        self,
        n_queues: int,
        hash_fn: Callable[..., int] = five_tuple_hash,
        salt: int = 0,
        reta: Sequence[int] | None = None,
        reta_slots: int = 128,
    ):
        super().__init__(n_queues, hash_fn)
        if not 0 <= salt <= 0xFFFFFFFF:
            raise SwitchError(f"salt must be a 32-bit value, got {salt}")
        if reta is None:
            slots = n_queues * max(1, reta_slots // n_queues)
            reta = tuple(i % n_queues for i in range(slots))
        else:
            reta = tuple(reta)
            if not reta:
                raise SwitchError("reta must have at least one slot")
            bad = [q for q in reta if not 0 <= q < n_queues]
            if bad:
                raise SwitchError(
                    f"reta entries out of range 0..{n_queues - 1}: {bad[:4]}"
                )
        self.salt = salt
        self.reta = reta

    def _hash(self, key: FlowKey) -> int:
        # Pass the salt positionally only when set so salt-less custom
        # hash functions keep working as plain ``FlowKey -> int``.
        if self.salt:
            return self.hash_fn(key, self.salt)
        return self.hash_fn(key)

    def queue_of(self, key: FlowKey) -> int:
        """The queue ``key``'s flow lands on under the current (salt, reta)."""
        if self.n_queues == 1:
            return 0
        return self.reta[self._hash(key) % len(self.reta)]

    def with_salt(self, salt: int) -> "RetaDispatcher":
        """The successor dispatcher after a re-key (same RETA)."""
        return RetaDispatcher(self.n_queues, self.hash_fn, salt=salt, reta=self.reta)

    def with_reta(self, reta: Sequence[int]) -> "RetaDispatcher":
        """The successor dispatcher after a RETA rewrite (same salt)."""
        return RetaDispatcher(self.n_queues, self.hash_fn, salt=self.salt, reta=reta)

    def __repr__(self) -> str:
        return (
            f"RetaDispatcher(n_queues={self.n_queues}, salt={self.salt:#x}, "
            f"slots={len(self.reta)})"
        )


@dataclass(frozen=True)
class RetargetReport:
    """Outcome of one :func:`retarget_trace` pass.

    Attributes:
        retargeted: keys whose free bits were ground onto the target queue.
        already_on_target: keys RSS already mapped where the plan wanted.
        stuck: keys left untouched (no free 5-tuple bits, or the grind
            budget ran out) — these stay on their natural queue.
    """

    retargeted: int = 0
    already_on_target: int = 0
    stuck: int = 0


def retarget_trace(
    keys: Sequence[FlowKey],
    flow_table: FlowTable,
    dispatcher: RssDispatcher,
    queue_for: Callable[[int, FlowKey], int],
    strategy: StrategyConfig = OVS_DEFAULT,
    seed: int = 0,
    max_tries: int = 128,
) -> tuple[list[FlowKey], RetargetReport]:
    """Craft a queue-aware variant of an adversarial trace.

    For each key the megaflow the slow path would generate is computed
    first; only bits that megaflow *wildcards* (restricted to the 5-tuple
    fields RSS reads) are ground, and every candidate is verified to
    generate the identical ``(mask, masked key)`` — so the retargeted trace
    detonates exactly the same tuple space, packet for packet, while its
    RSS placement follows ``queue_for(index, key)``.

    Returns the new key list (same length/order) and a
    :class:`RetargetReport`.
    """
    generator = MegaflowGenerator(flow_table, strategy)
    rng = random.Random(seed)
    out: list[FlowKey] = []
    report_retargeted = report_on_target = report_stuck = 0
    for index, key in enumerate(keys):
        target = queue_for(index, key) % dispatcher.n_queues
        if dispatcher.queue_of(key) == target:
            out.append(key)
            report_on_target += 1
            continue
        entry = generator.generate(key).entry
        free = [
            (field_index, FIELDS[name].full_mask & ~entry.mask.at(field_index))
            for name, field_index in zip(RSS_FIELDS, _RSS_INDICES)
        ]
        free = [(i, bits) for i, bits in free if bits]
        ground: FlowKey | None = None
        if free:
            values = list(key.values)
            for _ in range(max_tries):
                for field_index, bits in free:
                    values[field_index] = (key.at(field_index) & ~bits) | (
                        rng.getrandbits(bits.bit_length()) & bits
                    )
                candidate = FlowKey.from_values(tuple(values))
                if dispatcher.queue_of(candidate) != target:
                    continue
                check = generator.generate(candidate).entry
                if check.mask == entry.mask and check.key == entry.key:
                    ground = candidate
                    break
        if ground is None:
            out.append(key)
            report_stuck += 1
        else:
            out.append(ground)
            report_retargeted += 1
    return out, RetargetReport(
        retargeted=report_retargeted,
        already_on_target=report_on_target,
        stuck=report_stuck,
    )


def pin_to_queue(
    key: FlowKey,
    dispatcher: RssDispatcher,
    queue: int,
    field: str = "tp_src",
    start: int | None = None,
    max_tries: int = 4096,
) -> FlowKey:
    """Choose a value for ``field`` so RSS pins ``key``'s flow to ``queue``.

    The legitimate-endpoint analogue of :func:`retarget_trace`: a victim
    (or experimenter) picking a source port so its flow lands on a chosen
    PMD core.  Scans candidate values upward from ``start`` (the key's
    current value by default) and returns the first hit.
    """
    if not 0 <= queue < dispatcher.n_queues:
        raise SwitchError(f"queue {queue} out of range 0..{dispatcher.n_queues - 1}")
    definition = FIELDS[field]
    base = key[field] if start is None else start
    for offset in range(max_tries):
        candidate = key.replace(**{field: (base + offset) & definition.full_mask})
        if dispatcher.queue_of(candidate) == queue:
            return candidate
    raise SwitchError(
        f"could not pin {field} onto queue {queue} within {max_tries} candidates"
    )
