"""Least-squares calibration of the cost curves to the paper's anchors.

We cannot measure the authors' Xeon/X710/CX-4 testbed, so the absolute
cycles-per-lookup constants are fitted: for each NIC profile the relative
throughput is modelled as

    fraction(P) = min(1, 1 / (a + s*[P > 1] + b * P**gamma))

where ``P`` is the expected full-scan cost of the megaflow cache in
**normalised probe units** — calibrated single-table probes, the currency
of the probe-native cost plane (see
:meth:`repro.classifier.backend.MegaflowBackend.expected_scan_cost`).
The paper's anchors are measured on Tuple Space Search, where one probe
unit is one mask table and a full scan probes all of them, so for TSS
``P`` *is* the mask count — the mask-count reading of these curves is the
TSS special case, not a different parameterisation.  The terms have a
mechanistic reading:

* ``a`` — mask-independent per-unit cost (I/O, parsing, a microflow hit);
* ``s`` — the *microflow-thrash step*: at baseline the victim's packets hit
  the exact-match cache, but any attack traffic (with its randomized noise
  fields, §5.2) exhausts it, demoting the victim to the megaflow path.
  This one-off penalty explains the steep first drop the paper reports
  (53% of baseline at just 17 masks);
* ``b * M**gamma`` — the TSS linear mask scan, with a mild super-linearity
  (``gamma`` ≈ 1.0–1.3) capturing CPU-cache misses at thousands of masks.

Parameters are fitted in log space to the anchor points each profile
carries (:mod:`repro.switch.offload`), so relative errors stay balanced
across four orders of magnitude.  The fit is deterministic, cheap, and
cached per profile; EXPERIMENTS.md reports fitted-vs-paper values.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.optimize import least_squares

from repro.exceptions import SwitchError
from repro.switch.offload import NicProfile

__all__ = ["CurveParams", "fit_profile", "fraction_of_baseline"]


@dataclass(frozen=True)
class CurveParams:
    """Fitted parameters of ``fraction(P) = min(1, 1/(a + s·[P>1] + b·P^γ))``.

    ``P`` is a full-scan cost in normalised probe units; for TSS (where
    the anchors were measured) it equals the mask count, so the
    mask-count call sites are exact special cases, not approximations.
    """

    a: float
    s: float
    b: float
    gamma: float

    def relative_cost(self, probe_units: float) -> float:
        """Per-unit classification cost at full-scan cost ``probe_units``.

        Normalised to cost(one probe) = 1 — the single-mask baseline.
        The curve already embeds the victim's average hit position in the
        scan, so callers pass the *full*-scan cost, not a per-hit mean.
        """
        if probe_units < 0:
            raise SwitchError(f"probe cost must be >= 0, got {probe_units}")
        probe_units = max(probe_units, 1.0)  # an empty cache costs one probe
        step = self.s if probe_units > 1 else 0.0
        return (self.a + step + self.b * probe_units**self.gamma) / (self.a + self.b)

    def fraction(self, probe_units: float) -> float:
        """Fraction of baseline throughput at full-scan cost ``probe_units``."""
        probe_units = max(probe_units, 1.0) if probe_units >= 0 else _raise_negative(probe_units)
        step = self.s if probe_units > 1 else 0.0
        return min(1.0, 1.0 / (self.a + step + self.b * probe_units**self.gamma))


def _raise_negative(probe_units: float) -> float:
    raise SwitchError(f"probe cost must be >= 0, got {probe_units}")


def _fit(anchor_masks: tuple[int, ...], anchor_fractions: tuple[float, ...]) -> CurveParams:
    masks = np.asarray(anchor_masks, dtype=float)
    targets = np.asarray(anchor_fractions, dtype=float)
    step_active = (masks > 1).astype(float)

    def residuals(params: np.ndarray) -> np.ndarray:
        a, s, b, gamma = params
        pred = np.minimum(1.0, 1.0 / (a + s * step_active + b * masks**gamma))
        return np.log(pred) - np.log(targets)

    result = least_squares(
        residuals,
        x0=np.array([0.9, 0.3, 0.05, 1.1]),
        # gamma may go well below 1: software-offload units (GRO buffers)
        # amortise the scan over large copies, flattening the curve.
        bounds=(np.array([1e-9, 0.0, 1e-9, 0.4]), np.array([10.0, 5.0, 10.0, 2.0])),
        xtol=1e-12,
        ftol=1e-12,
    )
    if not result.success:
        raise SwitchError(f"cost-curve fit failed: {result.message}")
    a, s, b, gamma = result.x
    return CurveParams(a=float(a), s=float(s), b=float(b), gamma=float(gamma))


@lru_cache(maxsize=None)
def _fit_cached(anchor_items: tuple[tuple[int, float], ...]) -> CurveParams:
    masks, fractions = zip(*anchor_items)
    return _fit(masks, fractions)


def fit_profile(profile: NicProfile) -> CurveParams:
    """Fit (and cache) the cost curve for ``profile`` from its anchors."""
    if not profile.anchors:
        raise SwitchError(f"{profile.name}: profile has no anchors to fit")
    items = tuple(sorted(profile.anchors.items()))
    return _fit_cached(items)


def fraction_of_baseline(profile: NicProfile, masks: float) -> float:
    """Fraction of ``profile``'s baseline throughput at ``masks`` masks."""
    return fit_profile(profile).fraction(masks)
