"""Zero-copy shared-memory batch transport for the process executor.

PR 5's ``process`` executor round-trips every batch as pickled ``FlowKey``
lists and ``BatchVerdicts`` over pipes — the committed 1-CPU baseline even
records 0.75× against serial, pure IPC tax.  This module is the data plane
that replaces it: per-worker SPSC byte rings over
:mod:`multiprocessing.shared_memory`, carrying

* **submit records** — a batch of keys as its ``(N x N_COLUMNS)`` uint64
  column matrix (the :data:`repro.classifier.kernel.COLUMN_SPLITS` layout,
  i.e. exactly the accelerator's wire format), written straight from the
  numpy buffer into the ring via ``memoryview`` — no pickle, no
  per-key objects on the wire;
* **complete records** — the verdicts as numeric arrays (action kind /
  out port / path / ``masks_inspected`` / ``rules_examined`` /
  ``mask_counts`` / ``probe_costs``) plus a pickled *sparse* residue of
  installed entries (empty on a hot replay, which is the case being
  optimised).

The pipe protocol remains the control plane: a batch is announced by a tiny
``("shm_batch", seq)`` doorbell message after its record is in the ring, and
the worker's pipe reply carries the completing sequence number — so there is
no shared-memory spin-wait (a busy-poll would burn the second core the
executor exists to exploit).  The embedded sequence number makes torn or
re-ordered records detectable: a decoder finding a record whose sequence
differs from its doorbell raises instead of mis-attributing verdicts.  A
record that does not fit the ring (oversized batch, slow consumer) simply
falls back to the PR 5 pickled-pipe path for that message — the transports
are verdict-identical, so the fallback is a pure performance event.

Ring layout: a 24-byte header of three little-endian u64 control words
(``head`` = bytes consumed, ``tail`` = bytes produced, both monotonic;
``capacity``), then ``capacity`` data bytes.  Records are 8-aligned with a
u64 length prefix; since offsets and capacity stay ≡ 0 (mod 8) the prefix
never wraps, and payloads wrap with a split copy.  The capacity lives in
the header because ``shared_memory`` rounds segment sizes up to a page on
attach.  Single producer, single consumer, and the doorbell's pipe write
orders the ring stores before the reader looks — no locks needed.
"""

from __future__ import annotations

import pickle
from dataclasses import replace as dc_replace
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.classifier.actions import Action, ActionKind
from repro.classifier.kernel import COLUMN_SPLITS, N_COLUMNS, to_column_matrix
from repro.exceptions import SwitchError
from repro.packet.fields import FIELD_ORDER, FlowKey
from repro.switch.datapath import BatchVerdicts, PacketVerdict, PathTaken

__all__ = [
    "ShmRing",
    "encode_batch",
    "decode_batch",
    "encode_verdicts",
    "decode_verdicts",
    "matrix_to_keys",
]

_HEADER_BYTES = 24


def _aligned(n: int) -> int:
    return (n + 7) & ~7


def _tracker_forget(shm: shared_memory.SharedMemory) -> None:
    """Take the segment out of the resource tracker's hands.

    Ring lifetime is managed explicitly (the owner unlinks at close), and
    under the fork start method parent and workers share one tracker — an
    auto-registration surviving in a worker would either double-unlink the
    parent's segment or spray ``KeyError`` noise from the tracker process.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass


class ShmRing:
    """A single-producer single-consumer byte ring in shared memory."""

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self._shm = shm
        self._owner = owner
        self._ctrl = shm.buf.cast("Q")  # [head, tail, capacity, ...page pad]
        self.capacity = int(self._ctrl[2])
        self._data = shm.buf[_HEADER_BYTES:_HEADER_BYTES + self.capacity]
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def create(cls, capacity: int = 1 << 20) -> "ShmRing":
        """Allocate a fresh ring (the creating side owns the segment)."""
        capacity = _aligned(max(capacity, 4096))
        shm = shared_memory.SharedMemory(create=True, size=_HEADER_BYTES + capacity)
        _tracker_forget(shm)
        ctrl = shm.buf.cast("Q")
        ctrl[0] = 0
        ctrl[1] = 0
        ctrl[2] = capacity
        ctrl.release()
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Map an existing ring by name (non-owning side).

        The attaching process tells the resource tracker to forget the
        segment: the creator owns unlinking, and a worker exiting must not
        tear the ring down under the parent.
        """
        shm = shared_memory.SharedMemory(name=name)
        _tracker_forget(shm)
        return cls(shm, owner=False)

    # -- byte plumbing -----------------------------------------------------------
    def _copy_in(self, pos: int, view: memoryview) -> int:
        n = len(view)
        end = pos + n
        if end <= self.capacity:
            self._data[pos:end] = view
        else:
            split = self.capacity - pos
            self._data[pos:] = view[:split]
            self._data[: n - split] = view[split:]
        return (pos + n) % self.capacity

    def try_write(self, chunks) -> bool:
        """Append one record built from ``chunks`` (bytes-like, zero-copy
        where the chunk is already a contiguous buffer); False if it does
        not fit the free space."""
        views = []
        total = 0
        for chunk in chunks:
            view = chunk if isinstance(chunk, memoryview) else memoryview(chunk)
            if view.format != "B":
                view = view.cast("B")
            views.append(view)
            total += len(view)
        record = 8 + _aligned(total)
        head = int(self._ctrl[0])
        tail = int(self._ctrl[1])
        if record > self.capacity - (tail - head):
            return False
        pos = tail % self.capacity
        # The aligned 8-byte length prefix never wraps (capacity ≡ 0 mod 8).
        self._data[pos:pos + 8] = total.to_bytes(8, "little")
        pos = (pos + 8) % self.capacity
        for view in views:
            pos = self._copy_in(pos, view)
        self._ctrl[1] = tail + record
        return True

    def try_read(self) -> bytes | None:
        """Pop the oldest record's payload, or None when the ring is empty."""
        head = int(self._ctrl[0])
        tail = int(self._ctrl[1])
        if head == tail:
            return None
        pos = head % self.capacity
        length = int.from_bytes(self._data[pos:pos + 8], "little")
        pos = (pos + 8) % self.capacity
        end = pos + length
        if end <= self.capacity:
            payload = bytes(self._data[pos:end])
        else:
            split = self.capacity - pos
            payload = bytes(self._data[pos:]) + bytes(self._data[:length - split])
        self._ctrl[0] = head + 8 + _aligned(length)
        return payload

    def free_bytes(self) -> int:
        return self.capacity - (int(self._ctrl[1]) - int(self._ctrl[0]))

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Release the local mapping (owner additionally unlinks)."""
        if self._closed:
            return
        self._closed = True
        self._data.release()
        self._ctrl.release()
        self._shm.close()
        if self._owner:
            try:
                # unlink() un-registers as a side effect; re-register first
                # so the tracker's books stay balanced (see _tracker_forget).
                resource_tracker.register(self._shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:
        return f"ShmRing({self.name}, {self.capacity} bytes)"


# -- batch (submit-side) codec ---------------------------------------------------
def _as_bytes(array: np.ndarray) -> memoryview:
    return memoryview(np.ascontiguousarray(array)).cast("B")


def encode_batch(ring: ShmRing, seq: int, jobs, now: float | None) -> bool:
    """Write one submit record: ``jobs`` is ``[(shard_id, keys), ...]``.

    Returns False (ring full / batch oversized) without side effects — the
    caller then ships the batch over the pipe instead.
    """
    header = np.zeros(4, dtype=np.uint64)
    header[0] = seq
    header[1] = len(jobs)
    header[2] = 1 if now is None else 0
    if now is not None:
        header.view(np.float64)[3] = now
    chunks = [_as_bytes(header)]
    for shard_id, keys in jobs:
        chunks.append(_as_bytes(np.array([shard_id, len(keys)], dtype=np.uint64)))
        chunks.append(_as_bytes(to_column_matrix([k.values for k in keys])))
    return ring.try_write(chunks)


# Per-field (lo column, hi column or None) plan, derived once from
# COLUMN_SPLITS: >64-bit fields travel as a (hi, lo) column pair.
_FIELD_COLS: list[tuple[int, int | None]] = [(-1, None)] * len(FIELD_ORDER)
_hi_cols: dict[int, int] = {}
for _column, (_field, _shift) in enumerate(COLUMN_SPLITS):
    if _shift:
        _hi_cols[_field] = _column
    else:
        _FIELD_COLS[_field] = (_column, _hi_cols.get(_field))
del _hi_cols


def matrix_to_keys(matrix: np.ndarray) -> list[FlowKey]:
    """Rebuild :class:`FlowKey` objects from one uint64 column matrix.

    Decoded column-wise: each 64-bit field's value list IS its column
    (one C-level ``tolist``), and only the split >64-bit fields pay a
    python recombination loop — the decode cost is then dominated by the
    key construction itself, not the layout walk.
    """
    columns = matrix.T.tolist()  # python ints: exact 64-bit values
    per_field = [
        columns[lo]
        if hi is None
        else [low | (high << 64) for low, high in zip(columns[lo], columns[hi])]
        for lo, hi in _FIELD_COLS
    ]
    return [FlowKey.from_values(values) for values in zip(*per_field)]


def decode_batch(payload: bytes, expected_seq: int):
    """Parse one submit record; returns ``(jobs, now)`` with jobs as
    ``(shard_id, keys, rows)`` triples.

    ``rows`` is the wire column matrix itself: the layout is the scan
    kernels' native key format, so the receiving datapath feeds it
    straight into its batch scanner instead of re-deriving it from the
    rebuilt :class:`FlowKey` objects.

    Raises :class:`SwitchError` when the embedded sequence number does not
    match the doorbell's — a torn or re-ordered record must never be
    silently attributed to the wrong batch.
    """
    words = np.frombuffer(payload, dtype=np.uint64)
    seq = int(words[0])
    if seq != expected_seq:
        raise SwitchError(
            f"shm batch record out of sequence: doorbell {expected_seq}, "
            f"ring {seq} (torn or re-ordered record)"
        )
    n_jobs = int(words[1])
    now = None if int(words[2]) else float(words[3:4].view(np.float64)[0])
    offset = 4
    jobs = []
    for _ in range(n_jobs):
        shard_id = int(words[offset])
        n_keys = int(words[offset + 1])
        offset += 2
        matrix = words[offset:offset + n_keys * N_COLUMNS].reshape(n_keys, N_COLUMNS)
        offset += n_keys * N_COLUMNS
        jobs.append((shard_id, matrix_to_keys(matrix), matrix))
    return jobs, now


# -- verdict (complete-side) codec ------------------------------------------------
_KIND_LIST = list(ActionKind)
_KIND_CODE = {kind: code for code, kind in enumerate(_KIND_LIST)}
_PATH_LIST = list(PathTaken)
_PATH_CODE = {path: code for code, path in enumerate(_PATH_LIST)}

#: Interned actions: verdict decoding reuses one Action per (kind, port).
_ACTION_CACHE: dict[tuple[int, int], Action] = {}


def _action_of(kind_code: int, port: int) -> Action:
    cached = _ACTION_CACHE.get((kind_code, port))
    if cached is None:
        cached = Action(_KIND_LIST[kind_code], None if port < 0 else port)
        _ACTION_CACHE[(kind_code, port)] = cached
    return cached


def encode_verdicts(ring: ShmRing, seq: int, results) -> bool:
    """Write one complete record: ``results`` is ``[(sid, BatchVerdicts)]``.

    Everything per-packet travels as numeric arrays; only installed
    entries (slow-path upcalls — absent on a hot replay) ride in a pickled
    sparse residue.  Returns False when the record does not fit.
    """
    chunks = [_as_bytes(np.array([seq, len(results)], dtype=np.uint64))]
    residue = []
    for shard_id, batch in results:
        verdicts = batch.verdicts
        n = len(verdicts)
        has_costs = 1 if batch.probe_costs else 0
        chunks.append(
            _as_bytes(np.array([shard_id, n, has_costs, batch.upcalls], dtype=np.uint64))
        )
        table = np.empty((6, n), dtype=np.int64)
        table[0] = [_KIND_CODE[v.action.kind] for v in verdicts]
        table[1] = [
            -1 if v.action.out_port is None else v.action.out_port for v in verdicts
        ]
        table[2] = [_PATH_CODE[v.path] for v in verdicts]
        table[3] = [v.masks_inspected for v in verdicts]
        table[4] = [v.rules_examined for v in verdicts]
        table[5] = batch.mask_counts
        chunks.append(_as_bytes(table))
        if has_costs:
            chunks.append(_as_bytes(np.asarray(batch.probe_costs, dtype=np.float64)))
        residue.extend(
            (shard_id, i, v.installed)
            for i, v in enumerate(verdicts)
            if v.installed is not None
        )
    blob = pickle.dumps(residue, protocol=pickle.HIGHEST_PROTOCOL) if residue else b""
    chunks.append(_as_bytes(np.array([len(blob)], dtype=np.uint64)))
    if blob:
        chunks.append(blob)
    return ring.try_write(chunks)


def decode_verdicts(payload: bytes, expected_seq: int):
    """Parse one complete record back into ``[(sid, BatchVerdicts)]``."""
    words = np.frombuffer(payload, dtype=np.uint64, count=len(payload) // 8)
    seq = int(words[0])
    if seq != expected_seq:
        raise SwitchError(
            f"shm verdict record out of sequence: doorbell {expected_seq}, "
            f"ring {seq} (torn or re-ordered record)"
        )
    n_shards = int(words[1])
    offset = 2
    decoded: list[
        tuple[int, list[PacketVerdict], tuple[int, ...], tuple[float, ...], int]
    ] = []
    for _ in range(n_shards):
        shard_id = int(words[offset])
        n = int(words[offset + 1])
        has_costs = int(words[offset + 2])
        upcalls = int(words[offset + 3])
        offset += 4
        table = words[offset:offset + 6 * n].view(np.int64).reshape(6, n)
        offset += 6 * n
        costs: tuple[float, ...] = ()
        if has_costs:
            costs = tuple(words[offset:offset + n].view(np.float64).tolist())
            offset += n
        kinds, ports, paths, masks, rules = (table[i].tolist() for i in range(5))
        verdicts = [
            PacketVerdict(
                action=_action_of(kinds[i], ports[i]),
                path=_PATH_LIST[paths[i]],
                masks_inspected=masks[i],
                rules_examined=rules[i],
            )
            for i in range(n)
        ]
        decoded.append((shard_id, verdicts, tuple(table[5].tolist()), costs, upcalls))
    blob_len = int(words[offset])
    if blob_len:
        blob = payload[8 * (offset + 1): 8 * (offset + 1) + blob_len]
        by_shard = {shard_id: verdicts for shard_id, verdicts, _, _, _ in decoded}
        for shard_id, index, entry in pickle.loads(blob):
            verdicts = by_shard[shard_id]
            verdicts[index] = dc_replace(verdicts[index], installed=entry)
    return [
        (shard_id, BatchVerdicts(tuple(verdicts), mask_counts, costs, upcalls))
        for shard_id, verdicts, mask_counts, costs, upcalls in decoded
    ]
