"""The simulated OVS datapath: fast path / slow path pipeline (Fig. 10).

A packet entering the switch traverses, in order:

1. the **microflow cache** — exact match on all fields (short-term memory);
2. optionally the **kernel mask cache** — a memo of which megaflow mask
   matched this flow last time (one hash probe instead of a scan);
3. the **megaflow cache** — a pluggable :class:`MegaflowBackend` (Tuple
   Space Search by default; ``DatapathConfig.megaflow_backend`` selects
   alternatives such as the TupleChain-style grouped backend);
4. the **slow path** — an upcall running the full ordered flow-table
   lookup, which generates and installs a new megaflow entry.

The datapath reports, for every packet, which level answered and how much
work the lookup did; the cost model and network simulator turn that into
throughput.  It also owns the behavioural quirks the paper depends on:

* caches are flushed when the flow table changes (revalidation) — how the
  attacker's mid-run ACL injection detonates in Fig. 8c;
* megaflow entries deleted by :class:`~repro.core.mitigation.MFCGuard` are
  never re-installed ("once an MFC entry is deleted it will never be
  sparked again", §8) — matching packets stay on the slow path.
"""

from __future__ import annotations

import enum
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.classifier.actions import Action
from repro.classifier.backend import (
    BackendRebuild,
    MegaflowBackend,
    MegaflowEntry,
    backend_name_of,
    make_megaflow_backend,
)
from repro.classifier.flowtable import FlowTable
from repro.classifier.microflow import MicroflowCache
from repro.classifier.slowpath import (
    OVS_DEFAULT,
    MegaflowGenerator,
    SlowPathResult,
    StrategyConfig,
)
from repro.exceptions import SwitchError
from repro.packet.fields import FlowKey, FlowMask
from repro.packet.packet import Packet
from repro.switch.maskcache import KernelMaskCache

__all__ = [
    "PathTaken",
    "PacketVerdict",
    "BatchVerdicts",
    "CoreReport",
    "DatapathConfig",
    "Datapath",
]


class PathTaken(enum.Enum):
    """Which pipeline level decided the packet's fate."""

    MICROFLOW = "microflow"
    MASK_CACHE = "mask_cache"
    MEGAFLOW = "megaflow"
    SLOW_PATH = "slow_path"


@dataclass(frozen=True)
class PacketVerdict:
    """Per-packet processing report.

    Attributes:
        action: the final decision.
        path: pipeline level that answered.
        masks_inspected: lookup work in the megaflow backend's native
            probe units — mask tables probed for TSS, chain probes for
            grouped backends (0 for microflow hits, 1 for mask-cache hits).
        rules_examined: flow-table rules visited (slow path only).
        installed: megaflow entry installed by this packet, if any.
    """

    action: Action
    path: PathTaken
    masks_inspected: int = 0
    rules_examined: int = 0
    installed: MegaflowEntry | None = None

    @property
    def is_upcall(self) -> bool:
        return self.path is PathTaken.SLOW_PATH


@dataclass(frozen=True)
class BatchVerdicts:
    """Result of one :meth:`Datapath.process_batch` call.

    Attributes:
        verdicts: one :class:`PacketVerdict` per input key, in order —
            verdict-for-verdict identical to calling :meth:`Datapath.process`
            sequentially.
        mask_counts: the megaflow mask count *before* each packet was
            processed — the tuple space's *size*, still the detection /
            figure-of-merit view, and the TSS special case of the cost
            currency.
        probe_costs: the megaflow backend's expected full-scan cost (in
            normalised probe units) *before* each packet was processed —
            what pricing work costs at classification time (Observation 1
            generalised: costs grow mid-batch as upcalls install masks, so
            cost accounting needs the per-packet value, not the
            batch-entry snapshot).  Equals ``max(mask_counts[i], 1)`` for
            TSS; diverges for backends whose scan cost is sublinear in the
            mask count.
        upcalls: number of packets that went to the slow path — counted
            during batch construction (O(1) to read), not re-summed over
            the verdicts on every access.  Constructors that don't know
            the count (or reconstruct from the wire) may omit it; it is
            then derived once in ``__post_init__``.
    """

    verdicts: tuple[PacketVerdict, ...]
    mask_counts: tuple[int, ...]
    probe_costs: tuple[float, ...] = ()
    upcalls: int = -1

    def __post_init__(self) -> None:
        if self.upcalls < 0:
            object.__setattr__(
                self, "upcalls", sum(1 for v in self.verdicts if v.is_upcall)
            )

    def __len__(self) -> int:
        return len(self.verdicts)

    def __iter__(self) -> Iterator[PacketVerdict]:
        return iter(self.verdicts)

    def __getitem__(self, index: int) -> PacketVerdict:
        return self.verdicts[index]


@dataclass(frozen=True)
class CoreReport:
    """One PMD core's cost-relevant cache sizes, snapshotted together.

    The per-tick quantities the hypervisor prices work with — taking them
    as one record (and, on a sharded datapath, one executor round trip)
    instead of three attribute reads keeps per-core accounting cheap when
    the shards live in worker processes.

    Attributes:
        n_masks: the shard's installed distinct-mask count (detection
            figure of merit; drives the mask-memo protection quirk).
        n_megaflows: the shard's installed entry count (revalidation cost).
        scan_cost: the shard's expected full-scan cost in normalised probe
            units (what victim/attack work is priced at).
    """

    n_masks: int
    n_megaflows: int
    scan_cost: float


@dataclass(frozen=True)
class DatapathConfig:
    """Tunable behaviour of the simulated datapath.

    Attributes:
        microflow_capacity: entries in the exact-match cache (0 disables).
        enable_mask_cache: kernel mask memo (OpenStack quirk, §5.5).
        mask_cache_size: slots in the mask memo.
        strategy: megaflow generation strategy (see
            :mod:`repro.classifier.slowpath`).
        max_megaflows: OVS-style flow limit; upcalls stop installing new
            entries (but still classify) once reached.
        idle_timeout: seconds of inactivity before the revalidator may
            evict an entry (the paper's 10 s).
        check_invariants: verify Inv(2) on every install (tests).
        megaflow_backend: registry name of the level-3 megaflow cache
            implementation (see :mod:`repro.classifier.backend`) —
            ``"tss"`` is the paper's Tuple Space Search; ``"tuplechain"``
            the grouped/chained §7-style defense backend.  Applied per
            shard on a sharded datapath.
        executor: shard-execution strategy for a sharded datapath (see
            :mod:`repro.switch.executor`): ``"serial"`` (the reference),
            ``"thread"`` (GIL-releasing numpy kernels overlap), or
            ``"process"`` (worker processes own the shards — true
            multi-core wall clock).  Ignored by a plain datapath.
        executor_workers: worker cap for pooled executors (0 → one worker
            per shard).
        executor_transport: data-plane transport for the ``process``
            executor — ``"shm"`` (zero-copy shared-memory rings with a
            pipe doorbell; falls back to pipes per oversized batch) or
            ``"pipe"`` (the PR 5 pickled-batch protocol).  Control ops
            and flow-table deltas always travel the pipe.
        executor_pinning: optional per-worker CPU ids for
            ``os.sched_setaffinity`` pinning of ``process`` workers
            (worker *i* pins to ``executor_pinning[i % len]``); empty →
            no pinning.
        scan_kernel: which :mod:`repro.classifier.kernel` implementation
            computes batch scan plans for backends that have one —
            ``"auto"`` (compiled cffi kernel when available, numpy
            otherwise), ``"numpy"``, or ``"cffi"``.
        batch_upcalls: run :meth:`Datapath.process_batch` slow-path misses
            through the batched upcall engine — coalesced megaflow
            generation (:meth:`MegaflowGenerator.generate_batch` over the
            burst's guaranteed misses, one generation per distinct
            decision path) and burst-amortised backend index appends
            (:meth:`MegaflowStore.index_burst`).  Verdict-for-verdict and
            install-for-install identical to the scalar slow path
            (``False``, the per-packet reference the differential tests
            and ``bench_upcall`` compare against).
    """

    microflow_capacity: int = 256
    enable_mask_cache: bool = False
    mask_cache_size: int = 256
    strategy: StrategyConfig = OVS_DEFAULT
    max_megaflows: int = 200_000
    idle_timeout: float = 10.0
    check_invariants: bool = False
    megaflow_backend: str = "tss"
    executor: str = "serial"
    executor_workers: int = 0
    executor_transport: str = "shm"
    executor_pinning: tuple[int, ...] = ()
    scan_kernel: str = "auto"
    batch_upcalls: bool = True


@dataclass
class DatapathStats:
    """Aggregate counters, reset with :meth:`Datapath.reset_stats`."""

    packets: int = 0
    microflow_hits: int = 0
    mask_cache_hits: int = 0
    megaflow_hits: int = 0
    upcalls: int = 0
    batches: int = 0
    installs: int = 0
    install_rejected: int = 0
    dead_entry_suppressed: int = 0
    flushes: int = 0
    masks_inspected_total: int = 0


class Datapath:
    """The simulated software switch datapath.

    Args:
        flow_table: the slow-path classifier (subscribed for cache flushes).
        config: behaviour knobs (``config.megaflow_backend`` selects the
            level-3 cache implementation from the backend registry).
        megaflows: a pre-built megaflow backend to use instead of building
            one from the config (dependency injection for the §7 adapter
            and the tests; must be empty).
    """

    def __init__(
        self,
        flow_table: FlowTable,
        config: DatapathConfig | None = None,
        megaflows: MegaflowBackend | None = None,
    ):
        self.config = config or DatapathConfig()
        self.flow_table = flow_table
        if megaflows is not None and len(megaflows):
            # A pre-warmed cache would serve entries no upcall installed
            # (bypassing stats and the dead-entry quirk), and a shared one
            # would be flushed by the other datapath's revalidation.
            raise SwitchError(
                f"injected megaflow backend must be empty, has {len(megaflows)} entries"
            )
        self.megaflows: MegaflowBackend = (
            megaflows
            if megaflows is not None
            else make_megaflow_backend(
                self.config.megaflow_backend,
                check_invariants=self.config.check_invariants,
                scan_kernel=self.config.scan_kernel,
            )
        )
        self.microflows: MicroflowCache | None = (
            MicroflowCache(self.config.microflow_capacity)
            if self.config.microflow_capacity > 0
            else None
        )
        self.mask_cache: KernelMaskCache | None = (
            KernelMaskCache(self.config.mask_cache_size)
            if self.config.enable_mask_cache
            else None
        )
        self.generator = MegaflowGenerator(flow_table, self.config.strategy)
        self._dead_entries: set[tuple[FlowMask, tuple[int, ...]]] = set()
        self.stats = DatapathStats()
        self.now = 0.0
        # Live backend migration (see migrate_backend_*): at most one
        # rebuild in flight per datapath/shard.
        self._rebuild: BackendRebuild | None = None
        self._migration_swaps = 0
        self._last_swap_at: float | None = None
        self._last_rebuild_memory = 0
        flow_table.subscribe(self.flush_caches)

    # -- sharding surface --------------------------------------------------------
    # A plain Datapath is the degenerate one-shard case of the multi-PMD
    # model; exposing the same surface as ShardedDatapath lets the
    # hypervisor, revalidator, MFCGuard and dpctl treat both uniformly.
    @property
    def n_shards(self) -> int:
        """Number of PMD shards (always 1 for an unsharded datapath)."""
        return 1

    @property
    def shards(self) -> tuple["Datapath", ...]:
        """The per-PMD shard datapaths (just this one)."""
        return (self,)

    def shard_of(self, key: FlowKey) -> int:
        """RSS queue of ``key`` (always 0 without RSS)."""
        return 0

    def core_report(self) -> list["CoreReport"]:
        """Per-core cost snapshot (one entry for the single core)."""
        return [CoreReport(self.n_masks, self.n_megaflows, self.scan_cost)]

    def maintenance(self):
        """Context for management sweeps; trivial without an executor."""
        return nullcontext()

    def close(self) -> None:
        """Release execution resources (nothing to release unsharded)."""

    # -- cache sizes --------------------------------------------------------------
    @property
    def n_masks(self) -> int:
        """Current megaflow mask count — the attack's figure of merit."""
        return self.megaflows.n_masks

    @property
    def n_megaflows(self) -> int:
        """Current megaflow entry count."""
        return self.megaflows.n_entries

    @property
    def scan_cost(self) -> float:
        """Expected full-scan cost of the megaflow cache (probe units).

        The probe-native counterpart of :attr:`n_masks`: what one lookup
        that misses every fast level costs right now, in calibrated
        single-table-probe units.  Equals ``max(n_masks, 1)`` for TSS.
        """
        return self.megaflows.expected_scan_cost()

    # -- packet processing ----------------------------------------------------------
    def _advance_clock(self, now: float | None) -> None:
        if now is not None:
            if now < self.now:
                raise SwitchError(f"time went backwards: {now} < {self.now}")
            self.now = now

    def _microflow_level(self, key: FlowKey) -> PacketVerdict | None:
        """Level 1: microflow exact-match cache."""
        entry = self.microflows.lookup(key)
        if entry is None:
            return None
        if self.megaflows.find_entry(entry):
            entry.hits += 1
            entry.last_used = self.now
            self.stats.microflow_hits += 1
            return PacketVerdict(action=entry.action, path=PathTaken.MICROFLOW)
        self.microflows.invalidate(entry)  # stale pointer
        return None

    def _mask_cache_level(self, key: FlowKey) -> PacketVerdict | None:
        """Level 2: kernel mask cache (single-table probe)."""
        hinted = self.mask_cache.probe(key)
        if hinted is None:
            return None
        entry = self.megaflows.probe_mask(hinted, key, now=self.now)
        if entry is None:
            return None
        self.stats.mask_cache_hits += 1
        self.stats.masks_inspected_total += 1
        self._remember(key, entry)
        return PacketVerdict(
            action=entry.action, path=PathTaken.MASK_CACHE, masks_inspected=1
        )

    def _fast_levels(self, key: FlowKey) -> PacketVerdict | None:
        """Levels 1-2: microflow cache, then kernel mask cache."""
        if self.microflows is not None:
            verdict = self._microflow_level(key)
            if verdict is not None:
                return verdict
        if self.mask_cache is not None:
            verdict = self._mask_cache_level(key)
            if verdict is not None:
                return verdict
        return None

    def _scan_levels(self, key: FlowKey, result) -> PacketVerdict:
        """Levels 3-4: settle a TSS scan result; upcall on a miss."""
        self.stats.masks_inspected_total += result.masks_inspected
        if result.entry is not None:
            self.stats.megaflow_hits += 1
            self._remember(key, result.entry)
            return PacketVerdict(
                action=result.entry.action,
                path=PathTaken.MEGAFLOW,
                masks_inspected=result.masks_inspected,
            )
        return self._upcall(key, scanned=result.masks_inspected)

    def process(self, key: FlowKey, now: float | None = None) -> PacketVerdict:
        """Classify one packet (by flow key) through the full pipeline."""
        self._advance_clock(now)
        self.stats.packets += 1
        verdict = self._fast_levels(key)
        if verdict is not None:
            return verdict
        return self._scan_levels(key, self.megaflows.lookup(key, now=self.now))

    def process_batch(
        self,
        keys: Sequence[FlowKey],
        now: float | None = None,
        rows: "np.ndarray | None" = None,
    ) -> BatchVerdicts:
        """Classify a whole batch of packets through the pipeline.

        Semantically identical to calling :meth:`process` per key in
        order — same verdicts, same cache mutations, same statistics —
        but the level-3 tuple-space scan runs through the vectorised
        batch scanner, which amortises the (keys x masks) mask/hash work
        across the batch the way OVS/DPDK amortise per-packet overhead
        over ~32-packet rx bursts.  Levels 1/2 and upcall *settlement*
        (install, stats, flow limit) stay per-key because each packet's
        probe can depend on the caches the previous packet just touched
        (a batch of duplicates must hit the microflow its first packet
        installed).

        With ``config.batch_upcalls`` (the default) megaflow *generation*
        is additionally batched: on the first slow-path miss the scanner's
        guaranteed-miss set for the rest of the burst is generated in one
        :meth:`MegaflowGenerator.generate_batch` call, packets spawning
        the same megaflow share one generation (OVS handler dedup), and
        the backend's accelerator appends amortise to one pass per burst
        (:meth:`MegaflowStore.index_burst`).  Generation is pure — it
        reads only the flow table — so pre-generating for a key that ends
        up hitting a mid-batch install observably changes nothing, and the
        batched path stays verdict-for-verdict identical to the scalar
        one.

        ``rows`` optionally supplies ``keys``' uint64 column matrix when
        the caller already has it (the shared-memory transport's wire
        format is exactly this layout) — purely a recomputation saving,
        never a semantic input.
        """
        self._advance_clock(now)
        keys = list(keys)
        self.stats.batches += 1
        verdicts: list[PacketVerdict] = []
        mask_counts: list[int] = []
        probe_costs: list[float] = []
        upcalls = 0
        batched = self.config.batch_upcalls
        gen_memo: dict[tuple[int, ...], "SlowPathResult"] = {}
        scanner = self.megaflows.batch_scanner(keys, now=self.now, rows=rows)
        burst = self.megaflows.index_burst() if batched else nullcontext()
        with burst:
            for i, key in enumerate(keys):
                self.stats.packets += 1
                mask_counts.append(self.megaflows.n_masks)
                probe_costs.append(self.megaflows.expected_scan_cost())
                verdict = self._fast_levels(key)
                if verdict is None:
                    result = scanner.result(i)
                    if batched and result.entry is None:
                        self.stats.masks_inspected_total += result.masks_inspected
                        slow = gen_memo.get(key.values)
                        if slow is None:
                            # Coalesce: generate for every key the scanner
                            # already knows will miss, so later upcalls in
                            # the burst (and duplicate decision paths) are
                            # memo hits.
                            cohort = [key]
                            seen = {key.values}
                            for j in scanner.plan_misses(i):
                                values = keys[j].values
                                if values not in seen:
                                    seen.add(values)
                                    cohort.append(keys[j])
                            for miss_key, miss_result in zip(
                                cohort, self.generator.generate_batch(cohort)
                            ):
                                gen_memo[miss_key.values] = miss_result
                            slow = gen_memo[key.values]
                        verdict = self._install_upcall(key, slow, result.masks_inspected)
                        upcalls += 1
                    else:
                        verdict = self._scan_levels(key, result)
                        if verdict.is_upcall:
                            upcalls += 1
                    if verdict.installed is not None:
                        scanner.note_inserted(verdict.installed)
                verdicts.append(verdict)
        return BatchVerdicts(
            verdicts=tuple(verdicts),
            mask_counts=tuple(mask_counts),
            probe_costs=tuple(probe_costs),
            upcalls=upcalls,
        )

    def process_packet(self, packet: Packet, in_port: int = 0, now: float | None = None) -> PacketVerdict:
        """Classify a concrete :class:`Packet` (wire-format convenience)."""
        return self.process(packet.flow_key(in_port=in_port), now=now)

    def process_packet_batch(
        self, packets: Iterable[Packet], in_port: int = 0, now: float | None = None
    ) -> BatchVerdicts:
        """Batch-classify concrete :class:`Packet` objects."""
        return self.process_batch(
            [packet.flow_key(in_port=in_port) for packet in packets], now=now
        )

    def _upcall(self, key: FlowKey, scanned: int) -> PacketVerdict:
        """Scalar slow path: generate for one key, then settle."""
        return self._install_upcall(key, self.generator.generate(key), scanned)

    def _install_upcall(
        self, key: FlowKey, result: "SlowPathResult", scanned: int
    ) -> PacketVerdict:
        """Settle one upcall: stats, dead-entry/flow-limit gates, install.

        Generation and settlement are split so the batched engine can
        share one generated result across coalesced upcalls while keeping
        the per-packet settlement order (and therefore all accounting)
        identical to the scalar path.
        """
        self.stats.upcalls += 1
        entry = result.entry
        installed: MegaflowEntry | None = None
        if (entry.mask, entry.key) in self._dead_entries:
            # §8 quirk: deleted megaflows never re-spark; stay on slow path.
            self.stats.dead_entry_suppressed += 1
        elif self.megaflows.n_entries >= self.config.max_megaflows:
            self.stats.install_rejected += 1
        else:
            installed = self.megaflows.insert(entry, now=self.now)
            self.stats.installs += 1
            self._remember(key, installed)
        return PacketVerdict(
            action=entry.action,
            path=PathTaken.SLOW_PATH,
            masks_inspected=scanned,
            rules_examined=result.rules_examined,
            installed=installed,
        )

    def _remember(self, key: FlowKey, entry: MegaflowEntry) -> None:
        if self.microflows is not None:
            self.microflows.insert(key, entry)
        if self.mask_cache is not None:
            self.mask_cache.update(key, entry.mask)

    # -- management operations ---------------------------------------------------------
    def kill_entry(self, entry: MegaflowEntry, permanent: bool = True) -> bool:
        """Remove a megaflow (MFCGuard's delete).

        With ``permanent`` (the documented OVS quirk) matching packets are
        processed by the slow path forever after; :meth:`reinject` undoes it.
        """
        removed = self.megaflows.remove(entry)
        if self.microflows is not None:
            self.microflows.invalidate(entry)
        if self.mask_cache is not None:
            self.mask_cache.invalidate_mask(entry.mask)
        if permanent:
            self._dead_entries.add((entry.mask, entry.key))
        return removed

    def reinject(self, entry: MegaflowEntry) -> None:
        """Manually re-allow an entry previously killed permanently."""
        self._dead_entries.discard((entry.mask, entry.key))

    def flush_caches(self) -> None:
        """Drop all cached state (flow-table change revalidation)."""
        self.megaflows.flush()
        if self.microflows is not None:
            self.microflows.flush()
        if self.mask_cache is not None:
            self.mask_cache.flush()
        self.stats.flushes += 1

    def evict_idle(self, now: float | None = None) -> list[MegaflowEntry]:
        """Evict megaflows idle past the configured timeout."""
        if now is not None:
            self.now = max(self.now, now)
        evicted = self.megaflows.evict_idle(self.now, self.config.idle_timeout)
        if evicted:
            if self.microflows is not None:
                self.microflows.invalidate_many(evicted)
            if self.mask_cache is not None:
                self.mask_cache.invalidate_masks(entry.mask for entry in evicted)
        return evicted

    # -- live backend migration ---------------------------------------------------
    # The rebuild runs *on this object* wherever it lives: under the
    # ``process`` executor these methods are invoked inside the owning
    # worker (via the control pipe's shard-call protocol), so entry objects
    # never cross a process boundary — the status dicts below are the only
    # thing shipped back, and they are plain picklable scalars.
    def migration_status(self) -> dict:
        """The shard's backend + migration state as one picklable record."""
        rebuild = self._rebuild
        if rebuild is not None:
            status = "rebuilding"
            rebuild_memory = rebuild.target.memory_bytes()
        else:
            status = "swapped" if self._migration_swaps else "idle"
            rebuild_memory = self._last_rebuild_memory
        return {
            "status": status,
            "backend": backend_name_of(self.megaflows) or type(self.megaflows).__name__,
            "target": rebuild.target_kind if rebuild is not None else None,
            "progress": rebuild.progress if rebuild is not None else 1.0,
            "rebuild_done": rebuild.done if rebuild is not None else False,
            "entries_copied": rebuild.entries_copied if rebuild is not None else 0,
            "journal_replayed": rebuild.journal_replayed if rebuild is not None else 0,
            "rebuild_memory_bytes": rebuild_memory,
            "n_masks": self.n_masks,
            "n_entries": self.n_megaflows,
            "scan_cost": self.scan_cost,
            "swaps": self._migration_swaps,
            "last_swap_at": self._last_swap_at,
        }

    def migrate_backend_start(self, target_kind: str, slice_size: int = 512) -> dict:
        """Begin rebuilding the megaflow cache as ``target_kind``.

        The hot path keeps serving from the current backend; call
        :meth:`migrate_backend_step` to advance and
        :meth:`migrate_backend_swap` once the rebuild reports done.
        """
        if self._rebuild is not None:
            raise SwitchError(
                f"backend migration already in progress "
                f"(target {self._rebuild.target_kind!r})"
            )
        self._rebuild = BackendRebuild(
            self.megaflows,
            target_kind,
            slice_size=slice_size,
            scan_kernel=self.config.scan_kernel,
        )
        return self.migration_status()

    def migrate_backend_step(self, max_entries: int | None = None) -> dict:
        """Advance the in-flight rebuild by a bounded slice."""
        if self._rebuild is None:
            raise SwitchError("no backend migration in progress")
        self._rebuild.step(max_entries)
        return self.migration_status()

    def migrate_backend_swap(self) -> dict:
        """Atomically swap the rebuilt backend in.

        Safe without any cache flush: the target holds the *same entry
        objects* as the old backend, so microflow-cache identity checks
        (:meth:`_microflow_level` validates via ``find_entry``) and the
        kernel mask cache stay valid across the swap.
        """
        if self._rebuild is None:
            raise SwitchError("no backend migration in progress")
        rebuild = self._rebuild
        target = rebuild.finish()
        self._last_rebuild_memory = target.memory_bytes()
        self.megaflows = target
        self._rebuild = None
        self._migration_swaps += 1
        self._last_swap_at = self.now
        return self.migration_status()

    def migrate_backend_abort(self) -> dict:
        """Abandon the in-flight rebuild (the old backend stays in place)."""
        if self._rebuild is not None:
            self._rebuild.detach()
            self._rebuild = None
        return self.migration_status()

    def migrate_backend(self, target_kind: str, slice_size: int = 512) -> dict:
        """One-shot migration: rebuild to completion and swap immediately."""
        self.migrate_backend_start(target_kind, slice_size=slice_size)
        return self.migrate_backend_swap()

    # -- RSS re-map migration ------------------------------------------------------
    # Like the backend rebuild above, these run *on this object* wherever it
    # lives; under the ``process`` executor only the moved entries (a delta of
    # this shard's state, never a snapshot of it) cross the pipe.
    def rebalance_extract(self, new_rss, shard_id: int) -> dict:
        """Pull out every megaflow whose home moves off ``shard_id``.

        A megaflow's home under a dispatcher is defined by its *masked key*
        as the representative flow identity (copies of the same entry that
        RSS scattered across shards all agree on it, so they converge on
        one destination and the aggregate ``(mask, masked key)`` union is
        preserved through a re-map).  Moved entries are removed from the
        backend with their caches invalidated but — unlike
        :meth:`kill_entry` — never dead-marked: they are in flight, not
        deleted.  Dead-entry records (§8 quirk) migrate alongside so a
        killed megaflow stays killed on its new home shard.

        Returns a picklable delta: ``{"entries": [...], "dead": [...]}``.
        """
        moved: list[MegaflowEntry] = []
        for entry in list(self.megaflows.entries()):
            if new_rss.queue_of(FlowKey.from_values(entry.key)) == shard_id:
                continue
            self.megaflows.remove(entry)
            if self.microflows is not None:
                self.microflows.invalidate(entry)
            if self.mask_cache is not None:
                self.mask_cache.invalidate_mask(entry.mask)
            moved.append(entry)
        moved_dead = [
            (mask, key)
            for mask, key in self._dead_entries
            if new_rss.queue_of(FlowKey.from_values(key)) != shard_id
        ]
        self._dead_entries.difference_update(moved_dead)
        return {"entries": moved, "dead": moved_dead}

    def rebalance_install(self, entries, dead) -> int:
        """Adopt re-mapped state extracted from other shards.

        Entries keep their identity and age: the backend's refresh
        semantics dedupe copies of the same megaflow arriving from several
        shards (the first one in wins; later copies refresh its
        ``last_used``), and ``created_at`` is restored after insert so a
        re-map never rejuvenates a flow.  Installation bypasses the
        ``max_megaflows`` admission gate — zero-drop through re-maps is
        the contract, and the aggregate count across shards is unchanged.

        Returns the number of entries newly stored on this shard.
        """
        stored_here = 0
        for entry in entries:
            created = entry.created_at
            stored = self.megaflows.insert(entry, now=entry.last_used)
            if stored is entry:
                entry.created_at = created
                stored_here += 1
        self._dead_entries.update(tuple(record) for record in dead)
        return stored_here

    def reset_stats(self) -> None:
        """Zero the aggregate counters (cache contents are kept)."""
        self.stats = DatapathStats()

    def __repr__(self) -> str:
        return (
            f"Datapath({self.megaflows.n_masks} masks, "
            f"{self.megaflows.n_entries} megaflows, "
            f"{len(self.microflows) if self.microflows else 0} microflows)"
        )
