"""``ovs-dpctl``-style introspection of the simulated datapath.

MFCGuard's Algorithm 2 reads the mask count "via commands ``ovs-dpctl
dump-flows`` or ``ovs-dpctl show``" (§11.4); this module renders the
simulated datapath in the same spirit, so operators of the simulation can
eyeball a tuple space explosion the way the paper's authors did:

* :func:`show` — the summary block with the ``masks: hit:… total:…`` line
  whose ``total`` is the attack's figure of merit;
* :func:`dump_flows` — one line per megaflow in OVS's ``field(value/mask)``
  syntax with hit statistics and actions;
* :func:`mask_histogram` — mask population by wildcarded-bit count, handy
  for spotting the prefix staircase a TSE attack carves.
"""

from __future__ import annotations

from collections import Counter

from repro.classifier.tss import MegaflowEntry
from repro.packet.addresses import ipv4_str, ipv6_str
from repro.packet.fields import FIELD_ORDER, FIELDS
from repro.switch.datapath import Datapath

__all__ = ["show", "dump_flows", "format_flow", "mask_histogram"]

_INDEX = {name: i for i, name in enumerate(FIELD_ORDER)}

# Render IP-ish fields in address notation like OVS does.
_FORMATTERS = {
    "ip_src": ipv4_str,
    "ip_dst": ipv4_str,
    "ipv6_src": ipv6_str,
    "ipv6_dst": ipv6_str,
}


def _format_field(name: str, value: int, mask: int) -> str:
    width = FIELDS[name].width
    full = FIELDS[name].full_mask
    formatter = _FORMATTERS.get(name)
    if formatter is not None:
        if mask == full:
            return f"{name}={formatter(value)}"
        # Prefix masks render as CIDR; arbitrary masks as value/mask.
        plen = mask.bit_count()
        if mask == ((1 << plen) - 1) << (width - plen) and plen:
            return f"{name}={formatter(value)}/{plen}"
        return f"{name}={formatter(value)}/{formatter(mask)}"
    if mask == full:
        return f"{name}={value}"
    return f"{name}={value:#x}/{mask:#x}"


def format_flow(entry: MegaflowEntry) -> str:
    """One ``dump-flows`` line for a megaflow entry."""
    parts = []
    for name in FIELD_ORDER:
        index = _INDEX[name]
        mask = entry.mask.values[index]
        if mask:
            parts.append(_format_field(name, entry.key[index], mask))
    match = ", ".join(parts) if parts else "(all wildcarded)"
    action = "drop" if entry.action.is_drop else str(entry.action)
    return (
        f"{match}, packets:{entry.hits}, used:{entry.last_used:.3f}s, "
        f"actions:{action}"
    )


def dump_flows(datapath: Datapath, max_flows: int | None = None) -> str:
    """The ``ovs-dpctl dump-flows`` rendering of the megaflow cache."""
    lines = []
    for count, entry in enumerate(datapath.megaflows.entries()):
        if max_flows is not None and count >= max_flows:
            lines.append(f"... ({datapath.n_megaflows - max_flows} more)")
            break
        lines.append(format_flow(entry))
    return "\n".join(lines)


def show(datapath: Datapath) -> str:
    """The ``ovs-dpctl show`` summary (the Alg. 2 line-2 data source)."""
    stats = datapath.stats
    cache = datapath.megaflows
    lookups = cache.stats_hits + cache.stats_misses
    lines = [
        "datapath@repro:",
        f"  lookups: hit:{cache.stats_hits} missed:{cache.stats_misses} total:{lookups}",
        f"  flows: {datapath.n_megaflows}",
        f"  masks: hit:{stats.masks_inspected_total} total:{datapath.n_masks} "
        f"hit/pkt:{stats.masks_inspected_total / max(stats.packets, 1):.2f}",
        f"  cache usage: {cache.memory_bytes() / 1e6:.2f} MB",
    ]
    if datapath.microflows is not None:
        lines.append(
            f"  microflows: {len(datapath.microflows)}/{datapath.microflows.capacity} "
            f"(hit rate {datapath.microflows.hit_rate:.0%})"
        )
    return "\n".join(lines)


def mask_histogram(datapath: Datapath) -> dict[int, int]:
    """Mask count by number of wildcarded bits (the TSE staircase)."""
    histogram: Counter[int] = Counter()
    for mask in datapath.megaflows.masks():
        histogram[mask.wildcarded_bits()] += 1
    return dict(sorted(histogram.items()))
