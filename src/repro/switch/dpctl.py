"""``ovs-dpctl``-style introspection of the simulated datapath.

MFCGuard's Algorithm 2 reads the mask count "via commands ``ovs-dpctl
dump-flows`` or ``ovs-dpctl show``" (§11.4); this module renders the
simulated datapath in the same spirit, so operators of the simulation can
eyeball a tuple space explosion the way the paper's authors did:

* :func:`show` — the summary block with the ``masks: hit:… total:…`` line
  whose ``total`` is the attack's figure of merit, plus a ``probes:`` line
  per datapath/PMD rendering the backend's probe currency (scans
  performed, native probes spent, current expected scan cost and the
  backend's declared unit cost) — how an operator sees that an exploded
  mask list is, or is not, actually expensive to scan — a ``slow path:``
  line per datapath/PMD (upcalls, installs, flow-limit rejections,
  dead-entry suppressions: the upcall pressure that is the attack's
  actual DoS mechanism) — and per-shard
  ``backend:`` / ``migration:`` lines (backend kind, mask count, expected
  scan cost; idle/rebuilding/swapped with progress and last-swap
  timestamp) for watching a live backend migration as it happens;
* :func:`dump_flows` — one line per megaflow in OVS's ``field(value/mask)``
  syntax with hit statistics and actions;
* :func:`mask_histogram` — mask population by wildcarded-bit count, handy
  for spotting the prefix staircase a TSE attack carves.

All three accept a sharded multi-PMD datapath too: ``show`` reports the
execution strategy and scan kernel (``pmd executor: serial, kernel=numpy``
or ``process[4 workers]/shm, kernel=cffi`` — worker-owned shards render
through the same proxies the management plane drives, and the transport
suffix distinguishes the shared-memory data plane from the pickled-pipe
one) and appends one ``pmd`` line per shard (mask
count, megaflow count, hit statistics — the operator-triage view that
reveals a queue-concentrated explosion),
``dump_flows`` prefixes each shard's flows with its queue header, and
``mask_histogram`` aggregates the staircase across shards.  Single-shard
output is unchanged.
"""

from __future__ import annotations

from collections import Counter

from repro.classifier.backend import MegaflowEntry
from repro.packet.addresses import ipv4_str, ipv6_str
from repro.packet.fields import FIELD_ORDER, FIELDS
from repro.switch.sharded import AnyDatapath

__all__ = ["show", "dump_flows", "format_flow", "mask_histogram"]

_INDEX = {name: i for i, name in enumerate(FIELD_ORDER)}

# Render IP-ish fields in address notation like OVS does.
_FORMATTERS = {
    "ip_src": ipv4_str,
    "ip_dst": ipv4_str,
    "ipv6_src": ipv6_str,
    "ipv6_dst": ipv6_str,
}


def _format_field(name: str, value: int, mask: int) -> str:
    width = FIELDS[name].width
    full = FIELDS[name].full_mask
    formatter = _FORMATTERS.get(name)
    if formatter is not None:
        if mask == full:
            return f"{name}={formatter(value)}"
        # Prefix masks render as CIDR; arbitrary masks as value/mask.
        plen = mask.bit_count()
        if mask == ((1 << plen) - 1) << (width - plen) and plen:
            return f"{name}={formatter(value)}/{plen}"
        return f"{name}={formatter(value)}/{formatter(mask)}"
    if mask == full:
        return f"{name}={value}"
    return f"{name}={value:#x}/{mask:#x}"


def format_flow(entry: MegaflowEntry) -> str:
    """One ``dump-flows`` line for a megaflow entry."""
    parts = []
    for name in FIELD_ORDER:
        index = _INDEX[name]
        mask = entry.mask.values[index]
        if mask:
            parts.append(_format_field(name, entry.key[index], mask))
    match = ", ".join(parts) if parts else "(all wildcarded)"
    action = "drop" if entry.action.is_drop else str(entry.action)
    return (
        f"{match}, packets:{entry.hits}, used:{entry.last_used:.3f}s, "
        f"actions:{action}"
    )


def dump_flows(datapath: AnyDatapath, max_flows: int | None = None) -> str:
    """The ``ovs-dpctl dump-flows`` rendering of the megaflow cache(s).

    On a sharded datapath each shard's flows follow a ``pmd queue N:``
    header (``max_flows`` applies per shard, as each PMD dump does).
    """
    sharded = datapath.n_shards > 1
    lines = []
    for shard_id, shard in enumerate(datapath.shards):
        if sharded:
            lines.append(f"pmd queue {shard_id}: flows: {shard.n_megaflows}")
        for count, entry in enumerate(shard.megaflows.entries()):
            if max_flows is not None and count >= max_flows:
                lines.append(f"... ({shard.n_megaflows - max_flows} more)")
                break
            lines.append(format_flow(entry))
    return "\n".join(lines)


def _shard_summary(shard) -> tuple[str, str, str, str, str, str]:
    """The ``lookups``/``masks``/``probes``/``slow path``/``backend``/
    ``migration`` lines of one (shard) datapath."""
    stats = shard.stats
    cache = shard.megaflows
    lookups = cache.stats_hits + cache.stats_misses
    snapshot = cache.probe_cost_snapshot()
    return (
        f"lookups: hit:{cache.stats_hits} missed:{cache.stats_misses} total:{lookups}",
        f"masks: hit:{stats.masks_inspected_total} total:{shard.n_masks} "
        f"hit/pkt:{stats.masks_inspected_total / max(stats.packets, 1):.2f}",
        f"probes: scans:{snapshot.scans} spent:{snapshot.probes_total} "
        f"scan cost:{snapshot.scan_cost:.1f} unit:{snapshot.unit_cost:.2f}",
        # Upcall pressure: the slow path is the paper's actual DoS
        # mechanism, so operators watch it next to the probe currency.
        f"slow path: upcalls:{stats.upcalls} installs:{stats.installs} "
        f"rejected:{stats.install_rejected} dead:{stats.dead_entry_suppressed}",
        *_migration_lines(shard.migration_status()),
    )


def _migration_lines(status: dict) -> tuple[str, str]:
    """The ``backend:`` and ``migration:`` lines from one status record.

    What an operator watches during a live migration: which backend kind
    currently serves the shard (and what one full scan of it costs), then
    the migration state — ``rebuilding`` with progress and target while a
    rebuild is in flight, ``swapped`` with the swap count and timestamp
    after, ``idle`` otherwise.
    """
    backend_line = (
        f"backend: {status['backend']} masks:{status['n_masks']} "
        f"scan cost:{status['scan_cost']:.1f}"
    )
    if status["status"] == "rebuilding":
        migration_line = (
            f"migration: rebuilding -> {status['target']} "
            f"{status['progress']:.0%} ({status['entries_copied']} copied, "
            f"{status['journal_replayed']} replayed)"
        )
    elif status["status"] == "swapped":
        migration_line = (
            f"migration: swapped x{status['swaps']} "
            f"(last at {status['last_swap_at']:.3f}s)"
        )
    else:
        migration_line = "migration: idle"
    return backend_line, migration_line


def _rebalance_line(status: dict) -> str:
    """The datapath-level ``rebalance:`` line (RSS re-map state).

    Unlike ``backend:``/``migration:``, which are per-shard, a re-map is a
    whole-datapath event — the dispatcher is shared — so the line renders
    once in the summary block: how many re-maps have run, when the last
    one was, how many entries moved homes in total and the dispatcher's
    current salt (``salt:0x0`` is the un-re-keyed natural placement).
    """
    if status["remaps"]:
        return (
            f"rebalance: remaps:{status['remaps']} "
            f"(last at {status['last_remap_at']:.3f}s) "
            f"moved:{status['entries_moved']} salt:{status['salt']:#x}"
        )
    return f"rebalance: idle salt:{status['salt']:#x}"


def _kernel_names(datapath: AnyDatapath) -> str:
    """The distinct scan-kernel names across shards (usually one).

    Backends that scan without a pluggable kernel report ``none``; the
    worker-owned shards of the process executor answer through the same
    backend proxy as the rest of the management plane.
    """
    names = sorted(
        {getattr(shard.megaflows, "scan_kernel_name", "none") for shard in datapath.shards}
    )
    return "+".join(names)


def show(datapath: AnyDatapath) -> str:
    """The ``ovs-dpctl show`` summary (the Alg. 2 line-2 data source).

    For a sharded datapath the summary block reports aggregates (the
    ``masks: … total:`` is the distinct-mask union, the attack's figure of
    merit) followed by one ``pmd`` line per shard, so a queue-concentrated
    explosion is visible core by core.
    """
    sharded = datapath.n_shards > 1
    if sharded:
        stats = datapath.stats
        lookup_hits = sum(s.megaflows.stats_hits for s in datapath.shards)
        lookup_misses = sum(s.megaflows.stats_misses for s in datapath.shards)
        memory = sum(s.megaflows.memory_bytes() for s in datapath.shards)
        lines = [
            "datapath@repro:",
            f"  lookups: hit:{lookup_hits} missed:{lookup_misses} "
            f"total:{lookup_hits + lookup_misses}",
            f"  flows: {datapath.n_megaflows}",
            f"  masks: hit:{stats.masks_inspected_total} total:{datapath.n_masks} "
            f"hit/pkt:{stats.masks_inspected_total / max(stats.packets, 1):.2f}",
            f"  mask tables: {datapath.n_mask_tables} across {datapath.n_shards} pmds",
            f"  pmd executor: {datapath.executor_name}, kernel={_kernel_names(datapath)}",
            f"  scan cost: {datapath.scan_cost:.1f} probe units (worst pmd)",
            f"  cache usage: {memory / 1e6:.2f} MB",
            f"  {_rebalance_line(datapath.rebalance_status())}",
        ]
        for shard_id, shard in enumerate(datapath.shards):
            (
                lookups_line,
                masks_line,
                probes_line,
                slow_line,
                backend_line,
                migration_line,
            ) = _shard_summary(shard)
            lines.append(
                f"  pmd queue {shard_id}: flows: {shard.n_megaflows}; "
                f"{lookups_line}; {masks_line}; {probes_line}; {slow_line}; "
                f"{backend_line}; {migration_line}"
            )
        return "\n".join(lines)

    shard = datapath.shards[0]
    lookups_line, masks_line, probes_line, slow_line, backend_line, migration_line = (
        _shard_summary(shard)
    )
    lines = [
        "datapath@repro:",
        f"  {lookups_line}",
        f"  flows: {shard.n_megaflows}",
        f"  {masks_line}",
        f"  {probes_line}",
        f"  {slow_line}",
        f"  {backend_line}",
        f"  {migration_line}",
        f"  cache usage: {shard.megaflows.memory_bytes() / 1e6:.2f} MB",
    ]
    if shard.microflows is not None:
        lines.append(
            f"  microflows: {len(shard.microflows)}/{shard.microflows.capacity} "
            f"(hit rate {shard.microflows.hit_rate:.0%})"
        )
    return "\n".join(lines)


def mask_histogram(datapath: AnyDatapath) -> dict[int, int]:
    """Mask-table count by number of wildcarded bits (the TSE staircase).

    Aggregated across shards: a mask installed in k shards contributes k
    tables (each shard scans its own copy).
    """
    histogram: Counter[int] = Counter()
    for shard in datapath.shards:
        for mask in shard.megaflows.masks():
            histogram[mask.wildcarded_bits()] += 1
    return dict(sorted(histogram.items()))
