"""The simulated software switch: datapath, caches, offloads, cost model."""

from repro.switch.calibration import CurveParams, fit_profile, fraction_of_baseline
from repro.switch.costmodel import CostModel, SlowPathModel
from repro.switch.datapath import (
    BatchVerdicts,
    Datapath,
    DatapathConfig,
    PacketVerdict,
    PathTaken,
)
from repro.switch.dpctl import dump_flows, format_flow, mask_histogram, show
from repro.switch.maskcache import KernelMaskCache
from repro.switch.offload import (
    FHO_TCP,
    GRO_OFF_TCP,
    GRO_ON_TCP,
    PROFILES,
    UDP_PROFILE,
    NicProfile,
)
from repro.switch.revalidator import Revalidator, RevalidatorStats

__all__ = [
    "Datapath",
    "DatapathConfig",
    "PacketVerdict",
    "BatchVerdicts",
    "PathTaken",
    "KernelMaskCache",
    "Revalidator",
    "RevalidatorStats",
    "NicProfile",
    "PROFILES",
    "GRO_OFF_TCP",
    "GRO_ON_TCP",
    "FHO_TCP",
    "UDP_PROFILE",
    "CurveParams",
    "fit_profile",
    "fraction_of_baseline",
    "CostModel",
    "SlowPathModel",
    "show",
    "dump_flows",
    "format_flow",
    "mask_histogram",
]
