"""The sharded multi-PMD datapath: N per-core pipelines behind RSS dispatch.

OVS-DPDK deployments run one poll-mode-driver (PMD) thread per dedicated
core, and the NIC's RSS hash spreads flows across them.  Crucially, *every
cache level is per-PMD*: each core owns a private microflow cache, kernel
mask cache, megaflow classifier and accelerator.  The tuple-space-explosion
attack therefore has a per-core blast radius — a mask staircase detonates
only in the shards whose queues carried the crafting packets, and only the
victims RSS co-scheduled onto those cores pay the scan (arXiv:2011.09107).

:class:`ShardedDatapath` models this by composing N independent
:class:`~repro.switch.datapath.Datapath` shards behind an
:class:`~repro.switch.rss.RssDispatcher`.  It exposes the same processing
surface as a single datapath (``process`` / ``process_batch`` /
``kill_entry`` / ``evict_idle`` / aggregate counters), so the hypervisor,
revalidator, MFCGuard and dpctl drive either interchangeably; per-shard
structure is reachable through ``.shards`` for per-core accounting.

*Where and how* the shards execute is delegated to a pluggable
:class:`~repro.switch.executor.ShardExecutor` (``config.executor`` /
the ``executor=`` argument): ``serial`` runs them in the caller's thread
(the reference), ``thread`` overlaps the GIL-releasing numpy scan kernels
on a pool, and ``process`` keeps each shard in a persistent worker
process for true multi-core wall clock — with identical verdicts,
statistics and probe accounting in every mode.

Sharding invariants (see ROADMAP.md):

* dicts-as-truth and batch ≡ sequential hold *per shard* — each shard is a
  full, independently correct Datapath (whatever megaflow backend
  ``config.megaflow_backend`` selects — every shard runs its own private
  instance of it);
* RSS assignment is stable for a flow's lifetime, so a flow's megaflow,
  microflow and memo state live in exactly one shard;
* with ``n_shards=1`` the behaviour is verdict-for-verdict identical to a
  plain :class:`Datapath` (property-tested in ``tests/test_shard.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.classifier.backend import MegaflowEntry
from repro.classifier.flowtable import FlowTable
from repro.exceptions import SwitchError
from repro.packet.fields import FlowKey
from repro.packet.packet import Packet
from repro.switch.datapath import (
    BatchVerdicts,
    CoreReport,
    Datapath,
    DatapathConfig,
    DatapathStats,
    PacketVerdict,
)
from repro.switch.executor import ShardExecutor, make_shard_executor
from repro.switch.rss import RssDispatcher, five_tuple_hash

__all__ = ["ShardBatchVerdicts", "ShardedDatapath", "AnyDatapath"]


@dataclass(frozen=True)
class ShardBatchVerdicts(BatchVerdicts):
    """One sharded batch: per-packet verdicts plus their RSS placement.

    Attributes:
        shard_ids: the shard each packet was dispatched to, aligned with
            ``verdicts``.  ``mask_counts`` and ``probe_costs`` carry the
            *owning shard's* pre-packet mask count and expected scan cost
            — per-core cost accounting needs the core-local value, not an
            aggregate.
    """

    shard_ids: tuple[int, ...] = ()


class ShardedDatapath:
    """N per-PMD :class:`Datapath` shards behind an RSS dispatcher.

    Args:
        flow_table: the shared slow-path classifier (one control plane; a
            flow-table change revalidates — flushes — every shard, however
            the executor places them).
        config: per-shard datapath knobs, applied to each shard
            (``config.executor`` picks the execution strategy).
        n_shards: PMD core / receive-queue count.
        hash_fn: pluggable RSS hash (see :mod:`repro.switch.rss`).
        rss: a pre-built dispatcher; when given it is authoritative and
            ``n_shards``/``hash_fn`` are ignored.
        executor: execution-strategy override — a registry name
            (``"serial"``/``"thread"``/``"process"``) or a pre-built,
            unbuilt :class:`ShardExecutor`; defaults to
            ``config.executor``.  ``serial``/``thread`` run in-process
            shards; ``process`` keeps the shards in persistent worker
            processes reached through proxies (call :meth:`close`, or use
            the datapath as a context manager, to stop the workers).
    """

    def __init__(
        self,
        flow_table: FlowTable,
        config: DatapathConfig | None = None,
        n_shards: int = 1,
        hash_fn: Callable[[FlowKey], int] = five_tuple_hash,
        rss: RssDispatcher | None = None,
        executor: str | ShardExecutor | None = None,
    ):
        if rss is not None:
            n_shards = rss.n_queues  # the dispatcher is authoritative
        else:
            rss = RssDispatcher(n_shards, hash_fn=hash_fn)
        self.config = config or DatapathConfig()
        self.flow_table = flow_table
        self.rss = rss
        if executor is None:
            executor = self.config.executor
        if isinstance(executor, str):
            executor = make_shard_executor(
                executor,
                workers=self.config.executor_workers or None,
                transport=self.config.executor_transport,
                pinning=self.config.executor_pinning,
            )
        self.executor: ShardExecutor = executor
        # The executor owns shard placement: in-process shards subscribe
        # themselves to flow-table revalidation flushes; worker-owned
        # shards get the changes shipped as delta messages.
        self.executor.build(flow_table, self.config, n_shards)
        self._shards = self.executor.shards
        self._remaps = 0
        self._last_remap_at: float | None = None
        self._entries_moved = 0

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Release the executor (stops worker pools/processes); idempotent."""
        self.executor.close()

    def __enter__(self) -> "ShardedDatapath":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- sharding surface ---------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of PMD shards."""
        return len(self._shards)

    @property
    def shards(self) -> tuple[Datapath, ...]:
        """The per-PMD shard datapaths (or worker proxies), by queue id."""
        return self._shards

    @property
    def executor_name(self) -> str:
        """The execution strategy, e.g. ``"serial"`` or ``"process[4 workers]"``."""
        return self.executor.describe()

    def shard_of(self, key: FlowKey) -> int:
        """The shard RSS dispatches ``key``'s flow to."""
        return self.rss.queue_of(key)

    def maintenance(self):
        """Serialise a management sweep against in-flight shard batches."""
        return self.executor.maintenance()

    def core_report(self) -> list[CoreReport]:
        """Per-core (n_masks, n_megaflows, scan_cost) snapshots, by shard id.

        One executor round trip — under the ``process`` strategy this is a
        single broadcast instead of 3 × n_shards proxy reads, which is what
        keeps the hypervisor's per-tick settlement cheap.
        """
        return self.executor.core_report()

    # -- aggregate cache sizes ----------------------------------------------------
    @property
    def n_masks(self) -> int:
        """Distinct megaflow masks across all shards (the figure of merit).

        A mask installed in several shards counts once — this is the size
        of the tuple space the attack has carved, comparable across shard
        counts.  Per-core scan length is ``shards[i].n_masks``; the summed
        table count is :attr:`n_mask_tables`.
        """
        if len(self._shards) == 1:
            return self._shards[0].n_masks
        distinct = set()
        for shard in self._shards:
            distinct.update(shard.megaflows.masks())
        return len(distinct)

    @property
    def n_mask_tables(self) -> int:
        """Total per-shard mask tables (what revalidation/memory see)."""
        return sum(shard.n_masks for shard in self._shards)

    @property
    def n_megaflows(self) -> int:
        """Total megaflow entries across all shards."""
        return sum(shard.n_megaflows for shard in self._shards)

    @property
    def scan_cost(self) -> float:
        """Worst per-core expected full-scan cost (normalised probe units).

        Scan cost is a per-PMD quantity — each core scans only its own
        cache — so the host-level figure is the most expensive core's,
        the one a queue-concentrated detonation inflates.  Per-core values
        are ``shards[i].scan_cost``.
        """
        return max(shard.scan_cost for shard in self._shards)

    @property
    def now(self) -> float:
        """The most advanced shard clock."""
        return max(shard.now for shard in self._shards)

    @property
    def stats(self) -> DatapathStats:
        """Aggregate counters summed across shards (a fresh snapshot)."""
        total = DatapathStats()
        for shard in self._shards:
            for field in total.__dataclass_fields__:
                setattr(total, field, getattr(total, field) + getattr(shard.stats, field))
        return total

    # -- packet processing --------------------------------------------------------
    def process(self, key: FlowKey, now: float | None = None) -> PacketVerdict:
        """Classify one packet on the shard RSS assigns it to."""
        shard_id = self.shard_of(key)
        with self.executor.lock(shard_id):
            return self._shards[shard_id].process(key, now=now)

    def process_batch(
        self, keys: Sequence[FlowKey], now: float | None = None
    ) -> ShardBatchVerdicts:
        """RSS-partition a batch and run each sub-batch on its shard.

        Per-shard sub-batches preserve arrival order, so within a shard
        this is exactly that shard's ``process_batch``; across shards the
        pipelines are independent, so any physical interleaving — the
        executor may run them serially, on pool threads, or in worker
        processes — is equivalent.  The result is reassembled by original
        arrival index in shard-id order (deterministic however the
        sub-batches were scheduled), with each packet's shard id and its
        shard-local pre-packet mask count and expected scan cost.
        """
        keys = list(keys)
        buckets = self.rss.partition(keys)
        assignment_list = [0] * len(keys)
        for shard_id, indices in buckets.items():
            for index in indices:
                assignment_list[index] = shard_id
        assignment = tuple(assignment_list)
        verdicts: list[PacketVerdict | None] = [None] * len(keys)
        mask_counts = [0] * len(keys)
        probe_costs = [1.0] * len(keys)
        sub_batches = {
            shard_id: [keys[i] for i in indices]
            for shard_id, indices in buckets.items()
        }
        results = self.executor.run_batch(sub_batches, now)
        for shard_id in sorted(results):
            batch = results[shard_id]
            for position, index in enumerate(buckets[shard_id]):
                verdicts[index] = batch.verdicts[position]
                mask_counts[index] = batch.mask_counts[position]
                probe_costs[index] = batch.probe_costs[position]
        return ShardBatchVerdicts(
            verdicts=tuple(verdicts),
            mask_counts=tuple(mask_counts),
            probe_costs=tuple(probe_costs),
            upcalls=sum(batch.upcalls for batch in results.values()),
            shard_ids=assignment,
        )

    def process_packet(
        self, packet: Packet, in_port: int = 0, now: float | None = None
    ) -> PacketVerdict:
        """Classify a concrete :class:`Packet` (wire-format convenience)."""
        return self.process(packet.flow_key(in_port=in_port), now=now)

    def process_packet_batch(
        self, packets: Iterable[Packet], in_port: int = 0, now: float | None = None
    ) -> ShardBatchVerdicts:
        """Batch-classify concrete :class:`Packet` objects."""
        return self.process_batch(
            [packet.flow_key(in_port=in_port) for packet in packets], now=now
        )

    # -- management operations ----------------------------------------------------
    def entries(self) -> Iterator[MegaflowEntry]:
        """All megaflow entries across shards (shard-major order)."""
        for shard in self._shards:
            yield from shard.megaflows.entries()

    def kill_entry(self, entry: MegaflowEntry, permanent: bool = True) -> bool:
        """Remove a megaflow from every shard holding it (MFCGuard delete).

        Entries are matched by value (``mask`` + masked key), so copies
        that crossed a worker-process boundary address the same megaflow.
        """
        removed = False
        for shard_id, shard in enumerate(self._shards):
            with self.executor.lock(shard_id):
                if shard.megaflows.find_entry(entry):
                    removed = shard.kill_entry(entry, permanent=permanent) or removed
        return removed

    def reinject(self, entry: MegaflowEntry) -> None:
        """Re-allow an entry previously killed permanently, on every shard."""
        for shard_id, shard in enumerate(self._shards):
            with self.executor.lock(shard_id):
                shard.reinject(entry)

    def flush_caches(self) -> None:
        """Drop every shard's cached state (flow-table revalidation)."""
        for shard_id, shard in enumerate(self._shards):
            with self.executor.lock(shard_id):
                shard.flush_caches()

    def evict_idle(self, now: float | None = None) -> list[MegaflowEntry]:
        """Evict idle megaflows on every shard; returns all evicted entries."""
        evicted: list[MegaflowEntry] = []
        for shard_id, shard in enumerate(self._shards):
            with self.executor.lock(shard_id):
                evicted.extend(shard.evict_idle(now))
        return evicted

    def reset_stats(self) -> None:
        """Zero every shard's aggregate counters."""
        for shard_id, shard in enumerate(self._shards):
            with self.executor.lock(shard_id):
                shard.reset_stats()

    # -- live backend migration ---------------------------------------------------
    def migration_status(self) -> list[dict]:
        """Per-shard backend + migration state records, by shard id."""
        status: list[dict] = []
        for shard_id, shard in enumerate(self._shards):
            with self.executor.lock(shard_id):
                status.append(shard.migration_status())
        return status

    def migrate_backend(
        self, target_kind: str, shard_id: int | None = None, slice_size: int = 512
    ) -> list[dict]:
        """Rebuild and swap shard caches to ``target_kind``, one shot.

        Runs under :meth:`maintenance`, so the swap serialises against
        in-flight batches under every executor strategy; under the
        ``process`` executor each shard's rebuild runs inside its owning
        worker (the proxy ships only the status dict back).  ``shard_id``
        limits the migration to one shard (a targeted rescue of the
        detonated core); default is every shard.
        """
        with self.maintenance():
            results: list[dict] = []
            for sid, shard in enumerate(self._shards):
                if shard_id is not None and sid != shard_id:
                    results.append(shard.migration_status())
                    continue
                results.append(shard.migrate_backend(target_kind, slice_size=slice_size))
            return results

    # -- live RSS rebalancing -----------------------------------------------------
    def rebalance(self, dispatcher: RssDispatcher) -> dict:
        """Re-map the datapath onto ``dispatcher``, migrating flow state live.

        The re-map protocol (ROADMAP item 5, the defense against the
        RSS-aware attacker of arXiv:2011.09107):

        1. quiesce every shard under :meth:`maintenance` — no batch is in
           flight anywhere while ownership moves;
        2. each shard *extracts* the megaflows (and §8 dead-entry records)
           whose home under the new dispatcher is a different shard — a
           delta of its state, never a snapshot, which is also exactly
           what crosses the pipe under the ``process`` executor;
        3. route every extracted entry by its masked key through the new
           dispatcher and *install* it on its new home shard, where
           refresh-semantics dedupe copies of the same megaflow arriving
           from several shards;
        4. swap ``self.rss`` — from here on dispatch and re-dispatch see
           only the new placement.

        The aggregate ``(mask, masked key)`` union across shards is
        invariant through the re-map (zero entries dropped: installation
        bypasses admission gates), and with ``n_shards == 1`` every home
        is shard 0, so a re-map is a no-op on the cache contents.

        Returns the :meth:`rebalance_status` record after the swap.
        """
        if dispatcher.n_queues != self.n_shards:
            raise SwitchError(
                f"dispatcher has {dispatcher.n_queues} queues, "
                f"datapath has {self.n_shards} shards"
            )
        with self.maintenance():
            inbound_entries: dict[int, list[MegaflowEntry]] = {}
            inbound_dead: dict[int, list] = {}
            for shard_id, shard in enumerate(self._shards):
                delta = shard.rebalance_extract(dispatcher, shard_id)
                for entry in delta["entries"]:
                    home = dispatcher.queue_of(FlowKey.from_values(entry.key))
                    inbound_entries.setdefault(home, []).append(entry)
                for record in delta["dead"]:
                    mask, key = record
                    home = dispatcher.queue_of(FlowKey.from_values(tuple(key)))
                    inbound_dead.setdefault(home, []).append(record)
            moved = 0
            for shard_id, shard in enumerate(self._shards):
                entries = inbound_entries.get(shard_id, [])
                dead = inbound_dead.get(shard_id, [])
                if entries or dead:
                    moved += shard.rebalance_install(entries, dead)
            self.rss = dispatcher
            self._remaps += 1
            self._last_remap_at = self.now
            self._entries_moved += moved
        return self.rebalance_status()

    def rebalance_status(self) -> dict:
        """The datapath's re-map state as one picklable record."""
        return {
            "remaps": self._remaps,
            "last_remap_at": self._last_remap_at,
            "entries_moved": self._entries_moved,
            "salt": getattr(self.rss, "salt", 0),
            "reta_slots": len(getattr(self.rss, "reta", ())),
        }

    def __repr__(self) -> str:
        per_shard = ", ".join(str(shard.n_masks) for shard in self._shards)
        return (
            f"ShardedDatapath({self.n_shards} shards, masks/shard [{per_shard}], "
            f"{self.n_megaflows} megaflows)"
        )


# Anything the switch-management layers (revalidator, guard, dpctl,
# hypervisor) can drive: both expose shards/n_masks/n_megaflows/kill_entry.
AnyDatapath = Datapath | ShardedDatapath
