"""Cycle-accounting model: classification work → throughput and CPU load.

The simulator measures *work* (masks inspected, upcalls taken) exactly; this
module converts that work into the quantities the paper plots — victim Gbps,
flow completion time, and slow-path CPU% — using the calibrated curves of
:mod:`repro.switch.calibration`.

Unit convention: **1 unit = the cost of classifying one baseline packet at a
single-mask MFC** for the given profile.  The fast path has a budget of
``baseline_pps`` units per second (that is what makes the baseline rate the
baseline); every packet then costs its *relative cost* in units, so CPU
contention between victim and attack traffic falls out of simple unit
bookkeeping.

Scan-cost convention: the cost curves take the cache's **expected
full-scan cost in normalised probe units** (calibrated single-table
probes — :meth:`repro.classifier.backend.MegaflowBackend.expected_scan_cost`).
The ``*_probes`` methods are the primary, backend-agnostic entry points;
the historical mask-count methods remain as the exact TSS special case
(probes ≡ masks, unit cost 1.0), which is what keeps every Table 1 /
Fig 8-9 preset byte-identical to the pre-probe-plane model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import SwitchError
from repro.switch.calibration import CurveParams, fit_profile
from repro.switch.offload import GRO_OFF_TCP, NicProfile

__all__ = ["CostModel", "SlowPathModel"]


@dataclass(frozen=True)
class SlowPathModel:
    """CPU usage of the slow-path daemon (``ovs-vswitchd``), Fig. 9c.

    The paper measures ~15% CPU for attack rates up to 1 kpps (revalidation
    and bookkeeping dominate), ~80% at 10 kpps, and saturation around 250%
    (multiple handler threads) — we fit a clamped affine model through those
    anchors.
    """

    base_cpu_pct: float = 15.0
    free_pps: float = 1000.0
    pct_per_pps: float = (80.0 - 15.0) / (10_000.0 - 1_000.0)
    max_cpu_pct: float = 250.0

    def cpu_pct(self, upcall_pps: float) -> float:
        """Slow-path CPU percentage at ``upcall_pps`` packets/s of upcalls."""
        if upcall_pps < 0:
            raise SwitchError(f"upcall_pps must be >= 0, got {upcall_pps}")
        load = self.base_cpu_pct + self.pct_per_pps * max(0.0, upcall_pps - self.free_pps)
        return min(self.max_cpu_pct, load)


@dataclass(frozen=True)
class CostModel:
    """Throughput/CPU model for one switch deployment.

    Attributes:
        profile: NIC/driver profile (fit anchors + baseline rate).
        link_gbps: wire capacity in front of the switch; the victim can
            never exceed it even with CPU to spare (Fig. 8c's 1 Gbps virtio
            link is the binding constraint before the ACL is injected).
        cpu_baseline_gbps: classification capacity at one mask.  Defaults
            to the profile baseline (CPU-bound testbeds); set lower than
            ``link_gbps``…``None`` to model weaker hosts.
        upcall_units: slow-path cost of one upcall, in fast-path units.
            OVS upcalls cross into userspace and run the full ordered
            lookup — orders of magnitude above a fast-path probe.
        attack_cost_scale: ratio of an attack packet's classification cost
            to a victim *unit*'s.  1.0 when both are MTU frames; smaller
            when victim units are GRO-aggregated buffers (an MTU-sized
            attack packet costs a fraction of a 64 kB buffer's
            classify-and-copy — the Kubernetes/virtio testbed model).
        revalidate_units_per_entry: per-megaflow revalidation cost charged
            against the fast-path budget each sweep (dump + re-lookup).
    """

    profile: NicProfile = GRO_OFF_TCP
    link_gbps: float = 10.0
    cpu_baseline_gbps: float | None = None
    upcall_units: float = 25.0
    attack_cost_scale: float = 1.0
    revalidate_units_per_entry: float = 5.0

    def __post_init__(self) -> None:
        if self.link_gbps <= 0:
            raise SwitchError("link_gbps must be positive")
        if self.cpu_baseline_gbps is not None and self.cpu_baseline_gbps <= 0:
            raise SwitchError("cpu_baseline_gbps must be positive")
        if self.upcall_units < 0:
            raise SwitchError("upcall_units must be >= 0")
        if self.attack_cost_scale <= 0:
            raise SwitchError("attack_cost_scale must be positive")
        if self.revalidate_units_per_entry < 0:
            raise SwitchError("revalidate_units_per_entry must be >= 0")

    # -- derived constants -------------------------------------------------------
    @property
    def params(self) -> CurveParams:
        """The calibrated cost curve of the profile."""
        return fit_profile(self.profile)

    @property
    def baseline_gbps(self) -> float:
        """CPU-side classification capacity (Gbps at one mask)."""
        if self.cpu_baseline_gbps is not None:
            return self.cpu_baseline_gbps
        return self.profile.baseline_gbps

    @property
    def budget_units_per_sec(self) -> float:
        """Fast-path budget of **one PMD core**: units available per second.

        Every PMD thread owns one dedicated core with this same cycle
        budget; a multi-queue host's aggregate capacity is
        :meth:`aggregate_budget_units_per_sec`.  (The single-PMD testbeds
        of the paper are the ``n_cores=1`` case, where the two coincide.)
        """
        return self.baseline_gbps * 1e9 / 8.0 / self.profile.unit_bytes

    def aggregate_budget_units_per_sec(self, n_cores: int) -> float:
        """Total fast-path budget of ``n_cores`` PMD cores (units/second)."""
        if n_cores < 1:
            raise SwitchError(f"n_cores must be >= 1, got {n_cores}")
        return n_cores * self.budget_units_per_sec

    @property
    def unit_bits(self) -> float:
        """Bits moved per classified unit (MTU frame or GRO buffer)."""
        return self.profile.unit_bytes * 8.0

    # -- per-packet costs ----------------------------------------------------------
    def victim_cost_units_probes(self, scan_cost: float) -> float:
        """Average per-unit cost of an *established* victim flow.

        ``scan_cost`` is the victim's cache's expected full-scan cost in
        normalised probe units (the backend's ``expected_scan_cost()``).
        The calibrated relative-cost curve already embeds the victim's
        average hit position in the scan (≈ half way, which is why the
        paper sees flow completion time grow "half as high" as the mask
        count) and the microflow-thrash step.
        """
        return self.params.relative_cost(scan_cost)

    def victim_cost_units(self, masks: int) -> float:
        """Mask-count entry point: the TSS special case (probes ≡ masks)."""
        return self.victim_cost_units_probes(masks)

    def attack_cost_units_probes(self, scan_cost: float, upcall: bool) -> float:
        """Per-packet cost of an attack packet at full-scan cost ``scan_cost``.

        Attack packets either hit their adversarial megaflow (full-scan-like
        cost — their masks sit all along the scan) or miss and additionally
        pay the slow-path upcall.
        """
        cost = self.attack_cost_scale * self.params.relative_cost(scan_cost)
        if upcall:
            cost += self.upcall_units
        return cost

    def attack_cost_units(self, masks: int, upcall: bool) -> float:
        """Mask-count entry point: the TSS special case (probes ≡ masks)."""
        return self.attack_cost_units_probes(masks, upcall)

    def attack_units_batch(self, probe_costs: Sequence[float], upcall_count: int) -> float:
        """Total attack cost of one batch, charged in one call.

        ``probe_costs`` carries the full-scan probe cost each packet's
        shard reported before the packet ran (costs grow mid-batch as
        upcalls install masks); within a batch only a handful of distinct
        values occur, so the calibrated curve is evaluated once per
        distinct value instead of once per packet.  Raw TSS mask counts
        are valid input — the probes ≡ masks special case.
        """
        if upcall_count < 0:
            raise SwitchError(f"upcall_count must be >= 0, got {upcall_count}")
        per_cost: dict[float, float] = {}
        total = 0.0
        for scan_cost in probe_costs:
            scan_cost = max(scan_cost, 1)
            cost = per_cost.get(scan_cost)
            if cost is None:
                cost = self.attack_cost_scale * self.params.relative_cost(scan_cost)
                per_cost[scan_cost] = cost
            total += cost
        return total + upcall_count * self.upcall_units

    def revalidation_units_per_sec(self, n_entries: int, period: float) -> float:
        """Fast-path budget burned by revalidating ``n_entries`` per sweep."""
        if period <= 0:
            raise SwitchError("period must be positive")
        return n_entries * self.revalidate_units_per_entry / period

    # -- throughput ---------------------------------------------------------------
    def victim_gbps_probes(self, scan_cost: float, attack_load_units: float = 0.0) -> float:
        """Victim throughput at full-scan cost ``scan_cost`` under attack load.

        ``attack_load_units`` is the unit rate (units/s) the attack traffic
        burns; whatever budget remains is available to the victim at its
        per-unit cost, clamped by the wire.
        """
        if attack_load_units < 0:
            raise SwitchError("attack_load_units must be >= 0")
        available = max(0.0, self.budget_units_per_sec - attack_load_units)
        units_per_sec = available / self.victim_cost_units_probes(scan_cost)
        return min(self.link_gbps, units_per_sec * self.unit_bits / 1e9)

    def victim_gbps(self, masks: int, attack_load_units: float = 0.0) -> float:
        """Mask-count entry point: the TSS special case (probes ≡ masks)."""
        return self.victim_gbps_probes(masks, attack_load_units)

    def victim_fraction(self, masks: int) -> float:
        """Fraction of baseline throughput (no attack CPU contention)."""
        return self.params.fraction(masks)

    def flow_completion_seconds(self, gigabytes: float, masks: int) -> float:
        """Time to move ``gigabytes`` of victim data at ``masks`` masks.

        Reproduces the secondary axis of Fig. 9a (1 GB TCP, GRO OFF).
        """
        if gigabytes <= 0:
            raise SwitchError("gigabytes must be positive")
        gbps = self.victim_gbps(masks)
        if gbps <= 0:
            raise SwitchError("victim rate is zero; completion time undefined")
        return gigabytes * 8.0 / gbps
