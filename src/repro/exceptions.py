"""Exception hierarchy for the TSE reproduction library.

Every exception raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while the
subclasses keep the failure domains (packets, classifiers, simulation,
experiments) distinguishable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class PacketError(ReproError):
    """Malformed packet data, bad field values, or failed parsing."""


class FieldError(PacketError):
    """A header field name is unknown or a value does not fit its width."""


class PcapError(PacketError):
    """A pcap stream is truncated, has a bad magic number, or bad records."""


class ClassifierError(ReproError):
    """A packet classifier was misused or reached an inconsistent state."""


class RuleError(ClassifierError):
    """A flow rule or match expression is malformed."""


class CacheInvariantError(ClassifierError):
    """A megaflow cache invariant (Cover / Independence) would be violated."""


class StrategyError(ClassifierError):
    """A megaflow generation strategy received invalid parameters."""


class SwitchError(ReproError):
    """The simulated software switch was misconfigured or misused."""


class ExecutorError(SwitchError):
    """A pooled shard executor lost a worker or broke its protocol.

    Raised (with the worker's shards and last completed op in the message)
    instead of the raw pipe ``EOFError``/``BrokenPipeError`` a dead worker
    would otherwise surface as.
    """


class SimulationError(ReproError):
    """The discrete-time network simulation was misconfigured."""


class PolicyError(SimulationError):
    """A CMS security policy is not expressible by the selected backend."""


class ExperimentError(ReproError):
    """An experiment harness received invalid parameters."""
