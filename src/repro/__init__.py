"""repro — reproduction of "Tuple Space Explosion: A Denial-of-Service
Attack Against a Software Packet Classifier" (Csikor et al., CoNEXT 2019).

The package provides, in layers:

* :mod:`repro.packet` — packet crafting (headers, checksums, pcap I/O);
* :mod:`repro.classifier` — flow tables, the pluggable megaflow backends
  (Tuple Space Search, TupleChain-style grouped lookup) with their
  generation strategies, and the alternative classifiers of §7 (tries,
  HyperCuts, HaRP);
* :mod:`repro.switch` — the OVS-like datapath, revalidator, NIC offload
  profiles and the calibrated cost model;
* :mod:`repro.netsim` — the simulated cloud testbeds of Fig. 7;
* :mod:`repro.core` — the TSE attack itself: adversarial traces, the
  analytic tuple-space model, the complexity theorems, and MFCGuard;
* :mod:`repro.experiments` — one harness per table/figure of the paper.

Quickstart::

    from repro import quickstart
    report = quickstart()          # runs a small co-located TSE end to end
    print(report)
"""

from repro.classifier import (
    ALLOW,
    DENY,
    Action,
    FlowRule,
    FlowTable,
    Match,
    MegaflowBackend,
    MegaflowEntry,
    MegaflowGenerator,
    MicroflowCache,
    TupleChainSearch,
    TupleSpaceSearch,
    make_megaflow_backend,
)
from repro.core import (
    SIPSPDP,
    AdversarialTrace,
    ColocatedTraceGenerator,
    GeneralTraceGenerator,
    MFCGuard,
    MFCGuardConfig,
    attainable_masks,
    expected_masks,
    use_case,
)
from repro.packet import FlowKey, FlowMask, Packet, PacketBuilder, ipv4
from repro.switch import CostModel, Datapath, DatapathConfig

__version__ = "1.0.0"

__all__ = [
    "FlowKey",
    "FlowMask",
    "Packet",
    "PacketBuilder",
    "ipv4",
    "Match",
    "FlowRule",
    "FlowTable",
    "Action",
    "ALLOW",
    "DENY",
    "TupleSpaceSearch",
    "TupleChainSearch",
    "MegaflowBackend",
    "make_megaflow_backend",
    "MegaflowEntry",
    "MegaflowGenerator",
    "MicroflowCache",
    "Datapath",
    "DatapathConfig",
    "CostModel",
    "AdversarialTrace",
    "ColocatedTraceGenerator",
    "GeneralTraceGenerator",
    "MFCGuard",
    "MFCGuardConfig",
    "attainable_masks",
    "expected_masks",
    "use_case",
    "SIPSPDP",
    "quickstart",
    "__version__",
]


def quickstart() -> str:
    """Run a miniature co-located TSE end to end and describe the damage.

    Builds the Fig. 6 ACL, generates the adversarial trace, replays it
    through a simulated datapath and reports mask growth plus the modelled
    victim throughput — a three-line tour of the whole library.
    """
    table = SIPSPDP.build_table()
    trace = ColocatedTraceGenerator(table, base={"ip_proto": 6}).generate("SipSpDp")
    datapath = Datapath(table)
    for key in trace.keys:
        datapath.process(key)
    model = CostModel()
    gbps = model.victim_gbps(datapath.n_masks)
    return (
        f"TSE quickstart: replayed {len(trace)} crafted packets against the "
        f"Fig. 6 ACL; megaflow cache now holds {datapath.n_masks} masks / "
        f"{datapath.n_megaflows} entries; modelled victim throughput "
        f"{gbps:.3f} Gbps (baseline {model.baseline_gbps:.1f} Gbps)."
    )
