"""Unit tests for the §5.2 use-case ACL builders."""

import pytest

from repro.core.usecases import BASELINE, DP, SIPDP, SIPSPDP, SPDP, USE_CASES, use_case
from repro.exceptions import ExperimentError
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP


class TestRegistry:
    def test_all_present(self):
        assert set(USE_CASES) == {"Baseline", "Dp", "SpDp", "SipDp", "SipSpDp"}

    def test_lookup_case_insensitive(self):
        assert use_case("sipdp") is SIPDP
        assert use_case("SIPSPDP") is SIPSPDP

    def test_unknown_raises(self):
        with pytest.raises(ExperimentError, match="unknown use case"):
            use_case("nope")

    def test_expected_masks_match_paper(self):
        assert DP.expected_max_masks == 16
        assert SPDP.expected_max_masks == 256
        assert SIPDP.expected_max_masks == 512
        assert SIPSPDP.expected_max_masks == 8192

    def test_field_widths(self):
        assert SIPSPDP.field_widths() == (16, 32, 16)
        assert DP.field_widths() == (16,)


class TestTables:
    def test_sipspdp_is_fig6(self):
        """Rule shape of Fig. 6: three allow rules + DefaultDeny."""
        table = SIPSPDP.build_table()
        rules = table.rules_by_priority()
        assert [rule.name for rule in rules] == [
            "allow-tp_dst", "allow-ip_src", "allow-tp_src", "default-deny",
        ]
        # Fig. 6 semantics checks.
        assert table.classify(FlowKey(ip_proto=PROTO_TCP, tp_dst=80)).is_allow
        assert table.classify(FlowKey(ip_proto=PROTO_TCP, ip_src=0x0A000001)).is_allow
        assert table.classify(FlowKey(ip_proto=PROTO_TCP, tp_src=12345)).is_allow
        assert table.classify(FlowKey(ip_proto=PROTO_TCP, tp_src=1, tp_dst=1)).is_drop

    def test_priority_order_matches_fig6(self):
        """A packet matching #2 and #4 resolves to #2 (§2.1 example)."""
        table = SIPSPDP.build_table()
        key = FlowKey(ip_proto=PROTO_TCP, ip_src=0x0A000001, tp_src=34521, tp_dst=443)
        assert table.lookup(key).name == "allow-ip_src"

    def test_tenant_scoping(self):
        table = SIPDP.build_table(ip_dst=0xC0000201)
        # Traffic to another destination never matches the allow rules.
        assert table.classify(
            FlowKey(ip_proto=PROTO_TCP, ip_dst=0xC0000299, tp_dst=80)
        ).is_drop
        assert table.classify(
            FlowKey(ip_proto=PROTO_TCP, ip_dst=0xC0000201, tp_dst=80)
        ).is_allow

    def test_l4_rules_constrain_protocol(self):
        table = DP.build_table()
        rule = table.rules_by_priority()[0]
        assert rule.match.constraint("ip_proto") == (PROTO_TCP, 0xFF)

    def test_baseline_single_allow(self):
        table = BASELINE.build_table()
        assert len(table) == 2  # one allow + default deny

    def test_allow_value_lookup(self):
        assert DP.allow_value("tp_dst") == 80
        assert SIPDP.allow_value("ip_src") == 0x0A000001
        with pytest.raises(ExperimentError):
            DP.allow_value("ip_dst")
