"""Unit tests for the TSS-cached classifier adapter."""

from repro.classifier.adapter import TssCachedClassifier
from repro.classifier.actions import ALLOW, DENY
from repro.classifier.rule import FlowRule, Match
from repro.packet.fields import FlowKey


def rules():
    return [
        FlowRule(Match(tp_dst=80), ALLOW, priority=10, name="web"),
        FlowRule(Match.any(), DENY, priority=0, name="deny"),
    ]


class TestAdapter:
    def test_classifies_like_the_table(self):
        clf = TssCachedClassifier(rules())
        assert clf.classify(FlowKey(tp_dst=80)).action == ALLOW
        assert clf.classify(FlowKey(tp_dst=81)).action == DENY

    def test_first_lookup_includes_slow_path_cost(self):
        clf = TssCachedClassifier(rules())
        first = clf.classify(FlowKey(tp_dst=80))
        again = clf.classify(FlowKey(tp_dst=80))
        assert first.cost > again.cost  # upcall adds the rule scan

    def test_rule_name_from_provenance(self):
        clf = TssCachedClassifier(rules())
        assert clf.classify(FlowKey(tp_dst=80)).rule_name == "web"

    def test_cache_state_visible(self):
        clf = TssCachedClassifier(rules())
        assert clf.n_masks == 0
        clf.classify(FlowKey(tp_dst=80))
        assert clf.n_masks == 1

    def test_clock_monotonic_across_many_lookups(self):
        clf = TssCachedClassifier(rules())
        for port in range(200):
            clf.classify(FlowKey(tp_dst=port))
        assert clf.datapath.now > 0


class TestBackendInjection:
    def test_backend_by_name(self):
        from repro.classifier.tuplechain import TupleChainSearch

        clf = TssCachedClassifier(rules(), backend="tuplechain")
        assert clf.name == "tuplechain-cache"
        assert isinstance(clf.datapath.megaflows, TupleChainSearch)
        assert clf.classify(FlowKey(tp_dst=80)).action == ALLOW
        assert clf.classify(FlowKey(tp_dst=81)).action == DENY

    def test_backend_by_instance(self):
        from repro.classifier.tuplechain import TupleChainSearch

        cache = TupleChainSearch()
        clf = TssCachedClassifier(rules(), backend=cache)
        assert clf.name == "tuplechain-cache"  # registry name, not class name
        assert clf.datapath.megaflows is cache
        clf.classify(FlowKey(tp_dst=80))
        assert cache.n_entries == 1

    def test_default_name_unchanged(self):
        assert TssCachedClassifier(rules()).name == "tss-cache"
