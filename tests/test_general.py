"""Unit tests for General TSE random trace generation (§6.1)."""

import pytest

from repro.core.general import GeneralTraceGenerator
from repro.exceptions import ExperimentError
from repro.packet.headers import PROTO_TCP


class TestGeneration:
    def test_targeted_fields_randomized(self):
        generator = GeneralTraceGenerator(fields=("ip_src", "tp_dst"), seed=1)
        keys = list(generator.keys(100))
        assert len({key["ip_src"] for key in keys}) > 90
        assert len({key["tp_dst"] for key in keys}) > 50

    def test_base_fields_fixed(self):
        generator = GeneralTraceGenerator(
            fields=("tp_dst",), base={"ip_proto": PROTO_TCP, "ip_dst": 42}, seed=1
        )
        for key in generator.keys(50):
            assert key["ip_proto"] == PROTO_TCP
            assert key["ip_dst"] == 42

    def test_deterministic_per_seed(self):
        a = list(GeneralTraceGenerator(fields=("ip_src",), seed=7).keys(20))
        b = list(GeneralTraceGenerator(fields=("ip_src",), seed=7).keys(20))
        assert a == b

    def test_seeds_differ(self):
        a = list(GeneralTraceGenerator(fields=("ip_src",), seed=1).keys(20))
        b = list(GeneralTraceGenerator(fields=("ip_src",), seed=2).keys(20))
        assert a != b

    def test_reseed(self):
        generator = GeneralTraceGenerator(fields=("ip_src",), seed=3)
        first = list(generator.keys(10))
        generator.reseed(3)
        assert list(generator.keys(10)) == first

    def test_wide_field_random(self):
        generator = GeneralTraceGenerator(fields=("ipv6_src",), seed=5)
        values = [key["ipv6_src"] for key in generator.keys(32)]
        assert any(value > (1 << 64) for value in values)  # uses full width

    def test_uniformity_rough(self):
        generator = GeneralTraceGenerator(fields=("tp_dst",), seed=11)
        values = [key["tp_dst"] for key in generator.keys(2000)]
        top_half = sum(1 for v in values if v >= 1 << 15)
        assert 800 < top_half < 1200

    def test_generate_trace_container(self):
        generator = GeneralTraceGenerator(fields=("tp_dst",), seed=1)
        trace = generator.generate(25, use_case="Dp")
        assert len(trace) == 25
        assert trace.use_case == "Dp"


class TestValidation:
    def test_needs_fields(self):
        with pytest.raises(ExperimentError):
            GeneralTraceGenerator(fields=())

    def test_unknown_field(self):
        with pytest.raises(ExperimentError):
            GeneralTraceGenerator(fields=("nope",))

    def test_field_both_fixed_and_random(self):
        with pytest.raises(ExperimentError):
            GeneralTraceGenerator(fields=("tp_dst",), base={"tp_dst": 80})

    def test_negative_count(self):
        generator = GeneralTraceGenerator(fields=("tp_dst",))
        with pytest.raises(ExperimentError):
            list(generator.keys(-1))
