"""Unit tests for the OVS-like datapath pipeline."""

import pytest

from repro.classifier.actions import ALLOW, DENY
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import Match
from repro.exceptions import SwitchError
from repro.packet.builder import PacketBuilder
from repro.packet.fields import FlowKey
from repro.switch.datapath import Datapath, DatapathConfig, PathTaken


@pytest.fixture
def table() -> FlowTable:
    table = FlowTable()
    table.add_rule(Match(ip_proto=6, tp_dst=80), ALLOW, priority=10, name="allow-web")
    table.add_default_deny()
    return table


WEB = FlowKey(ip_proto=6, tp_dst=80, ip_src=1)
OTHER = FlowKey(ip_proto=6, tp_dst=81, ip_src=1)


class TestPipeline:
    def test_first_packet_takes_slow_path(self, table):
        datapath = Datapath(table)
        verdict = datapath.process(WEB)
        assert verdict.path is PathTaken.SLOW_PATH
        assert verdict.action == ALLOW
        assert verdict.installed is not None
        assert datapath.stats.upcalls == 1

    def test_second_packet_hits_microflow(self, table):
        datapath = Datapath(table)
        datapath.process(WEB)
        verdict = datapath.process(WEB)
        assert verdict.path is PathTaken.MICROFLOW
        assert verdict.action == ALLOW

    def test_same_megaflow_different_microflow(self, table):
        datapath = Datapath(table)
        datapath.process(WEB)
        # Different source port -> same megaflow, new microflow.
        verdict = datapath.process(WEB.replace(tp_src=999))
        assert verdict.path is PathTaken.MEGAFLOW

    def test_microflow_disabled(self, table):
        datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
        datapath.process(WEB)
        assert datapath.process(WEB).path is PathTaken.MEGAFLOW

    def test_classification_matches_flow_table(self, table):
        """The caches are semantically transparent."""
        datapath = Datapath(table)
        for key in (WEB, OTHER, WEB.replace(ip_src=7), OTHER.replace(tp_src=3)):
            for _ in range(3):
                assert datapath.process(key).action == table.classify(key)

    def test_process_packet_wire_level(self, table):
        datapath = Datapath(table)
        packet = PacketBuilder().tcp(ip_src=1, ip_dst=2, tp_dst=80)
        verdict = datapath.process_packet(packet)
        assert verdict.action == ALLOW

    def test_time_cannot_go_backwards(self, table):
        datapath = Datapath(table)
        datapath.process(WEB, now=5.0)
        with pytest.raises(SwitchError, match="backwards"):
            datapath.process(WEB, now=4.0)

    def test_stats_accumulate(self, table):
        datapath = Datapath(table)
        datapath.process(WEB)
        datapath.process(WEB)
        datapath.process(OTHER)
        stats = datapath.stats
        assert stats.packets == 3
        assert stats.upcalls == 2
        assert stats.installs == 2
        assert stats.microflow_hits == 1
        datapath.reset_stats()
        assert datapath.stats.packets == 0


class TestFlowTableChanges:
    def test_rule_change_flushes_caches(self, table):
        datapath = Datapath(table)
        datapath.process(WEB)
        assert datapath.n_megaflows == 1
        table.add_rule(Match(tp_src=53), ALLOW, priority=5, name="dns")
        assert datapath.n_megaflows == 0
        assert datapath.stats.flushes >= 1

    def test_new_rule_takes_effect(self, table):
        datapath = Datapath(table)
        key = FlowKey(ip_proto=6, tp_dst=81, tp_src=53)
        assert datapath.process(key).action == DENY
        table.add_rule(Match(ip_proto=6, tp_src=53), ALLOW, priority=5, name="dns")
        assert datapath.process(key).action == ALLOW


class TestFlowLimit:
    def test_install_rejected_at_limit(self, table):
        datapath = Datapath(table, DatapathConfig(max_megaflows=2, microflow_capacity=0))
        datapath.process(WEB)
        datapath.process(OTHER)
        verdict = datapath.process(FlowKey(ip_proto=6, tp_dst=99))
        assert verdict.path is PathTaken.SLOW_PATH
        assert verdict.installed is None
        assert datapath.stats.install_rejected == 1
        assert datapath.n_megaflows == 2


class TestDeadEntries:
    def test_killed_entry_never_resparks(self, table):
        datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
        verdict = datapath.process(OTHER)
        entry = verdict.installed
        assert datapath.kill_entry(entry)
        # Every replay goes to the slow path; nothing is installed.
        for _ in range(3):
            verdict = datapath.process(OTHER)
            assert verdict.path is PathTaken.SLOW_PATH
            assert verdict.installed is None
        assert datapath.stats.dead_entry_suppressed == 3
        assert datapath.n_megaflows == 0

    def test_reinject_restores(self, table):
        datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
        entry = datapath.process(OTHER).installed
        datapath.kill_entry(entry)
        datapath.reinject(entry)
        verdict = datapath.process(OTHER)
        assert verdict.installed is not None
        assert datapath.process(OTHER).path is PathTaken.MEGAFLOW

    def test_non_permanent_kill_resparks(self, table):
        datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
        entry = datapath.process(OTHER).installed
        datapath.kill_entry(entry, permanent=False)
        verdict = datapath.process(OTHER)
        assert verdict.installed is not None


class TestIdleEviction:
    def test_evict_idle_entries(self, table):
        datapath = Datapath(table, DatapathConfig(microflow_capacity=0, idle_timeout=10.0))
        datapath.process(WEB, now=0.0)
        datapath.process(OTHER, now=5.0)
        datapath.process(WEB, now=9.0)  # refresh WEB megaflow
        evicted = datapath.evict_idle(now=15.5)
        assert len(evicted) == 1  # OTHER (idle since 5.0)
        assert datapath.n_megaflows == 1

    def test_microflow_invalidated_on_eviction(self, table):
        datapath = Datapath(table, DatapathConfig(idle_timeout=1.0))
        datapath.process(WEB, now=0.0)
        datapath.process(WEB, now=0.5)  # in the microflow cache now
        datapath.evict_idle(now=20.0)
        verdict = datapath.process(WEB, now=20.0)
        assert verdict.path is PathTaken.SLOW_PATH  # no stale microflow hit


class TestMaskCachePath:
    def test_established_flow_hits_mask_cache(self, table):
        config = DatapathConfig(microflow_capacity=0, enable_mask_cache=True)
        datapath = Datapath(table, config)
        datapath.process(WEB)
        verdict = datapath.process(WEB)
        assert verdict.path is PathTaken.MASK_CACHE
        assert verdict.masks_inspected == 1

    def test_mask_cache_flushed_on_kill(self, table):
        config = DatapathConfig(microflow_capacity=0, enable_mask_cache=True)
        datapath = Datapath(table, config)
        entry = datapath.process(WEB).installed
        datapath.process(WEB)
        datapath.kill_entry(entry, permanent=False)
        assert datapath.process(WEB).path is PathTaken.SLOW_PATH
