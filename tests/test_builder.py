"""Unit tests for the high-level packet builder."""

import pytest

from repro.exceptions import PacketError
from repro.packet.builder import NoiseConfig, PacketBuilder
from repro.packet.fields import FlowKey
from repro.packet.headers import ETHERTYPE_IPV6, PROTO_ICMP, PROTO_TCP, PROTO_UDP


class TestDirectCrafting:
    def test_tcp(self):
        packet = PacketBuilder().tcp(ip_src=1, ip_dst=2, tp_src=3, tp_dst=4, ttl=5, tos=6)
        key = packet.flow_key()
        assert key["ip_src"] == 1
        assert key["tp_dst"] == 4
        assert key["ip_proto"] == PROTO_TCP
        assert key["ip_ttl"] == 5

    def test_udp(self):
        packet = PacketBuilder().udp(tp_dst=53)
        assert packet.flow_key()["ip_proto"] == PROTO_UDP

    def test_icmp(self):
        packet = PacketBuilder().icmp(icmp_type=8, code=0)
        assert packet.flow_key()["ip_proto"] == PROTO_ICMP

    def test_default_macs_applied(self):
        builder = PacketBuilder(default_eth_src=0xAA, default_eth_dst=0xBB)
        key = builder.tcp().flow_key()
        assert key["eth_src"] == 0xAA
        assert key["eth_dst"] == 0xBB


class TestFromFlowKey:
    def test_roundtrip_tcp(self):
        builder = PacketBuilder()
        key = FlowKey(ip_proto=PROTO_TCP, ip_src=10, ip_dst=20, tp_src=30, tp_dst=40)
        packet = builder.from_flow_key(key, noise=None)
        extracted = packet.flow_key()
        for field in ("ip_src", "ip_dst", "tp_src", "tp_dst", "ip_proto"):
            assert extracted[field] == key[field]

    def test_roundtrip_udp(self):
        builder = PacketBuilder()
        key = FlowKey(ip_proto=PROTO_UDP, tp_dst=53)
        assert builder.from_flow_key(key, noise=None).flow_key()["ip_proto"] == PROTO_UDP

    def test_ipv6_keys(self):
        builder = PacketBuilder()
        key = FlowKey(eth_type=ETHERTYPE_IPV6, ip_proto=PROTO_TCP, ipv6_src=1 << 90, tp_dst=80)
        packet = builder.from_flow_key(key, noise=None)
        extracted = packet.flow_key()
        assert extracted["ipv6_src"] == 1 << 90
        assert extracted["eth_type"] == ETHERTYPE_IPV6

    def test_noise_only_touches_unimportant_fields(self):
        builder = PacketBuilder(seed=3)
        key = FlowKey(ip_proto=PROTO_TCP, ip_src=10, tp_dst=80)
        noisy = [builder.from_flow_key(key, noise=NoiseConfig()) for _ in range(10)]
        assert all(p.flow_key()["ip_src"] == 10 for p in noisy)
        assert all(p.flow_key()["tp_dst"] == 80 for p in noisy)
        assert len({p.flow_key()["ip_ttl"] for p in noisy}) > 1
        assert len({p.payload for p in noisy}) > 1

    def test_unsupported_protocol(self):
        builder = PacketBuilder()
        with pytest.raises(PacketError):
            builder.from_flow_key(FlowKey(ip_proto=132), noise=None)  # SCTP

    def test_deterministic_per_seed(self):
        key = FlowKey(ip_proto=PROTO_TCP, tp_dst=80)
        a = PacketBuilder(seed=5).from_flow_key(key).to_bytes()
        b = PacketBuilder(seed=5).from_flow_key(key).to_bytes()
        assert a == b


class TestRandomValues:
    def test_width_respected(self):
        builder = PacketBuilder(seed=2)
        for _ in range(20):
            assert 0 <= builder.random_field_value("tp_dst") < (1 << 16)

    def test_wide_fields(self):
        builder = PacketBuilder(seed=2)
        values = [builder.random_field_value("ipv6_src") for _ in range(16)]
        assert any(v >= (1 << 64) for v in values)
