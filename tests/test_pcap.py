"""Unit tests for pcap reading/writing."""

import io
import struct

import pytest

from repro.exceptions import PcapError
from repro.packet.builder import PacketBuilder
from repro.packet.pcap import (
    LINKTYPE_ETHERNET,
    PcapReader,
    PcapWriter,
    read_pcap,
    write_pcap,
)


def sample_packets(n=5):
    builder = PacketBuilder(seed=1)
    return [builder.tcp(ip_src=i, ip_dst=100 + i, tp_dst=80) for i in range(n)]


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.pcap"
        packets = sample_packets()
        count = write_pcap(path, packets, rate_pps=100)
        assert count == 5
        loaded = read_pcap(path)
        assert len(loaded) == 5
        for (timestamp, packet), original in zip(loaded, packets):
            assert packet.flow_key() == original.flow_key()
        # 100 pps spacing = 10 ms between packets.
        assert loaded[1][0] - loaded[0][0] == pytest.approx(0.01, abs=1e-6)

    def test_stream_roundtrip(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for packet in sample_packets(3):
            writer.write_packet(packet, timestamp=1.5)
        buffer.seek(0)
        records = list(PcapReader(buffer))
        assert len(records) == 3
        assert records[0].timestamp == pytest.approx(1.5, abs=1e-6)

    def test_linktype_recorded(self, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_packets(1))
        with PcapReader(path) as reader:
            assert reader.linktype == LINKTYPE_ETHERNET
            assert reader.version == (2, 4)


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(PcapError, match="magic"):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_global_header(self):
        with pytest.raises(PcapError, match="truncated"):
            PcapReader(io.BytesIO(b"\xd4\xc3\xb2\xa1"))

    def test_truncated_record(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(b"payload", timestamp=0)
        data = buffer.getvalue()[:-3]  # chop the record body
        with pytest.raises(PcapError, match="truncated"):
            list(PcapReader(io.BytesIO(data)))

    def test_implausible_length(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)  # just the global header
        buffer.write(struct.pack("<IIII", 0, 0, 100, 50))  # incl > orig
        buffer.seek(0)
        with pytest.raises(PcapError, match="implausible"):
            list(PcapReader(buffer))

    def test_bad_rate(self, tmp_path):
        with pytest.raises(PcapError):
            write_pcap(tmp_path / "x.pcap", [], rate_pps=0)


class TestSwappedByteOrder:
    def test_big_endian_file(self):
        # Hand-build a byte-swapped capture: magic 0xa1b2c3d4 big-endian.
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        record = struct.pack(">IIII", 1, 500000, 4, 4) + b"abcd"
        reader = PcapReader(io.BytesIO(header + record))
        records = list(reader)
        assert len(records) == 1
        assert records[0].data == b"abcd"
        assert records[0].timestamp == pytest.approx(1.5, abs=1e-6)
