"""Scan-kernel differential tests: cffi ≡ numpy ≡ sequential dict-truth.

The kernels in :mod:`repro.classifier.kernel` are pure accelerators — they
only *propose* filter-hit candidates, and every candidate is confirmed
against the per-mask dicts — so no kernel choice may ever change a lookup
outcome, a ``masks_inspected`` count, or a statistics counter.  These
tests drive identical install / lookup / shuffle / salt-growth traces
through a numpy-kernel TSS, a cffi-kernel TSS (when the toolchain built
it) and a sequential per-key reference, and require transcript equality.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifier.actions import ALLOW
from repro.classifier.backend import MegaflowEntry
from repro.classifier.kernel import (
    FORCE_NUMPY_ENV,
    N_COLUMNS,
    cffi_kernel_available,
    make_scan_kernel,
    resolve_scan_kernel_name,
    row_hash,
    scan_kernel_names,
    to_column_matrix,
    to_columns,
)
from repro.classifier.tss import TupleSpaceSearch
from repro.packet.fields import FlowKey, FlowMask

CFFI_AVAILABLE = cffi_kernel_available()
needs_cffi = pytest.mark.skipif(
    not CFFI_AVAILABLE, reason="cffi scan kernel unavailable (no compiler?)"
)

KERNELS = ("numpy", "cffi") if CFFI_AVAILABLE else ("numpy",)


def _prefix(bits: int, width: int = 32) -> int:
    return ((1 << bits) - 1) << (width - bits) if bits else 0


# Masks differ in ip_src/ip_dst prefix length but all pin tp_dst exactly;
# entries get globally unique tp_dst values, so every pair of entries is
# disjoint (Inv(2)) by construction whatever hypothesis draws.
MASK_SPACE = [
    (src_bits, dst_bits) for src_bits in (0, 8, 16, 24, 32) for dst_bits in (0, 16, 32)
]


def _mask(src_bits: int, dst_bits: int) -> FlowMask:
    return FlowMask(
        ip_src=_prefix(src_bits), ip_dst=_prefix(dst_bits), tp_dst=0xFFFF
    )


def _entry(mask_pick: int, src: int, dst: int, tp_dst: int) -> MegaflowEntry:
    src_bits, dst_bits = MASK_SPACE[mask_pick % len(MASK_SPACE)]
    mask = _mask(src_bits, dst_bits)
    key = FlowKey(ip_src=src, ip_dst=dst, tp_dst=tp_dst).masked(mask)
    return MegaflowEntry(mask=mask, key=key, action=ALLOW)


def _summarise(result) -> tuple:
    entry = result.entry
    return (
        result.hit,
        None if entry is None else (entry.mask.values, entry.key),
        result.masks_inspected,
    )


def _drive(kernel: str, entries, probes, shuffle_seed: int) -> tuple:
    """One full trace through a TSS instance; returns its transcript."""
    tss = TupleSpaceSearch(scan_kernel=kernel)
    transcript = []
    half = len(entries) // 2
    for entry in entries[:half]:
        tss.insert(MegaflowEntry(mask=entry.mask, key=entry.key, action=entry.action))
    transcript.append([_summarise(r) for r in tss.lookup_batch(probes, now=1.0)])
    for entry in entries[half:]:
        tss.insert(MegaflowEntry(mask=entry.mask, key=entry.key, action=entry.action))
    transcript.append([_summarise(r) for r in tss.lookup_batch(probes, now=2.0)])
    tss.shuffle_masks(seed=shuffle_seed)
    transcript.append([_summarise(r) for r in tss.lookup_batch(probes, now=3.0)])
    transcript.append(
        (tss.stats_hits, tss.stats_misses, tss.stats_scans, tss.stats_scan_probes)
    )
    return tuple(map(tuple, transcript[:-1])) + (transcript[-1],)


def _drive_sequential(entries, probes, shuffle_seed: int) -> tuple:
    """The dict-truth reference: the same trace, one ``lookup`` at a time."""
    tss = TupleSpaceSearch(scan_kernel="numpy")
    transcript = []
    half = len(entries) // 2
    for entry in entries[:half]:
        tss.insert(MegaflowEntry(mask=entry.mask, key=entry.key, action=entry.action))
    transcript.append(tuple(_summarise(tss.lookup(k, now=1.0)) for k in probes))
    for entry in entries[half:]:
        tss.insert(MegaflowEntry(mask=entry.mask, key=entry.key, action=entry.action))
    transcript.append(tuple(_summarise(tss.lookup(k, now=2.0)) for k in probes))
    tss.shuffle_masks(seed=shuffle_seed)
    transcript.append(tuple(_summarise(tss.lookup(k, now=3.0)) for k in probes))
    transcript.append(
        (tss.stats_hits, tss.stats_misses, tss.stats_scans, tss.stats_scan_probes)
    )
    return tuple(transcript)


class TestDifferential:
    @settings(max_examples=25, deadline=None)
    @given(
        draws=st.lists(
            st.tuples(
                st.integers(0, len(MASK_SPACE) - 1),  # mask pick
                st.integers(0, 0xFFFFFFFF),  # ip_src
                st.integers(0, 0xFFFFFFFF),  # ip_dst
            ),
            min_size=1,
            max_size=24,
        ),
        miss_probes=st.lists(
            st.tuples(st.integers(0, 0xFFFFFFFF), st.integers(2000, 0xFFFF)),
            max_size=8,
        ),
        shuffle_seed=st.integers(0, 5),
    )
    def test_kernels_and_sequential_agree(self, draws, miss_probes, shuffle_seed):
        """Hypothesis: random install/lookup/shuffle traces are transcript-
        identical across kernels, batch and sequential."""
        entries = [
            _entry(pick, src, dst, tp_dst=index)  # unique tp_dst => disjoint
            for index, (pick, src, dst) in enumerate(draws)
        ]
        probes = [FlowKey.from_values(e.key) for e in entries] + [
            FlowKey(ip_src=src, tp_dst=tp_dst) for src, tp_dst in miss_probes
        ]
        reference = _drive_sequential(entries, probes, shuffle_seed)
        for kernel in KERNELS:
            assert _drive(kernel, entries, probes, shuffle_seed) == reference, kernel

    @needs_cffi
    def test_salt_growth_past_64_masks(self):
        """> 64 masks forces the append-only salt buffer to grow; the cffi
        and numpy kernels must track the identical salt sequence."""
        entries = []
        for index in range(90):  # 90 distinct (src, dst) prefix pairs
            mask = FlowMask(
                ip_src=_prefix(index % 33),
                ip_dst=_prefix(index // 33 + 1),
                tp_dst=0xFFFF,
            )
            key = FlowKey(
                ip_src=(37 * index) & 0xFFFFFFFF,
                ip_dst=(91 * index) & 0xFFFFFFFF,
                tp_dst=index,
            ).masked(mask)
            entries.append(MegaflowEntry(mask=mask, key=key, action=ALLOW))
        probes = [FlowKey.from_values(e.key) for e in entries]
        probes += [FlowKey(ip_src=index, tp_dst=5000 + index) for index in range(20)]
        reference = _drive_sequential(entries, probes, shuffle_seed=3)
        assert _drive("numpy", entries, probes, 3) == reference
        assert _drive("cffi", entries, probes, 3) == reference
        # The trace really did cross the growth threshold.
        tss = TupleSpaceSearch()
        for entry in entries:
            tss.insert(entry)
        assert tss.n_masks > 64


class TestSelection:
    def test_registry_names(self):
        names = scan_kernel_names()
        assert names[0] == "auto"
        assert {"numpy", "cffi"} <= set(names)

    def test_auto_resolution(self):
        resolved = resolve_scan_kernel_name("auto")
        assert resolved == ("cffi" if CFFI_AVAILABLE else "numpy")
        assert make_scan_kernel("auto").name == resolved

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            make_scan_kernel("turbo")

    def test_forced_numpy_fallback(self, monkeypatch):
        monkeypatch.setenv(FORCE_NUMPY_ENV, "1")
        assert resolve_scan_kernel_name("auto") == "numpy"
        assert make_scan_kernel("auto").name == "numpy"
        with pytest.raises(RuntimeError):
            make_scan_kernel("cffi")

    def test_tss_reports_kernel_name(self):
        tss = TupleSpaceSearch(scan_kernel="numpy")
        assert tss.scan_kernel_name == "numpy"
        auto = TupleSpaceSearch()
        assert auto.scan_kernel_name == resolve_scan_kernel_name("auto")

    @needs_cffi
    def test_explicit_cffi_selection(self):
        assert TupleSpaceSearch(scan_kernel="cffi").scan_kernel_name == "cffi"


class TestLayout:
    def test_column_round_trip(self):
        key = FlowKey(
            ip_src=0x0A0B0C0D,
            tp_dst=443,
            ipv6_src=(1 << 127) | 0xDEADBEEF,  # exercises the hi/lo split
        )
        row = to_columns(key.values)
        assert row.shape == (N_COLUMNS,)
        matrix = to_column_matrix([key.values])
        assert matrix.shape == (1, N_COLUMNS)
        assert (matrix[0] == row).all()
        assert row_hash(row) == row_hash(matrix[0])
