"""Unit tests for the field registry, FlowKey and FlowMask."""

import pytest

from repro.exceptions import FieldError
from repro.packet.fields import (
    EXACT_MASK,
    FIELD_ORDER,
    FIELDS,
    WILDCARD_MASK,
    FlowKey,
    FlowMask,
    field,
    field_names,
    first_diff_bit,
    prefix_mask,
)


class TestRegistry:
    def test_canonical_order_is_stable(self):
        assert field_names()[0] == "in_port"
        assert "ip_src" in FIELD_ORDER
        assert FIELD_ORDER.index("ip_src") < FIELD_ORDER.index("tp_dst")

    def test_widths(self):
        assert FIELDS["ip_src"].width == 32
        assert FIELDS["tp_dst"].width == 16
        assert FIELDS["ipv6_src"].width == 128
        assert FIELDS["ip_proto"].width == 8

    def test_unknown_field_raises(self):
        with pytest.raises(FieldError, match="unknown field"):
            field("nonexistent")

    def test_max_value_and_full_mask(self):
        tp = FIELDS["tp_dst"]
        assert tp.max_value == 0xFFFF
        assert tp.full_mask == 0xFFFF

    def test_check_value_bounds(self):
        with pytest.raises(FieldError):
            FIELDS["ip_proto"].check_value(256)
        with pytest.raises(FieldError):
            FIELDS["ip_proto"].check_value(-1)
        assert FIELDS["ip_proto"].check_value(255) == 255

    def test_check_value_type(self):
        with pytest.raises(FieldError, match="must be int"):
            FIELDS["ip_proto"].check_value("6")  # type: ignore[arg-type]


class TestPrefixAndBits:
    def test_prefix_mask_msb_anchored(self):
        assert prefix_mask("tp_dst", 1) == 0x8000
        assert prefix_mask("tp_dst", 16) == 0xFFFF
        assert prefix_mask("tp_dst", 0) == 0

    def test_prefix_mask_out_of_range(self):
        with pytest.raises(FieldError):
            prefix_mask("tp_dst", 17)

    def test_bit_mask_positions(self):
        tp = FIELDS["tp_dst"]
        assert tp.bit_mask(0) == 0x8000  # MSB-first
        assert tp.bit_mask(15) == 0x0001
        with pytest.raises(FieldError):
            tp.bit_mask(16)

    def test_first_diff_bit(self):
        # Paper convention: 001 vs 101 differ at position 0 (the MSB).
        assert first_diff_bit(0b001, 0b101, 3) == 0
        assert first_diff_bit(0b001, 0b011, 3) == 1
        assert first_diff_bit(0b001, 0b000, 3) == 2
        assert first_diff_bit(0b001, 0b001, 3) is None

    def test_first_diff_bit_respects_width(self):
        # Differences above the width are masked away.
        assert first_diff_bit(0b1001, 0b0001, 3) is None


class TestFlowKey:
    def test_defaults_zero(self):
        key = FlowKey()
        assert key["ip_src"] == 0
        assert all(v == 0 for v in key.values)

    def test_kwargs_set_fields(self):
        key = FlowKey(ip_src=0x0A000001, tp_dst=80)
        assert key["ip_src"] == 0x0A000001
        assert key["tp_dst"] == 80
        assert key["tp_src"] == 0

    def test_value_out_of_range(self):
        with pytest.raises(FieldError):
            FlowKey(tp_dst=1 << 16)

    def test_unknown_kwarg(self):
        with pytest.raises(FieldError):
            FlowKey(bogus=1)

    def test_equality_and_hash(self):
        a = FlowKey(ip_src=1, tp_dst=2)
        b = FlowKey(tp_dst=2, ip_src=1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != FlowKey(ip_src=1, tp_dst=3)

    def test_replace(self):
        key = FlowKey(ip_src=1)
        other = key.replace(tp_dst=80)
        assert other["ip_src"] == 1
        assert other["tp_dst"] == 80
        assert key["tp_dst"] == 0  # original untouched

    def test_from_values_roundtrip(self):
        key = FlowKey(ip_src=5, tp_src=6)
        clone = FlowKey.from_values(key.values)
        assert clone == key

    def test_from_values_length_checked(self):
        with pytest.raises(FieldError):
            FlowKey.from_values((1, 2, 3))

    def test_masked(self):
        key = FlowKey(ip_src=0xAABBCCDD)
        mask = FlowMask(ip_src=0xFF000000)
        masked = key.masked(mask)
        index = list(field_names()).index("ip_src")
        assert masked[index] == 0xAA000000
        assert sum(masked) == 0xAA000000  # every other field zero

    def test_items_nonzero(self):
        key = FlowKey(ip_src=1, tp_dst=2)
        assert dict(key.items_nonzero()) == {"ip_src": 1, "tp_dst": 2}

    def test_repr_mentions_fields(self):
        assert "tp_dst" in repr(FlowKey(tp_dst=80))


class TestFlowMask:
    def test_exact_and_wildcard(self):
        assert EXACT_MASK.is_exact()
        assert not WILDCARD_MASK.is_exact()
        assert WILDCARD_MASK.n_bits() == 0
        assert EXACT_MASK.n_bits() == sum(f.width for f in FIELDS.values())

    def test_union(self):
        a = FlowMask(ip_src=0xFF000000)
        b = FlowMask(tp_dst=0xFFFF)
        union = a.union(b)
        assert union["ip_src"] == 0xFF000000
        assert union["tp_dst"] == 0xFFFF

    def test_with_bits(self):
        mask = FlowMask(ip_src=0x80000000).with_bits("ip_src", 0x40000000)
        assert mask["ip_src"] == 0xC0000000

    def test_covers(self):
        wide = FlowMask(ip_src=0xFF000000)
        narrow = FlowMask(ip_src=0xF0000000)
        assert wide.covers(narrow)
        assert not narrow.covers(wide)

    def test_wildcarded_bits_complement(self):
        mask = FlowMask(tp_dst=0xFFFF)
        total = sum(f.width for f in FIELDS.values())
        assert mask.wildcarded_bits() == total - 16

    def test_overlap_semantics(self):
        key_a = FlowKey(ip_src=0x0A000000).masked(FlowMask(ip_src=0xFF000000))
        key_b = FlowKey(ip_src=0x0A000001).masked(FlowMask(ip_src=0xFFFFFFFF))
        mask_a = FlowMask(ip_src=0xFF000000)
        mask_b = FlowMask(ip_src=0xFFFFFFFF)
        # 10.x.x.x/8 overlaps 10.0.0.1/32
        assert mask_a.overlaps_key(key_a, mask_b, key_b)
        # but not 11.0.0.1/32
        key_c = FlowKey(ip_src=0x0B000001).masked(mask_b)
        assert not mask_a.overlaps_key(key_a, mask_b, key_c)

    def test_mask_out_of_range(self):
        with pytest.raises(FieldError):
            FlowMask(tp_dst=1 << 16)
