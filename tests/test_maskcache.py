"""Unit tests for the kernel-style mask cache."""

import pytest

from repro.exceptions import SwitchError
from repro.packet.fields import FlowKey, FlowMask
from repro.switch.maskcache import KernelMaskCache


MASK_A = FlowMask(tp_dst=0xFFFF)
MASK_B = FlowMask(ip_src=0xFF000000)


class TestBasics:
    def test_probe_miss_then_hit(self):
        cache = KernelMaskCache(size=16)
        key = FlowKey(tp_dst=80)
        assert cache.probe(key) is None
        cache.update(key, MASK_A)
        assert cache.probe(key) == MASK_A

    def test_size_validation(self):
        with pytest.raises(SwitchError):
            KernelMaskCache(size=0)

    def test_update_overwrites(self):
        cache = KernelMaskCache(size=16)
        key = FlowKey(tp_dst=80)
        cache.update(key, MASK_A)
        cache.update(key, MASK_B)
        assert cache.probe(key) == MASK_B

    def test_stats(self):
        cache = KernelMaskCache(size=16)
        key = FlowKey(tp_dst=80)
        cache.probe(key)
        cache.update(key, MASK_A)
        cache.probe(key)
        assert cache.stats_misses == 1
        assert cache.stats_hits == 1


class TestCollisionsAndInvalidation:
    def test_direct_mapped_eviction(self):
        cache = KernelMaskCache(size=1)  # every key collides
        k1, k2 = FlowKey(tp_dst=1), FlowKey(tp_dst=2)
        cache.update(k1, MASK_A)
        cache.update(k2, MASK_B)
        assert cache.probe(k1) is None  # evicted by the colliding update
        assert cache.probe(k2) == MASK_B

    def test_invalidate_mask(self):
        cache = KernelMaskCache(size=64)
        keys = [FlowKey(tp_dst=i) for i in range(8)]
        for key in keys:
            cache.update(key, MASK_A)
        cache.update(FlowKey(tp_src=9), MASK_B)
        dropped = cache.invalidate_mask(MASK_A)
        assert dropped >= 1
        assert all(cache.probe(key) is None for key in keys)
        assert cache.probe(FlowKey(tp_src=9)) == MASK_B

    def test_flush(self):
        cache = KernelMaskCache(size=16)
        cache.update(FlowKey(tp_dst=80), MASK_A)
        cache.flush()
        assert cache.occupancy == 0

    def test_occupancy_and_repr(self):
        cache = KernelMaskCache(size=16)
        cache.update(FlowKey(tp_dst=80), MASK_A)
        assert cache.occupancy == 1
        assert "1/16" in repr(cache)
