"""Unit tests for the datacenter model (Fig. 7) and environment presets."""

import pytest

from repro.core.usecases import use_case
from repro.exceptions import PolicyError, SimulationError
from repro.netsim.cloud import (
    ENVIRONMENTS,
    KUBERNETES_ENV,
    OPENSTACK_ENV,
    SYNTHETIC_ENV,
    Datacenter,
)
from repro.netsim.cms import PolicyRule
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP


class TestEnvironments:
    def test_three_testbeds(self):
        # The three Table 1 columns plus the multi-queue follow-up preset.
        assert set(ENVIRONMENTS) == {
            "Synthetic", "OpenStack", "Kubernetes", "Multiqueue"
        }
        for name in ("Synthetic", "OpenStack", "Kubernetes"):
            assert ENVIRONMENTS[name].n_pmd == 1  # the paper's single-PMD SUTs
        assert ENVIRONMENTS["Multiqueue"].n_pmd == 4

    def test_openstack_limits_acls(self):
        assert OPENSTACK_ENV.cms.max_use_case() == "SipDp"
        assert use_case(OPENSTACK_ENV.cms.max_use_case()).expected_max_masks == 512

    def test_kubernetes_runs_full_attack(self):
        assert KUBERNETES_ENV.cms.max_use_case() == "SipSpDp"
        assert KUBERNETES_ENV.cost_model.link_gbps == 1.0

    def test_openstack_quirks_enabled(self):
        assert OPENSTACK_ENV.quirks.established_flow_protection
        assert OPENSTACK_ENV.datapath.enable_mask_cache

    def test_synthetic_is_vanilla(self):
        assert not SYNTHETIC_ENV.quirks.established_flow_protection
        assert SYNTHETIC_ENV.cost_model.link_gbps == 10.0


class TestDatacenter:
    def test_fig7_layout(self):
        cloud = Datacenter(SYNTHETIC_ENV, n_servers=2)
        v1 = cloud.launch_vm("victim", "V1", 0)
        a1 = cloud.launch_vm("attacker", "A1", 0)
        v2 = cloud.launch_vm("victim", "V2", 1)
        assert cloud.server_of(v1) is cloud.server_of(a1)  # co-located!
        assert cloud.server_of(v2) is not cloud.server_of(v1)
        assert v1.ip != a1.ip != v2.ip

    def test_shared_datapath_is_the_point(self):
        """Both tenants' ACLs land in the same switch (the attack premise)."""
        cloud = Datacenter(SYNTHETIC_ENV)
        v1 = cloud.launch_vm("victim", "V1", 0)
        a1 = cloud.launch_vm("attacker", "A1", 0)
        server = cloud.servers[0]
        server.install_policy(v1, [PolicyRule(dst_port=5001)], label="acl-v")
        server.install_policy(a1, [PolicyRule(dst_port=80)], label="acl-a")
        server.ensure_default_deny()
        names = [rule.name for rule in server.flow_table]
        assert "acl-v-r1" in names
        assert "acl-a-r1" in names

    def test_policy_scoped_to_vm(self):
        cloud = Datacenter(SYNTHETIC_ENV)
        v1 = cloud.launch_vm("victim", "V1", 0)
        a1 = cloud.launch_vm("attacker", "A1", 0)
        server = cloud.servers[0]
        server.install_policy(v1, [PolicyRule(dst_port=5001)])
        server.ensure_default_deny()
        to_victim = FlowKey(ip_proto=PROTO_TCP, ip_dst=v1.ip, tp_dst=5001)
        to_attacker = FlowKey(ip_proto=PROTO_TCP, ip_dst=a1.ip, tp_dst=5001)
        assert server.flow_table.classify(to_victim).is_allow
        assert server.flow_table.classify(to_attacker).is_drop

    def test_cms_enforced_per_environment(self):
        cloud = Datacenter(OPENSTACK_ENV)
        a1 = cloud.launch_vm("attacker", "A1", 0)
        with pytest.raises(PolicyError):
            cloud.servers[0].install_policy(a1, [PolicyRule(src_port=12345)])

    def test_vm_must_be_scheduled_on_server(self):
        cloud = Datacenter(SYNTHETIC_ENV, n_servers=2)
        v1 = cloud.launch_vm("victim", "V1", 0)
        with pytest.raises(SimulationError):
            cloud.servers[1].install_policy(v1, [PolicyRule(dst_port=80)])

    def test_default_deny_added_once(self):
        cloud = Datacenter(SYNTHETIC_ENV)
        server = cloud.servers[0]
        server.ensure_default_deny()
        server.ensure_default_deny()
        assert len(server.flow_table) == 1

    def test_tenant_registry(self):
        cloud = Datacenter(SYNTHETIC_ENV)
        cloud.launch_vm("victim", "V1", 0)
        cloud.launch_vm("victim", "V2", 0)
        assert len(cloud.tenant("victim").vms) == 2

    def test_validation(self):
        with pytest.raises(SimulationError):
            Datacenter(SYNTHETIC_ENV, n_servers=0)
        cloud = Datacenter(SYNTHETIC_ENV)
        with pytest.raises(SimulationError):
            cloud.launch_vm("t", "vm", 7)

    def test_guard_option(self):
        cloud = Datacenter(SYNTHETIC_ENV, with_guard=True)
        assert cloud.servers[0].host.guard is not None
