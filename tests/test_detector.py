"""Unit tests for TSE pattern detection (Alg. 2's lookPatternInMFC)."""

import pytest

from repro.core.detector import entry_matches_pattern, find_tse_entries, tse_mask_fraction
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import DP, SIPDP
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig


@pytest.fixture
def attacked_datapath():
    table = SIPDP.build_table()
    datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    for key in trace.keys:
        datapath.process(key)
    return table, datapath


class TestDetection:
    def test_attack_detected_per_rule(self, attacked_datapath):
        table, datapath = attacked_datapath
        patterns = find_tse_entries(datapath.megaflows, table)
        flagged = {pattern.rule.name for pattern in patterns}
        assert "allow-tp_dst" in flagged
        assert "allow-ip_src" in flagged

    def test_flagged_entries_are_denies(self, attacked_datapath):
        table, datapath = attacked_datapath
        for pattern in find_tse_entries(datapath.megaflows, table):
            assert all(entry.action.is_drop for entry in pattern.entries)

    def test_most_masks_attributed(self, attacked_datapath):
        table, datapath = attacked_datapath
        fraction = tse_mask_fraction(datapath.megaflows, table)
        assert fraction > 0.9

    def test_mask_count_property(self, attacked_datapath):
        table, datapath = attacked_datapath
        patterns = find_tse_entries(datapath.megaflows, table)
        for pattern in patterns:
            assert 0 < pattern.mask_count <= len(pattern.entries)


class TestBenignTraffic:
    def test_benign_cache_not_flagged(self):
        """Requirement (i) of §8: useful traffic is never attributed."""
        table = DP.build_table()
        datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
        # Only admitted traffic: web flows from many clients.
        for client in range(50):
            datapath.process(
                FlowKey(ip_proto=PROTO_TCP, ip_src=client, tp_src=1000 + client, tp_dst=80)
            )
        patterns = find_tse_entries(datapath.megaflows, table)
        allow_entries = [
            e for p in patterns for e in p.entries if not e.action.is_drop
        ]
        assert allow_entries == []
        assert tse_mask_fraction(datapath.megaflows, table) == 0.0

    def test_empty_cache(self):
        table = DP.build_table()
        datapath = Datapath(table)
        assert find_tse_entries(datapath.megaflows, table) == []
        assert tse_mask_fraction(datapath.megaflows, table) == 0.0


class TestEntryPredicate:
    def test_allow_entry_never_matches(self, attacked_datapath):
        table, datapath = attacked_datapath
        rules = table.rules_by_priority()
        allow_entries = [e for e in datapath.megaflows.entries() if e.action.is_allow]
        assert allow_entries  # the trace spawns allow entries too
        for entry in allow_entries:
            for rule in rules:
                assert not entry_matches_pattern(entry, rule)

    def test_first_diff_signature_required(self, attacked_datapath):
        """A deny entry *agreeing* with the rule on the prefix isn't TSE."""
        table, datapath = attacked_datapath
        rule = table.rules_by_priority()[0]  # allow-tp_dst (80)
        matching = [
            e for e in datapath.megaflows.entries()
            if e.action.is_drop and entry_matches_pattern(e, rule)
        ]
        # Every flagged entry disproves tp_dst=80 at its prefix end.
        index = list(
            __import__("repro.packet.fields", fromlist=["FIELD_ORDER"]).FIELD_ORDER
        ).index("tp_dst")
        for entry in matching:
            overlap = entry.mask.values[index] & 0xFFFF
            assert overlap != 0
