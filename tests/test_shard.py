"""Sharded-datapath tests: RSS dispatch, shard equivalence, isolation.

The sharding invariants under test (see ROADMAP.md):

* ``ShardedDatapath(n_shards=1)`` is verdict-for-verdict identical to a
  plain :class:`Datapath` on attack replays;
* the aggregate installed-entry set (and therefore the distinct-mask
  union) is invariant to the shard count for a deterministic RSS;
* RSS assignment is stable for a flow's lifetime;
* queue-aware retargeting grinds only wildcarded bits, so the retargeted
  trace detonates the identical tuple space;
* per-core hypervisor accounting isolates victims from attacks
  concentrated on other queues.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.classifier.actions import ALLOW, DENY
from repro.classifier.backend import megaflow_backend_names
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import Match
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPDP
from repro.netsim.cloud import MULTIQUEUE_ENV, SYNTHETIC_ENV
from repro.netsim.hypervisor import HypervisorHost
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig
from repro.switch.dpctl import dump_flows, mask_histogram, show
from repro.switch.rss import RssDispatcher, five_tuple_hash, pin_to_queue, retarget_trace
from repro.switch.sharded import ShardedDatapath


def attack_replay(seed: int = 0, extra: int = 200) -> tuple[FlowTable, list[FlowKey]]:
    """A detonating trace plus random replay noise over the SipDp table.

    SipDp's ~500-mask staircase keeps the sequential reference replay fast
    while still exercising a genuine multi-mask explosion.
    """
    table = SIPDP.build_table()
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    rng = np.random.default_rng(seed)
    noise = [
        FlowKey(
            ip_src=int(rng.integers(0, 1 << 32)),
            tp_src=int(rng.integers(0, 1 << 16)),
            tp_dst=int(rng.integers(0, 1 << 16)),
            ip_proto=PROTO_TCP,
        )
        for _ in range(extra)
    ]
    keys = list(trace.keys) + noise + list(trace.keys)[: len(trace) // 2]
    return table, keys


class TestRss:
    def test_hash_deterministic(self):
        key = FlowKey(ip_src=0x0A000001, tp_src=1234, tp_dst=80, ip_proto=6)
        assert five_tuple_hash(key) == five_tuple_hash(key)

    def test_assignment_stable_and_spread(self):
        dispatcher = RssDispatcher(4)
        rng = np.random.default_rng(1)
        keys = [
            FlowKey(ip_src=int(rng.integers(0, 1 << 32)), tp_src=int(rng.integers(0, 1 << 16)))
            for _ in range(400)
        ]
        queues = [dispatcher.queue_of(k) for k in keys]
        assert queues == [dispatcher.queue_of(k) for k in keys]  # stable
        counts = [queues.count(q) for q in range(4)]
        assert all(count > 50 for count in counts)  # roughly uniform

    def test_single_queue_shortcut(self):
        dispatcher = RssDispatcher(1)
        assert dispatcher.queue_of(FlowKey(ip_src=7)) == 0

    def test_partition_preserves_order(self):
        dispatcher = RssDispatcher(2)
        keys = [FlowKey(ip_src=i) for i in range(20)]
        buckets = dispatcher.partition(keys)
        assert sorted(i for ids in buckets.values() for i in ids) == list(range(20))
        for ids in buckets.values():
            assert ids == sorted(ids)

    def test_pin_to_queue(self):
        dispatcher = RssDispatcher(4)
        key = FlowKey(ip_src=0x0A00000A, ip_dst=0x0A00000B, ip_proto=6, tp_dst=5001)
        for queue in range(4):
            pinned = pin_to_queue(key, dispatcher, queue, field="tp_src")
            assert dispatcher.queue_of(pinned) == queue
            # Only the ground field changed.
            assert pinned.replace(tp_src=0) == key.replace(tp_src=0)


# Derived from the registry: a newly registered backend automatically
# inherits the sharding-invariant coverage.
BACKENDS = megaflow_backend_names()


class TestShardEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("microflow,mask_cache", [(0, False), (16, False), (0, True)])
    def test_one_shard_identical_to_datapath(self, microflow, mask_cache, backend):
        """ShardedDatapath(n_shards=1) ≡ Datapath, verdict for verdict.

        Parametrised over megaflow backends: the sharding layer composes
        whatever backend the config selects, so the invariant must hold
        (with backend-native ``masks_inspected`` units) for each.
        """
        config = DatapathConfig(
            microflow_capacity=microflow,
            enable_mask_cache=mask_cache,
            mask_cache_size=16,
            megaflow_backend=backend,
        )
        table_a, keys = attack_replay()
        table_b = FlowTable(rules=list(table_a))
        plain = Datapath(table_a, config)
        sharded = ShardedDatapath(table_b, config, n_shards=1)
        expected = [plain.process(k, now=1.0) for k in keys]
        got = list(sharded.process_batch(keys, now=1.0).verdicts)
        for i, (a, b) in enumerate(zip(expected, got)):
            assert a.action == b.action, i
            assert a.path == b.path, i
            assert a.masks_inspected == b.masks_inspected, i
            assert a.rules_examined == b.rules_examined, i
        assert sharded.n_masks == plain.n_masks
        assert sharded.n_megaflows == plain.n_megaflows
        assert sharded.stats.upcalls == plain.stats.upcalls
        assert sharded.stats.installs == plain.stats.installs

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_aggregate_totals_invariant_to_shard_count(self, backend):
        """The installed entry/mask union is shard-count independent."""
        config = DatapathConfig(microflow_capacity=0, megaflow_backend=backend)
        unions = []
        mask_unions = []
        for n_shards in (1, 2, 4):
            table, keys = attack_replay()
            datapath = ShardedDatapath(
                FlowTable(rules=list(table)), config, n_shards=n_shards
            )
            datapath.process_batch(keys)
            unions.append({(e.mask.values, e.key) for e in datapath.entries()})
            mask_unions.append(
                {m for shard in datapath.shards for m in shard.megaflows.masks()}
            )
            assert datapath.n_masks == len(mask_unions[-1])
        assert unions[0] == unions[1] == unions[2]
        assert mask_unions[0] == mask_unions[1] == mask_unions[2]

    def test_flows_stay_on_their_shard(self):
        """Every entry lives in the shard RSS assigns its packets to."""
        table, keys = attack_replay(extra=50)
        datapath = ShardedDatapath(table, DatapathConfig(microflow_capacity=0), n_shards=4)
        batch = datapath.process_batch(keys)
        for key, shard_id in zip(keys, batch.shard_ids):
            assert shard_id == datapath.shard_of(key)
        # Each flow's megaflow was installed in its RSS home shard.  (A
        # *different* flow may install the same wildcarded entry in its
        # own shard, so exclusivity is not an invariant — presence is.)
        for key in set(keys):
            home = datapath.shard_of(key)
            assert datapath.shards[home].megaflows.find(key) is not None
        # And every packet was processed by exactly its home shard.
        per_shard_packets = [shard.stats.packets for shard in datapath.shards]
        assert sum(per_shard_packets) == len(keys)
        expected = [0] * datapath.n_shards
        for key in keys:
            expected[datapath.shard_of(key)] += 1
        assert per_shard_packets == expected

    def test_flow_table_change_flushes_every_shard(self):
        table, keys = attack_replay(extra=0)
        datapath = ShardedDatapath(table, DatapathConfig(microflow_capacity=0), n_shards=4)
        datapath.process_batch(keys)
        assert datapath.n_megaflows > 0
        table.add_rule(Match(tp_dst=(9999, 0xFFFF)), DENY, priority=2000, name="late")
        assert datapath.n_megaflows == 0
        assert all(shard.stats.flushes == 1 for shard in datapath.shards)


class TestRetarget:
    def test_concentrated_trace_lands_on_target_and_detonates_identically(self):
        table = SIPDP.build_table()
        trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
        dispatcher = RssDispatcher(4)
        keys, report = retarget_trace(
            list(trace.keys), table, dispatcher, lambda i, k: 2
        )
        assert report.stuck <= len(keys) // 20  # nearly everything grinds
        on_target = sum(1 for k in keys if dispatcher.queue_of(k) == 2)
        assert on_target == report.retargeted + report.already_on_target

        # Identical tuple-space detonation: same final masks and entries.
        original = Datapath(SIPDP.build_table(), DatapathConfig(microflow_capacity=0))
        crafted = Datapath(SIPDP.build_table(), DatapathConfig(microflow_capacity=0))
        va = [original.process(k) for k in trace.keys]
        vb = [crafted.process(k) for k in keys]
        assert [v.action for v in va] == [v.action for v in vb]
        assert set(original.megaflows.masks()) == set(crafted.megaflows.masks())
        assert {(e.mask.values, e.key) for e in original.megaflows.entries()} == {
            (e.mask.values, e.key) for e in crafted.megaflows.entries()
        }


class TestPerCoreAccounting:
    def _host(self, n_shards: int) -> HypervisorHost:
        table = SIPDP.build_table()
        datapath = ShardedDatapath(
            table, DatapathConfig(microflow_capacity=0), n_shards=n_shards
        )
        return HypervisorHost(datapath, SYNTHETIC_ENV.cost_model)

    def test_concentrated_attack_spares_other_cores_victims(self):
        host = self._host(2)
        dispatcher = host.datapath.rss
        base = FlowKey(ip_src=5, ip_proto=PROTO_TCP, tp_dst=80)
        victim0 = pin_to_queue(base, dispatcher, 0, field="tp_src", start=50000)
        victim1 = pin_to_queue(base, dispatcher, 1, field="tp_src", start=51000)
        host.register_victim("v0", (victim0,))
        host.register_victim("v1", (victim1,))
        assert host.victims["v0"].home_shards == (0,)
        assert host.victims["v1"].home_shards == (1,)
        for name in ("v0", "v1"):
            host.victim_started(name, 0.0)
            host.keepalive(name, 0.0)
        host.tick(0.0, 0.1)
        baseline0, baseline1 = host.victim_rate("v0"), host.victim_rate("v1")

        table = host.datapath.flow_table
        trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
        keys, _ = retarget_trace(list(trace.keys), table, dispatcher, lambda i, k: 0)
        host.inject_attack_batch(keys, now=1.0)
        host.keepalive("v0", 1.0)
        host.keepalive("v1", 1.0)
        host.tick(1.0, 0.1)

        assert host.datapath.shards[0].n_masks > 100
        assert host.datapath.shards[1].n_masks <= 5
        assert host.victim_rate("v0") < 0.2 * baseline0  # targeted core collapses
        assert host.victim_rate("v1") >= 0.9 * baseline1  # co-located but isolated
        assert host.per_core_load[0] > host.per_core_load[1]

    def test_single_shard_host_matches_plain_datapath_host(self):
        """Per-core accounting at n=1 reduces to the original model."""
        def mk(sharded: bool) -> HypervisorHost:
            table = SIPDP.build_table()
            config = DatapathConfig(microflow_capacity=0)
            datapath = (
                ShardedDatapath(table, config, n_shards=1)
                if sharded
                else Datapath(table, config)
            )
            return HypervisorHost(datapath, SYNTHETIC_ENV.cost_model)

        a, b = mk(False), mk(True)
        for host in (a, b):
            host.register_victim("v", (FlowKey(ip_src=5, ip_proto=6, tp_src=52000, tp_dst=80),))
            host.victim_started("v", 0.0)
            trace = ColocatedTraceGenerator(
                host.datapath.flow_table, base={"ip_proto": PROTO_TCP}
            ).generate()
            host.inject_attack_batch(list(trace.keys), now=0.0)
            host.keepalive("v", 0.0)
            host.tick(0.0, 0.1)
        assert a.victim_rate("v") == pytest.approx(b.victim_rate("v"), rel=1e-9)
        assert a.cpu_load_fraction == pytest.approx(b.cpu_load_fraction, rel=1e-9)


class TestShardedDpctl:
    def _attacked(self, n_shards: int = 2) -> ShardedDatapath:
        table = SIPDP.build_table()
        datapath = ShardedDatapath(table, DatapathConfig(microflow_capacity=0), n_shards=n_shards)
        trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
        datapath.process_batch(list(trace.keys))
        return datapath

    def test_show_reports_per_shard_lines(self):
        datapath = self._attacked()
        text = show(datapath)
        assert "pmd queue 0:" in text and "pmd queue 1:" in text
        assert "mask tables:" in text
        for shard_id, shard in enumerate(datapath.shards):
            assert f"pmd queue {shard_id}: flows: {shard.n_megaflows};" in text
            assert f"total:{shard.n_masks}" in text

    def test_dump_flows_grouped_by_shard(self):
        datapath = self._attacked()
        lines = dump_flows(datapath).splitlines()
        headers = [line for line in lines if line.startswith("pmd queue")]
        assert len(headers) == 2
        assert len(lines) == 2 + datapath.n_megaflows

    def test_mask_histogram_counts_tables_across_shards(self):
        datapath = self._attacked()
        histogram = mask_histogram(datapath)
        assert sum(histogram.values()) == datapath.n_mask_tables


class TestGuardAndRevalidatorOnShards:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_guard_cleans_every_shard(self, backend):
        from repro.core.mitigation import MFCGuard, MFCGuardConfig

        table = SIPDP.build_table()
        datapath = ShardedDatapath(
            table,
            DatapathConfig(microflow_capacity=0, megaflow_backend=backend),
            n_shards=2,
        )
        trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
        datapath.process_batch(list(trace.keys))
        masks_before = datapath.n_masks
        assert masks_before > 100
        guard = MFCGuard(datapath, MFCGuardConfig(mask_threshold=50, cpu_threshold_pct=900))
        report = guard.run(now=10.0)
        assert report.entries_deleted > 0
        assert datapath.n_masks < masks_before

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_revalidator_enforces_aggregate_flow_limit(self, backend):
        from repro.switch.revalidator import Revalidator

        table = FlowTable()
        table.add_rule(Match(tp_dst=(80, 0xFFFF)), ALLOW, priority=1, name="allow-80")
        table.add_default_deny()
        config = DatapathConfig(
            microflow_capacity=0, max_megaflows=1000, megaflow_backend=backend
        )
        datapath = ShardedDatapath(table, config, n_shards=2)
        keys = [FlowKey(ip_src=i, tp_dst=80, ip_proto=6) for i in range(64)]
        datapath.process_batch(keys, now=0.0)
        installed = datapath.n_megaflows
        revalidator = Revalidator(datapath, period=1.0)
        evicted = revalidator.sweep(now=100.0)  # everything idle > 10 s
        assert len(evicted) == installed
        assert datapath.n_megaflows == 0


def test_multiqueue_env_builds_sharded_server():
    from repro.netsim.cloud import Server

    server = Server("s1", MULTIQUEUE_ENV)
    assert isinstance(server.datapath, ShardedDatapath)
    assert server.datapath.n_shards == 4
    assert server.host.n_cores == 4
