"""Unit tests for Match and FlowRule."""

import pytest

from repro.classifier.actions import ALLOW, DENY, Action, ActionKind
from repro.classifier.rule import FlowRule, Match
from repro.exceptions import RuleError
from repro.packet.fields import FlowKey


class TestMatch:
    def test_exact_constraint(self):
        match = Match(tp_dst=80)
        assert match.matches(FlowKey(tp_dst=80))
        assert not match.matches(FlowKey(tp_dst=81))

    def test_tuple_constraint_prefix(self):
        match = Match(ip_src=(0x0A000000, 0xFF000000))  # 10.0.0.0/8
        assert match.matches(FlowKey(ip_src=0x0A123456))
        assert not match.matches(FlowKey(ip_src=0x0B000000))

    def test_value_outside_mask_rejected(self):
        with pytest.raises(RuleError, match="outside mask"):
            Match(ip_src=(0x0A000001, 0xFF000000))

    def test_zero_mask_is_no_constraint(self):
        match = Match(ip_src=(0, 0))
        assert match.is_catchall
        assert match.matches(FlowKey(ip_src=12345))

    def test_catchall(self):
        assert Match.any().is_catchall
        assert Match.any().matches(FlowKey(ip_src=1, tp_dst=2))

    def test_fields_in_canonical_order(self):
        match = Match(tp_dst=80, ip_src=(0x0A000000, 0xFF000000))
        assert match.fields == ("ip_src", "tp_dst")

    def test_constraint_lookup(self):
        match = Match(tp_dst=80)
        assert match.constraint("tp_dst") == (80, 0xFFFF)
        assert match.constraint("tp_src") is None

    def test_mask_aggregation(self):
        match = Match(tp_dst=80, ip_src=(0x0A000000, 0xFF000000))
        mask = match.mask()
        assert mask["tp_dst"] == 0xFFFF
        assert mask["ip_src"] == 0xFF000000

    def test_n_constrained_bits(self):
        match = Match(tp_dst=80, ip_src=(0x0A000000, 0xFF000000))
        assert match.n_constrained_bits() == 16 + 8

    def test_overlaps(self):
        a = Match(ip_src=(0x0A000000, 0xFF000000))
        b = Match(ip_src=0x0A000001)
        c = Match(ip_src=0x0B000001)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)
        # Disjoint fields always overlap (some packet satisfies both).
        assert Match(tp_dst=80).overlaps(Match(tp_src=53))

    def test_equality_and_hash(self):
        assert Match(tp_dst=80) == Match(tp_dst=(80, 0xFFFF))
        assert hash(Match(tp_dst=80)) == hash(Match(tp_dst=(80, 0xFFFF)))
        assert Match(tp_dst=80) != Match(tp_dst=81)

    def test_example_key_satisfies(self):
        match = Match(tp_dst=80, ip_src=(0x0A000000, 0xFF000000))
        assert match.matches(match.example_key())

    def test_enumerate_keys_small(self):
        match = Match(ip_tos=(0b11100000 & 0b11000000, 0b11000000))
        keys = list(match.enumerate_keys(limit=1 << 8))
        # 6 free bits in ip_tos -> 64 keys (all other fields zero).
        assert len(keys) == 64
        assert all(match.matches(key) for key in keys)

    def test_enumerate_keys_limit(self):
        with pytest.raises(RuleError, match="more than"):
            list(Match(tp_dst=(0, 0x8000)).enumerate_keys(limit=4))

    def test_from_constraints(self):
        match = Match.from_constraints({"tp_dst": (80, 0xFFFF)})
        assert match == Match(tp_dst=80)

    def test_unknown_field(self):
        from repro.exceptions import FieldError

        with pytest.raises(FieldError):
            Match(nonsense=1)


class TestFlowRule:
    def test_matches_delegates(self):
        rule = FlowRule(Match(tp_dst=80), ALLOW, priority=5)
        assert rule.matches(FlowKey(tp_dst=80))
        assert not rule.matches(FlowKey(tp_dst=81))

    def test_repr_contains_name(self):
        rule = FlowRule(Match(tp_dst=80), DENY, priority=1, name="drop-web")
        assert "drop-web" in repr(rule)


class TestAction:
    def test_drop_predicates(self):
        assert DENY.is_drop
        assert not DENY.is_allow
        assert ALLOW.is_allow
        assert not ALLOW.is_drop

    def test_forward(self):
        action = Action.forward(3)
        assert action.kind is ActionKind.FORWARD
        assert action.out_port == 3
        assert action.is_allow
        assert str(action) == "forward:3"
