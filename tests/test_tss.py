"""Unit tests for the Tuple Space Search megaflow cache."""

import pytest

from repro.classifier.actions import ALLOW, DENY
from repro.classifier.tss import ENTRY_BYTES, MASK_BYTES, MegaflowEntry, TupleSpaceSearch
from repro.exceptions import CacheInvariantError
from repro.packet.fields import FlowKey, FlowMask


def entry(tp_dst_value: int, tp_dst_mask: int = 0xFFFF, action=DENY, **extra) -> MegaflowEntry:
    mask = FlowMask(tp_dst=tp_dst_mask, **{k: v[1] for k, v in extra.items()})
    key = FlowKey(tp_dst=tp_dst_value & tp_dst_mask,
                  **{k: v[0] & v[1] for k, v in extra.items()})
    return MegaflowEntry(mask=mask, key=key.masked(mask), action=action)


class TestInsertLookup:
    def test_empty_cache_misses(self):
        cache = TupleSpaceSearch()
        result = cache.lookup(FlowKey(tp_dst=80))
        assert not result.hit
        assert result.masks_inspected == 0

    def test_hit_after_insert(self):
        cache = TupleSpaceSearch()
        cache.insert(entry(80, action=ALLOW))
        result = cache.lookup(FlowKey(tp_dst=80))
        assert result.hit
        assert result.entry.action == ALLOW
        assert result.masks_inspected == 1

    def test_masked_lookup(self):
        cache = TupleSpaceSearch()
        cache.insert(entry(0x8000, tp_dst_mask=0x8000))  # "top bit set" deny
        assert cache.lookup(FlowKey(tp_dst=0x8001)).hit
        assert cache.lookup(FlowKey(tp_dst=0xFFFF)).hit
        assert not cache.lookup(FlowKey(tp_dst=0x7FFF)).hit

    def test_masks_inspected_counts_scan_position(self):
        cache = TupleSpaceSearch()
        cache.insert(entry(0x8000, tp_dst_mask=0x8000))      # mask 1
        cache.insert(entry(0x4000, tp_dst_mask=0xC000))      # mask 2
        cache.insert(entry(0x2000, tp_dst_mask=0xE000))      # mask 3
        assert cache.lookup(FlowKey(tp_dst=0x9999)).masks_inspected == 1
        assert cache.lookup(FlowKey(tp_dst=0x4444)).masks_inspected == 2
        assert cache.lookup(FlowKey(tp_dst=0x2111)).masks_inspected == 3
        # A full miss inspects every mask.
        assert cache.lookup(FlowKey(tp_dst=0x0001)).masks_inspected == 3

    def test_duplicate_insert_refreshes(self):
        cache = TupleSpaceSearch()
        first = cache.insert(entry(80), now=1.0)
        second = cache.insert(entry(80), now=5.0)
        assert second is first
        assert first.last_used == 5.0
        assert cache.n_entries == 1

    def test_hits_and_timestamps_update(self):
        cache = TupleSpaceSearch()
        stored = cache.insert(entry(80), now=0.0)
        cache.lookup(FlowKey(tp_dst=80), now=3.0)
        cache.lookup(FlowKey(tp_dst=80), now=7.0)
        assert stored.hits == 2
        assert stored.last_used == 7.0

    def test_stats(self):
        cache = TupleSpaceSearch()
        cache.insert(entry(80))
        cache.lookup(FlowKey(tp_dst=80))
        cache.lookup(FlowKey(tp_dst=81))
        assert cache.stats_hits == 1
        assert cache.stats_misses == 1


class TestInvariants:
    def test_overlap_rejected_when_checking(self):
        cache = TupleSpaceSearch(check_invariants=True)
        cache.insert(entry(0x8000, tp_dst_mask=0x8000))
        with pytest.raises(CacheInvariantError, match="Inv"):
            cache.insert(entry(0x8080, tp_dst_mask=0xFFFF))

    def test_disjoint_accepted(self):
        cache = TupleSpaceSearch(check_invariants=True)
        cache.insert(entry(0x8000, tp_dst_mask=0x8000))
        cache.insert(entry(0x4000, tp_dst_mask=0xC000))
        cache.verify_disjoint()

    def test_verify_disjoint_catches_violation(self):
        cache = TupleSpaceSearch()
        cache.insert(entry(0x8000, tp_dst_mask=0x8000))
        cache.insert(entry(0x8080, tp_dst_mask=0xFFFF))  # overlapping
        with pytest.raises(CacheInvariantError):
            cache.verify_disjoint()

    def test_bad_scan_policy(self):
        with pytest.raises(CacheInvariantError):
            TupleSpaceSearch(scan_policy="bogus")


class TestRemoveEvict:
    def test_remove(self):
        cache = TupleSpaceSearch()
        stored = cache.insert(entry(80))
        assert cache.remove(stored)
        assert cache.n_masks == 0
        assert not cache.remove(stored)  # second removal is a no-op

    def test_mask_retired_with_last_entry(self):
        cache = TupleSpaceSearch()
        a = cache.insert(entry(80))
        b = cache.insert(entry(81))
        assert cache.n_masks == 1  # same mask
        cache.remove(a)
        assert cache.n_masks == 1
        cache.remove(b)
        assert cache.n_masks == 0

    def test_remove_where(self):
        cache = TupleSpaceSearch()
        cache.insert(entry(80, action=ALLOW))
        cache.insert(entry(81, action=DENY))
        cache.insert(entry(82, action=DENY))
        removed = cache.remove_where(lambda e: e.action.is_drop)
        assert len(removed) == 2
        assert cache.n_entries == 1

    def test_evict_idle(self):
        cache = TupleSpaceSearch()
        old = cache.insert(entry(80), now=0.0)
        fresh = cache.insert(entry(81), now=0.0)
        cache.lookup(FlowKey(tp_dst=81), now=9.0)  # refresh `fresh`
        evicted = cache.evict_idle(now=10.0, idle_timeout=10.0)
        assert evicted == [old]
        assert cache.find_entry(fresh)

    def test_flush(self):
        cache = TupleSpaceSearch()
        cache.insert(entry(80))
        cache.flush()
        assert cache.n_masks == 0
        assert cache.n_entries == 0
        assert not cache.lookup(FlowKey(tp_dst=80)).hit


class TestMemoCoherence:
    """The lookup memo must never change observable results."""

    def test_miss_then_insert_then_hit(self):
        cache = TupleSpaceSearch()
        cache.insert(entry(99))  # non-empty so misses are memoised
        key = FlowKey(tp_dst=80)
        assert not cache.lookup(key).hit
        assert not cache.lookup(key).hit  # memoised miss
        cache.insert(entry(80, action=ALLOW))
        assert cache.lookup(key).hit  # memo invalidated by the insert

    def test_hit_then_remove_then_miss(self):
        cache = TupleSpaceSearch()
        stored = cache.insert(entry(80))
        key = FlowKey(tp_dst=80)
        assert cache.lookup(key).hit
        cache.remove(stored)
        assert not cache.lookup(key).hit

    def test_memoised_hit_updates_stats(self):
        cache = TupleSpaceSearch()
        stored = cache.insert(entry(80))
        key = FlowKey(tp_dst=80)
        for _ in range(5):
            cache.lookup(key, now=2.0)
        assert stored.hits == 5
        assert cache.stats_hits == 5


class TestIntrospection:
    def test_entries_iteration_order(self):
        cache = TupleSpaceSearch()
        cache.insert(entry(0x8000, tp_dst_mask=0x8000))
        cache.insert(entry(0x4000, tp_dst_mask=0xC000))
        masks = [e.mask for e in cache.entries()]
        assert masks == cache.masks()

    def test_entries_for_mask(self):
        cache = TupleSpaceSearch()
        stored = cache.insert(entry(80))
        assert cache.entries_for_mask(stored.mask) == [stored]

    def test_find(self):
        cache = TupleSpaceSearch()
        stored = cache.insert(entry(80))
        assert cache.find(FlowKey(tp_dst=80)) is stored
        assert cache.find(FlowKey(tp_dst=81)) is None

    def test_probe_mask(self):
        cache = TupleSpaceSearch()
        stored = cache.insert(entry(80))
        assert cache.probe_mask(stored.mask, FlowKey(tp_dst=80)) is stored
        assert cache.probe_mask(stored.mask, FlowKey(tp_dst=81)) is None
        assert cache.probe_mask(FlowMask(ip_src=0xFF), FlowKey()) is None

    def test_memory_accounting(self):
        cache = TupleSpaceSearch()
        cache.insert(entry(80))
        cache.insert(entry(81))
        assert cache.memory_bytes() == 2 * ENTRY_BYTES + 1 * MASK_BYTES

    def test_repr(self):
        cache = TupleSpaceSearch()
        cache.insert(entry(80))
        assert "1 masks" in repr(cache)


class TestAcceleratorGrowth:
    """The accelerator must keep finding old entries as its buffers grow."""

    def test_salts_preserved_across_capacity_doublings(self):
        cache = TupleSpaceSearch()
        installed = []
        # One distinct mask per entry so each insert consumes a salt slot;
        # 600 masks forces several capacity doublings (64 -> 128 -> ... -> 1024).
        for i in range(600):
            mask = FlowMask(ip_src=0xFFFFFFFF, tp_src=i + 1)
            key = FlowKey(ip_src=i + 1, tp_src=0xFFFF, tp_dst=(i % 7) + 1)
            cache.insert(MegaflowEntry(mask=mask, key=key.masked(mask), action=ALLOW))
            installed.append(key)
            cache.lookup(key)  # keep the accelerator warm (incremental path)
            if cache.n_masks in (65, 129, 257, 513):
                # Just crossed a doubling: every earlier entry must still be
                # found by the accelerator (a regenerated salt would orphan
                # its compound — lookup would miss while find() still hits).
                cache._memo.clear()
                for old_key in installed:
                    result = cache.lookup(old_key)
                    assert result.hit, f"entry lost after growing to {cache.n_masks} masks"
                    assert cache.find(old_key) is result.entry
        assert cache.n_masks == 600  # sanity: growth actually happened

    def test_salt_buffer_prefix_stable(self):
        import numpy as np

        cache = TupleSpaceSearch()
        cache.insert(entry(80))
        cache.lookup(FlowKey(tp_dst=80))  # builds the accelerator
        before = cache._acc_salt_buffer[: cache._acc_capacity].copy()
        cache._acc_grow(cache._acc_capacity * 4)
        after = cache._acc_salt_buffer[: len(before)]
        assert np.array_equal(before, after)

    def test_amortised_inserts_stay_searchable(self):
        """Pending (unmerged) compounds must be visible to lookups."""
        cache = TupleSpaceSearch()
        mask_kwargs = dict(ip_src=0xFFFFFFFF)
        entries = []
        for i in range(500):
            mask = FlowMask(**mask_kwargs)
            key = FlowKey(ip_src=i + 1)
            e = MegaflowEntry(mask=mask, key=key.masked(mask), action=ALLOW)
            cache.insert(e)
            entries.append(key)
            # Immediately visible, merged or pending:
            cache._memo.clear()
            assert cache.lookup(key).hit
        cache._memo.clear()
        for key in entries:
            assert cache.lookup(key).hit


class TestHitSortedPolicy:
    def test_hot_mask_moves_forward(self):
        cache = TupleSpaceSearch(scan_policy="hit_sorted")
        cache.RESORT_INTERVAL = 8
        cold = cache.insert(entry(0x8000, tp_dst_mask=0x8000))
        hot = cache.insert(entry(0x4000, tp_dst_mask=0xC000))
        assert cache.masks()[0] == cold.mask
        for _ in range(64):
            cache.lookup(FlowKey(tp_dst=0x4000))
        assert cache.masks()[0] == hot.mask

    def test_lookup_results_unchanged_by_resort(self):
        cache = TupleSpaceSearch(scan_policy="hit_sorted")
        cache.RESORT_INTERVAL = 4
        cache.insert(entry(0x8000, tp_dst_mask=0x8000, action=DENY))
        cache.insert(entry(0x4000, tp_dst_mask=0xC000, action=ALLOW))
        for _ in range(32):
            assert cache.lookup(FlowKey(tp_dst=0x4001)).entry.action == ALLOW
            assert cache.lookup(FlowKey(tp_dst=0x8001)).entry.action == DENY
