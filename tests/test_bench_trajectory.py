"""Unit tests for the bench-trajectory CI gate (``tools/bench_trajectory.py``).

The gate's contract: the committed trajectory passes against itself, a
synthetic regression is rejected (CI runs ``--self-test`` before trusting
any green diff — this file pins the behaviours that make that proof
meaningful), and the perf-smoke bench list is derived from the committed
``results/BENCH_*.json`` files rather than a hardcoded list.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "bench_trajectory.py"

spec = importlib.util.spec_from_file_location("bench_trajectory", TOOL)
bench_trajectory = importlib.util.module_from_spec(spec)
sys.modules.setdefault("bench_trajectory", bench_trajectory)
spec.loader.exec_module(bench_trajectory)


def regressions(findings):
    return [f for f in findings if f.failed]


class TestMetricRules:
    def test_pps_drop_beyond_tolerance_fails(self):
        base = {"replay_pps": 1000.0}
        ok = bench_trajectory.compare_payloads("x", base, {"replay_pps": 700.0})
        bad = bench_trajectory.compare_payloads("x", base, {"replay_pps": 400.0})
        assert not regressions(ok)  # within the loose wall-clock band
        assert regressions(bad)

    def test_pps_improvement_passes(self):
        base = {"replay_pps": 1000.0}
        findings = bench_trajectory.compare_payloads("x", base, {"replay_pps": 5000.0})
        assert not regressions(findings)

    def test_seconds_growth_fails_shrink_passes(self):
        base = {"insert_10k_seconds": 0.2}
        assert regressions(
            bench_trajectory.compare_payloads("x", base, {"insert_10k_seconds": 0.9})
        )
        assert not regressions(
            bench_trajectory.compare_payloads("x", base, {"insert_10k_seconds": 0.05})
        )

    def test_structural_metric_must_match(self):
        base = {"masks": 8209}
        assert regressions(bench_trajectory.compare_payloads("x", base, {"masks": 8000}))
        assert not regressions(
            bench_trajectory.compare_payloads("x", base, {"masks": 8209})
        )

    def test_missing_metric_is_a_regression(self):
        base = {"masks": 1, "replay_pps": 10.0}
        findings = bench_trajectory.compare_payloads("x", base, {"masks": 1})
        assert any(f.metric == "replay_pps" and f.failed for f in findings)

    def test_new_metric_is_reported_not_failed(self):
        findings = bench_trajectory.compare_payloads("x", {"masks": 1}, {"masks": 1, "extra": 2})
        kinds = {f.metric: f.kind for f in findings}
        assert kinds["extra"] == "new-metric"
        assert not regressions(findings)

    def test_cpu_count_is_environmental_not_compared(self):
        findings = bench_trajectory.compare_payloads("x", {"cpus": 1}, {"cpus": 64})
        assert findings == []

    def test_list_metrics_compare_elementwise(self):
        base = {"masks_per_shard": [100, 100, 100, 100]}
        assert not regressions(
            bench_trajectory.compare_payloads(
                "x", base, {"masks_per_shard": [100, 100, 100, 100]}
            )
        )
        assert regressions(
            bench_trajectory.compare_payloads(
                "x", base, {"masks_per_shard": [100, 400, 100, 100]}
            )
        )
        assert regressions(
            bench_trajectory.compare_payloads("x", base, {"masks_per_shard": [100, 100]})
        )


class TestDirectoryDiff:
    def test_doctored_directory_fails_and_clean_passes(self, tmp_path):
        baseline = tmp_path / "baseline"
        current = tmp_path / "current"
        for directory in (baseline, current):
            directory.mkdir()
        payload = {"masks": 100, "replay_pps": 1000.0}
        (baseline / "BENCH_x.json").write_text(json.dumps(payload))
        (current / "BENCH_x.json").write_text(json.dumps(payload))
        assert not regressions(bench_trajectory.compare_dirs(baseline, current))

        doctored = {"masks": 100, "replay_pps": 100.0}
        (current / "BENCH_x.json").write_text(json.dumps(doctored))
        assert regressions(bench_trajectory.compare_dirs(baseline, current))

    def test_missing_result_file_is_a_regression(self, tmp_path):
        baseline = tmp_path / "baseline"
        current = tmp_path / "current"
        for directory in (baseline, current):
            directory.mkdir()
        (baseline / "BENCH_x.json").write_text(json.dumps({"masks": 1}))
        findings = bench_trajectory.compare_dirs(baseline, current)
        assert regressions(findings)

    def test_smoke_files_are_not_trajectory(self, tmp_path):
        (tmp_path / "BENCH_x.smoke.json").write_text("{}")
        (tmp_path / "BENCH_y.json").write_text("{}")
        names = [p.name for p in bench_trajectory.trajectory_files(tmp_path)]
        assert names == ["BENCH_y.json"]


class TestBenchListDerivation:
    def test_committed_trajectory_maps_to_existing_benches(self):
        benches = bench_trajectory.guarded_benches()
        names = {b.name for b in benches}
        # Every committed BENCH_*.json has a bench, and the new parallel
        # bench rides in automatically once its trajectory is committed.
        for path in bench_trajectory.trajectory_files():
            assert f"bench_{path.stem[len('BENCH_'):]}.py" in names
        assert all(b.exists() for b in benches)

    def test_stale_trajectory_without_bench_is_loud(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_ghost.json").write_text("{}")
        with pytest.raises(FileNotFoundError, match="ghost"):
            bench_trajectory.guarded_benches(results_dir=results)


def test_self_test_passes_against_committed_trajectory():
    """The CI step: synthetic regressions must be caught, clean must pass."""
    assert bench_trajectory.self_test() == 0


def test_markdown_report_lists_regressions():
    findings = bench_trajectory.compare_payloads(
        "x", {"replay_pps": 1000.0}, {"replay_pps": 1.0}
    )
    report = bench_trajectory.render_markdown(findings)
    assert "1 regression(s)" in report
    assert "replay_pps" in report
