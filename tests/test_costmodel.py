"""Unit tests for the throughput/CPU cost model."""

import pytest

from repro.exceptions import SwitchError
from repro.switch.costmodel import CostModel, SlowPathModel
from repro.switch.offload import GRO_OFF_TCP, GRO_ON_TCP


class TestVictimThroughput:
    def test_baseline_at_one_mask(self):
        model = CostModel(profile=GRO_OFF_TCP, link_gbps=10.0)
        assert model.victim_gbps(1) == pytest.approx(10.0, rel=0.05)

    def test_paper_sipdp_collapse(self):
        """~500 masks -> ~4.7% of 10 Gbps (§5.4)."""
        model = CostModel(profile=GRO_OFF_TCP, link_gbps=10.0)
        assert model.victim_gbps(516) == pytest.approx(0.47, rel=0.15)

    def test_link_clamp(self):
        model = CostModel(profile=GRO_OFF_TCP, link_gbps=1.0)
        assert model.victim_gbps(1) == 1.0  # CPU could do 10G; the wire cannot

    def test_attack_contention_reduces_victim(self):
        model = CostModel(profile=GRO_OFF_TCP, link_gbps=10.0)
        free = model.victim_gbps(100)
        contended = model.victim_gbps(100, attack_load_units=model.budget_units_per_sec / 2)
        assert contended < free
        starved = model.victim_gbps(100, attack_load_units=model.budget_units_per_sec * 2)
        assert starved == 0.0

    def test_negative_attack_load_rejected(self):
        with pytest.raises(SwitchError):
            CostModel().victim_gbps(1, attack_load_units=-1)

    def test_cpu_baseline_override(self):
        weak = CostModel(profile=GRO_OFF_TCP, link_gbps=10.0, cpu_baseline_gbps=2.0)
        assert weak.victim_gbps(1) == pytest.approx(2.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(SwitchError):
            CostModel(link_gbps=0)
        with pytest.raises(SwitchError):
            CostModel(cpu_baseline_gbps=-1)
        with pytest.raises(SwitchError):
            CostModel(upcall_units=-1)
        with pytest.raises(SwitchError):
            CostModel(attack_cost_scale=0)
        with pytest.raises(SwitchError):
            CostModel(revalidate_units_per_entry=-1)


class TestAttackCosts:
    def test_upcall_surcharge(self):
        model = CostModel(upcall_units=25.0)
        fast = model.attack_cost_units(100, upcall=False)
        slow = model.attack_cost_units(100, upcall=True)
        assert slow == pytest.approx(fast + 25.0)

    def test_attack_scale(self):
        base = CostModel(attack_cost_scale=1.0)
        scaled = CostModel(attack_cost_scale=0.5)
        assert scaled.attack_cost_units(100, upcall=False) == pytest.approx(
            base.attack_cost_units(100, upcall=False) / 2
        )

    def test_cost_grows_with_masks(self):
        model = CostModel()
        assert model.attack_cost_units(8200, upcall=False) > model.attack_cost_units(17, upcall=False)

    def test_revalidation_rate(self):
        model = CostModel(revalidate_units_per_entry=5.0)
        assert model.revalidation_units_per_sec(100, period=1.0) == 500.0
        assert model.revalidation_units_per_sec(100, period=2.0) == 250.0
        with pytest.raises(SwitchError):
            model.revalidation_units_per_sec(100, period=0)


class TestFlowCompletionTime:
    def test_fct_scales_with_masks(self):
        """Fig. 9a secondary axis: FCT grows with mask count."""
        model = CostModel(profile=GRO_OFF_TCP, link_gbps=10.0)
        fct_clean = model.flow_completion_seconds(1.0, 1)
        fct_dirty = model.flow_completion_seconds(1.0, 516)
        assert fct_clean == pytest.approx(0.8, rel=0.1)  # 8 Gbit at 10 Gbps
        assert fct_dirty > 15 * fct_clean

    def test_fct_validation(self):
        model = CostModel()
        with pytest.raises(SwitchError):
            model.flow_completion_seconds(0, 1)


class TestUnits:
    def test_budget_units(self):
        model = CostModel(profile=GRO_OFF_TCP)
        # 10 Gbps over 1500-byte units.
        assert model.budget_units_per_sec == pytest.approx(10e9 / 8 / 1500)

    def test_gro_on_units_are_buffers(self):
        model = CostModel(profile=GRO_ON_TCP)
        assert model.unit_bits == 65536 * 8


class TestSlowPathModel:
    def test_fig9c_anchors(self):
        model = SlowPathModel()
        assert model.cpu_pct(100) == pytest.approx(15.0)
        assert model.cpu_pct(1000) == pytest.approx(15.0)
        assert model.cpu_pct(10000) == pytest.approx(80.0, abs=1.0)

    def test_saturation(self):
        model = SlowPathModel()
        assert model.cpu_pct(1_000_000) == model.max_cpu_pct

    def test_monotone(self):
        model = SlowPathModel()
        rates = [10, 100, 1000, 5000, 10000, 50000]
        loads = [model.cpu_pct(r) for r in rates]
        assert loads == sorted(loads)

    def test_negative_rate_rejected(self):
        with pytest.raises(SwitchError):
            SlowPathModel().cpu_pct(-1)
