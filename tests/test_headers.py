"""Unit tests for wire-format headers: packing, parsing, checksums."""

import pytest

from repro.exceptions import PacketError
from repro.packet.headers import (
    ICMP,
    IPv4,
    IPv6,
    PROTO_TCP,
    PROTO_UDP,
    TCP,
    UDP,
    Ethernet,
    internet_checksum,
)


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")

    def test_checksum_of_packet_with_checksum_is_zero(self):
        header = IPv4(src=0x0A000001, dst=0x0A000002).pack()
        assert internet_checksum(header) == 0


class TestEthernet:
    def test_roundtrip(self):
        eth = Ethernet(dst=0x112233445566, src=0xAABBCCDDEEFF, ethertype=0x0800)
        parsed, rest = Ethernet.unpack(eth.pack())
        assert parsed == eth
        assert rest == b""

    def test_truncated(self):
        with pytest.raises(PacketError, match="truncated"):
            Ethernet.unpack(b"\x00" * 10)

    def test_value_range(self):
        with pytest.raises(PacketError):
            Ethernet(dst=1 << 48).pack()


class TestIPv4:
    def test_roundtrip(self):
        ip = IPv4(src=0x0A000001, dst=0xC0A80101, proto=PROTO_TCP, ttl=17, tos=0x20)
        parsed, rest = IPv4.unpack(ip.pack(payload_len=100))
        assert parsed.src == ip.src
        assert parsed.dst == ip.dst
        assert parsed.proto == PROTO_TCP
        assert parsed.ttl == 17
        assert parsed.tos == 0x20
        assert parsed.total_length == 120
        assert rest == b""

    def test_checksum_verifies(self):
        ip = IPv4(src=1, dst=2)
        parsed, _ = IPv4.unpack(ip.pack())
        assert parsed.verify_checksum()

    def test_rejects_wrong_version(self):
        data = bytearray(IPv4().pack())
        data[0] = (6 << 4) | 5
        with pytest.raises(PacketError, match="version"):
            IPv4.unpack(bytes(data))

    def test_rejects_bad_ihl(self):
        data = bytearray(IPv4().pack())
        data[0] = (4 << 4) | 3  # IHL below minimum
        with pytest.raises(PacketError, match="IHL"):
            IPv4.unpack(bytes(data))

    def test_fragment_fields(self):
        ip = IPv4(flags=0b010, frag_offset=123)
        parsed, _ = IPv4.unpack(ip.pack())
        assert parsed.flags == 0b010
        assert parsed.frag_offset == 123


class TestIPv6:
    def test_roundtrip(self):
        ip6 = IPv6(
            src=0x20010DB8 << 96,
            dst=(0x20010DB8 << 96) | 1,
            next_header=PROTO_UDP,
            hop_limit=42,
            traffic_class=7,
            flow_label=0xABCDE,
        )
        parsed, rest = IPv6.unpack(ip6.pack(payload_len=8))
        assert parsed.src == ip6.src
        assert parsed.dst == ip6.dst
        assert parsed.next_header == PROTO_UDP
        assert parsed.hop_limit == 42
        assert parsed.traffic_class == 7
        assert parsed.flow_label == 0xABCDE
        assert parsed.payload_length == 8
        assert rest == b""

    def test_rejects_wrong_version(self):
        data = bytearray(IPv6().pack())
        data[0] = 4 << 4
        with pytest.raises(PacketError, match="version"):
            IPv6.unpack(bytes(data))


class TestTCP:
    def test_roundtrip(self):
        tcp = TCP(src_port=12345, dst_port=80, seq=7, ack=9, flags=TCP.FLAG_SYN | TCP.FLAG_ACK)
        parsed, rest = TCP.unpack(tcp.pack())
        assert parsed.src_port == 12345
        assert parsed.dst_port == 80
        assert parsed.seq == 7
        assert parsed.ack == 9
        assert parsed.flags == TCP.FLAG_SYN | TCP.FLAG_ACK
        assert rest == b""

    def test_checksum_with_pseudo_header(self):
        from repro.packet.headers import _pseudo_header_v4

        payload = b"hello"
        pseudo = _pseudo_header_v4(0x0A000001, 0x0A000002, PROTO_TCP, TCP.HEADER_LEN + len(payload))
        packed = TCP(src_port=1, dst_port=2).pack(payload=payload, pseudo_header=pseudo)
        assert internet_checksum(pseudo + packed + payload) == 0

    def test_truncated(self):
        with pytest.raises(PacketError):
            TCP.unpack(b"\x00" * 19)


class TestUDP:
    def test_roundtrip(self):
        udp = UDP(src_port=5353, dst_port=53)
        parsed, rest = UDP.unpack(udp.pack(payload=b"x" * 4))
        assert parsed.src_port == 5353
        assert parsed.dst_port == 53
        assert parsed.length == 12
        assert rest == b""

    def test_zero_checksum_becomes_ffff(self):
        # RFC 768: transmitted zero checksum means "no checksum"; computed
        # zero is sent as 0xFFFF.
        from repro.packet.headers import _pseudo_header_v4

        pseudo = _pseudo_header_v4(0, 0, PROTO_UDP, UDP.HEADER_LEN)
        packed = UDP(src_port=0, dst_port=0).pack(pseudo_header=pseudo)
        parsed, _ = UDP.unpack(packed)
        assert parsed.checksum != 0


class TestICMP:
    def test_roundtrip(self):
        icmp = ICMP(icmp_type=8, code=0, rest=0x1234)
        parsed, rest = ICMP.unpack(icmp.pack(payload=b"ping"))
        assert parsed.icmp_type == 8
        assert parsed.code == 0
        assert parsed.rest == 0x1234
        assert rest == b""

    def test_checksum_zeroes(self):
        packed = ICMP().pack(payload=b"abc")
        # Note: checksum covers header only here (payload passed separately
        # at pack time is included in the sum).
        assert len(packed) == ICMP.HEADER_LEN
