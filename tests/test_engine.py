"""Unit tests for the simulation engine and metrics."""

import pytest

from repro.exceptions import SimulationError
from repro.netsim.engine import Simulation
from repro.netsim.metrics import MetricsCollector, TimeSeries


class Recorder:
    def __init__(self):
        self.ticks = []

    def tick(self, now, dt):
        self.ticks.append((round(now, 6), dt))


class TestSimulation:
    def test_tick_count_and_spacing(self):
        sim = Simulation(dt=0.5)
        recorder = Recorder()
        sim.add(recorder)
        sim.run(2.0)
        assert [t for t, _dt in recorder.ticks] == [0.0, 0.5, 1.0, 1.5]

    def test_components_ticked_in_order(self):
        sim = Simulation(dt=1.0)
        order = []

        class Tagged:
            def __init__(self, tag):
                self.tag = tag

            def tick(self, now, dt):
                order.append(self.tag)

        sim.add(Tagged("a"))
        sim.add(Tagged("b"))
        sim.run(1.0)
        assert order == ["a", "b"]

    def test_observers_run_after_components(self):
        sim = Simulation(dt=1.0)
        events = []

        class Component:
            def tick(self, now, dt):
                events.append("component")

        sim.add(Component())
        sim.observe(lambda now: events.append("observer"))
        sim.run(2.0)
        assert events == ["component", "observer"] * 2

    def test_run_resumable(self):
        sim = Simulation(dt=1.0)
        recorder = Recorder()
        sim.add(recorder)
        sim.run(2.0)
        sim.run(2.0)
        assert len(recorder.ticks) == 4
        assert sim.now == pytest.approx(4.0)

    def test_float_drift_guard(self):
        sim = Simulation(dt=0.1)
        recorder = Recorder()
        sim.add(recorder)
        sim.run(3.0)
        assert len(recorder.ticks) == 30  # exactly, despite 0.1 imprecision

    def test_timestamps_exact_over_long_runs(self):
        """now must be derived (start + i*dt), not accumulated (+= dt).

        Accumulated 0.1 rounding error grows past 1e-9 s within a few
        thousand ticks, which is enough to flip `now - last_used >=
        idle_timeout` comparisons at the 10 s eviction boundary.
        """

        class Stamps:
            def __init__(self):
                self.times = []

            def tick(self, now, dt):
                self.times.append(now)

        sim = Simulation(dt=0.1)
        stamps = Stamps()
        sim.add(stamps)
        sim.run(500.0)  # 5000 ticks
        assert len(stamps.times) == 5000
        # Bit-exact against direct derivation — no accumulated drift.
        assert stamps.times == [i * 0.1 for i in range(5000)]
        assert sim.now == 5000 * 0.1

    def test_timestamps_exact_across_resumed_runs(self):
        sim = Simulation(dt=0.1)
        recorder = Recorder()
        sim.add(recorder)
        for _ in range(50):
            sim.run(1.0)
        assert len(recorder.ticks) == 500
        assert sim.now <= 50.0 + 1e-9  # resumed runs may round, never drift far

    def test_validation(self):
        with pytest.raises(SimulationError):
            Simulation(dt=0)
        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.run(-1)
        with pytest.raises(SimulationError):
            sim.add(object())


class TestTimeSeries:
    def test_record_and_query(self):
        series = TimeSeries("rate")
        for t, v in ((0.0, 1.0), (1.0, 2.0), (2.0, 3.0)):
            series.record(t, v)
        assert len(series) == 3
        assert series.at(1.5) == 2.0
        assert series.at(2.0) == 3.0
        assert series.mean(0.0, 3.0) == 2.0
        assert series.minimum() == 1.0
        assert series.maximum(1.0, 3.0) == 3.0

    def test_time_monotonicity(self):
        series = TimeSeries("x")
        series.record(1.0, 1.0)
        with pytest.raises(SimulationError, match="backwards"):
            series.record(0.5, 2.0)

    def test_empty_window(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        with pytest.raises(SimulationError):
            series.mean(5.0, 6.0)
        with pytest.raises(SimulationError):
            series.at(-1.0)

    def test_iteration(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        assert list(series) == [(0.0, 1.0)]


class TestMetricsCollector:
    def test_collects_named_series(self):
        metrics = MetricsCollector()
        metrics.record("rate", 0.0, 5.0)
        metrics.record("rate", 1.0, 6.0)
        metrics.record("masks", 0.0, 1.0)
        assert metrics.names() == ["masks", "rate"]
        assert "rate" in metrics
        assert metrics.series("rate").at(1.0) == 6.0

    def test_unknown_series(self):
        with pytest.raises(SimulationError, match="no series"):
            MetricsCollector().series("nope")
