"""Unit tests for the simulation engine and metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SimulationError
from repro.netsim.engine import Simulation
from repro.netsim.metrics import MetricsCollector, TimeSeries


class Recorder:
    def __init__(self):
        self.ticks = []

    def tick(self, now, dt):
        self.ticks.append((round(now, 6), dt))


class TestSimulation:
    def test_tick_count_and_spacing(self):
        sim = Simulation(dt=0.5)
        recorder = Recorder()
        sim.add(recorder)
        sim.run(2.0)
        assert [t for t, _dt in recorder.ticks] == [0.0, 0.5, 1.0, 1.5]

    def test_components_ticked_in_order(self):
        sim = Simulation(dt=1.0)
        order = []

        class Tagged:
            def __init__(self, tag):
                self.tag = tag

            def tick(self, now, dt):
                order.append(self.tag)

        sim.add(Tagged("a"))
        sim.add(Tagged("b"))
        sim.run(1.0)
        assert order == ["a", "b"]

    def test_observers_run_after_components(self):
        sim = Simulation(dt=1.0)
        events = []

        class Component:
            def tick(self, now, dt):
                events.append("component")

        sim.add(Component())
        sim.observe(lambda now: events.append("observer"))
        sim.run(2.0)
        assert events == ["component", "observer"] * 2

    def test_run_resumable(self):
        sim = Simulation(dt=1.0)
        recorder = Recorder()
        sim.add(recorder)
        sim.run(2.0)
        sim.run(2.0)
        assert len(recorder.ticks) == 4
        assert sim.now == pytest.approx(4.0)

    def test_float_drift_guard(self):
        sim = Simulation(dt=0.1)
        recorder = Recorder()
        sim.add(recorder)
        sim.run(3.0)
        assert len(recorder.ticks) == 30  # exactly, despite 0.1 imprecision

    def test_timestamps_exact_over_long_runs(self):
        """now must be derived (start + i*dt), not accumulated (+= dt).

        Accumulated 0.1 rounding error grows past 1e-9 s within a few
        thousand ticks, which is enough to flip `now - last_used >=
        idle_timeout` comparisons at the 10 s eviction boundary.
        """

        class Stamps:
            def __init__(self):
                self.times = []

            def tick(self, now, dt):
                self.times.append(now)

        sim = Simulation(dt=0.1)
        stamps = Stamps()
        sim.add(stamps)
        sim.run(500.0)  # 5000 ticks
        assert len(stamps.times) == 5000
        # Bit-exact against direct derivation — no accumulated drift.
        assert stamps.times == [i * 0.1 for i in range(5000)]
        assert sim.now == 5000 * 0.1

    def test_timestamps_exact_across_resumed_runs(self):
        sim = Simulation(dt=0.1)
        recorder = Recorder()
        sim.add(recorder)
        for _ in range(50):
            sim.run(1.0)
        assert len(recorder.ticks) == 500
        assert sim.now <= 50.0 + 1e-9  # resumed runs may round, never drift far

    def test_validation(self):
        with pytest.raises(SimulationError):
            Simulation(dt=0)
        with pytest.raises(SimulationError):
            Simulation(mode="adaptive")
        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.run(-1)
        with pytest.raises(SimulationError):
            sim.add(object())
        with pytest.raises(SimulationError):
            sim.add(Recorder(), period=0.0)

    def test_observe_rejects_non_callable(self):
        sim = Simulation()
        with pytest.raises(SimulationError, match="not callable"):
            sim.observe("sample_me")
        with pytest.raises(SimulationError, match="not callable"):
            sim.observe(None)


class TestEventMode:
    def test_components_tick_at_their_period(self):
        sim = Simulation(dt=0.1, mode="event")
        fast, slow = Recorder(), Recorder()
        sim.add(fast, period=0.1)
        sim.add(slow, period=0.5)
        sim.run(1.0)
        assert [t for t, _ in fast.ticks] == [round(i * 0.1, 6) for i in range(10)]
        assert [t for t, _ in slow.ticks] == [0.0, 0.5]
        # Each component receives the time elapsed since *its* last tick.
        assert all(dt == pytest.approx(0.1) for _, dt in fast.ticks)
        assert all(dt == pytest.approx(0.5) for _, dt in slow.ticks)

    def test_period_attribute_honoured(self):
        class Periodic(Recorder):
            period = 0.4

        sim = Simulation(dt=0.1, mode="event")
        component = Periodic()
        sim.add(component)
        sim.run(1.0)
        assert [t for t, _ in component.ticks] == [0.0, 0.4, 0.8]

    def test_registration_order_at_coincident_ticks(self):
        """Periods are tick-quantised: a 0.2s and a 0.1s component meet
        exactly every other tick, in registration order."""
        sim = Simulation(dt=0.1, mode="event")
        order = []

        class Tagged:
            def __init__(self, tag, period):
                self.tag = tag
                self.period = period

            def tick(self, now, dt):
                order.append((self.tag, round(now, 6)))

        sim.add(Tagged("b", 0.2))
        sim.add(Tagged("a", 0.1))
        sim.run(0.4)
        assert order == [
            ("b", 0.0), ("a", 0.0), ("a", 0.1), ("b", 0.2), ("a", 0.2), ("a", 0.3),
        ]

    def test_observers_after_each_event_batch(self):
        sim = Simulation(dt=0.1, mode="event")
        events = []

        class Component:
            period = 0.3

            def tick(self, now, dt):
                events.append(("tick", round(now, 6)))

        sim.add(Component())
        sim.observe(lambda now: events.append(("observe", round(now, 6))))
        sim.run(0.7)
        assert events == [
            ("tick", 0.0), ("observe", 0.0),
            ("tick", 0.3), ("observe", 0.3),
            ("tick", 0.6), ("observe", 0.6),
        ]

    def test_event_equals_fixed_when_everything_ticks_every_dt(self):
        runs = {}
        for mode in ("fixed", "event"):
            sim = Simulation(dt=0.1, mode=mode)
            recorder = Recorder()
            sim.add(recorder)
            sim.run(2.0)
            runs[mode] = recorder.ticks
        assert runs["fixed"] == runs["event"]

    def test_resumable_across_runs(self):
        sim = Simulation(dt=0.1, mode="event")
        slow = Recorder()
        sim.add(slow, period=0.3)
        sim.run(0.4)  # ticks at 0.0, 0.3
        sim.run(0.4)  # ticks at 0.6
        assert [t for t, _ in slow.ticks] == [0.0, 0.3, 0.6]
        assert sim.now == 8 * 0.1


class TestLongRunContracts:
    def test_million_ticks_drift_free(self):
        """Over 10^6 ticks every timestamp is exactly start + i*dt."""

        class Checker:
            def __init__(self, dt):
                self.dt = dt
                self.count = 0

            def tick(self, now, dt):
                # Bit-exact derived timestamp — never accumulated.
                assert now == self.count * self.dt
                self.count += 1

        sim = Simulation(dt=0.1)
        checker = Checker(0.1)
        sim.add(checker)
        sim.run(100_000.0)  # 10^6 ticks
        assert checker.count == 1_000_000
        assert sim.now == 1_000_000 * 0.1

    @given(
        a=st.integers(min_value=0, max_value=400),
        b=st.integers(min_value=0, max_value=400),
        dt=st.sampled_from([0.1, 0.25, 0.5, 1.0, 1 / 3]),
    )
    @settings(max_examples=40, deadline=None)
    def test_split_run_equals_joined_run_fixed(self, a, b, dt):
        """run(a); run(b) ≡ run(a+b), tick for tick (durations on the grid)."""
        split_sim = Simulation(dt=dt)
        split = Recorder()
        split_sim.add(split)
        split_sim.run(a * dt)
        split_sim.run(b * dt)

        joined_sim = Simulation(dt=dt)
        joined = Recorder()
        joined_sim.add(joined)
        joined_sim.run((a + b) * dt)

        assert split.ticks == joined.ticks
        assert split_sim.now == joined_sim.now

    @given(
        a=st.integers(min_value=0, max_value=200),
        b=st.integers(min_value=0, max_value=200),
        periods=st.lists(
            st.integers(min_value=1, max_value=7), min_size=1, max_size=4
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_split_run_equals_joined_run_event(self, a, b, periods):
        dt = 0.1

        def build():
            sim = Simulation(dt=dt, mode="event")
            recorders = []
            for ticks in periods:
                recorder = Recorder()
                sim.add(recorder, period=ticks * dt)
                recorders.append(recorder)
            return sim, recorders

        split_sim, split = build()
        split_sim.run(a * dt)
        split_sim.run(b * dt)
        joined_sim, joined = build()
        joined_sim.run((a + b) * dt)

        for split_recorder, joined_recorder in zip(split, joined):
            assert split_recorder.ticks == joined_recorder.ticks
        assert split_sim.now == joined_sim.now


class TestTimeSeries:
    def test_record_and_query(self):
        series = TimeSeries("rate")
        for t, v in ((0.0, 1.0), (1.0, 2.0), (2.0, 3.0)):
            series.record(t, v)
        assert len(series) == 3
        assert series.at(1.5) == 2.0
        assert series.at(2.0) == 3.0
        assert series.mean(0.0, 3.0) == 2.0
        assert series.minimum() == 1.0
        assert series.maximum(1.0, 3.0) == 3.0

    def test_time_monotonicity(self):
        series = TimeSeries("x")
        series.record(1.0, 1.0)
        with pytest.raises(SimulationError, match="backwards"):
            series.record(0.5, 2.0)

    def test_empty_window(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        with pytest.raises(SimulationError):
            series.mean(5.0, 6.0)
        with pytest.raises(SimulationError):
            series.at(-1.0)

    def test_iteration(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        assert list(series) == [(0.0, 1.0)]

    def test_percentile(self):
        series = TimeSeries("x")
        for t in range(11):
            series.record(float(t), float(t))
        assert series.percentile(0.0) == 0.0
        assert series.percentile(50.0) == 5.0
        assert series.percentile(100.0) == 10.0
        assert series.percentile(25.0) == 2.5
        assert series.percentile(50.0, start=5.0) == 7.5
        with pytest.raises(SimulationError, match="percentile"):
            series.percentile(101.0)
        with pytest.raises(SimulationError):
            series.percentile(50.0, start=100.0)


class TestMetricsCollector:
    def test_collects_named_series(self):
        metrics = MetricsCollector()
        metrics.record("rate", 0.0, 5.0)
        metrics.record("rate", 1.0, 6.0)
        metrics.record("masks", 0.0, 1.0)
        assert metrics.names() == ["masks", "rate"]
        assert "rate" in metrics
        assert metrics.series("rate").at(1.0) == 6.0

    def test_unknown_series(self):
        with pytest.raises(SimulationError, match="no series"):
            MetricsCollector().series("nope")
