"""Unit tests for co-located adversarial trace generation (§5.1)."""

import pytest

from repro.classifier.flowtable import FlowTable
from repro.core.tracegen import AdversarialTrace, ColocatedTraceGenerator, bit_inversion_list
from repro.core.usecases import DP, SIPDP, SIPSPDP, SPDP
from repro.exceptions import ExperimentError
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig
from tests.conftest import HYP_SHIFT


class TestBitInversion:
    def test_paper_fig1_trace(self):
        """§5.1: the 3-bit trace {001, 101, 011, 000}."""
        assert bit_inversion_list(0b001, 3) == [0b001, 0b101, 0b011, 0b000]

    def test_respects_mask(self):
        values = bit_inversion_list(0b0100, 4, mask=0b1100)
        assert values == [0b0100, 0b1100, 0b0000]

    def test_length_is_width_plus_one(self):
        assert len(bit_inversion_list(80, 16)) == 17


class TestSingleHeader:
    def test_fig1_keys(self, fig1_table):
        generator = ColocatedTraceGenerator(fig1_table)
        trace = generator.generate()
        hyp_values = [key["ip_tos"] >> HYP_SHIFT for key in trace.keys]
        assert hyp_values == [0b001, 0b101, 0b011, 0b000]
        assert trace.expected_masks == 3

    def test_trace_spawns_exactly_fig3(self, fig1_table):
        datapath = Datapath(fig1_table, DatapathConfig(microflow_capacity=0))
        for key in ColocatedTraceGenerator(fig1_table).generate().keys:
            datapath.process(key)
        assert datapath.n_masks == 3
        assert datapath.n_megaflows == 4


class TestMultiHeader:
    def test_fig4_sixteen_paths(self, fig4_table):
        trace = ColocatedTraceGenerator(fig4_table).generate()
        assert len(trace) == 16  # 1 + 3 + 12 decision paths
        assert trace.expected_masks == 13  # the paper's 3*4+1

    def test_use_case_ceilings(self):
        """The paper's mask ceilings: 16 / 257 / 513 / 8209."""
        expectations = {DP: 16, SPDP: 257, SIPDP: 513, SIPSPDP: 8209}
        for use_case, expected in expectations.items():
            table = use_case.build_table()
            trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
            datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
            for key in trace.keys:
                datapath.process(key)
            assert datapath.n_masks == expected, use_case.name
            assert trace.expected_masks == expected, use_case.name

    def test_pinned_base_prunes_scoped_fields(self):
        """Tenant scoping (exact ip_dst) must not multiply masks."""
        table = DP.build_table(ip_dst=0xC0000201)
        trace = ColocatedTraceGenerator(
            table, base={"ip_dst": 0xC0000201, "ip_proto": PROTO_TCP}
        ).generate()
        assert trace.expected_masks == 16

    def test_unpinned_scoped_field_expands(self):
        """Without pinning, ip_dst mismatch paths are legitimately explored
        (the egress-policy scenario of §7)."""
        table = DP.build_table(ip_dst=0xC0000201)
        trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
        assert trace.expected_masks > 16


class TestTraceProperties:
    def test_all_keys_unique(self):
        table = SIPDP.build_table()
        trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
        assert len(set(trace.keys)) == len(trace.keys)

    def test_empty_table_rejected(self):
        with pytest.raises(ExperimentError):
            ColocatedTraceGenerator(FlowTable()).generate()

    def test_keys_exercise_each_action(self, fig4_table):
        trace = ColocatedTraceGenerator(fig4_table).generate()
        actions = {fig4_table.classify(key).is_drop for key in trace.keys}
        assert actions == {True, False}

    def test_trace_label(self, fig1_table):
        trace = ColocatedTraceGenerator(fig1_table).generate(use_case="Demo")
        assert trace.use_case == "Demo"

    def test_packets_materialize_with_noise(self, fig1_table):
        trace = ColocatedTraceGenerator(fig1_table).generate()
        packets = trace.packets()
        assert len(packets) == len(trace)
        ttls = {p.ip.ttl for p in packets}
        assert len(ttls) > 1  # noise varied the TTL

    def test_packets_keep_classification_fields(self, fig1_table):
        trace = ColocatedTraceGenerator(fig1_table).generate()
        for key, packet in zip(trace.keys, trace.packets()):
            assert packet.flow_key()["ip_tos"] == key["ip_tos"]

    def test_to_pcap(self, tmp_path, fig1_table):
        trace = ColocatedTraceGenerator(fig1_table).generate()
        path = tmp_path / "attack.pcap"
        assert trace.to_pcap(path, rate_pps=100) == len(trace)
        assert path.stat().st_size > 24

    def test_iteration(self, fig1_table):
        trace = ColocatedTraceGenerator(fig1_table).generate()
        assert list(iter(trace)) == trace.keys


class TestAdversarialTraceContainer:
    def test_len(self):
        trace = AdversarialTrace(keys=[FlowKey(tp_dst=1)], expected_masks=1)
        assert len(trace) == 1
