"""Unit tests for the hypervisor host model (CPU accounting, quirks)."""

import pytest

from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPDP
from repro.exceptions import SimulationError
from repro.netsim.cloud import SYNTHETIC_ENV
from repro.netsim.hypervisor import HypervisorHost, QuirkConfig
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig

VICTIM_KEY = FlowKey(ip_proto=PROTO_TCP, ip_src=5, tp_src=52000, tp_dst=80)


def make_host(
    quirks: QuirkConfig | None = None, settlement_mode: str = "vector"
) -> HypervisorHost:
    table = SIPDP.build_table()
    datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
    return HypervisorHost(
        datapath,
        SYNTHETIC_ENV.cost_model,
        quirks=quirks,
        settlement_mode=settlement_mode,
    )


def run_attack(host: HypervisorHost, now: float) -> int:
    table = host.datapath.flow_table
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    for key in trace.keys:
        host.inject_attack(key, now)
    return len(trace)


class TestVictimAccounting:
    def test_baseline_full_rate(self):
        host = make_host()
        host.register_victim("v", (VICTIM_KEY,))
        host.victim_started("v", 0.0)
        host.keepalive("v", 0.0)
        host.tick(0.0, 0.1)
        # 10 Gbps CPU, 10 Gbps link, one mask -> full line rate.
        assert host.victim_rate("v") == pytest.approx(10.0, rel=0.05)

    def test_attack_degrades_victim(self):
        host = make_host()
        host.register_victim("v", (VICTIM_KEY,))
        host.victim_started("v", 0.0)
        host.tick(0.0, 0.1)
        baseline = host.victim_rate("v")
        run_attack(host, now=1.0)
        host.tick(1.0, 0.1)
        degraded = host.victim_rate("v")
        assert degraded < 0.1 * baseline  # SipDp: ~4.7% of baseline

    def test_victims_share_equally(self):
        host = make_host()
        for name in ("a", "b"):
            host.register_victim(name, (VICTIM_KEY.replace(tp_src=hash(name) & 0xFFFF),))
            host.victim_started(name, 0.0)
        host.tick(0.0, 0.1)
        assert host.victim_rate("a") == pytest.approx(host.victim_rate("b"))
        assert host.victim_rate("a") == pytest.approx(5.0, rel=0.1)  # half the link

    def test_stopped_victim_gets_nothing(self):
        host = make_host()
        host.register_victim("v", (VICTIM_KEY,))
        host.victim_started("v", 0.0)
        host.tick(0.0, 0.1)
        host.victim_stopped("v")
        host.tick(0.1, 0.1)
        assert host.victim_rate("v") == 0.0

    def test_unknown_victim(self):
        host = make_host()
        with pytest.raises(SimulationError):
            host.victim_rate("ghost")
        with pytest.raises(SimulationError):
            host.keepalive("ghost", 0.0)

    def test_duplicate_registration(self):
        host = make_host()
        host.register_victim("v", (VICTIM_KEY,))
        with pytest.raises(SimulationError):
            host.register_victim("v", (VICTIM_KEY,))


class TestAttackAccounting:
    def test_upcalls_counted(self):
        host = make_host()
        n = run_attack(host, now=0.0)
        host.tick(0.0, 1.0)
        assert host.upcall_pps == pytest.approx(n, rel=0.05)  # first pass: all miss

    def test_cpu_load_reported(self):
        host = make_host()
        host.tick(0.0, 0.1)
        assert host.cpu_load_fraction == pytest.approx(0.0, abs=0.01)
        run_attack(host, now=1.0)
        host.tick(1.0, 0.1)
        assert host.cpu_load_fraction > 0.05


class TestProtectionQuirk:
    def test_flow_earns_protection_when_calm(self):
        host = make_host(QuirkConfig(established_flow_protection=True,
                                     establish_seconds=5.0))
        host.register_victim("v", (VICTIM_KEY,))
        host.victim_started("v", 0.0)
        for tick in range(70):
            host.tick(tick * 0.1, 0.1)
        assert host.victims["v"].protected

    def test_no_protection_when_disabled(self):
        host = make_host()  # quirk off
        host.register_victim("v", (VICTIM_KEY,))
        host.victim_started("v", 0.0)
        for tick in range(70):
            host.tick(tick * 0.1, 0.1)
        assert not host.victims["v"].protected

    def test_no_protection_under_attack(self):
        host = make_host(QuirkConfig(established_flow_protection=True,
                                     establish_seconds=5.0))
        host.register_victim("v", (VICTIM_KEY,))
        run_attack(host, now=0.0)  # masks high from the start
        host.victim_started("v", 0.1)
        for tick in range(1, 70):
            host.tick(tick * 0.1, 0.1)
        assert not host.victims["v"].protected

    def test_protected_flow_keeps_rate_under_attack(self):
        quirks = QuirkConfig(established_flow_protection=True, establish_seconds=2.0)
        host = make_host(quirks)
        host.register_victim("v", (VICTIM_KEY,))
        host.victim_started("v", 0.0)
        for tick in range(30):
            host.tick(tick * 0.1, 0.1)
        assert host.victims["v"].protected
        run_attack(host, now=3.1)
        host.tick(3.1, 0.1)
        # Mask-memo keeps the established flow near full rate (~10% dip).
        assert host.victim_rate("v") > 7.0


class TestSettlementModes:
    @pytest.mark.parametrize("mode", ["vector", "scalar"])
    def test_attack_bites_in_both_modes(self, mode):
        host = make_host(settlement_mode=mode)
        host.register_victim("v", (VICTIM_KEY,))
        host.victim_started("v", 0.0)
        host.tick(0.0, 0.1)
        baseline = host.victim_rate("v")
        run_attack(host, now=1.0)
        host.tick(1.0, 0.1)
        assert host.victim_rate("v") < 0.1 * baseline

    def test_modes_agree_exactly(self):
        rates = {}
        for mode in ("vector", "scalar"):
            host = make_host(settlement_mode=mode)
            host.register_victim("v", (VICTIM_KEY,))
            host.victim_started("v", 0.0)
            run_attack(host, now=0.0)
            for tick in range(20):
                host.tick(tick * 0.1, 0.1)
            rates[mode] = host.victim_rate("v")
        assert rates["vector"] == rates["scalar"]


class TestRevalidatorIntegration:
    def test_idle_attack_entries_evicted(self):
        host = make_host()
        run_attack(host, now=0.0)
        masks_during = host.datapath.n_masks
        for second in range(1, 13):
            host.tick(float(second), 1.0)
        assert host.datapath.n_masks < masks_during / 10
