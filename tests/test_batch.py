"""Differential tests: the batch pipeline ≡ the sequential pipeline.

The batched datapath is an optimisation, never a semantic change: for any
rule set, traffic mix, scan policy, and mid-stream cache churn, running a
key sequence through ``lookup_batch``/``process_batch`` must produce the
same entries, ``masks_inspected``, verdicts, statistics, and installed
megaflows as the per-key path.  These tests drive both pipelines over
random inputs (hypothesis plus seeded fuzz) and compare transcripts.
"""

from __future__ import annotations

import numpy as np
import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.classifier.actions import ALLOW, DENY
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import FlowRule, Match
from repro.classifier.slowpath import MegaflowGenerator
from repro.classifier.tss import TupleSpaceSearch
from repro.packet.fields import FIELDS, FlowKey
from repro.switch.datapath import Datapath, DatapathConfig

FIELD_POOL = ("ip_src", "ip_dst", "tp_src", "tp_dst", "ip_proto")


# -- strategies -----------------------------------------------------------------

@st.composite
def prefix_constraints(draw):
    name = draw(st.sampled_from(FIELD_POOL))
    width = FIELDS[name].width
    plen = draw(st.integers(min_value=1, max_value=width))
    mask = ((1 << plen) - 1) << (width - plen)
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1)) & mask
    return name, value, mask


@st.composite
def rule_sets(draw, max_rules=6):
    n = draw(st.integers(min_value=1, max_value=max_rules))
    rules = []
    for index in range(n):
        constraints = {}
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            name, value, mask = draw(prefix_constraints())
            constraints[name] = (value, mask)
        action = ALLOW if draw(st.booleans()) else DENY
        priority = draw(st.integers(min_value=0, max_value=5))
        rules.append(FlowRule(Match(**constraints), action, priority=priority, name=f"r{index}"))
    rules.append(FlowRule(Match.any(), DENY, priority=-1, name="default"))
    return rules


@st.composite
def flow_keys(draw):
    kwargs = {}
    for name in FIELD_POOL:
        width = FIELDS[name].width
        kwargs[name] = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return FlowKey(**kwargs)


def assert_results_equal(sequential, batched):
    assert len(sequential) == len(batched)
    for i, (a, b) in enumerate(zip(sequential, batched)):
        assert a.masks_inspected == b.masks_inspected, (
            f"key {i}: masks_inspected {a.masks_inspected} != {b.masks_inspected}"
        )
        assert (a.entry is None) == (b.entry is None), f"key {i}: hit mismatch"
        if a.entry is not None:
            assert a.entry.mask == b.entry.mask and a.entry.key == b.entry.key, f"key {i}"


def assert_caches_equal(a: TupleSpaceSearch, b: TupleSpaceSearch):
    assert a.masks() == b.masks()
    assert sorted((e.mask.values, e.key) for e in a.entries()) == sorted(
        (e.mask.values, e.key) for e in b.entries()
    )
    assert a.stats_hits == b.stats_hits
    assert a.stats_misses == b.stats_misses


# -- lookup_batch ≡ lookup ------------------------------------------------------

@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rules=rule_sets(),
    keys=st.lists(flow_keys(), min_size=1, max_size=30),
    policy=st.sampled_from(["insertion", "hit_sorted"]),
    resort_interval=st.integers(min_value=2, max_value=16),
)
def test_lookup_batch_equivalent(rules, keys, policy, resort_interval):
    """lookup_batch ≡ sequential lookup, both scan policies."""
    table = FlowTable(rules=rules)
    generator = MegaflowGenerator(table)

    def build():
        cache = TupleSpaceSearch(scan_policy=policy)
        cache.RESORT_INTERVAL = resort_interval
        for key in keys:
            cache.insert(generator.generate(key).entry)
        return cache

    # Replay the keys (now all hits) plus the keys again (memo / resort
    # interplay) through both paths.
    replay = list(keys) + list(keys)
    a, b = build(), build()
    sequential = [a.lookup(k, now=1.0) for k in replay]
    batched = b.lookup_batch(replay, now=1.0)
    assert_results_equal(sequential, list(batched))
    assert_caches_equal(a, b)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rules=rule_sets(),
    keys=st.lists(flow_keys(), min_size=4, max_size=24),
    policy=st.sampled_from(["insertion", "hit_sorted"]),
    drop_every=st.integers(min_value=2, max_value=5),
)
def test_lookup_batch_equivalent_with_churn(rules, keys, policy, drop_every):
    """Equivalence holds across mid-stream inserts and removals of masks."""
    table = FlowTable(rules=rules)
    generator = MegaflowGenerator(table)

    def run(batched: bool):
        cache = TupleSpaceSearch(scan_policy=policy)
        cache.RESORT_INTERVAL = 8
        transcript = []
        installed = []
        for round_no in range(3):
            # Phase: install entries for a rotating subset of the keys.
            for key in keys[round_no::3]:
                installed.append(cache.insert(generator.generate(key).entry))
            # Phase: look everything up (batch vs per-key).
            if batched:
                transcript.extend(cache.lookup_batch(keys, now=float(round_no)))
            else:
                transcript.extend(cache.lookup(k, now=float(round_no)) for k in keys)
            # Phase: remove every drop_every-th installed entry (retires
            # masks when their table empties, invalidating the accelerator).
            for victim in installed[::drop_every]:
                cache.remove(victim)
        return transcript, cache

    seq_transcript, seq_cache = run(batched=False)
    batch_transcript, batch_cache = run(batched=True)
    assert_results_equal(seq_transcript, batch_transcript)
    assert_caches_equal(seq_cache, batch_cache)


def test_lookup_batch_empty_and_trivial():
    cache = TupleSpaceSearch()
    assert len(cache.lookup_batch([])) == 0
    result = cache.lookup_batch([FlowKey(tp_dst=80)])
    assert not result[0].hit and result[0].masks_inspected == 0
    assert result.hits == 0 and result.masks_inspected_total == 0


# -- process_batch ≡ process ----------------------------------------------------

def _mixed_traffic(rules, seed, count):
    """Traffic that exercises every level: repeats, fresh flows, noise."""
    rng = np.random.default_rng(seed)
    base = [
        FlowKey(
            ip_src=int(rng.integers(0, 1 << 32)),
            ip_dst=int(rng.integers(0, 1 << 32)),
            tp_src=int(rng.integers(0, 1 << 16)),
            tp_dst=int(rng.integers(0, 1 << 16)),
            ip_proto=6,
        )
        for _ in range(max(4, count // 8))
    ]
    keys = []
    for _ in range(count):
        if rng.random() < 0.55:
            keys.append(base[int(rng.integers(0, len(base)))])
        else:
            keys.append(
                FlowKey(
                    ip_src=int(rng.integers(0, 1 << 32)),
                    ip_dst=int(rng.integers(0, 1 << 32)),
                    tp_src=int(rng.integers(0, 1 << 16)),
                    tp_dst=int(rng.integers(0, 1 << 16)),
                    ip_proto=6,
                )
            )
    return keys


STATS_FIELDS = (
    "packets",
    "microflow_hits",
    "mask_cache_hits",
    "megaflow_hits",
    "upcalls",
    "installs",
    "install_rejected",
    "dead_entry_suppressed",
    "masks_inspected_total",
)


def assert_datapaths_equal(a: Datapath, b: Datapath):
    for field in STATS_FIELDS:
        assert getattr(a.stats, field) == getattr(b.stats, field), field
    assert a.megaflows.masks() == b.megaflows.masks()
    assert sorted((e.mask.values, e.key) for e in a.megaflows.entries()) == sorted(
        (e.mask.values, e.key) for e in b.megaflows.entries()
    )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rules=rule_sets(),
    seed=st.integers(min_value=0, max_value=2**31),
    microflow=st.sampled_from([0, 8]),
    mask_cache=st.booleans(),
    batch_size=st.integers(min_value=1, max_value=17),
)
def test_process_batch_equivalent(rules, seed, microflow, mask_cache, batch_size):
    """process_batch ≡ sequential process across cache configurations."""

    def mk():
        return Datapath(
            FlowTable(rules=list(rules)),
            DatapathConfig(
                microflow_capacity=microflow,
                enable_mask_cache=mask_cache,
                mask_cache_size=8,
            ),
        )

    keys = _mixed_traffic(rules, seed, 60)
    a, b = mk(), mk()
    sequential = [a.process(k, now=1.0) for k in keys]
    batched = []
    for start in range(0, len(keys), batch_size):
        batch = b.process_batch(keys[start : start + batch_size], now=1.0)
        batched.extend(batch.verdicts)
    assert len(sequential) == len(batched)
    for i, (x, y) in enumerate(zip(sequential, batched)):
        assert x.action == y.action, i
        assert x.path == y.path, i
        assert x.masks_inspected == y.masks_inspected, i
        assert x.rules_examined == y.rules_examined, i
        assert (x.installed is None) == (y.installed is None), i
    assert_datapaths_equal(a, b)


def test_process_batch_mask_counts_track_installs():
    """mask_counts reports the pre-packet mask count, growing mid-batch."""
    table = FlowTable()
    table.add_rule(Match(tp_dst=(80, 0xFFFF)), ALLOW, priority=1, name="allow-80")
    table.add_default_deny()
    datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
    keys = [FlowKey(tp_dst=80, ip_proto=6), FlowKey(tp_dst=81, ip_proto=6)]
    batch = datapath.process_batch(keys)
    assert batch.mask_counts[0] == 0  # cold cache
    assert batch.mask_counts[1] >= 1  # first packet's install is visible
    assert len(batch) == 2 and batch.upcalls >= 1


def test_process_batch_duplicate_keys_hit_microflow():
    """A batch of duplicates must hit the microflow its first packet installs."""
    table = FlowTable()
    table.add_default_deny()
    datapath = Datapath(table, DatapathConfig(microflow_capacity=16))
    key = FlowKey(tp_dst=443, ip_proto=6)
    batch = datapath.process_batch([key, key, key])
    paths = [v.path.value for v in batch.verdicts]
    assert paths[0] == "slow_path"
    assert paths[1] == "microflow" and paths[2] == "microflow"


# -- hypervisor batch accounting -------------------------------------------------

def test_inject_attack_batch_charges_like_sequential():
    from repro.netsim.hypervisor import HypervisorHost
    from repro.switch.costmodel import CostModel

    table_rules = [
        FlowRule(Match(tp_dst=(80, 0xFFFF)), ALLOW, priority=1, name="allow-80"),
        FlowRule(Match.any(), DENY, priority=-1, name="default"),
    ]

    def mk():
        datapath = Datapath(FlowTable(rules=list(table_rules)), DatapathConfig())
        return HypervisorHost(datapath, CostModel())

    keys = _mixed_traffic(table_rules, seed=3, count=64)
    a, b = mk(), mk()
    va = [a.inject_attack(k, now=0.0) for k in keys]
    vb = b.inject_attack_batch(keys, now=0.0)
    assert [v.action for v in va] == [v.action for v in vb]
    assert [v.path for v in va] == [v.path for v in vb]
    assert a._upcalls == b._upcalls
    units_a, units_b = sum(a._attack_units), sum(b._attack_units)
    assert abs(units_a - units_b) < 1e-6 * max(1.0, units_a)
