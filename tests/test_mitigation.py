"""Unit tests for MFCGuard (Algorithm 2, §8)."""

import pytest

from repro.core.mitigation import GuardReport, MFCGuard, MFCGuardConfig
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPDP
from repro.exceptions import ExperimentError
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig, PathTaken


BENIGN = FlowKey(ip_proto=PROTO_TCP, ip_src=0xC0A80001, tp_src=40000, tp_dst=80)


def attacked_setup(mask_threshold=100, cpu_threshold=1000.0, permanent=True):
    table = SIPDP.build_table()
    datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
    datapath.process(BENIGN, now=0.0)
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    for key in trace.keys:
        datapath.process(key, now=1.0)
    guard = MFCGuard(
        datapath,
        MFCGuardConfig(
            mask_threshold=mask_threshold,
            cpu_threshold_pct=cpu_threshold,
            permanent_delete=permanent,
        ),
    )
    return table, datapath, trace, guard


class TestAlgorithm2:
    def test_cleanup_restores_small_tuple_space(self):
        _table, datapath, _trace, guard = attacked_setup()
        masks_before = datapath.n_masks
        report = guard.run(now=10.0)
        assert report.ran
        assert report.masks_before == masks_before > 500
        assert report.masks_after < 25
        assert report.entries_deleted > 400

    def test_benign_entries_survive(self):
        _table, datapath, _trace, guard = attacked_setup()
        guard.run(now=10.0)
        verdict = datapath.process(BENIGN, now=11.0)
        assert verdict.path is not PathTaken.SLOW_PATH
        assert verdict.action.is_allow

    def test_below_threshold_noop(self):
        table = SIPDP.build_table()
        datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
        datapath.process(BENIGN)
        guard = MFCGuard(datapath, MFCGuardConfig(mask_threshold=100))
        report = guard.run(now=10.0)
        assert report.ran
        assert report.entries_deleted == 0

    def test_deleted_traffic_pinned_to_slow_path(self):
        _table, datapath, trace, guard = attacked_setup()
        guard.run(now=10.0)
        attack_key = next(k for k in trace.keys if datapath.flow_table.classify(k).is_drop)
        for _ in range(3):
            verdict = datapath.process(attack_key, now=12.0)
            assert verdict.path is PathTaken.SLOW_PATH
            assert verdict.installed is None

    def test_non_permanent_mode_resparks(self):
        _table, datapath, trace, guard = attacked_setup(permanent=False)
        guard.run(now=10.0)
        attack_key = next(k for k in trace.keys if datapath.flow_table.classify(k).is_drop)
        verdict = datapath.process(attack_key, now=12.0)
        assert verdict.installed is not None

    def test_cpu_threshold_stops_deletion(self):
        # With an absurdly low CPU budget, the guard stops after one rule.
        _table, datapath, _trace, guard = attacked_setup(cpu_threshold=1.0)
        report = guard.run(now=10.0)
        assert report.stopped_by_cpu
        assert len(report.rules_cleaned) == 1

    def test_rules_cleaned_reported(self):
        _table, _datapath, _trace, guard = attacked_setup()
        report = guard.run(now=10.0)
        assert "allow-tp_dst" in report.rules_cleaned


class TestScheduling:
    def test_tick_honours_period(self):
        _table, _datapath, _trace, guard = attacked_setup()
        assert not guard.tick(now=5.0).ran  # period is 10 s
        assert guard.tick(now=10.0).ran
        assert not guard.tick(now=15.0).ran
        assert guard.tick(now=20.0).ran

    def test_runs_counted(self):
        _table, _datapath, _trace, guard = attacked_setup()
        guard.run(now=10.0)
        guard.run(now=20.0)
        assert guard.runs == 2


class TestCpuAccounting:
    def test_projected_cpu_uses_model(self):
        _table, _datapath, _trace, guard = attacked_setup()
        guard.note_attack_rate(10000)
        assert guard.projected_cpu_pct() == pytest.approx(80.0, abs=1.0)

    def test_note_attack_rate_validation(self):
        _table, _datapath, _trace, guard = attacked_setup()
        with pytest.raises(ExperimentError):
            guard.note_attack_rate(-5)

    def test_demoted_rate_estimated_from_hits(self):
        _table, datapath, trace, guard = attacked_setup()
        # Replay part of the trace to give entries a hit rate.
        for key in trace.keys[:200]:
            datapath.process(key, now=5.0)
        guard.run(now=10.0)
        assert guard.demoted_pps > 0


class TestConfigValidation:
    def test_bad_thresholds(self):
        with pytest.raises(ExperimentError):
            MFCGuardConfig(mask_threshold=-1)
        with pytest.raises(ExperimentError):
            MFCGuardConfig(cpu_threshold_pct=0)
        with pytest.raises(ExperimentError):
            MFCGuardConfig(period=0)

    def test_report_defaults(self):
        report = GuardReport()
        assert not report.ran
        assert report.entries_deleted == 0
